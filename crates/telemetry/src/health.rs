//! SLO burn-rate health evaluation: declarative [`SloSpec`]s per
//! workclass, multi-window burn-rate rules on the simulated clock, and an
//! alert state machine with flap suppression.
//!
//! The burn-rate model follows the multi-window construction from
//! Google's SRE workbook: the *burn rate* over a window is the fraction
//! of bad events divided by the error budget `1 - objective`. A burn of
//! 1.0 spends the budget exactly at the sustainable rate; an alert fires
//! only when **both** a fast window (~5 min, catches the acute incident)
//! and a slow window (~1 h, proves it is not a blip) burn above their
//! thresholds. Pending confirmation before firing and a clear hold-down
//! before resolving suppress flapping on the boundary.
//!
//! Event timestamps ride the deployment's simulated clock (callers pass
//! unix seconds), so alert timelines are deterministic and replayable;
//! latencies are wall-clock microseconds as everywhere else in the
//! workspace. Bad events recorded from traced requests keep their trace
//! ids, so a firing alert carries exemplars an operator can resolve via
//! `/vm/traces/{id}`.

use crate::metrics::{labeled, Gauge};
use crate::Telemetry;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Width of one accounting bucket on the simulated timeline.
const BUCKET_SECS: u64 = 10;

/// How many bad-event trace exemplars each SLO tracker retains.
const ALERT_EXEMPLAR_CAP: usize = 8;

/// What an [`SloSpec`] measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloKind {
    /// Fraction of requests that complete successfully.
    Availability,
    /// Fraction of *successful* requests finishing within the threshold
    /// (wall-clock microseconds); failures are charged to the
    /// availability SLO, not double-counted here.
    Latency {
        /// Requests slower than this many microseconds are bad events.
        threshold_micros: u64,
    },
}

/// A declarative service-level objective for one workclass.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Unique name, used as the `slo` label on exported series.
    pub name: String,
    /// The workclass label this SLO observes (`enrollment`, `renewal`,
    /// `revocation`, `introspection`). A plain string keeps the telemetry
    /// crate free of a dependency on core's `Workclass` enum.
    pub workclass: String,
    /// Availability or latency objective.
    pub kind: SloKind,
    /// Target good fraction, e.g. `0.99`. The error budget is
    /// `1 - objective`.
    pub objective: f64,
    /// The acute window (seconds of simulated time), ~5 min.
    pub fast_window_secs: u64,
    /// The sustained window (seconds of simulated time), ~1 h.
    pub slow_window_secs: u64,
    /// Fast-window burn must reach this to count as breaching.
    pub fast_burn_threshold: f64,
    /// Slow-window burn must reach this to count as breaching.
    pub slow_burn_threshold: f64,
    /// Breach must hold this long before `pending` becomes `firing`.
    pub pending_secs: u64,
    /// Burns must stay clear this long before `firing` resolves.
    pub resolve_secs: u64,
}

impl SloSpec {
    /// An availability SLO with the default windows and thresholds
    /// (fast 5 min at 14×, slow 1 h at 6× — the SRE-workbook page pair).
    pub fn availability(workclass: &str, objective: f64) -> SloSpec {
        SloSpec {
            name: format!("{workclass}-availability"),
            workclass: workclass.to_string(),
            kind: SloKind::Availability,
            objective,
            fast_window_secs: 300,
            slow_window_secs: 3600,
            fast_burn_threshold: 14.0,
            slow_burn_threshold: 6.0,
            pending_secs: 30,
            resolve_secs: 60,
        }
    }

    /// A latency SLO: `objective` of successful requests must finish
    /// within `threshold_micros`.
    pub fn latency(workclass: &str, objective: f64, threshold_micros: u64) -> SloSpec {
        SloSpec {
            name: format!("{workclass}-latency"),
            kind: SloKind::Latency { threshold_micros },
            ..SloSpec::availability(workclass, objective)
        }
    }

    /// The stock fleet objectives: availability 99% and latency 95%
    /// within 100 ms for each of the four workclasses.
    pub fn default_set() -> Vec<SloSpec> {
        let mut specs = Vec::new();
        for class in ["enrollment", "renewal", "revocation", "introspection"] {
            specs.push(SloSpec::availability(class, 0.99));
            specs.push(SloSpec::latency(class, 0.95, 100_000));
        }
        specs
    }
}

/// Alert lifecycle state. `Ok` covers both "never breached" and "breach
/// resolved"; the resolution instant is reported separately so operators
/// can tell the two apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertState {
    /// Within objective (or resolved after a past breach).
    Ok,
    /// Both windows breaching, awaiting the confirmation hold.
    Pending,
    /// Confirmed breach.
    Firing,
}

impl AlertState {
    /// Stable wire/gauge encoding: 0 ok, 1 pending, 2 firing.
    pub fn code(self) -> i64 {
        match self {
            AlertState::Ok => 0,
            AlertState::Pending => 1,
            AlertState::Firing => 2,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }

    /// Inverse of [`code`](Self::code); unknown codes clamp to firing so a
    /// corrupt fleet report fails loud, not quiet.
    pub fn from_code(code: i64) -> AlertState {
        match code {
            0 => AlertState::Ok,
            1 => AlertState::Pending,
            _ => AlertState::Firing,
        }
    }
}

/// One SLO's evaluated condition at a point in simulated time.
#[derive(Clone, Debug)]
pub struct AlertSnapshot {
    /// The spec's name (`slo` label).
    pub slo: String,
    /// The workclass the SLO observes.
    pub workclass: String,
    /// Current state-machine position.
    pub state: AlertState,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// When the current state was entered (simulated seconds).
    pub since: u64,
    /// When the last firing breach resolved, if any.
    pub resolved_at: Option<u64>,
    /// Trace ids of recent bad events (most recent first) — the operator
    /// path from this alert to `/vm/traces/{id}`.
    pub exemplar_trace_ids: Vec<u128>,
    /// Good events in the fast window.
    pub fast_good: u64,
    /// Bad events in the fast window.
    pub fast_bad: u64,
}

#[derive(Clone, Copy, Default)]
struct WindowBucket {
    epoch: u64,
    good: u64,
    bad: u64,
}

struct SloTracker {
    spec: SloSpec,
    buckets: Vec<WindowBucket>,
    state: AlertState,
    since: u64,
    clear_since: Option<u64>,
    resolved_at: Option<u64>,
    exemplars: VecDeque<u128>,
    state_gauge: Gauge,
    fast_gauge: Gauge,
    slow_gauge: Gauge,
}

impl SloTracker {
    fn new(telemetry: &Telemetry, spec: SloSpec) -> SloTracker {
        let slots = (spec.slow_window_secs / BUCKET_SECS).max(1) as usize + 1;
        let burn_gauge = |window: &str| {
            // metric-name-opt-out: the health plane exports fleet-level
            // series under its own vnfguard_health_ namespace.
            telemetry.gauge(&format!(
                "vnfguard_health_burn_rate{{slo=\"{}\",window=\"{window}\"}}",
                spec.name
            ))
        };
        SloTracker {
            buckets: vec![WindowBucket::default(); slots],
            state: AlertState::Ok,
            since: 0,
            clear_since: None,
            resolved_at: None,
            exemplars: VecDeque::new(),
            // metric-name-opt-out: vnfguard_health_ namespace (see above).
            state_gauge: telemetry.gauge(&labeled(
                "vnfguard_health_alert_state",
                "slo",
                &spec.name,
            )),
            fast_gauge: burn_gauge("fast"),
            slow_gauge: burn_gauge("slow"),
            spec,
        }
    }

    fn record(&mut self, now: u64, good: bool, trace_id: Option<u128>) {
        let epoch = now / BUCKET_SECS;
        let idx = (epoch as usize) % self.buckets.len();
        let bucket = &mut self.buckets[idx];
        if bucket.epoch != epoch {
            *bucket = WindowBucket {
                epoch,
                good: 0,
                bad: 0,
            };
        }
        if good {
            bucket.good += 1;
        } else {
            bucket.bad += 1;
            if let Some(id) = trace_id {
                if self.exemplars.front() != Some(&id) {
                    self.exemplars.push_front(id);
                    self.exemplars.truncate(ALERT_EXEMPLAR_CAP);
                }
            }
        }
    }

    fn window_counts(&self, now: u64, window_secs: u64) -> (u64, u64) {
        let newest = now / BUCKET_SECS;
        let oldest = now.saturating_sub(window_secs) / BUCKET_SECS;
        let (mut good, mut bad) = (0u64, 0u64);
        for bucket in &self.buckets {
            if bucket.epoch > oldest && bucket.epoch <= newest {
                good += bucket.good;
                bad += bucket.bad;
            }
        }
        (good, bad)
    }

    fn burn(&self, now: u64, window_secs: u64) -> f64 {
        let (good, bad) = self.window_counts(now, window_secs);
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.spec.objective).max(1e-9);
        (bad as f64 / total as f64) / budget
    }

    fn evaluate(&mut self, now: u64, telemetry: &Telemetry) -> AlertSnapshot {
        let fast = self.burn(now, self.spec.fast_window_secs);
        let slow = self.burn(now, self.spec.slow_window_secs);
        let breaching =
            fast >= self.spec.fast_burn_threshold && slow >= self.spec.slow_burn_threshold;
        let transition = |tracker: &mut SloTracker, now: u64, kind: &str| {
            tracker.since = now;
            telemetry.event(
                now,
                kind,
                &format!("{}: fast burn {fast:.2}, slow burn {slow:.2}", tracker.spec.name),
            );
        };
        match self.state {
            AlertState::Ok => {
                if breaching {
                    self.state = AlertState::Pending;
                    transition(self, now, "health_alert_pending");
                }
            }
            AlertState::Pending => {
                if !breaching {
                    // A blip shorter than the confirmation hold never fires.
                    self.state = AlertState::Ok;
                    transition(self, now, "health_alert_cleared");
                } else if now.saturating_sub(self.since) >= self.spec.pending_secs {
                    self.state = AlertState::Firing;
                    self.clear_since = None;
                    transition(self, now, "health_alert_firing");
                }
            }
            AlertState::Firing => {
                if breaching {
                    // Flap suppression: any re-breach restarts the clear
                    // hold-down, so an oscillating burn stays firing.
                    self.clear_since = None;
                } else {
                    let clear_start = *self.clear_since.get_or_insert(now);
                    if now.saturating_sub(clear_start) >= self.spec.resolve_secs {
                        self.state = AlertState::Ok;
                        self.resolved_at = Some(now);
                        self.clear_since = None;
                        transition(self, now, "health_alert_resolved");
                    }
                }
            }
        }
        self.state_gauge.set(self.state.code());
        // Gauges are integers; burns export in milli-units (1000 = 1.0×).
        self.fast_gauge.set((fast * 1000.0).round() as i64);
        self.slow_gauge.set((slow * 1000.0).round() as i64);
        let (fast_good, fast_bad) = self.window_counts(now, self.spec.fast_window_secs);
        AlertSnapshot {
            slo: self.spec.name.clone(),
            workclass: self.spec.workclass.clone(),
            state: self.state,
            fast_burn: fast,
            slow_burn: slow,
            since: self.since,
            resolved_at: self.resolved_at,
            exemplar_trace_ids: self.exemplars.iter().copied().collect(),
            fast_good,
            fast_bad,
        }
    }
}

struct MonitorInner {
    trackers: Vec<SloTracker>,
}

/// Evaluates a set of [`SloSpec`]s against a stream of request outcomes.
///
/// Cloning shares state. `record` is the hot-path entry (one mutex, two
/// bucket bumps per matching spec); `evaluate` steps every alert state
/// machine to `now`, updates the exported gauges, journals transitions,
/// and returns the snapshots diagnostics endpoints serve.
#[derive(Clone)]
pub struct HealthMonitor {
    inner: Arc<Mutex<MonitorInner>>,
    telemetry: Telemetry,
}

impl HealthMonitor {
    pub fn new(telemetry: &Telemetry, specs: Vec<SloSpec>) -> HealthMonitor {
        let trackers = specs
            .into_iter()
            .map(|spec| SloTracker::new(telemetry, spec))
            .collect();
        HealthMonitor {
            inner: Arc::new(Mutex::new(MonitorInner { trackers })),
            telemetry: telemetry.clone(),
        }
    }

    /// A monitor over [`SloSpec::default_set`].
    pub fn with_defaults(telemetry: &Telemetry) -> HealthMonitor {
        HealthMonitor::new(telemetry, SloSpec::default_set())
    }

    /// Record one request outcome for `workclass` at simulated time `now`.
    /// Availability SLOs count `success`; latency SLOs grade successful
    /// requests against their threshold. Bad events keep `trace_id` as an
    /// alert exemplar when the request was traced.
    pub fn record(
        &self,
        workclass: &str,
        now: u64,
        success: bool,
        latency_micros: u64,
        trace_id: Option<u128>,
    ) {
        let mut inner = self.inner.lock().expect("health monitor poisoned");
        for tracker in &mut inner.trackers {
            if tracker.spec.workclass != workclass {
                continue;
            }
            match tracker.spec.kind {
                SloKind::Availability => tracker.record(now, success, trace_id),
                SloKind::Latency { threshold_micros } => {
                    if success {
                        tracker.record(now, latency_micros <= threshold_micros, trace_id);
                    }
                }
            }
        }
    }

    /// Step every alert state machine to `now` and return the evaluated
    /// conditions (one per spec, spec order).
    pub fn evaluate(&self, now: u64) -> Vec<AlertSnapshot> {
        let mut inner = self.inner.lock().expect("health monitor poisoned");
        inner
            .trackers
            .iter_mut()
            .map(|t| t.evaluate(now, &self.telemetry))
            .collect()
    }

    /// The evaluated condition of one SLO by name, if configured.
    pub fn alert(&self, name: &str, now: u64) -> Option<AlertSnapshot> {
        self.evaluate(now).into_iter().find(|a| a.slo == name)
    }

    /// Names of the configured SLOs, spec order.
    pub fn slo_names(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("health monitor poisoned");
        inner.trackers.iter().map(|t| t.spec.name.clone()).collect()
    }
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("health monitor poisoned");
        f.debug_struct("HealthMonitor")
            .field("slos", &inner.trackers.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec::availability("enrollment", 0.99)
    }

    fn monitor() -> (Telemetry, HealthMonitor) {
        let tele = Telemetry::new();
        let monitor = HealthMonitor::new(&tele, vec![spec()]);
        (tele, monitor)
    }

    fn state_of(monitor: &HealthMonitor, now: u64) -> AlertState {
        monitor.evaluate(now)[0].state
    }

    #[test]
    fn healthy_traffic_stays_ok() {
        let (_tele, monitor) = monitor();
        let mut now = 1_600_000_000;
        for _ in 0..50 {
            monitor.record("enrollment", now, true, 1_000, None);
            now += 5;
        }
        assert_eq!(state_of(&monitor, now), AlertState::Ok);
        let alert = &monitor.evaluate(now)[0];
        assert_eq!(alert.fast_burn, 0.0);
        assert_eq!(alert.fast_good, 50);
    }

    #[test]
    fn sustained_breach_walks_pending_then_firing() {
        let (tele, monitor) = monitor();
        let mut now = 1_600_000_000;
        for _ in 0..10 {
            monitor.record("enrollment", now, false, 1_000, Some(0xBEEF));
            now += 5;
        }
        // First evaluation sees both windows burning: pending.
        assert_eq!(state_of(&monitor, now), AlertState::Pending);
        // Breach persists past the confirmation hold: firing.
        now += 31;
        monitor.record("enrollment", now, false, 1_000, Some(0xBEEF));
        let alert = &monitor.evaluate(now)[0];
        assert_eq!(alert.state, AlertState::Firing);
        assert!(alert.fast_burn >= 14.0);
        assert_eq!(alert.exemplar_trace_ids, vec![0xBEEF]);
        assert!(tele
            .journal()
            .events()
            .iter()
            .any(|e| e.kind == "health_alert_firing"));
    }

    #[test]
    fn short_blip_never_fires() {
        let (_tele, monitor) = monitor();
        let now = 1_600_000_000;
        monitor.record("enrollment", now, false, 1_000, None);
        assert_eq!(state_of(&monitor, now), AlertState::Pending);
        // Good traffic swamps the blip before the confirmation hold ends.
        for i in 0..200 {
            monitor.record("enrollment", now + 10 + i % 5, true, 1_000, None);
        }
        assert_eq!(state_of(&monitor, now + 20), AlertState::Ok);
    }

    #[test]
    fn firing_resolves_only_after_clear_holddown() {
        let (tele, monitor) = monitor();
        let mut now = 1_600_000_000;
        for _ in 0..10 {
            monitor.record("enrollment", now, false, 1_000, None);
            now += 10;
        }
        assert_eq!(state_of(&monitor, now), AlertState::Pending);
        now += 31;
        assert_eq!(state_of(&monitor, now), AlertState::Firing);
        // Recovery: the bad window ages out, good traffic replaces it.
        now += 400;
        for _ in 0..100 {
            monitor.record("enrollment", now, true, 1_000, None);
        }
        // Clear observed, but the hold-down keeps it firing (flap guard)...
        assert_eq!(state_of(&monitor, now), AlertState::Firing);
        // ...until the clear has held for resolve_secs.
        now += 61;
        let alert = &monitor.evaluate(now)[0];
        assert_eq!(alert.state, AlertState::Ok);
        assert_eq!(alert.resolved_at, Some(now));
        assert!(tele
            .journal()
            .events()
            .iter()
            .any(|e| e.kind == "health_alert_resolved"));
    }

    #[test]
    fn flapping_burn_stays_firing() {
        let (_tele, monitor) = monitor();
        let mut now = 1_600_000_000;
        for _ in 0..10 {
            monitor.record("enrollment", now, false, 1_000, None);
            now += 10;
        }
        let _ = monitor.evaluate(now);
        now += 31;
        assert_eq!(state_of(&monitor, now), AlertState::Firing);
        // Oscillate: clear for less than resolve_secs, then breach again.
        now += 400;
        for _ in 0..100 {
            monitor.record("enrollment", now, true, 1_000, None);
        }
        assert_eq!(state_of(&monitor, now), AlertState::Firing);
        now += 30; // clear hold not yet satisfied
        monitor.record("enrollment", now, false, 1_000, None);
        for _ in 0..30 {
            monitor.record("enrollment", now, false, 1_000, None);
        }
        assert_eq!(state_of(&monitor, now), AlertState::Firing);
        now += 30;
        // Still firing: the re-breach restarted the hold-down.
        assert_eq!(state_of(&monitor, now), AlertState::Firing);
    }

    #[test]
    fn latency_slo_grades_successes_against_threshold() {
        let tele = Telemetry::new();
        let monitor =
            HealthMonitor::new(&tele, vec![SloSpec::latency("renewal", 0.95, 10_000)]);
        let now = 1_600_000_000;
        monitor.record("renewal", now, true, 5_000, None); // good
        monitor.record("renewal", now, true, 50_000, None); // bad: slow
        monitor.record("renewal", now, false, 1_000, None); // ignored: failed
        let alert = &monitor.evaluate(now)[0];
        assert_eq!(alert.fast_good, 1);
        assert_eq!(alert.fast_bad, 1);
    }

    #[test]
    fn gauges_export_state_and_milliburns() {
        let (tele, monitor) = monitor();
        let now = 1_600_000_000;
        for _ in 0..10 {
            monitor.record("enrollment", now, false, 1_000, None);
        }
        let _ = monitor.evaluate(now);
        let text = tele.render_prometheus();
        assert!(text
            .contains("vnfguard_health_alert_state{slo=\"enrollment-availability\"} 1"));
        // 100% bad at a 1% budget = burn 100.0 → 100000 milli-units.
        assert!(text.contains(
            "vnfguard_health_burn_rate{slo=\"enrollment-availability\",window=\"fast\"} 100000"
        ));
    }

    #[test]
    fn old_buckets_age_out_of_the_windows() {
        let (_tele, monitor) = monitor();
        let now = 1_600_000_000;
        for _ in 0..10 {
            monitor.record("enrollment", now, false, 1_000, None);
        }
        assert!(monitor.evaluate(now)[0].fast_burn > 0.0);
        // Two hours later both windows have rolled past the bad buckets.
        let later = now + 7200;
        let alert = &monitor.evaluate(later)[0];
        assert_eq!(alert.fast_burn, 0.0);
        assert_eq!(alert.slow_burn, 0.0);
    }
}
