//! A ring-buffered structured event journal with monotone sequence
//! numbers, subsuming the manager's former ad-hoc `VmEvent` vec.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One structured audit event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number (starts at 1); the cursor for
    /// `GET /vm/events?since=`.
    pub seq: u64,
    /// Simulated-clock timestamp (unix seconds).
    pub time: u64,
    pub kind: String,
    pub detail: String,
}

struct JournalInner {
    next_seq: u64,
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// Bounded event journal; cloning shares the buffer. When full, the oldest
/// event is evicted (and counted), so sequence numbers stay monotone and a
/// reader polling `since(cursor)` can detect gaps.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Mutex<JournalInner>>,
}

impl Journal {
    pub fn new(capacity: usize) -> Journal {
        Journal {
            inner: Arc::new(Mutex::new(JournalInner {
                next_seq: 1,
                events: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// Append an event; returns its sequence number.
    pub fn record(&self, time: u64, kind: &str, detail: &str) -> u64 {
        let mut inner = self.inner.lock().expect("journal poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() >= inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(Event {
            seq,
            time,
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
        seq
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("journal poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Retained events with `seq >= since`, oldest first. `since(0)` (or 1)
    /// returns everything retained.
    pub fn since(&self, since: u64) -> Vec<Event> {
        self.inner
            .lock()
            .expect("journal poisoned")
            .events
            .iter()
            .filter(|e| e.seq >= since)
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal poisoned").events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sequence number the next event will get; poll cursor for
    /// `since`.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").next_seq
    }

    /// Events evicted by the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").dropped
    }
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new(4096)
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("journal poisoned");
        f.debug_struct("Journal")
            .field("len", &inner.events.len())
            .field("next_seq", &inner.next_seq)
            .field("dropped", &inner.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_monotone_from_one() {
        let journal = Journal::new(16);
        assert_eq!(journal.record(10, "a", ""), 1);
        assert_eq!(journal.record(11, "b", ""), 2);
        assert_eq!(journal.next_seq(), 3);
    }

    #[test]
    fn since_filters_by_cursor() {
        let journal = Journal::new(16);
        for i in 0..5 {
            journal.record(i, "k", &format!("e{i}"));
        }
        assert_eq!(journal.since(0).len(), 5);
        assert_eq!(journal.since(4).len(), 2);
        assert_eq!(journal.since(6).len(), 0);
        assert_eq!(journal.since(4)[0].detail, "e3");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let journal = Journal::new(3);
        for i in 0..5 {
            journal.record(i, "k", "");
        }
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.dropped(), 2);
        let seqs: Vec<u64> = journal.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [3, 4, 5]);
    }
}
