//! Distributed tracing: trace-context propagation and bounded trace assembly.
//!
//! A [`TraceContext`] is the unit that travels across process boundaries as a
//! W3C-style `traceparent` HTTP header; a [`TraceCollector`] assembles the
//! spans recorded under those contexts into per-trace trees and renders them
//! as an ASCII waterfall or Chrome `trace_event` JSON.
//!
//! Trace and span identifiers are drawn from a seeded [`TraceIds`] generator
//! so that a deployment built from a fixed seed produces the same ids on
//! every run — there is no ambient-entropy `Math.random` analogue anywhere in
//! this module.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default capacity of the collector's finished-span ring buffer.
pub const DEFAULT_COLLECTOR_CAPACITY: usize = 4096;

/// Propagated trace identity: which trace a unit of work belongs to and which
/// span caused it.
///
/// The wire format is the W3C `traceparent` header,
/// `00-{trace_id:032x}-{span_id:016x}-{flags:02x}`, where bit 0 of the flags
/// byte carries the head-based sampling decision. The parent id is local
/// bookkeeping and is not carried on the wire — the receiver's spans parent
/// to the sender's `span_id`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace identifier shared by every span in the tree.
    pub trace_id: u128,
    /// 64-bit identifier of the span this context describes.
    pub span_id: u64,
    /// Local parent span id, if any. Never serialized.
    pub parent_id: Option<u64>,
    /// Head-based sampling decision, made once at the root and propagated.
    pub sampled: bool,
}

impl TraceContext {
    /// A context that carries no identity; [`TraceContext::is_valid`] is
    /// false and injection/recording are no-ops.
    pub fn disabled() -> TraceContext {
        TraceContext::default()
    }

    /// True when the context carries real (non-zero) identifiers.
    pub fn is_valid(&self) -> bool {
        self.trace_id != 0 && self.span_id != 0
    }

    /// True when spans under this context should be recorded.
    pub fn is_recording(&self) -> bool {
        self.is_valid() && self.sampled
    }

    /// Render the context as a `traceparent` header value.
    pub fn traceparent(&self) -> String {
        let flags: u8 = if self.sampled { 0x01 } else { 0x00 };
        format!("00-{:032x}-{:016x}-{:02x}", self.trace_id, self.span_id, flags)
    }

    /// Parse a `traceparent` header value. Returns `None` for malformed
    /// input, unknown versions, or all-zero identifiers.
    pub fn parse(header: &str) -> Option<TraceContext> {
        let mut parts = header.trim().split('-');
        let version = parts.next()?;
        let trace_hex = parts.next()?;
        let span_hex = parts.next()?;
        let flags_hex = parts.next()?;
        if parts.next().is_some() {
            return None;
        }
        if version.len() != 2 || version == "ff" || u8::from_str_radix(version, 16).is_err() {
            return None;
        }
        if trace_hex.len() != 32 || span_hex.len() != 16 || flags_hex.len() != 2 {
            return None;
        }
        let trace_id = u128::from_str_radix(trace_hex, 16).ok()?;
        let span_id = u64::from_str_radix(span_hex, 16).ok()?;
        let flags = u8::from_str_radix(flags_hex, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            parent_id: None,
            sampled: flags & 0x01 != 0,
        })
    }
}

struct IdsInner {
    state: u64,
    sample_rate: f64,
}

/// Seeded, deterministic source of trace/span identifiers and head-based
/// sampling decisions (SplitMix64 under the hood). The deployment builder
/// reseeds it from the testbed's HMAC-DRBG.
#[derive(Clone)]
pub struct TraceIds {
    inner: Arc<Mutex<IdsInner>>,
}

impl Default for TraceIds {
    fn default() -> TraceIds {
        TraceIds::new(0x9e37_79b9_7f4a_7c15)
    }
}

impl TraceIds {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> TraceIds {
        TraceIds {
            inner: Arc::new(Mutex::new(IdsInner {
                state: seed,
                sample_rate: 1.0,
            })),
        }
    }

    /// Replace the generator state with a new seed.
    pub fn seed(&self, seed: u64) {
        self.inner.lock().unwrap().state = seed;
    }

    /// Set the head-based sampling rate in `[0.0, 1.0]`.
    pub fn set_sample_rate(&self, rate: f64) {
        self.inner.lock().unwrap().sample_rate = rate.clamp(0.0, 1.0);
    }

    /// The configured head-based sampling rate.
    pub fn sample_rate(&self) -> f64 {
        self.inner.lock().unwrap().sample_rate
    }

    fn next(inner: &mut IdsInner) -> u64 {
        // SplitMix64: deterministic given the seed, well distributed.
        inner.state = inner.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = inner.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draw a non-zero 64-bit span id.
    pub fn next_span_id(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        loop {
            let id = Self::next(&mut inner);
            if id != 0 {
                return id;
            }
        }
    }

    /// Draw a non-zero 128-bit trace id.
    pub fn next_trace_id(&self) -> u128 {
        let mut inner = self.inner.lock().unwrap();
        loop {
            let hi = Self::next(&mut inner);
            let lo = Self::next(&mut inner);
            let id = (u128::from(hi) << 64) | u128::from(lo);
            if id != 0 {
                return id;
            }
        }
    }

    /// Make the head-based sampling decision for a new root.
    pub fn decide_sampled(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let rate = inner.sample_rate;
        if rate >= 1.0 {
            return true;
        }
        if rate <= 0.0 {
            return false;
        }
        let draw = Self::next(&mut inner);
        (draw as f64 / u64::MAX as f64) < rate
    }
}

/// A timestamped note attached to a span: faults, retries, breaker
/// transitions, crashes and recoveries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Simulated unix seconds when the event happened.
    pub time: u64,
    /// Short machine-readable kind, e.g. `fault`, `retry`, `breaker`,
    /// `crash`, `recovery`.
    pub kind: String,
    /// Human-readable detail naming the site or cause.
    pub detail: String,
}

/// A finished span as stored by the collector.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Trace the span belongs to.
    pub trace_id: u128,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id within the same trace, `None` for roots.
    pub parent_id: Option<u64>,
    /// Logical service that produced the span (`vm`, `ias`, `agent`, ...).
    pub service: String,
    /// Operation name.
    pub name: String,
    /// Simulated unix seconds when the span opened.
    pub started_at: u64,
    /// Microseconds since the collector epoch when the span opened; the
    /// waterfall's x axis.
    pub offset_micros: u64,
    /// Wall-clock duration in microseconds.
    pub duration_micros: u64,
    /// Events attached to this span.
    pub annotations: Vec<Annotation>,
}

/// One row of the `GET /vm/traces` index.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Trace identifier.
    pub trace_id: u128,
    /// Name of the earliest span in the trace (normally the root).
    pub root_name: String,
    /// Number of spans retained for the trace.
    pub span_count: usize,
    /// Total annotations across the trace's spans.
    pub annotation_count: usize,
    /// Simulated unix seconds of the earliest span.
    pub started_at: u64,
    /// End-to-end duration: latest end minus earliest start, microseconds.
    pub duration_micros: u64,
}

struct CollectorInner {
    finished: VecDeque<TraceSpan>,
    capacity: usize,
    dropped: u64,
    /// Annotations for spans that have not finished yet, merged at finish.
    pending: HashMap<u64, Vec<Annotation>>,
    /// The trace context active when the manager last simulated a crash;
    /// consumed by recovery to stitch the recovery generation onto the
    /// crashed trace across manager incarnations.
    crash_scope: Option<TraceContext>,
}

/// Bounded assembly point for finished trace spans.
///
/// Spans land in a ring buffer (`capacity`, evictions counted in
/// [`TraceCollector::dropped`]) and are grouped per trace id on read.
/// Annotations may arrive before or after their span finishes; both orders
/// merge onto the stored span.
#[derive(Clone)]
pub struct TraceCollector {
    inner: Arc<Mutex<CollectorInner>>,
    epoch: Instant,
}

impl Default for TraceCollector {
    fn default() -> TraceCollector {
        TraceCollector::new(DEFAULT_COLLECTOR_CAPACITY)
    }
}

impl TraceCollector {
    /// Create a collector retaining at most `capacity` finished spans.
    pub fn new(capacity: usize) -> TraceCollector {
        TraceCollector {
            inner: Arc::new(Mutex::new(CollectorInner {
                finished: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
                pending: HashMap::new(),
                crash_scope: None,
            })),
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the collector was created; used as the
    /// common x axis for span offsets.
    pub fn offset_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Store a finished span, merging any annotations that arrived early.
    pub fn record(&self, mut span: TraceSpan) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(mut early) = inner.pending.remove(&span.span_id) {
            span.annotations.append(&mut early);
        }
        if inner.finished.len() >= inner.capacity {
            inner.finished.pop_front();
            inner.dropped += 1;
        }
        inner.finished.push_back(span);
    }

    /// Attach an annotation to a span by id. If the span has already
    /// finished the annotation is merged in place; otherwise it is held
    /// until the span finishes.
    pub fn annotate(&self, span_id: u64, time: u64, kind: &str, detail: &str) {
        let annotation = Annotation {
            time,
            kind: kind.to_string(),
            detail: detail.to_string(),
        };
        let mut inner = self.inner.lock().unwrap();
        if let Some(span) = inner
            .finished
            .iter_mut()
            .rev()
            .find(|span| span.span_id == span_id)
        {
            span.annotations.push(annotation);
            return;
        }
        inner.pending.entry(span_id).or_default().push(annotation);
    }

    /// Number of spans evicted from the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Number of finished spans currently retained.
    pub fn span_count(&self) -> usize {
        self.inner.lock().unwrap().finished.len()
    }

    /// Remember the context that was active when a crash fired.
    pub fn set_crash_scope(&self, ctx: TraceContext) {
        if ctx.is_recording() {
            self.inner.lock().unwrap().crash_scope = Some(ctx);
        }
    }

    /// Consume the crash scope, if any — recovery calls this to annotate
    /// the crashed trace with the new generation.
    pub fn take_crash_scope(&self) -> Option<TraceContext> {
        self.inner.lock().unwrap().crash_scope.take()
    }

    /// All spans of one trace, ordered by start offset.
    pub fn trace(&self, trace_id: u128) -> Vec<TraceSpan> {
        let inner = self.inner.lock().unwrap();
        let mut spans: Vec<TraceSpan> = inner
            .finished
            .iter()
            .filter(|span| span.trace_id == trace_id)
            .cloned()
            .collect();
        spans.sort_by_key(|span| (span.offset_micros, span.span_id));
        spans
    }

    /// Index of retained traces in first-seen order.
    pub fn summaries(&self) -> Vec<TraceSummary> {
        let inner = self.inner.lock().unwrap();
        let mut order: Vec<u128> = Vec::new();
        let mut grouped: BTreeMap<u128, Vec<&TraceSpan>> = BTreeMap::new();
        for span in &inner.finished {
            if !grouped.contains_key(&span.trace_id) {
                order.push(span.trace_id);
            }
            grouped.entry(span.trace_id).or_default().push(span);
        }
        order
            .into_iter()
            .map(|trace_id| {
                let spans = &grouped[&trace_id];
                let first = spans
                    .iter()
                    .min_by_key(|span| span.offset_micros)
                    .expect("non-empty trace group");
                let start = first.offset_micros;
                let end = spans
                    .iter()
                    .map(|span| span.offset_micros + span.duration_micros)
                    .max()
                    .unwrap_or(start);
                TraceSummary {
                    trace_id,
                    root_name: first.name.clone(),
                    span_count: spans.len(),
                    annotation_count: spans.iter().map(|span| span.annotations.len()).sum(),
                    started_at: first.started_at,
                    duration_micros: end.saturating_sub(start),
                }
            })
            .collect()
    }

    /// Render a trace as an indented ASCII waterfall, or `None` when the
    /// trace has no retained spans.
    pub fn render_waterfall(&self, trace_id: u128) -> Option<String> {
        let spans = self.trace(trace_id);
        if spans.is_empty() {
            return None;
        }
        let start = spans.iter().map(|s| s.offset_micros).min().unwrap_or(0);
        let end = spans
            .iter()
            .map(|s| s.offset_micros + s.duration_micros)
            .max()
            .unwrap_or(start);
        let window = (end - start).max(1);
        const BAR: usize = 32;

        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
        let mut children: HashMap<u64, Vec<&TraceSpan>> = HashMap::new();
        let mut roots: Vec<&TraceSpan> = Vec::new();
        for span in &spans {
            match span.parent_id {
                Some(parent) if ids.contains(&parent) => {
                    children.entry(parent).or_default().push(span)
                }
                _ => roots.push(span),
            }
        }

        let label_width = spans
            .iter()
            .map(|s| s.name.len() + s.service.len() + 3)
            .max()
            .unwrap_or(16)
            + 8;
        let mut out = format!("trace {trace_id:032x} ({} spans)\n", spans.len());
        let mut stack: Vec<(&TraceSpan, usize)> =
            roots.into_iter().rev().map(|s| (s, 0)).collect();
        while let Some((span, depth)) = stack.pop() {
            let from = ((span.offset_micros - start) as usize * BAR) / window as usize;
            let len = ((span.duration_micros as usize * BAR) / window as usize).max(1);
            let to = (from + len).min(BAR);
            let mut bar = String::with_capacity(BAR);
            for i in 0..BAR {
                bar.push(if i >= from && i < to { '#' } else { '.' });
            }
            let label = format!("{}{} [{}]", "  ".repeat(depth), span.name, span.service);
            out.push_str(&format!(
                "{label:<label_width$} |{bar}| {:>8} us\n",
                span.duration_micros
            ));
            for annotation in &span.annotations {
                out.push_str(&format!(
                    "{}  ! {}: {}\n",
                    "  ".repeat(depth + 1),
                    annotation.kind,
                    annotation.detail
                ));
            }
            if let Some(kids) = children.get(&span.span_id) {
                for kid in kids.iter().rev() {
                    stack.push((kid, depth + 1));
                }
            }
        }
        Some(out)
    }

    /// Render a trace as a Chrome `trace_event` JSON array (load it at
    /// `chrome://tracing` or in Perfetto), or `None` when the trace has no
    /// retained spans.
    pub fn render_chrome(&self, trace_id: u128) -> Option<String> {
        let spans = self.trace(trace_id);
        if spans.is_empty() {
            return None;
        }
        let mut out = String::from("[");
        for (i, span) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":1,\"args\":{{\"span_id\":\"{:016x}\"",
                json_escape(&span.name),
                json_escape(&span.service),
                span.offset_micros,
                span.duration_micros.max(1),
                span.span_id,
            ));
            if let Some(parent) = span.parent_id {
                out.push_str(&format!(",\"parent_id\":\"{parent:016x}\""));
            }
            if !span.annotations.is_empty() {
                out.push_str(",\"annotations\":[");
                for (j, annotation) in span.annotations.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\"{}: {}\"",
                        json_escape(&annotation.kind),
                        json_escape(&annotation.detail)
                    ));
                }
                out.push(']');
            }
            out.push_str("}}");
        }
        out.push(']');
        Some(out)
    }
}

fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u128, span_id: u64, parent: Option<u64>, name: &str) -> TraceSpan {
        TraceSpan {
            trace_id,
            span_id,
            parent_id: parent,
            service: "vm".into(),
            name: name.into(),
            started_at: 1_600_000_000,
            offset_micros: span_id * 10,
            duration_micros: 100,
            annotations: Vec::new(),
        }
    }

    #[test]
    fn traceparent_roundtrip() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef,
            span_id: 0xfeed_face_dead_beef,
            parent_id: Some(7),
            sampled: true,
        };
        let header = ctx.traceparent();
        assert_eq!(
            header,
            "00-0123456789abcdef0123456789abcdef-feedfacedeadbeef-01"
        );
        let parsed = TraceContext::parse(&header).expect("parses");
        assert_eq!(parsed.trace_id, ctx.trace_id);
        assert_eq!(parsed.span_id, ctx.span_id);
        assert_eq!(parsed.parent_id, None);
        assert!(parsed.sampled);
    }

    #[test]
    fn traceparent_rejects_malformed() {
        assert!(TraceContext::parse("").is_none());
        assert!(TraceContext::parse("00-short-feedfacedeadbeef-01").is_none());
        assert!(TraceContext::parse(
            "ff-0123456789abcdef0123456789abcdef-feedfacedeadbeef-01"
        )
        .is_none());
        // all-zero trace id is invalid per the W3C spec
        assert!(TraceContext::parse(
            "00-00000000000000000000000000000000-feedfacedeadbeef-01"
        )
        .is_none());
        let unsampled =
            TraceContext::parse("00-0123456789abcdef0123456789abcdef-feedfacedeadbeef-00")
                .expect("parses");
        assert!(!unsampled.sampled);
    }

    #[test]
    fn ids_are_deterministic_for_a_seed() {
        let a = TraceIds::new(42);
        let b = TraceIds::new(42);
        assert_eq!(a.next_trace_id(), b.next_trace_id());
        assert_eq!(a.next_span_id(), b.next_span_id());
        let c = TraceIds::new(43);
        assert_ne!(TraceIds::new(42).next_trace_id(), c.next_trace_id());
    }

    #[test]
    fn sampling_rates_bound_decisions() {
        let always = TraceIds::new(1);
        always.set_sample_rate(1.0);
        assert!((0..100).all(|_| always.decide_sampled()));
        let never = TraceIds::new(1);
        never.set_sample_rate(0.0);
        assert!((0..100).all(|_| !never.decide_sampled()));
        let half = TraceIds::new(1);
        half.set_sample_rate(0.5);
        let hits = (0..1000).filter(|_| half.decide_sampled()).count();
        assert!(hits > 300 && hits < 700, "got {hits}/1000 at rate 0.5");
    }

    #[test]
    fn collector_ring_buffer_drops_and_counts() {
        let collector = TraceCollector::new(8);
        for i in 1..=20u64 {
            collector.record(span(1, i, None, "s"));
        }
        assert_eq!(collector.span_count(), 8);
        assert_eq!(collector.dropped(), 12);
    }

    #[test]
    fn annotations_merge_before_and_after_finish() {
        let collector = TraceCollector::new(16);
        collector.annotate(5, 10, "fault", "early");
        collector.record(span(1, 5, None, "work"));
        collector.annotate(5, 20, "retry", "late");
        let spans = collector.trace(1);
        assert_eq!(spans.len(), 1);
        let kinds: Vec<&str> = spans[0].annotations.iter().map(|a| a.kind.as_str()).collect();
        assert_eq!(kinds, vec!["fault", "retry"]);
    }

    #[test]
    fn waterfall_and_chrome_render_tree() {
        let collector = TraceCollector::new(16);
        collector.record(span(9, 1, None, "root"));
        collector.record(span(9, 2, Some(1), "child"));
        collector.annotate(2, 5, "crash", "enrollment.commit");
        let waterfall = collector.render_waterfall(9).expect("renders");
        assert!(waterfall.contains("root [vm]"));
        assert!(waterfall.contains("  child [vm]"));
        assert!(waterfall.contains("crash: enrollment.commit"));
        let chrome = collector.render_chrome(9).expect("renders");
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
        assert!(chrome.contains("\"name\":\"child\""));
        assert!(chrome.contains("\"parent_id\":\"0000000000000001\""));
        assert!(collector.render_waterfall(1234).is_none());
    }

    #[test]
    fn summaries_group_by_trace() {
        let collector = TraceCollector::new(16);
        collector.record(span(1, 1, None, "a"));
        collector.record(span(1, 2, Some(1), "b"));
        collector.record(span(2, 3, None, "c"));
        let summaries = collector.summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].trace_id, 1);
        assert_eq!(summaries[0].span_count, 2);
        assert_eq!(summaries[1].root_name, "c");
    }

    #[test]
    fn crash_scope_is_consumed_once() {
        let collector = TraceCollector::new(4);
        let ctx = TraceContext {
            trace_id: 7,
            span_id: 8,
            parent_id: None,
            sampled: true,
        };
        collector.set_crash_scope(ctx.clone());
        assert_eq!(collector.take_crash_scope(), Some(ctx));
        assert_eq!(collector.take_crash_scope(), None);
        // non-recording contexts are ignored
        collector.set_crash_scope(TraceContext::disabled());
        assert_eq!(collector.take_crash_scope(), None);
    }
}
