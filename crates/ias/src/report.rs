//! Attestation verification reports (AVRs).

use crate::IasError;
use vnfguard_crypto::ed25519::{SigningKey, VerifyingKey};
use vnfguard_encoding::{TlvReader, TlvWriter};
use vnfguard_sgx::report::ReportBody;

const TAG_BODY: u8 = 0x80;
const TAG_ID: u8 = 0x81;
const TAG_TIMESTAMP: u8 = 0x82;
const TAG_STATUS: u8 = 0x83;
const TAG_NONCE: u8 = 0x84;
const TAG_QUOTE_BODY: u8 = 0x85;
const TAG_ADVISORY: u8 = 0x86;
const TAG_SIGNATURE: u8 = 0x87;

/// Verification verdicts, matching the real IAS status vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuoteStatus {
    /// The quote is valid and the platform TCB is current.
    Ok,
    /// The EPID signature over the quote is invalid.
    SignatureInvalid,
    /// The platform's EPID group has been revoked entirely.
    GroupRevoked,
    /// The platform's member key appears on the group's SigRL.
    SignatureRevoked,
    /// The attestation key itself is revoked.
    KeyRevoked,
    /// The quote is valid but the platform TCB is outdated.
    GroupOutOfDate,
    /// Valid quote, but additional platform configuration is required.
    ConfigurationNeeded,
    /// The EPID group is not known to the service.
    UnknownGroup,
    /// The quote format version is unsupported.
    VersionUnsupported,
}

impl QuoteStatus {
    /// Statuses that a strict appraisal policy accepts.
    pub fn is_ok_strict(self) -> bool {
        self == QuoteStatus::Ok
    }

    /// Statuses a lenient policy may accept (TCB warnings allowed).
    pub fn is_ok_lenient(self) -> bool {
        matches!(
            self,
            QuoteStatus::Ok | QuoteStatus::GroupOutOfDate | QuoteStatus::ConfigurationNeeded
        )
    }

    fn to_u8(self) -> u8 {
        match self {
            QuoteStatus::Ok => 0,
            QuoteStatus::SignatureInvalid => 1,
            QuoteStatus::GroupRevoked => 2,
            QuoteStatus::SignatureRevoked => 3,
            QuoteStatus::KeyRevoked => 4,
            QuoteStatus::GroupOutOfDate => 5,
            QuoteStatus::ConfigurationNeeded => 6,
            QuoteStatus::UnknownGroup => 7,
            QuoteStatus::VersionUnsupported => 8,
        }
    }

    fn from_u8(v: u8) -> Result<QuoteStatus, IasError> {
        Ok(match v {
            0 => QuoteStatus::Ok,
            1 => QuoteStatus::SignatureInvalid,
            2 => QuoteStatus::GroupRevoked,
            3 => QuoteStatus::SignatureRevoked,
            4 => QuoteStatus::KeyRevoked,
            5 => QuoteStatus::GroupOutOfDate,
            6 => QuoteStatus::ConfigurationNeeded,
            7 => QuoteStatus::UnknownGroup,
            8 => QuoteStatus::VersionUnsupported,
            other => return Err(IasError::Encoding(format!("bad status {other}"))),
        })
    }
}

impl std::fmt::Display for QuoteStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QuoteStatus::Ok => "OK",
            QuoteStatus::SignatureInvalid => "SIGNATURE_INVALID",
            QuoteStatus::GroupRevoked => "GROUP_REVOKED",
            QuoteStatus::SignatureRevoked => "SIGRL_VERSION_MISMATCH", // historical
            QuoteStatus::KeyRevoked => "KEY_REVOKED",
            QuoteStatus::GroupOutOfDate => "GROUP_OUT_OF_DATE",
            QuoteStatus::ConfigurationNeeded => "CONFIGURATION_NEEDED",
            QuoteStatus::UnknownGroup => "EPID_GROUP_UNKNOWN",
            QuoteStatus::VersionUnsupported => "QUOTE_VERSION_UNSUPPORTED",
        };
        f.write_str(s)
    }
}

/// A signed attestation verification report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// Monotonic report id assigned by the service.
    pub id: u64,
    /// Service-side timestamp (unix seconds).
    pub timestamp: u64,
    pub status: QuoteStatus,
    /// Echo of the verifier's nonce, binding the report to one exchange.
    pub nonce: Vec<u8>,
    /// The quoted enclave identity (present when the quote parsed).
    pub quote_body: Option<ReportBody>,
    /// Security advisories applying to the platform (e.g. on GROUP_OUT_OF_DATE).
    pub advisories: Vec<String>,
    signature: Vec<u8>,
}

impl AttestationReport {
    fn body_bytes(
        id: u64,
        timestamp: u64,
        status: QuoteStatus,
        nonce: &[u8],
        quote_body: &Option<ReportBody>,
        advisories: &[String],
    ) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.u64(TAG_ID, id)
            .u64(TAG_TIMESTAMP, timestamp)
            .u8(TAG_STATUS, status.to_u8())
            .bytes(TAG_NONCE, nonce);
        if let Some(body) = quote_body {
            w.bytes(TAG_QUOTE_BODY, &body.encode());
        }
        for advisory in advisories {
            w.string(TAG_ADVISORY, advisory);
        }
        w.finish()
    }

    /// Build and sign a report. Public so alternative [`crate::QuoteVerifier`]
    /// implementations (remote clients, test doubles) can synthesize
    /// fail-closed reports; relying parties only trust reports whose
    /// signature verifies under the expected IAS key.
    pub fn create(
        id: u64,
        timestamp: u64,
        status: QuoteStatus,
        nonce: &[u8],
        quote_body: Option<ReportBody>,
        advisories: Vec<String>,
        key: &SigningKey,
    ) -> AttestationReport {
        let body = Self::body_bytes(id, timestamp, status, nonce, &quote_body, &advisories);
        AttestationReport {
            id,
            timestamp,
            status,
            nonce: nonce.to_vec(),
            quote_body,
            advisories,
            signature: key.sign(&body).to_vec(),
        }
    }

    /// Verify the service signature over this report.
    pub fn verify(&self, ias_key: &VerifyingKey) -> Result<(), IasError> {
        let body = Self::body_bytes(
            self.id,
            self.timestamp,
            self.status,
            &self.nonce,
            &self.quote_body,
            &self.advisories,
        );
        ias_key
            .verify(&body, &self.signature)
            .map_err(|_| IasError::BadReportSignature)
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        let body = Self::body_bytes(
            self.id,
            self.timestamp,
            self.status,
            &self.nonce,
            &self.quote_body,
            &self.advisories,
        );
        w.bytes(TAG_BODY, &body).bytes(TAG_SIGNATURE, &self.signature);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<AttestationReport, IasError> {
        let mut r = TlvReader::new(bytes);
        let body = r.expect(TAG_BODY)?;
        let signature = r.expect(TAG_SIGNATURE)?.to_vec();
        r.finish()?;

        let mut br = TlvReader::new(body);
        let id = br.expect_u64(TAG_ID)?;
        let timestamp = br.expect_u64(TAG_TIMESTAMP)?;
        let status = QuoteStatus::from_u8(br.expect_u8(TAG_STATUS)?)?;
        let nonce = br.expect(TAG_NONCE)?.to_vec();
        let mut quote_body = None;
        let mut advisories = Vec::new();
        while !br.is_empty() {
            let (tag, value) = br.next()?;
            match tag {
                TAG_QUOTE_BODY => {
                    quote_body = Some(
                        ReportBody::decode(value)
                            .map_err(|e| IasError::Encoding(e.to_string()))?,
                    );
                }
                TAG_ADVISORY => {
                    advisories.push(
                        String::from_utf8(value.to_vec())
                            .map_err(|_| IasError::Encoding("bad advisory utf-8".into()))?,
                    );
                }
                other => return Err(IasError::Encoding(format!("unexpected tag {other:#x}"))),
            }
        }
        Ok(AttestationReport {
            id,
            timestamp,
            status,
            nonce,
            quote_body,
            advisories,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_sgx::measurement::Measurement;

    fn sample_body() -> ReportBody {
        ReportBody {
            cpu_svn: [1; 16],
            attributes: 1,
            mrenclave: Measurement([2; 32]),
            mrsigner: Measurement([3; 32]),
            isv_prod_id: 4,
            isv_svn: 5,
            report_data: [6; 64],
        }
    }

    #[test]
    fn create_verify_roundtrip() {
        let key = SigningKey::from_seed(&[1; 32]);
        let report = AttestationReport::create(
            1,
            1000,
            QuoteStatus::Ok,
            b"nonce",
            Some(sample_body()),
            vec!["INTEL-SA-00123".into()],
            &key,
        );
        report.verify(&key.public_key()).unwrap();
        let decoded = AttestationReport::decode(&report.encode()).unwrap();
        assert_eq!(decoded, report);
        decoded.verify(&key.public_key()).unwrap();
    }

    #[test]
    fn report_without_quote_body() {
        let key = SigningKey::from_seed(&[1; 32]);
        let report = AttestationReport::create(
            2,
            1000,
            QuoteStatus::SignatureInvalid,
            b"n",
            None,
            vec![],
            &key,
        );
        let decoded = AttestationReport::decode(&report.encode()).unwrap();
        assert_eq!(decoded.quote_body, None);
        decoded.verify(&key.public_key()).unwrap();
    }

    #[test]
    fn tamper_detected() {
        let key = SigningKey::from_seed(&[1; 32]);
        let report = AttestationReport::create(
            1,
            1000,
            QuoteStatus::Ok,
            b"nonce",
            Some(sample_body()),
            vec![],
            &key,
        );
        let mut bad = report.clone();
        bad.status = QuoteStatus::GroupRevoked;
        assert!(bad.verify(&key.public_key()).is_err());
        let mut bad = report.clone();
        bad.nonce = b"other".to_vec();
        assert!(bad.verify(&key.public_key()).is_err());
        let mut bad = report;
        bad.advisories.push("FAKE".into());
        assert!(bad.verify(&key.public_key()).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let key = SigningKey::from_seed(&[1; 32]);
        let other = SigningKey::from_seed(&[2; 32]);
        let report =
            AttestationReport::create(1, 0, QuoteStatus::Ok, b"", None, vec![], &key);
        assert_eq!(
            report.verify(&other.public_key()),
            Err(IasError::BadReportSignature)
        );
    }

    #[test]
    fn status_policies() {
        assert!(QuoteStatus::Ok.is_ok_strict());
        assert!(!QuoteStatus::GroupOutOfDate.is_ok_strict());
        assert!(QuoteStatus::GroupOutOfDate.is_ok_lenient());
        assert!(!QuoteStatus::GroupRevoked.is_ok_lenient());
        assert!(!QuoteStatus::SignatureRevoked.is_ok_lenient());
    }

    #[test]
    fn status_u8_roundtrip() {
        for v in 0..=8u8 {
            let s = QuoteStatus::from_u8(v).unwrap();
            assert_eq!(s.to_u8(), v);
        }
        assert!(QuoteStatus::from_u8(99).is_err());
    }
}
