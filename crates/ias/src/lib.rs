//! # vnfguard-ias
//!
//! A protocol-faithful simulation of the Intel Attestation Service (IAS).
//!
//! The paper's Verification Manager "contacts the Intel Attestation Service
//! (IAS) … to both verify the validity of the enclave key against the
//! revocation list and the validity of the integrity quote" (§2, steps 2
//! and 4 of Figure 1). This crate provides that service:
//!
//! - an **EPID group registry** with per-group status (OK / revoked /
//!   out-of-date TCB) and member attestation keys;
//! - **signature revocation lists** (SigRL) per group;
//! - **attestation verification reports** signed by the service's report
//!   key, carrying the same status vocabulary real IAS responses use.
//!
//! The substitution from real IAS is documented in DESIGN.md §2: the
//! verifier-side logic in `vnfguard-core` consumes only the signed report,
//! so it exercises exactly the code path it would against Intel's endpoint.

pub mod report;
pub mod service;

pub use report::{AttestationReport, QuoteStatus};
pub use service::{AttestationService, GroupStatus};

/// Reachability of a quote-verification backend, as judged by the handle
/// itself (an in-process service is always available; a remote client may
/// report `Unavailable` while its circuit breaker is open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    Available,
    Unavailable,
}

/// Anything that can verify quotes on behalf of a relying party — the local
/// [`AttestationService`] instance, or a client handle to a remote one.
/// The Verification Manager is written against this trait, so the same
/// appraisal logic runs whether the IAS is in-process or across the fabric.
pub trait QuoteVerifier {
    /// Submit an encoded quote with a nonce; always returns a signed report.
    fn verify_quote(&mut self, quote_bytes: &[u8], nonce: &[u8]) -> AttestationReport;

    /// The report-signing public key relying parties check reports against.
    fn report_signing_key(&self) -> vnfguard_crypto::ed25519::VerifyingKey;

    /// Whether the backend is currently worth calling. Callers may use an
    /// `Unavailable` answer to fall back to a degraded-verdict policy
    /// instead of issuing a request that is known to fail.
    fn availability(&self) -> Availability {
        Availability::Available
    }

    /// Scope subsequent [`QuoteVerifier::verify_quote`] calls to a
    /// distributed-trace context (propagated on the wire by remote
    /// backends). The default implementation ignores it; in-process
    /// verifiers have no wire hop to annotate.
    fn set_trace_context(&mut self, _ctx: Option<vnfguard_telemetry::TraceContext>) {}
}

impl<T: QuoteVerifier + ?Sized> QuoteVerifier for &mut T {
    fn verify_quote(&mut self, quote_bytes: &[u8], nonce: &[u8]) -> AttestationReport {
        (**self).verify_quote(quote_bytes, nonce)
    }

    fn report_signing_key(&self) -> vnfguard_crypto::ed25519::VerifyingKey {
        (**self).report_signing_key()
    }

    fn availability(&self) -> Availability {
        (**self).availability()
    }

    fn set_trace_context(&mut self, ctx: Option<vnfguard_telemetry::TraceContext>) {
        (**self).set_trace_context(ctx)
    }
}

impl QuoteVerifier for AttestationService {
    fn verify_quote(&mut self, quote_bytes: &[u8], nonce: &[u8]) -> AttestationReport {
        AttestationService::verify_quote(self, quote_bytes, nonce)
    }

    fn report_signing_key(&self) -> vnfguard_crypto::ed25519::VerifyingKey {
        AttestationService::report_signing_key(self)
    }
}

/// Errors from the attestation service or report handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IasError {
    /// Structural problem with a submitted quote or report.
    Encoding(String),
    /// The report signature did not verify against the IAS key.
    BadReportSignature,
}

impl std::fmt::Display for IasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IasError::Encoding(msg) => write!(f, "encoding: {msg}"),
            IasError::BadReportSignature => write!(f, "IAS report signature invalid"),
        }
    }
}

impl std::error::Error for IasError {}

impl From<vnfguard_encoding::EncodingError> for IasError {
    fn from(e: vnfguard_encoding::EncodingError) -> IasError {
        IasError::Encoding(e.to_string())
    }
}
