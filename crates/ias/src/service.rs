//! The attestation service proper: group registry, SigRLs, TCB policy and
//! quote verification.

use crate::report::{AttestationReport, QuoteStatus};
use std::collections::{BTreeMap, BTreeSet};
use vnfguard_crypto::ed25519::{SigningKey, VerifyingKey};
use vnfguard_crypto::hkdf;
use vnfguard_sgx::quote::{Quote, QUOTE_VERSION};
use vnfguard_telemetry::{Counter, Telemetry};

/// Administrative status of an EPID group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupStatus {
    /// Group is in good standing.
    Ok,
    /// Entire group revoked (e.g. class-break of the platform model).
    Revoked,
    /// Group TCB is below the current baseline: quotes verify but are
    /// reported as `GROUP_OUT_OF_DATE` with advisories.
    OutOfDate,
}

#[derive(Debug)]
struct Group {
    status: GroupStatus,
    /// Registered attestation member keys, by pseudonymous member id.
    members: BTreeMap<[u8; 32], VerifyingKey>,
    /// Signature revocation list: revoked member ids.
    sigrl: BTreeSet<[u8; 32]>,
    /// Minimum quoting-enclave SVN considered current.
    min_qe_svn: u16,
    advisories: Vec<String>,
}

/// The simulated Intel Attestation Service.
///
/// Holds the EPID group secrets (here: member public keys), evaluates
/// submitted quotes and returns signed [`AttestationReport`]s.
pub struct AttestationService {
    report_key: SigningKey,
    groups: BTreeMap<u32, Group>,
    next_report_id: u64,
    clock: u64,
    requests_served: u64,
    requests_counter: Option<Counter>,
    non_ok_counter: Option<Counter>,
    telemetry: Option<Telemetry>,
}

impl AttestationService {
    /// Create a service with a deterministic report-signing key.
    pub fn new(seed: &[u8]) -> AttestationService {
        let key_seed: [u8; 32] = hkdf::derive(b"ias", seed, b"report signing key", 32)
            .try_into()
            .expect("32");
        AttestationService {
            report_key: SigningKey::from_seed(&key_seed),
            groups: BTreeMap::new(),
            next_report_id: 1,
            clock: 1_500_000_000,
            requests_served: 0,
            requests_counter: None,
            non_ok_counter: None,
            telemetry: None,
        }
    }

    /// Attach telemetry: verification requests and non-OK verdicts land in
    /// `vnfguard_ias_*` counters, and the bundle is kept so the REST front
    /// end (`core::remote::serve_ias`) can record server-side trace spans.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.requests_counter = Some(telemetry.counter("vnfguard_ias_requests_total"));
        self.non_ok_counter = Some(telemetry.counter("vnfguard_ias_non_ok_verdicts_total"));
        self.telemetry = Some(telemetry.clone());
    }

    /// The telemetry bundle attached via [`AttestationService::set_telemetry`].
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// The public key relying parties use to verify report signatures —
    /// the analog of Intel's published report-signing certificate.
    pub fn report_signing_key(&self) -> VerifyingKey {
        self.report_key.public_key()
    }

    /// Advance the service clock (timestamps in reports).
    pub fn set_clock(&mut self, unix_secs: u64) {
        self.clock = unix_secs;
    }

    /// The service clock's current position (unix seconds).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Register an EPID group.
    pub fn register_group(&mut self, group_id: u32, min_qe_svn: u16) {
        self.groups.entry(group_id).or_insert(Group {
            status: GroupStatus::Ok,
            members: BTreeMap::new(),
            sigrl: BTreeSet::new(),
            min_qe_svn,
            advisories: Vec::new(),
        });
    }

    /// Register a platform's attestation key as a member of `group_id`
    /// (the provisioning step real platforms perform against Intel).
    pub fn register_member(&mut self, group_id: u32, member_key: VerifyingKey) {
        self.register_group(group_id, 0);
        let member_id = vnfguard_crypto::sha2::sha256(member_key.as_bytes());
        self.groups
            .get_mut(&group_id)
            .expect("registered above")
            .members
            .insert(member_id, member_key);
    }

    /// Put a member on the group's signature revocation list.
    pub fn revoke_member(&mut self, group_id: u32, member_id: [u8; 32]) {
        if let Some(group) = self.groups.get_mut(&group_id) {
            group.sigrl.insert(member_id);
        }
    }

    /// Change a group's administrative status.
    pub fn set_group_status(&mut self, group_id: u32, status: GroupStatus) {
        if let Some(group) = self.groups.get_mut(&group_id) {
            group.status = status;
        }
    }

    /// Attach a security advisory to a group (reported on out-of-date TCB).
    pub fn add_advisory(&mut self, group_id: u32, advisory: &str) {
        if let Some(group) = self.groups.get_mut(&group_id) {
            group.advisories.push(advisory.to_string());
        }
    }

    /// Raise the TCB baseline: quotes from QEs below `min_qe_svn` will be
    /// reported `GROUP_OUT_OF_DATE`.
    pub fn set_tcb_baseline(&mut self, group_id: u32, min_qe_svn: u16) {
        if let Some(group) = self.groups.get_mut(&group_id) {
            group.min_qe_svn = min_qe_svn;
        }
    }

    /// Current SigRL size for a group (0 if unknown).
    pub fn sigrl_len(&self, group_id: u32) -> usize {
        self.groups.get(&group_id).map_or(0, |g| g.sigrl.len())
    }

    /// Total verification requests served (for E1/E2 accounting).
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Verify an encoded quote and return a signed verification report.
    ///
    /// This is the `/attestation/v4/report`-style endpoint: it never fails
    /// outright — malformed or invalid quotes yield a signed report with the
    /// corresponding non-OK status, exactly as the paper's Verification
    /// Manager expects to consume.
    pub fn verify_quote(&mut self, quote_bytes: &[u8], nonce: &[u8]) -> AttestationReport {
        self.requests_served += 1;
        if let Some(counter) = &self.requests_counter {
            counter.inc();
        }
        let id = self.next_report_id;
        self.next_report_id += 1;

        let (status, quote_body, advisories) = self.evaluate(quote_bytes);
        if status != QuoteStatus::Ok {
            if let Some(counter) = &self.non_ok_counter {
                counter.inc();
            }
        }
        AttestationReport::create(
            id,
            self.clock,
            status,
            nonce,
            quote_body,
            advisories,
            &self.report_key,
        )
    }

    fn evaluate(
        &self,
        quote_bytes: &[u8],
    ) -> (
        QuoteStatus,
        Option<vnfguard_sgx::report::ReportBody>,
        Vec<String>,
    ) {
        let quote = match Quote::decode(quote_bytes) {
            Ok(q) => q,
            Err(_) => return (QuoteStatus::SignatureInvalid, None, Vec::new()),
        };
        if quote.version != QUOTE_VERSION {
            return (
                QuoteStatus::VersionUnsupported,
                Some(quote.report_body),
                Vec::new(),
            );
        }
        let Some(group) = self.groups.get(&quote.epid_group_id) else {
            return (QuoteStatus::UnknownGroup, Some(quote.report_body), Vec::new());
        };
        if group.status == GroupStatus::Revoked {
            return (QuoteStatus::GroupRevoked, Some(quote.report_body), Vec::new());
        }
        // Member key lookup and EPID signature check.
        let Some(member_key) = group.members.get(&quote.member_id) else {
            return (QuoteStatus::KeyRevoked, Some(quote.report_body), Vec::new());
        };
        if quote.verify_with_member_key(member_key).is_err() {
            return (
                QuoteStatus::SignatureInvalid,
                Some(quote.report_body),
                Vec::new(),
            );
        }
        // SigRL check: a revoked member key.
        if group.sigrl.contains(&quote.member_id) {
            return (
                QuoteStatus::SignatureRevoked,
                Some(quote.report_body),
                Vec::new(),
            );
        }
        // TCB currency.
        if group.status == GroupStatus::OutOfDate || quote.qe_svn < group.min_qe_svn {
            return (
                QuoteStatus::GroupOutOfDate,
                Some(quote.report_body),
                group.advisories.clone(),
            );
        }
        (QuoteStatus::Ok, Some(quote.report_body), Vec::new())
    }
}

impl std::fmt::Debug for AttestationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttestationService")
            .field("groups", &self.groups.len())
            .field("requests_served", &self.requests_served)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_sgx::enclave::{EnclaveCode, EnclaveContext};
    use vnfguard_sgx::platform::SgxPlatform;
    use vnfguard_sgx::sigstruct::EnclaveAuthor;
    use vnfguard_sgx::SgxError;

    struct Null(Vec<u8>);
    impl EnclaveCode for Null {
        fn image(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn on_call(
            &mut self,
            _ctx: &mut EnclaveContext,
            op: u16,
            _i: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            Err(SgxError::BadCall(op))
        }
    }

    fn quoted_platform(seed: &[u8]) -> (SgxPlatform, Vec<u8>) {
        let platform = SgxPlatform::new(seed);
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let image = b"attested app";
        let signed = author.sign_enclave(SgxPlatform::measure_image(image, 4096), 1, 1, false);
        let enclave = platform
            .load_enclave(&signed, 4096, Box::new(Null(image.to_vec())))
            .unwrap();
        let qe = platform.quoting_enclave();
        let report = enclave.create_report(&qe.target_info(), [7; 64]);
        let quote = qe.quote(&report, [1; 32]).unwrap();
        (platform, quote.encode())
    }

    fn service_with(platform: &SgxPlatform) -> AttestationService {
        let mut ias = AttestationService::new(b"test ias");
        ias.register_member(platform.epid_group_id(), platform.attestation_public_key());
        ias
    }

    #[test]
    fn valid_quote_reports_ok() {
        let (platform, quote) = quoted_platform(b"p");
        let mut ias = service_with(&platform);
        let report = ias.verify_quote(&quote, b"nonce-1");
        assert_eq!(report.status, QuoteStatus::Ok);
        assert_eq!(report.nonce, b"nonce-1");
        report.verify(&ias.report_signing_key()).unwrap();
        let body = report.quote_body.unwrap();
        assert_eq!(body.report_data, [7; 64]);
        assert_eq!(ias.requests_served(), 1);
    }

    #[test]
    fn unknown_group() {
        let (_platform, quote) = quoted_platform(b"p");
        let mut ias = AttestationService::new(b"empty ias");
        let report = ias.verify_quote(&quote, b"");
        assert_eq!(report.status, QuoteStatus::UnknownGroup);
    }

    #[test]
    fn unknown_member_key_is_key_revoked() {
        let (platform, quote) = quoted_platform(b"p");
        let mut ias = AttestationService::new(b"ias");
        // Group exists but this platform's member key was never registered.
        ias.register_group(platform.epid_group_id(), 0);
        let report = ias.verify_quote(&quote, b"");
        assert_eq!(report.status, QuoteStatus::KeyRevoked);
    }

    #[test]
    fn sigrl_revocation() {
        let (platform, quote) = quoted_platform(b"p");
        let mut ias = service_with(&platform);
        let member_id = platform.quoting_enclave().member_id();
        ias.revoke_member(platform.epid_group_id(), member_id);
        assert_eq!(ias.sigrl_len(platform.epid_group_id()), 1);
        let report = ias.verify_quote(&quote, b"");
        assert_eq!(report.status, QuoteStatus::SignatureRevoked);
    }

    #[test]
    fn group_revocation() {
        let (platform, quote) = quoted_platform(b"p");
        let mut ias = service_with(&platform);
        ias.set_group_status(platform.epid_group_id(), GroupStatus::Revoked);
        let report = ias.verify_quote(&quote, b"");
        assert_eq!(report.status, QuoteStatus::GroupRevoked);
    }

    #[test]
    fn tcb_out_of_date_with_advisories() {
        let (platform, quote) = quoted_platform(b"p");
        let mut ias = service_with(&platform);
        // Default platform qe_svn is 2; raise the baseline above it.
        ias.set_tcb_baseline(platform.epid_group_id(), 5);
        ias.add_advisory(platform.epid_group_id(), "INTEL-SA-00233");
        let report = ias.verify_quote(&quote, b"");
        assert_eq!(report.status, QuoteStatus::GroupOutOfDate);
        assert_eq!(report.advisories, vec!["INTEL-SA-00233".to_string()]);
        assert!(report.status.is_ok_lenient());
        assert!(!report.status.is_ok_strict());
    }

    #[test]
    fn forged_quote_signature_invalid() {
        let (platform, quote) = quoted_platform(b"p");
        let mut ias = service_with(&platform);
        let mut forged = quote.clone();
        // Flip a byte in the signature region (tail of the encoding).
        let last = forged.len() - 1;
        forged[last] ^= 1;
        let report = ias.verify_quote(&forged, b"");
        assert_eq!(report.status, QuoteStatus::SignatureInvalid);
    }

    #[test]
    fn garbage_quote_signature_invalid() {
        let (platform, _quote) = quoted_platform(b"p");
        let mut ias = service_with(&platform);
        let report = ias.verify_quote(b"not a quote", b"n");
        assert_eq!(report.status, QuoteStatus::SignatureInvalid);
        assert_eq!(report.quote_body, None);
        // Even failure reports are signed.
        report.verify(&ias.report_signing_key()).unwrap();
    }

    #[test]
    fn cross_platform_quote_rejected() {
        // Quote from platform B submitted under platform A's registration:
        // same group id but unregistered member key.
        let (platform_a, _) = quoted_platform(b"a");
        let (_platform_b, quote_b) = quoted_platform(b"b");
        let mut ias = service_with(&platform_a);
        let report = ias.verify_quote(&quote_b, b"");
        assert_eq!(report.status, QuoteStatus::KeyRevoked);
    }

    #[test]
    fn telemetry_counts_requests_and_non_ok_verdicts() {
        let (platform, quote) = quoted_platform(b"p");
        let mut ias = service_with(&platform);
        let telemetry = Telemetry::new();
        ias.set_telemetry(&telemetry);
        ias.verify_quote(&quote, b"n1");
        ias.verify_quote(b"garbage", b"n2");
        assert_eq!(
            telemetry.metrics().counter_value("vnfguard_ias_requests_total"),
            Some(2)
        );
        assert_eq!(
            telemetry.metrics().counter_value("vnfguard_ias_non_ok_verdicts_total"),
            Some(1)
        );
    }

    #[test]
    fn report_ids_are_monotonic() {
        let (platform, quote) = quoted_platform(b"p");
        let mut ias = service_with(&platform);
        let r1 = ias.verify_quote(&quote, b"");
        let r2 = ias.verify_quote(&quote, b"");
        assert!(r2.id > r1.id);
    }
}
