//! End-to-end: a credential enclave holds provisioned credentials and runs
//! mutually-authenticated TLS sessions to a trusted-HTTPS controller, with
//! the session keys never leaving the enclave.

use std::sync::Arc;
use vnfguard_controller::{Controller, ControllerConfig, NorthboundClient, SimClock};
use vnfguard_crypto::drbg::HmacDrbg;
use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_net::fabric::Network;
use vnfguard_net::http::Request;
use vnfguard_pki::ca::{CertificateAuthority, IssueProfile};
use vnfguard_pki::cert::{DistinguishedName, Validity};
use vnfguard_pki::TrustStore;
use vnfguard_sgx::platform::SgxPlatform;
use vnfguard_sgx::sigstruct::EnclaveAuthor;
use vnfguard_tls::signer::LocalSigner;
use vnfguard_tls::validate::ClientValidator;
use vnfguard_vnf::credential_enclave::ProvisionBundle;
use vnfguard_vnf::{wrap_credentials, VnfGuard};
use vnfguard_encoding::Json;

struct World {
    network: Network,
    controller: Controller,
    guard: VnfGuard,
    clock: SimClock,
    tap: vnfguard_net::stream::TapHandle,
    key_seed: [u8; 32],
}

const ADDR: &str = "controller:8443";

fn setup() -> World {
    let mut rng = HmacDrbg::new(b"e2e setup");
    let clock = SimClock::at(1_000_000);
    let mut ca = CertificateAuthority::new(
        DistinguishedName::new("verification-manager"),
        Validity::new(0, u64::MAX / 2),
        &mut rng,
    );

    // Controller with trusted HTTPS, CA-based client validation.
    let server_key = SigningKey::from_seed(&[50; 32]);
    let server_cert = ca.issue(
        DistinguishedName::new("controller"),
        server_key.public_key(),
        &IssueProfile::server(),
        clock.now(),
    );
    let server_identity = Arc::new(LocalSigner::new(server_key, server_cert));
    let mut validator_store = TrustStore::new();
    validator_store.add_anchor(ca.certificate().clone()).unwrap();

    let network = Network::new();
    let tap = network.tap(ADDR);
    let controller = Controller::start(
        &network,
        ControllerConfig::trusted_https(
            ADDR,
            server_identity,
            ClientValidator::ca(validator_store),
        )
        .with_clock(clock.clone()),
    )
    .unwrap();

    // VNF credential enclave on an SGX host.
    let platform = SgxPlatform::new(b"container-host-1");
    let author = EnclaveAuthor::from_seed(&[51; 32]);
    let guard = VnfGuard::load(&platform, &network, &author, "vnf-1", 1).unwrap();

    // Provision credentials (the VM generates the key pair — paper step 5).
    let key_seed = [61u8; 32];
    let client_key = SigningKey::from_seed(&key_seed);
    let client_cert = ca.issue(
        DistinguishedName::new("vnf-1"),
        client_key.public_key(),
        &IssueProfile::vnf_client(*guard.mrenclave().as_bytes()),
        clock.now(),
    );
    let bundle = ProvisionBundle {
        key_seed,
        certificate: client_cert,
        ca_certificate: ca.certificate().clone(),
        server_cn: "controller".into(),
        ca_previous: Vec::new(),
    };
    let prov_key = guard.provisioning_key().unwrap();
    let wrapped = wrap_credentials(&mut rng, &prov_key, &bundle);
    guard.provision(&wrapped).unwrap();

    World {
        network,
        controller,
        guard,
        clock,
        tap,
        key_seed,
    }
}

#[test]
fn enclave_session_reaches_controller_with_client_identity() {
    let mut world = setup();
    let session = world
        .guard
        .open_session(ADDR, world.clock.now())
        .expect("in-enclave handshake");

    // Register a switch and push a flow through the enclave session.
    let register = Request::post("/wm/core/switch/register").with_json(
        &Json::object()
            .with("dpid", "00000000000000aa")
            .with("ports", vec![Json::from(1i64), Json::from(2i64)]),
    );
    let response = world.guard.request(session, &register).unwrap();
    assert!(response.status.is_success(), "register: {:?}", response.status);

    let flow = Request::post("/wm/staticflowpusher/json").with_json(
        &Json::object()
            .with("switch", "00000000000000aa")
            .with("name", "from-enclave")
            .with("actions", "output=2"),
    );
    let response = world.guard.request(session, &flow).unwrap();
    assert!(response.status.is_success());

    // Multiple requests on the same session (persistent session keys).
    let audit = world
        .guard
        .request(session, &Request::get("/wm/core/audit/json"))
        .unwrap();
    let doc = audit.parse_json().unwrap();
    let entries = doc.as_array().unwrap();
    // The controller saw the authenticated CN from the client certificate.
    assert!(entries.iter().any(|e| {
        e.get("peer").and_then(Json::as_str) == Some("vnf-1")
            && e.get("action").and_then(Json::as_str) == Some("push_flow")
    }));

    world.guard.close_session(session).unwrap();
    world.controller.stop();
}

#[test]
fn credentials_never_appear_on_the_wire() {
    let mut world = setup();
    let session = world.guard.open_session(ADDR, world.clock.now()).unwrap();
    let response = world
        .guard
        .request(session, &Request::get("/wm/core/health/json"))
        .unwrap();
    assert!(response.status.is_success());

    // The private key seed must not cross the wire, in any direction.
    assert!(!world.tap.contains(&world.key_seed));
    // Nor the derived Ed25519 seed prefix of the signing key... the whole
    // TLS exchange is ciphertext after the hellos; spot-check that known
    // plaintext of the HTTP layer is invisible too.
    assert!(!world.tap.contains(b"health"));
    assert!(world.tap.frame_count() > 0, "tap must have seen traffic");
    world.controller.stop();
}

#[test]
fn anonymous_client_rejected_while_enclave_client_accepted() {
    let mut world = setup();
    // A client without a certificate cannot even complete the handshake.
    let mut anchor = TrustStore::new();
    // (trusting the CA is not enough without a client identity)
    let audit_doc = {
        let session = world.guard.open_session(ADDR, world.clock.now()).unwrap();
        let r = world
            .guard
            .request(session, &Request::get("/wm/core/health/json"))
            .unwrap();
        assert!(r.status.is_success());
        r
    };
    drop(audit_doc);
    let _ = &mut anchor;
    let result = NorthboundClient::connect_tls(
        &world.network,
        ADDR,
        Arc::new(anchor),
        None,
        None,
        world.clock.now(),
    );
    assert!(result.is_err(), "anonymous client must be rejected");
    // The server thread records the failure asynchronously.
    for _ in 0..200 {
        if world.controller.handshake_failures() >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(world.controller.handshake_failures() >= 1);
    world.controller.stop();
}

#[test]
fn sealed_credentials_survive_restart() {
    let world = setup();
    let sealed = world.guard.export_sealed().unwrap();

    // "Restart": a new enclave instance with the same image on the same
    // platform can import the sealed blob.
    let platform = SgxPlatform::new(b"container-host-1");
    let author = EnclaveAuthor::from_seed(&[51; 32]);
    let restarted = VnfGuard::load(&platform, &world.network, &author, "vnf-1", 1).unwrap();
    assert!(!restarted.status().unwrap().provisioned);
    restarted.import_sealed(&sealed).unwrap();
    let status = restarted.status().unwrap();
    assert!(status.provisioned);
    assert_eq!(status.subject, "vnf-1");

    // A *different* enclave image cannot unseal the credentials.
    let other = VnfGuard::load(&platform, &world.network, &author, "vnf-1", 2).unwrap();
    assert!(other.import_sealed(&sealed).is_err());
    world.controller.stop();
}

#[test]
fn wipe_revokes_locally() {
    let mut world = setup();
    world.guard.wipe().unwrap();
    assert!(!world.guard.status().unwrap().provisioned);
    // Opening a session now fails: no credentials.
    assert!(world.guard.open_session(ADDR, world.clock.now()).is_err());
    world.controller.stop();
}

#[test]
fn no_extraction_opcode_exists() {
    let world = setup();
    // The sealed export is encrypted: it must not contain the raw seed.
    let sealed = world.guard.export_sealed().unwrap();
    assert!(!sealed
        .windows(world.key_seed.len())
        .any(|w| w == world.key_seed));
    // Probe the whole opcode space below 100 for anything that echoes key
    // material: the only opcodes that return bytes are the public ones, and
    // none of them contain the seed. (WIPE is destructive but returns
    // nothing; probing it is part of the property.)
    for opcode in 0u16..100 {
        if let Ok(output) = world.guard.enclave().ecall(opcode, &[]) {
            assert!(
                !output
                    .windows(world.key_seed.len())
                    .any(|w| w == world.key_seed),
                "opcode {opcode} leaked the key seed"
            );
        }
    }
    world.controller.stop();
}
