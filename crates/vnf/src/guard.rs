//! Host-side wrapper deploying and driving a credential enclave.

use crate::credential_enclave::{
    self, decode_net_recv, decode_net_send, encode_attest_input, encode_open_session,
    encode_session_request, op, CredentialEnclave, EnclaveStatus,
};
use crate::VnfError;
use std::collections::HashMap;
use std::io::{Read, Write};
use vnfguard_net::fabric::Network;
use vnfguard_net::http::{read_response, write_request, Request, Response};
use vnfguard_net::stream::Duplex;
use vnfguard_sgx::enclave::Enclave;
use vnfguard_sgx::measurement::Measurement;
use vnfguard_sgx::platform::SgxPlatform;
use vnfguard_sgx::quote::Quote;
use vnfguard_sgx::report::{Report, TargetInfo};
use vnfguard_sgx::sigstruct::EnclaveAuthor;
use vnfguard_sgx::SgxError;

/// Default enclave size for credential enclaves.
pub const ENCLAVE_SIZE: usize = 256 * 1024;

/// Callback the guard invokes to obtain a freshly wrapped credential
/// bundle when its certificate enters the renewal window. Returns the
/// wrapped bundle and the new credential's `not_after`.
pub type RenewFn = Box<dyn FnMut() -> Result<(Vec<u8>, u64), VnfError> + Send + Sync>;

/// Auto-renewal state: when the credential expires, how early to renew,
/// and the callback that fetches a replacement bundle.
struct AutoRenew {
    not_after: u64,
    window_secs: u64,
    /// Jittered instant this guard actually starts renewing — a per-guard
    /// point in the first half of the renewal window, so a fleet whose
    /// certificates expire together does not stampede the manager at the
    /// window edge. The second half of the window is retry headroom.
    renew_at: u64,
    /// Earliest next attempt after a refusal (backpressure backoff).
    next_attempt_at: u64,
    consecutive_refusals: u32,
    renewer: RenewFn,
}

/// Stateless splitmix64 finalizer: deterministic per-guard jitter without
/// carrying an RNG (the guard must stay reproducible run-to-run).
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn name_seed(name: &str) -> u64 {
    name.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        })
}

/// The jittered renewal start for a credential expiring at `not_after`:
/// window opening plus a (name, not_after)-keyed offset into the first
/// half of the window.
fn jittered_renew_at(name: &str, not_after: u64, window_secs: u64) -> u64 {
    let opens = not_after.saturating_sub(window_secs);
    let spread = window_secs / 2;
    if spread == 0 {
        return opens;
    }
    opens + splitmix(name_seed(name) ^ not_after) % (spread + 1)
}

/// A VNF's enclave-guarded credential store, as deployed on a container
/// host. Owns the enclave and the network connections its ocalls use.
pub struct VnfGuard {
    pub name: String,
    enclave: Enclave,
    network: Network,
    connections: HashMap<u32, Duplex>,
    next_conn: u32,
    auto_renew: Option<AutoRenew>,
}

impl VnfGuard {
    /// Load the credential enclave for `name` on `platform`, using the
    /// canonical image bytes for (name, version) signed by `author`.
    pub fn load(
        platform: &SgxPlatform,
        network: &Network,
        author: &EnclaveAuthor,
        name: &str,
        version: u32,
    ) -> Result<VnfGuard, VnfError> {
        let image = CredentialEnclave::image_for(name, version);
        VnfGuard::load_image(platform, network, author, name, &image, version as u16)
    }

    /// Load from explicit image bytes (e.g. the enclave image shipped in a
    /// container). A tampered image fails launch control here.
    pub fn load_image(
        platform: &SgxPlatform,
        network: &Network,
        author: &EnclaveAuthor,
        name: &str,
        image: &[u8],
        isv_svn: u16,
    ) -> Result<VnfGuard, VnfError> {
        let mrenclave = SgxPlatform::measure_image(image, ENCLAVE_SIZE);
        let signed = author.sign_enclave(mrenclave, 1, isv_svn, false);
        let enclave = platform.load_enclave(
            &signed,
            ENCLAVE_SIZE,
            Box::new(CredentialEnclave::new(image)),
        )?;
        Ok(VnfGuard {
            name: name.to_string(),
            enclave,
            network: network.clone(),
            connections: HashMap::new(),
            next_conn: 1,
            auto_renew: None,
        })
    }

    /// The enclave's measured identity.
    pub fn mrenclave(&self) -> Measurement {
        self.enclave.mrenclave()
    }

    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// Fetch the enclave's provisioning public key.
    pub fn provisioning_key(&self) -> Result<[u8; 32], VnfError> {
        let bytes = self.enclave.ecall(op::GET_PROVISION_KEY, &[])?;
        bytes
            .as_slice()
            .try_into()
            .map_err(|_| VnfError::Encoding("bad provisioning key length".into()))
    }

    /// Produce a local attestation report targeted at `target` carrying the
    /// provisioning-key binding and `nonce`.
    pub fn attestation_report(
        &self,
        target: &TargetInfo,
        nonce: &[u8; 32],
    ) -> Result<Report, VnfError> {
        let bytes = self
            .enclave
            .ecall(op::ATTEST, &encode_attest_input(target, nonce))?;
        Ok(Report::decode(&bytes)?)
    }

    /// Full quote flow: report targeted at the platform QE, then quoted.
    pub fn quote(
        &self,
        platform: &SgxPlatform,
        nonce: &[u8; 32],
        basename: [u8; 32],
    ) -> Result<Quote, VnfError> {
        let qe = platform.quoting_enclave();
        let report = self.attestation_report(&qe.target_info(), nonce)?;
        Ok(qe.quote(&report, basename)?)
    }

    /// Deliver a wrapped credential bundle into the enclave.
    pub fn provision(&self, wrapped: &[u8]) -> Result<(), VnfError> {
        self.enclave.ecall(op::PROVISION, wrapped)?;
        Ok(())
    }

    /// Export the sealed credential blob for restart persistence.
    pub fn export_sealed(&self) -> Result<Vec<u8>, VnfError> {
        Ok(self.enclave.ecall(op::EXPORT_SEALED, &[])?)
    }

    /// Restore credentials from a sealed blob (same enclave identity and
    /// platform only).
    pub fn import_sealed(&self, blob: &[u8]) -> Result<(), VnfError> {
        self.enclave.ecall(op::IMPORT_SEALED, blob)?;
        Ok(())
    }

    /// Current provisioning status.
    pub fn status(&self) -> Result<EnclaveStatus, VnfError> {
        EnclaveStatus::decode(&self.enclave.ecall(op::STATUS, &[])?)
    }

    /// Wipe credentials (local revocation; paper: "provision or revoke").
    pub fn wipe(&self) -> Result<(), VnfError> {
        self.enclave.ecall(op::WIPE, &[])?;
        Ok(())
    }

    fn run_io_ecall(&mut self, opcode: u16, input: &[u8]) -> Result<Vec<u8>, VnfError> {
        let network = self.network.clone();
        let connections = &mut self.connections;
        let next_conn = &mut self.next_conn;
        let result = self.enclave.ecall_io(opcode, input, |ocall_op, payload| {
            match ocall_op {
                credential_enclave::ocall::NET_CONNECT => {
                    let addr = std::str::from_utf8(payload)
                        .map_err(|_| SgxError::App("bad address".into()))?;
                    let stream = network
                        .connect(addr)
                        .map_err(|e| SgxError::App(format!("connect {addr}: {e}")))?;
                    let conn = *next_conn;
                    *next_conn += 1;
                    connections.insert(conn, stream);
                    Ok(conn.to_be_bytes().to_vec())
                }
                credential_enclave::ocall::NET_SEND => {
                    let (conn, bytes) = decode_net_send(payload)
                        .map_err(|e| SgxError::App(e.to_string()))?;
                    let stream = connections
                        .get_mut(&conn)
                        .ok_or_else(|| SgxError::App(format!("no connection {conn}")))?;
                    stream
                        .write_all(&bytes)
                        .map_err(|e| SgxError::App(format!("send: {e}")))?;
                    Ok(Vec::new())
                }
                credential_enclave::ocall::NET_RECV => {
                    let (conn, max) = decode_net_recv(payload)
                        .map_err(|e| SgxError::App(e.to_string()))?;
                    let stream = connections
                        .get_mut(&conn)
                        .ok_or_else(|| SgxError::App(format!("no connection {conn}")))?;
                    let mut buf = vec![0u8; max.min(64 * 1024)];
                    let n = stream
                        .read(&mut buf)
                        .map_err(|e| SgxError::App(format!("recv: {e}")))?;
                    buf.truncate(n);
                    Ok(buf)
                }
                credential_enclave::ocall::NET_CLOSE => {
                    let conn = u32::from_be_bytes(
                        payload
                            .try_into()
                            .map_err(|_| SgxError::App("bad close payload".into()))?,
                    );
                    connections.remove(&conn);
                    Ok(Vec::new())
                }
                other => Err(SgxError::App(format!("unknown ocall {other}"))),
            }
        })?;
        Ok(result)
    }

    /// Arm transparent credential renewal: once `now` enters the window
    /// `window_secs` before `not_after`, the next
    /// [`open_session`](Self::open_session) calls `renewer` for a fresh
    /// wrapped bundle and provisions it before opening — sessions never
    /// start on a certificate about to expire. The renewer typically posts
    /// to the manager's `/vm/renew` endpoint.
    pub fn set_auto_renew(&mut self, not_after: u64, window_secs: u64, renewer: RenewFn) {
        self.auto_renew = Some(AutoRenew {
            not_after,
            window_secs,
            renew_at: jittered_renew_at(&self.name, not_after, window_secs),
            next_attempt_at: 0,
            consecutive_refusals: 0,
            renewer,
        });
    }

    /// The jittered instant this guard starts renewing, if armed. Distinct
    /// per guard even when a whole fleet's certificates share `not_after`.
    pub fn renew_at(&self) -> Option<u64> {
        self.auto_renew.as_ref().map(|r| r.renew_at)
    }

    /// Disarm auto-renewal.
    pub fn clear_auto_renew(&mut self) {
        self.auto_renew = None;
    }

    /// `not_after` of the credential auto-renewal is tracking, if armed.
    pub fn credential_not_after(&self) -> Option<u64> {
        self.auto_renew.as_ref().map(|r| r.not_after)
    }

    /// Run the auto-renew hook if the credential has reached its jittered
    /// renewal point at `now`. Returns whether a renewal happened. A failing
    /// renewal — whether fetching the wrapped bundle or provisioning it
    /// into the enclave — propagates its error only once the credential is
    /// actually expired; while the old certificate is still valid, the
    /// session can proceed and retry renewal later. Either way the hook
    /// stays armed: a transient failure must not silently disarm renewal.
    ///
    /// A [`VnfError::Backpressure`] refusal (manager shed the renewal under
    /// load) parks the hook until the server's retry hint elapses, doubled
    /// and jittered per consecutive refusal so a shed stampede fans back
    /// out instead of re-forming. An expired credential ignores the parking
    /// and retries every call — correctness beats politeness once the cert
    /// is dead.
    pub fn maybe_renew(&mut self, now: u64) -> Result<bool, VnfError> {
        let Some(mut renew) = self.auto_renew.take() else {
            return Ok(false);
        };
        let expired = now > renew.not_after;
        let due = expired || now >= renew.renew_at;
        if !due || (!expired && now < renew.next_attempt_at) {
            self.auto_renew = Some(renew);
            return Ok(false);
        }
        let outcome = (renew.renewer)().and_then(|(wrapped, not_after)| {
            self.provision(&wrapped)?;
            Ok(not_after)
        });
        match outcome {
            Ok(not_after) => {
                renew.not_after = not_after;
                renew.renew_at = jittered_renew_at(&self.name, not_after, renew.window_secs);
                renew.next_attempt_at = 0;
                renew.consecutive_refusals = 0;
                self.auto_renew = Some(renew);
                Ok(true)
            }
            Err(VnfError::Backpressure { retry_after_secs }) if !expired => {
                renew.consecutive_refusals += 1;
                let shift = (renew.consecutive_refusals - 1).min(6);
                let bound = retry_after_secs.max(1).saturating_mul(1 << shift);
                let jitter = splitmix(name_seed(&self.name) ^ now) % (bound / 2 + 1);
                renew.next_attempt_at = now.saturating_add(bound / 2 + jitter);
                self.auto_renew = Some(renew);
                Ok(false)
            }
            Err(e) if expired => {
                self.auto_renew = Some(renew);
                Err(e)
            }
            Err(_) => {
                // Still valid: degrade to the old credential, retry next
                // session.
                self.auto_renew = Some(renew);
                Ok(false)
            }
        }
    }

    /// Open an in-enclave TLS session to the controller at `addr`. With
    /// auto-renewal armed, the credential is refreshed first when due (see
    /// [`maybe_renew`](Self::maybe_renew)).
    pub fn open_session(&mut self, addr: &str, now: u64) -> Result<u32, VnfError> {
        self.maybe_renew(now)?;
        let bytes = self.run_io_ecall(op::OPEN_SESSION, &encode_open_session(addr, now))?;
        let id: [u8; 4] = bytes
            .as_slice()
            .try_into()
            .map_err(|_| VnfError::Encoding("bad session id".into()))?;
        Ok(u32::from_be_bytes(id))
    }

    /// Perform an HTTPS request over an established in-enclave session.
    pub fn request(&mut self, session: u32, request: &Request) -> Result<Response, VnfError> {
        let mut raw = Vec::new();
        write_request(&mut raw, request)?;
        let response_bytes =
            self.run_io_ecall(op::SESSION_REQUEST, &encode_session_request(session, &raw))?;
        let mut reader = response_bytes.as_slice();
        Ok(read_response(&mut reader)?)
    }

    /// Like [`request`](Self::request), but stamps the wire-format trace
    /// context (`traceparent` value) onto the request first. The VNF crate
    /// carries no telemetry handle, so the caller hands over the header
    /// string produced by `TraceContext::traceparent()`; `None` leaves the
    /// request untraced.
    pub fn request_traced(
        &mut self,
        session: u32,
        request: &Request,
        traceparent: Option<&str>,
    ) -> Result<Response, VnfError> {
        match traceparent {
            Some(value) if !request.headers.contains_key("traceparent") => {
                let traced = request.clone().with_header("traceparent", value);
                self.request(session, &traced)
            }
            _ => self.request(session, request),
        }
    }

    /// Close an in-enclave session.
    pub fn close_session(&mut self, session: u32) -> Result<(), VnfError> {
        self.run_io_ecall(op::CLOSE_SESSION, &session.to_be_bytes())?;
        Ok(())
    }

    /// Convenience: open a session, perform one request, close.
    pub fn one_shot_request(
        &mut self,
        addr: &str,
        now: u64,
        request: &Request,
    ) -> Result<Response, VnfError> {
        let session = self.open_session(addr, now)?;
        let response = self.request(session, request);
        let _ = self.close_session(session);
        response
    }
}

impl std::fmt::Debug for VnfGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VnfGuard")
            .field("name", &self.name)
            .field("mrenclave", &self.mrenclave())
            .field("open_connections", &self.connections.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::jittered_renew_at;

    #[test]
    fn renew_jitter_stays_in_first_half_of_window() {
        let not_after = 1_600_086_400;
        let window = 7200;
        for i in 0..100 {
            let at = jittered_renew_at(&format!("vnf-{i}"), not_after, window);
            assert!(at >= not_after - window, "vnf-{i} renews inside the window");
            assert!(
                at <= not_after - window + window / 2,
                "vnf-{i} leaves the second half as retry headroom"
            );
        }
    }

    #[test]
    fn renew_jitter_spreads_a_fleet() {
        let not_after = 1_600_086_400;
        let points: std::collections::BTreeSet<u64> = (0..100)
            .map(|i| jittered_renew_at(&format!("vnf-{i}"), not_after, 7200))
            .collect();
        // 100 guards sharing one expiry must not renew in lockstep.
        assert!(points.len() > 50, "only {} distinct points", points.len());
    }

    #[test]
    fn renew_jitter_is_deterministic_and_degrades_to_window_edge() {
        assert_eq!(
            jittered_renew_at("vnf-a", 1_600_086_400, 7200),
            jittered_renew_at("vnf-a", 1_600_086_400, 7200),
        );
        // A zero-width window renews exactly at expiry.
        assert_eq!(jittered_renew_at("vnf-a", 500, 0), 500);
        // A one-second window cannot jitter past the opening.
        assert_eq!(jittered_renew_at("vnf-a", 500, 1), 499);
    }
}
