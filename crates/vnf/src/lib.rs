//! # vnfguard-vnf
//!
//! The VNF framework: the **credential enclave** that holds a VNF's
//! north-bound TLS credentials, the host-side [`guard::VnfGuard`] wrapper
//! that deploys and drives it, and the packet-processing network functions
//! (firewall, NAT, load balancer, DPI) that make the VNFs real.
//!
//! ## The credential enclave
//!
//! [`credential_enclave::CredentialEnclave`] is the paper's TEE 1 / TEE 2
//! (Figure 1): it is measured at load, attested remotely through a quote
//! whose report data binds a freshly generated **provisioning key**, and
//! receives its credentials wrapped to that key — so only the attested
//! enclave instance can unwrap them (paper step 5). All TLS sessions to the
//! controller are terminated *inside* the enclave: the handshake runs in
//! enclave code over ocall-backed network I/O, and the session keys remain
//! in enclave memory between ecalls ("the security context established for
//! each TLS session (including the session key) does not leave the
//! enclave", §2).
//!
//! There is deliberately **no opcode that returns key material**: the
//! enclave's public surface is attest / provision / seal / request / wipe.

pub mod credential_enclave;
pub mod guard;
pub mod nf;

pub use credential_enclave::{wrap_credentials, CredentialEnclave, ProvisionBundle};
pub use guard::{RenewFn, VnfGuard};
pub use nf::{DpiCounter, Firewall, LoadBalancer, NatGateway, NetworkFunction};

/// Errors from the VNF layer.
#[derive(Debug)]
pub enum VnfError {
    Sgx(vnfguard_sgx::SgxError),
    Net(vnfguard_net::NetError),
    /// The enclave has not been provisioned with credentials yet.
    NotProvisioned,
    /// Malformed structure crossing the enclave boundary.
    Encoding(String),
    /// The controller shed the request under load; retry after the hint.
    Backpressure { retry_after_secs: u64 },
}

impl std::fmt::Display for VnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VnfError::Sgx(e) => write!(f, "sgx: {e}"),
            VnfError::Net(e) => write!(f, "net: {e}"),
            VnfError::NotProvisioned => write!(f, "enclave holds no credentials"),
            VnfError::Encoding(msg) => write!(f, "encoding: {msg}"),
            VnfError::Backpressure { retry_after_secs } => {
                write!(f, "controller overloaded, retry after {retry_after_secs}s")
            }
        }
    }
}

impl std::error::Error for VnfError {}

impl From<vnfguard_sgx::SgxError> for VnfError {
    fn from(e: vnfguard_sgx::SgxError) -> VnfError {
        VnfError::Sgx(e)
    }
}

impl From<vnfguard_net::NetError> for VnfError {
    fn from(e: vnfguard_net::NetError) -> VnfError {
        VnfError::Net(e)
    }
}

impl From<vnfguard_encoding::EncodingError> for VnfError {
    fn from(e: vnfguard_encoding::EncodingError) -> VnfError {
        VnfError::Encoding(e.to_string())
    }
}
