//! Packet-processing network functions, runnable natively or inside the
//! enclave model (experiment E7, after Coughlin et al.'s Trusted Click).

use std::collections::HashMap;
use std::net::Ipv4Addr;
use vnfguard_dataplane::wire::{
    EthernetFrame, Ipv4Packet, Protocol, TcpSegment, UdpDatagram, ETHERTYPE_IPV4,
};
use vnfguard_sgx::enclave::{Enclave, EnclaveCode, EnclaveContext};
use vnfguard_sgx::platform::SgxPlatform;
use vnfguard_sgx::sigstruct::EnclaveAuthor;
use vnfguard_sgx::SgxError;

/// What a network function decides for one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfVerdict {
    /// Forward this (possibly rewritten) frame.
    Forward(Vec<u8>),
    /// Drop it.
    Drop,
}

/// A packet-processing function.
pub trait NetworkFunction: Send {
    fn name(&self) -> &str;
    fn process(&mut self, frame: &[u8]) -> NfVerdict;
}

/// A 5-tuple firewall with default-deny or default-allow policy.
#[derive(Debug)]
pub struct Firewall {
    rules: Vec<FirewallRule>,
    default_allow: bool,
    dropped: u64,
    passed: u64,
}

/// One allow/deny rule (None = wildcard).
#[derive(Debug, Clone)]
pub struct FirewallRule {
    pub allow: bool,
    pub src: Option<Ipv4Addr>,
    pub dst: Option<Ipv4Addr>,
    pub protocol: Option<Protocol>,
    pub dst_port: Option<u16>,
}

impl FirewallRule {
    pub fn allow() -> FirewallRule {
        FirewallRule {
            allow: true,
            src: None,
            dst: None,
            protocol: None,
            dst_port: None,
        }
    }

    pub fn deny() -> FirewallRule {
        FirewallRule {
            allow: false,
            ..FirewallRule::allow()
        }
    }

    pub fn from(mut self, src: Ipv4Addr) -> FirewallRule {
        self.src = Some(src);
        self
    }

    pub fn to(mut self, dst: Ipv4Addr) -> FirewallRule {
        self.dst = Some(dst);
        self
    }

    pub fn port(mut self, dst_port: u16) -> FirewallRule {
        self.dst_port = Some(dst_port);
        self
    }

    pub fn proto(mut self, protocol: Protocol) -> FirewallRule {
        self.protocol = Some(protocol);
        self
    }

    fn matches(&self, ip: &Ipv4Packet, dst_port: Option<u16>) -> bool {
        self.src.is_none_or(|want| want == ip.src)
            && self.dst.is_none_or(|want| want == ip.dst)
            && self.protocol.is_none_or(|want| want == ip.protocol)
            && match self.dst_port {
                None => true,
                Some(want) => dst_port == Some(want),
            }
    }
}

impl Firewall {
    pub fn default_deny(rules: Vec<FirewallRule>) -> Firewall {
        Firewall {
            rules,
            default_allow: false,
            dropped: 0,
            passed: 0,
        }
    }

    pub fn default_allow(rules: Vec<FirewallRule>) -> Firewall {
        Firewall {
            rules,
            default_allow: true,
            dropped: 0,
            passed: 0,
        }
    }

    pub fn counters(&self) -> (u64, u64) {
        (self.passed, self.dropped)
    }
}

fn transport_dst_port(ip: &Ipv4Packet) -> Option<u16> {
    match ip.protocol {
        Protocol::Udp => UdpDatagram::parse(&ip.payload).ok().map(|u| u.dst_port),
        Protocol::Tcp => TcpSegment::parse(&ip.payload).ok().map(|t| t.dst_port),
        Protocol::Other(_) => None,
    }
}

impl NetworkFunction for Firewall {
    fn name(&self) -> &str {
        "firewall"
    }

    fn process(&mut self, frame: &[u8]) -> NfVerdict {
        let Ok(eth) = EthernetFrame::parse(frame) else {
            self.dropped += 1;
            return NfVerdict::Drop;
        };
        if eth.ethertype != ETHERTYPE_IPV4 {
            // Non-IP passes (ARP etc.).
            self.passed += 1;
            return NfVerdict::Forward(frame.to_vec());
        }
        let Ok(ip) = Ipv4Packet::parse(&eth.payload) else {
            self.dropped += 1;
            return NfVerdict::Drop;
        };
        let dst_port = transport_dst_port(&ip);
        let allow = self
            .rules
            .iter()
            .find(|rule| rule.matches(&ip, dst_port))
            .map(|rule| rule.allow)
            .unwrap_or(self.default_allow);
        if allow {
            self.passed += 1;
            NfVerdict::Forward(frame.to_vec())
        } else {
            self.dropped += 1;
            NfVerdict::Drop
        }
    }
}

/// A destination NAT gateway: rewrites a public (virtual) IP to a backend.
#[derive(Debug)]
pub struct NatGateway {
    public_ip: Ipv4Addr,
    backend: Ipv4Addr,
    translated: u64,
}

impl NatGateway {
    pub fn new(public_ip: Ipv4Addr, backend: Ipv4Addr) -> NatGateway {
        NatGateway {
            public_ip,
            backend,
            translated: 0,
        }
    }

    pub fn translated(&self) -> u64 {
        self.translated
    }
}

impl NetworkFunction for NatGateway {
    fn name(&self) -> &str {
        "nat"
    }

    fn process(&mut self, frame: &[u8]) -> NfVerdict {
        let Ok(mut eth) = EthernetFrame::parse(frame) else {
            return NfVerdict::Drop;
        };
        if eth.ethertype != ETHERTYPE_IPV4 {
            return NfVerdict::Forward(frame.to_vec());
        }
        let Ok(mut ip) = Ipv4Packet::parse(&eth.payload) else {
            return NfVerdict::Drop;
        };
        if ip.dst == self.public_ip {
            // Rewrite destination and refresh the transport checksum.
            let new_payload = match ip.protocol {
                Protocol::Udp => UdpDatagram::parse(&ip.payload)
                    .ok()
                    .map(|udp| udp.emit(ip.src, self.backend)),
                Protocol::Tcp => TcpSegment::parse(&ip.payload)
                    .ok()
                    .map(|tcp| tcp.emit(ip.src, self.backend)),
                Protocol::Other(_) => None,
            };
            ip.dst = self.backend;
            if let Some(payload) = new_payload {
                ip.payload = payload;
            }
            eth.payload = ip.emit();
            self.translated += 1;
            return NfVerdict::Forward(eth.emit());
        }
        NfVerdict::Forward(frame.to_vec())
    }
}

/// A round-robin layer-4 load balancer over backend IPs.
#[derive(Debug)]
pub struct LoadBalancer {
    virtual_ip: Ipv4Addr,
    backends: Vec<Ipv4Addr>,
    next: usize,
    /// Flow affinity: (src, src_port) → backend.
    affinity: HashMap<(Ipv4Addr, u16), Ipv4Addr>,
}

impl LoadBalancer {
    pub fn new(virtual_ip: Ipv4Addr, backends: Vec<Ipv4Addr>) -> LoadBalancer {
        assert!(!backends.is_empty(), "load balancer needs backends");
        LoadBalancer {
            virtual_ip,
            backends,
            next: 0,
            affinity: HashMap::new(),
        }
    }

    pub fn affinity_entries(&self) -> usize {
        self.affinity.len()
    }
}

impl NetworkFunction for LoadBalancer {
    fn name(&self) -> &str {
        "loadbalancer"
    }

    fn process(&mut self, frame: &[u8]) -> NfVerdict {
        let Ok(mut eth) = EthernetFrame::parse(frame) else {
            return NfVerdict::Drop;
        };
        if eth.ethertype != ETHERTYPE_IPV4 {
            return NfVerdict::Forward(frame.to_vec());
        }
        let Ok(mut ip) = Ipv4Packet::parse(&eth.payload) else {
            return NfVerdict::Drop;
        };
        if ip.dst != self.virtual_ip {
            return NfVerdict::Forward(frame.to_vec());
        }
        let src_port = match ip.protocol {
            Protocol::Udp => UdpDatagram::parse(&ip.payload).ok().map(|u| u.src_port),
            Protocol::Tcp => TcpSegment::parse(&ip.payload).ok().map(|t| t.src_port),
            Protocol::Other(_) => None,
        }
        .unwrap_or(0);
        let backend = *self
            .affinity
            .entry((ip.src, src_port))
            .or_insert_with(|| {
                let chosen = self.backends[self.next % self.backends.len()];
                self.next += 1;
                chosen
            });
        let new_payload = match ip.protocol {
            Protocol::Udp => UdpDatagram::parse(&ip.payload)
                .ok()
                .map(|udp| udp.emit(ip.src, backend)),
            Protocol::Tcp => TcpSegment::parse(&ip.payload)
                .ok()
                .map(|tcp| tcp.emit(ip.src, backend)),
            Protocol::Other(_) => None,
        };
        ip.dst = backend;
        if let Some(payload) = new_payload {
            ip.payload = payload;
        }
        eth.payload = ip.emit();
        NfVerdict::Forward(eth.emit())
    }
}

/// A DPI byte/flow counter (forwards everything, counts per protocol).
#[derive(Debug, Default)]
pub struct DpiCounter {
    pub udp_packets: u64,
    pub tcp_packets: u64,
    pub other_packets: u64,
    pub total_bytes: u64,
}

impl NetworkFunction for DpiCounter {
    fn name(&self) -> &str {
        "dpi"
    }

    fn process(&mut self, frame: &[u8]) -> NfVerdict {
        self.total_bytes += frame.len() as u64;
        if let Ok(eth) = EthernetFrame::parse(frame) {
            if eth.ethertype == ETHERTYPE_IPV4 {
                if let Ok(ip) = Ipv4Packet::parse(&eth.payload) {
                    match ip.protocol {
                        Protocol::Udp => self.udp_packets += 1,
                        Protocol::Tcp => self.tcp_packets += 1,
                        Protocol::Other(_) => self.other_packets += 1,
                    }
                }
            }
        }
        NfVerdict::Forward(frame.to_vec())
    }
}

/// Enclave program wrapping a network function: packet processing inside
/// the TEE, as in Trusted Click. Opcode 1 = process one frame; the reply is
/// `0x01 || frame` for forward, `0x00` for drop. Opcode 2 = process a batch
/// (length-prefixed frames), amortizing the transition cost.
pub struct EnclaveNf<F: NetworkFunction> {
    image: Vec<u8>,
    function: F,
}

/// Opcode: process a single frame.
pub const OP_PROCESS: u16 = 1;
/// Opcode: process a batch of frames.
pub const OP_PROCESS_BATCH: u16 = 2;

impl<F: NetworkFunction> EnclaveNf<F> {
    pub fn new(image: &[u8], function: F) -> EnclaveNf<F> {
        EnclaveNf {
            image: image.to_vec(),
            function,
        }
    }
}

impl<F: NetworkFunction> EnclaveCode for EnclaveNf<F> {
    fn image(&self) -> Vec<u8> {
        self.image.clone()
    }

    fn on_call(
        &mut self,
        _ctx: &mut EnclaveContext,
        opcode: u16,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            OP_PROCESS => Ok(encode_verdict(self.function.process(input))),
            OP_PROCESS_BATCH => {
                let mut out = Vec::with_capacity(input.len() + 16);
                let mut rest = input;
                while !rest.is_empty() {
                    if rest.len() < 4 {
                        return Err(SgxError::Encoding("truncated batch".into()));
                    }
                    let len = u32::from_be_bytes(rest[..4].try_into().expect("4")) as usize;
                    rest = &rest[4..];
                    if rest.len() < len {
                        return Err(SgxError::Encoding("truncated frame in batch".into()));
                    }
                    let verdict = encode_verdict(self.function.process(&rest[..len]));
                    out.extend_from_slice(&(verdict.len() as u32).to_be_bytes());
                    out.extend_from_slice(&verdict);
                    rest = &rest[len..];
                }
                Ok(out)
            }
            other => Err(SgxError::BadCall(other)),
        }
    }
}

fn encode_verdict(verdict: NfVerdict) -> Vec<u8> {
    match verdict {
        NfVerdict::Forward(frame) => {
            let mut out = Vec::with_capacity(frame.len() + 1);
            out.push(1);
            out.extend_from_slice(&frame);
            out
        }
        NfVerdict::Drop => vec![0],
    }
}

/// Decode a verdict produced by [`EnclaveNf`].
pub fn decode_verdict(bytes: &[u8]) -> Result<NfVerdict, SgxError> {
    match bytes.split_first() {
        Some((1, frame)) => Ok(NfVerdict::Forward(frame.to_vec())),
        Some((0, _)) => Ok(NfVerdict::Drop),
        _ => Err(SgxError::Encoding("bad verdict".into())),
    }
}

/// Load a network function into an enclave on `platform`.
pub fn load_enclave_nf<F: NetworkFunction + 'static>(
    platform: &SgxPlatform,
    author: &EnclaveAuthor,
    function: F,
) -> Result<Enclave, SgxError> {
    let image = format!("enclave-nf {}", function.name()).into_bytes();
    let mrenclave = SgxPlatform::measure_image(&image, 64 * 1024);
    let signed = author.sign_enclave(mrenclave, 2, 1, false);
    platform.load_enclave(&signed, 64 * 1024, Box::new(EnclaveNf::new(&image, function)))
}

/// Encode frames into the batch wire format for [`OP_PROCESS_BATCH`].
pub fn encode_batch<'a>(frames: impl IntoIterator<Item = &'a [u8]>) -> Vec<u8> {
    let mut out = Vec::new();
    for frame in frames {
        out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        out.extend_from_slice(frame);
    }
    out
}

/// Decode the batch reply into verdicts.
pub fn decode_batch(mut bytes: &[u8]) -> Result<Vec<NfVerdict>, SgxError> {
    let mut verdicts = Vec::new();
    while !bytes.is_empty() {
        if bytes.len() < 4 {
            return Err(SgxError::Encoding("truncated batch reply".into()));
        }
        let len = u32::from_be_bytes(bytes[..4].try_into().expect("4")) as usize;
        bytes = &bytes[4..];
        if bytes.len() < len {
            return Err(SgxError::Encoding("truncated verdict".into()));
        }
        verdicts.push(decode_verdict(&bytes[..len])?);
        bytes = &bytes[len..];
    }
    Ok(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_dataplane::wire::{build_udp_frame, MacAddr};

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    fn udp_frame(src: u8, dst: u8, dst_port: u16) -> Vec<u8> {
        build_udp_frame(
            MacAddr([src; 6]),
            MacAddr([dst; 6]),
            ip(src),
            ip(dst),
            30000,
            dst_port,
            b"payload",
        )
    }

    #[test]
    fn firewall_default_deny() {
        let mut fw = Firewall::default_deny(vec![
            FirewallRule::allow().to(ip(2)).port(53).proto(Protocol::Udp)
        ]);
        assert!(matches!(
            fw.process(&udp_frame(1, 2, 53)),
            NfVerdict::Forward(_)
        ));
        assert_eq!(fw.process(&udp_frame(1, 2, 80)), NfVerdict::Drop);
        assert_eq!(fw.process(&udp_frame(1, 3, 53)), NfVerdict::Drop);
        assert_eq!(fw.counters(), (1, 2));
    }

    #[test]
    fn firewall_rule_order() {
        let mut fw = Firewall::default_allow(vec![
            FirewallRule::deny().from(ip(6)),
            FirewallRule::allow().from(ip(6)).port(443),
        ]);
        // First match wins: the deny shadows the later allow.
        assert_eq!(fw.process(&udp_frame(6, 2, 443)), NfVerdict::Drop);
        assert!(matches!(
            fw.process(&udp_frame(7, 2, 443)),
            NfVerdict::Forward(_)
        ));
    }

    #[test]
    fn firewall_drops_malformed() {
        let mut fw = Firewall::default_allow(vec![]);
        assert_eq!(fw.process(&[1, 2, 3]), NfVerdict::Drop);
    }

    #[test]
    fn nat_rewrites_and_verifies() {
        let mut nat = NatGateway::new(ip(100), ip(7));
        let NfVerdict::Forward(out) = nat.process(&udp_frame(1, 100, 80)) else {
            panic!("expected forward");
        };
        let eth = EthernetFrame::parse(&out).unwrap();
        let packet = Ipv4Packet::parse(&eth.payload).unwrap();
        assert_eq!(packet.dst, ip(7));
        assert!(UdpDatagram::verify_checksum(
            &packet.payload,
            packet.src,
            packet.dst
        ));
        assert_eq!(nat.translated(), 1);
        // Traffic not to the public IP is untouched.
        let original = udp_frame(1, 50, 80);
        assert_eq!(nat.process(&original), NfVerdict::Forward(original));
    }

    #[test]
    fn load_balancer_round_robin_with_affinity() {
        let mut lb = LoadBalancer::new(ip(200), vec![ip(1), ip(2), ip(3)]);
        let mut backend_of = |src: u8| -> Ipv4Addr {
            let frame = build_udp_frame(
                MacAddr([src; 6]),
                MacAddr([9; 6]),
                ip(src),
                ip(200),
                1000 + src as u16,
                80,
                b"q",
            );
            let NfVerdict::Forward(out) = lb.process(&frame) else {
                panic!("expected forward");
            };
            let eth = EthernetFrame::parse(&out).unwrap();
            Ipv4Packet::parse(&eth.payload).unwrap().dst
        };
        let first = backend_of(10);
        let second = backend_of(11);
        let third = backend_of(12);
        assert_ne!(first, second);
        assert_ne!(second, third);
        // Same flow sticks to its backend.
        assert_eq!(backend_of(10), first);
        assert_eq!(backend_of(10), first);
    }

    #[test]
    fn dpi_counts() {
        let mut dpi = DpiCounter::default();
        dpi.process(&udp_frame(1, 2, 53));
        dpi.process(&udp_frame(1, 2, 53));
        assert_eq!(dpi.udp_packets, 2);
        assert_eq!(dpi.tcp_packets, 0);
        assert!(dpi.total_bytes > 0);
    }

    #[test]
    fn enclave_nf_single_and_batch() {
        let platform = SgxPlatform::new(b"nf test");
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let fw = Firewall::default_deny(vec![FirewallRule::allow().port(53)]);
        let enclave = load_enclave_nf(&platform, &author, fw).unwrap();

        let allowed = udp_frame(1, 2, 53);
        let blocked = udp_frame(1, 2, 80);
        let verdict = decode_verdict(&enclave.ecall(OP_PROCESS, &allowed).unwrap()).unwrap();
        assert_eq!(verdict, NfVerdict::Forward(allowed.clone()));
        let verdict = decode_verdict(&enclave.ecall(OP_PROCESS, &blocked).unwrap()).unwrap();
        assert_eq!(verdict, NfVerdict::Drop);

        // Batch: one transition for many frames.
        let calls_before = platform.ecall_count();
        let batch = encode_batch([allowed.as_slice(), blocked.as_slice(), allowed.as_slice()]);
        let reply = enclave.ecall(OP_PROCESS_BATCH, &batch).unwrap();
        let verdicts = decode_batch(&reply).unwrap();
        assert_eq!(verdicts.len(), 3);
        assert_eq!(verdicts[1], NfVerdict::Drop);
        assert_eq!(platform.ecall_count(), calls_before + 1);
    }

    #[test]
    fn enclave_nf_rejects_garbage_batch() {
        let platform = SgxPlatform::new(b"nf test 2");
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let enclave = load_enclave_nf(&platform, &author, DpiCounter::default()).unwrap();
        assert!(enclave.ecall(OP_PROCESS_BATCH, &[0, 0, 0, 99, 1]).is_err());
    }
}
