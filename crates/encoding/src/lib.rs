//! # vnfguard-encoding
//!
//! Self-contained codecs used across the vnfguard workspace: hexadecimal,
//! base64, a JSON document model with parser and serializer, and a binary
//! TLV (type-length-value) format used for wire structures such as
//! certificates, SGX quotes and IMA measurement lists.
//!
//! Everything here is implemented from scratch on top of `std` so that the
//! workspace has no external serialization dependencies (see DESIGN.md §2).
//!
//! ## Quick example
//!
//! ```
//! use vnfguard_encoding::json::{Json, parse};
//!
//! let doc = parse(r#"{"name":"vnf-1","port":6653,"tags":["fw","edge"]}"#).unwrap();
//! assert_eq!(doc.get("name").and_then(Json::as_str), Some("vnf-1"));
//! assert_eq!(doc.get("port").and_then(Json::as_i64), Some(6653));
//! ```

pub mod base64;
pub mod hex;
pub mod json;
pub mod tlv;

pub use json::Json;
pub use tlv::{TlvReader, TlvWriter};

/// Errors produced by the codecs in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodingError {
    /// Input contained a byte that is not valid for the codec.
    InvalidCharacter { position: usize, byte: u8 },
    /// Input ended before a complete unit was decoded.
    UnexpectedEnd,
    /// Input has a length that the codec cannot accept (e.g. odd hex length).
    InvalidLength(usize),
    /// Structured document error with a human-readable description.
    Malformed(String),
    /// A declared length exceeds the remaining input (TLV).
    LengthOverrun { declared: usize, available: usize },
    /// Nesting deeper than the parser's safety limit.
    TooDeep(usize),
}

impl std::fmt::Display for EncodingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodingError::InvalidCharacter { position, byte } => {
                write!(f, "invalid byte 0x{byte:02x} at position {position}")
            }
            EncodingError::UnexpectedEnd => write!(f, "unexpected end of input"),
            EncodingError::InvalidLength(n) => write!(f, "invalid input length {n}"),
            EncodingError::Malformed(msg) => write!(f, "malformed document: {msg}"),
            EncodingError::LengthOverrun {
                declared,
                available,
            } => write!(
                f,
                "declared length {declared} exceeds available {available} bytes"
            ),
            EncodingError::TooDeep(depth) => write!(f, "nesting deeper than limit {depth}"),
        }
    }
}

impl std::error::Error for EncodingError {}
