//! A simple binary type-length-value format.
//!
//! Wire structures in the workspace (certificates, SGX reports and quotes,
//! sealed blobs, IMA lists, TLS handshake messages) are encoded as a sequence
//! of TLV records: a 1-byte tag, a 4-byte big-endian length and `length`
//! bytes of value. Records may nest, producing a DER-like (but deliberately
//! simpler) canonical encoding: encoding is a pure function of the structure,
//! which makes the format safe to hash and sign.

use crate::EncodingError;

/// Serializer producing a TLV byte stream.
#[derive(Debug, Default)]
pub struct TlvWriter {
    buf: Vec<u8>,
}

impl TlvWriter {
    pub fn new() -> TlvWriter {
        TlvWriter::default()
    }

    /// Append a record with raw bytes as the value.
    pub fn bytes(&mut self, tag: u8, value: &[u8]) -> &mut Self {
        self.buf.push(tag);
        self.buf
            .extend_from_slice(&(value.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(value);
        self
    }

    /// Append a UTF-8 string record.
    pub fn string(&mut self, tag: u8, value: &str) -> &mut Self {
        self.bytes(tag, value.as_bytes())
    }

    /// Append a big-endian u64 record.
    pub fn u64(&mut self, tag: u8, value: u64) -> &mut Self {
        self.bytes(tag, &value.to_be_bytes())
    }

    /// Append a u32 record.
    pub fn u32(&mut self, tag: u8, value: u32) -> &mut Self {
        self.bytes(tag, &value.to_be_bytes())
    }

    /// Append a single-byte record.
    pub fn u8(&mut self, tag: u8, value: u8) -> &mut Self {
        self.bytes(tag, &[value])
    }

    /// Append a nested structure built by `f`.
    pub fn nested(&mut self, tag: u8, f: impl FnOnce(&mut TlvWriter)) -> &mut Self {
        let mut inner = TlvWriter::new();
        f(&mut inner);
        let bytes = inner.finish();
        self.bytes(tag, &bytes)
    }

    /// Consume the writer and return the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-style reader over a TLV byte stream.
#[derive(Debug, Clone)]
pub struct TlvReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> TlvReader<'a> {
    pub fn new(data: &'a [u8]) -> TlvReader<'a> {
        TlvReader { data, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Read the next record as `(tag, value)`.
    #[allow(clippy::should_implement_trait)] // cursor API, not an Iterator
    pub fn next(&mut self) -> Result<(u8, &'a [u8]), EncodingError> {
        if self.pos >= self.data.len() {
            return Err(EncodingError::UnexpectedEnd);
        }
        if self.data.len() - self.pos < 5 {
            return Err(EncodingError::UnexpectedEnd);
        }
        let tag = self.data[self.pos];
        let len = u32::from_be_bytes(
            self.data[self.pos + 1..self.pos + 5]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        let start = self.pos + 5;
        let available = self.data.len() - start;
        if len > available {
            return Err(EncodingError::LengthOverrun {
                declared: len,
                available,
            });
        }
        self.pos = start + len;
        Ok((tag, &self.data[start..start + len]))
    }

    /// Read the next record, checking it carries the expected tag.
    pub fn expect(&mut self, tag: u8) -> Result<&'a [u8], EncodingError> {
        let (got, value) = self.next()?;
        if got != tag {
            return Err(EncodingError::Malformed(format!(
                "expected tag 0x{tag:02x}, found 0x{got:02x}"
            )));
        }
        Ok(value)
    }

    /// Read the next record as a UTF-8 string.
    pub fn expect_string(&mut self, tag: u8) -> Result<String, EncodingError> {
        let bytes = self.expect(tag)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| EncodingError::Malformed("invalid utf-8 in string record".into()))
    }

    /// Read the next record as a big-endian u64.
    pub fn expect_u64(&mut self, tag: u8) -> Result<u64, EncodingError> {
        let bytes = self.expect(tag)?;
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| EncodingError::InvalidLength(bytes.len()))?;
        Ok(u64::from_be_bytes(arr))
    }

    /// Read the next record as a big-endian u32.
    pub fn expect_u32(&mut self, tag: u8) -> Result<u32, EncodingError> {
        let bytes = self.expect(tag)?;
        let arr: [u8; 4] = bytes
            .try_into()
            .map_err(|_| EncodingError::InvalidLength(bytes.len()))?;
        Ok(u32::from_be_bytes(arr))
    }

    /// Read the next record as a single byte.
    pub fn expect_u8(&mut self, tag: u8) -> Result<u8, EncodingError> {
        let bytes = self.expect(tag)?;
        if bytes.len() != 1 {
            return Err(EncodingError::InvalidLength(bytes.len()));
        }
        Ok(bytes[0])
    }

    /// Read the next record as a fixed-length array.
    pub fn expect_array<const N: usize>(&mut self, tag: u8) -> Result<[u8; N], EncodingError> {
        let bytes = self.expect(tag)?;
        bytes
            .try_into()
            .map_err(|_| EncodingError::InvalidLength(bytes.len()))
    }

    /// Descend into a nested record.
    pub fn expect_nested(&mut self, tag: u8) -> Result<TlvReader<'a>, EncodingError> {
        Ok(TlvReader::new(self.expect(tag)?))
    }

    /// Require that no bytes remain.
    pub fn finish(&self) -> Result<(), EncodingError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(EncodingError::Malformed(format!(
                "{} trailing bytes in TLV structure",
                self.data.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_flat_records() {
        let mut w = TlvWriter::new();
        w.string(1, "hello").u64(2, 0xdead_beef_0102_0304).u8(3, 7);
        let bytes = w.finish();

        let mut r = TlvReader::new(&bytes);
        assert_eq!(r.expect_string(1).unwrap(), "hello");
        assert_eq!(r.expect_u64(2).unwrap(), 0xdead_beef_0102_0304);
        assert_eq!(r.expect_u8(3).unwrap(), 7);
        r.finish().unwrap();
    }

    #[test]
    fn roundtrip_nested() {
        let mut w = TlvWriter::new();
        w.nested(10, |inner| {
            inner.u32(1, 42).bytes(2, &[9, 9, 9]);
        })
        .string(11, "after");
        let bytes = w.finish();

        let mut r = TlvReader::new(&bytes);
        let mut inner = r.expect_nested(10).unwrap();
        assert_eq!(inner.expect_u32(1).unwrap(), 42);
        assert_eq!(inner.expect(2).unwrap(), &[9, 9, 9]);
        inner.finish().unwrap();
        assert_eq!(r.expect_string(11).unwrap(), "after");
        r.finish().unwrap();
    }

    #[test]
    fn wrong_tag_is_error() {
        let mut w = TlvWriter::new();
        w.u8(1, 0);
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        assert!(r.expect(2).is_err());
    }

    #[test]
    fn truncated_header_is_error() {
        let mut r = TlvReader::new(&[1, 0, 0]);
        assert_eq!(r.next(), Err(EncodingError::UnexpectedEnd));
    }

    #[test]
    fn overrun_length_is_error() {
        // Tag 1, declared length 100, only 2 bytes of value.
        let mut data = vec![1u8];
        data.extend_from_slice(&100u32.to_be_bytes());
        data.extend_from_slice(&[0, 0]);
        let mut r = TlvReader::new(&data);
        assert_eq!(
            r.next(),
            Err(EncodingError::LengthOverrun {
                declared: 100,
                available: 2
            })
        );
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = TlvWriter::new();
        w.u8(1, 0).u8(2, 0);
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        r.expect_u8(1).unwrap();
        assert!(r.finish().is_err());
        r.expect_u8(2).unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn fixed_array_length_checked() {
        let mut w = TlvWriter::new();
        w.bytes(5, &[1, 2, 3, 4]);
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        assert!(r.clone().expect_array::<3>(5).is_err());
        assert_eq!(r.expect_array::<4>(5).unwrap(), [1, 2, 3, 4]);
    }

    #[test]
    fn empty_value_roundtrips() {
        let mut w = TlvWriter::new();
        w.bytes(9, &[]);
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        assert_eq!(r.expect(9).unwrap(), &[] as &[u8]);
        r.finish().unwrap();
    }
}
