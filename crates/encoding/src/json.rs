//! A JSON document model, recursive-descent parser and serializer.
//!
//! The REST interfaces in the workspace (network controller north-bound API,
//! Verification Manager endpoints, IAS report bodies) exchange JSON. This
//! module provides an owned [`Json`] value, a strict parser ([`parse`]) and a
//! deterministic serializer (object keys keep insertion order).
//!
//! Numbers are stored as either `i64` or `f64`; this is sufficient for the
//! protocol fields used in the workspace (ports, counts, timestamps,
//! latencies).

use crate::EncodingError;

/// Maximum nesting depth accepted by the parser, guarding against stack
/// exhaustion from adversarial input on the REST surface.
pub const MAX_DEPTH: usize = 64;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integral number (serialized without a decimal point).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Insert or replace a field on an object; panics if `self` is not an
    /// object (programming error, not input error).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(fields) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value.into();
                } else {
                    fields.push((key.to_string(), value.into()));
                }
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Fluent variant of [`Json::set`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.set(key, value);
        self
    }

    /// Field lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index lookup on arrays.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(index),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

}

impl std::fmt::Display for Json {
    /// Serialize to a compact string (no whitespace).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Large u64s (e.g. hashes) must be transported as strings instead.
        Json::Int(n as i64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}
impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Array(iter.into_iter().map(Into::into).collect())
    }
}

fn write_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Float(x) => {
            if x.is_finite() {
                let s = format!("{x}");
                out.push_str(&s);
                // Keep floats distinguishable from ints on the wire.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, EncodingError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(EncodingError::Malformed(format!(
            "trailing data at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, EncodingError> {
        let b = self.peek().ok_or(EncodingError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), EncodingError> {
        let got = self.bump()?;
        if got != b {
            return Err(EncodingError::Malformed(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<Json, EncodingError> {
        if depth > MAX_DEPTH {
            return Err(EncodingError::TooDeep(MAX_DEPTH));
        }
        self.skip_ws();
        match self.peek().ok_or(EncodingError::UnexpectedEnd)? {
            b'{' => self.object(depth),
            b'[' => self.array(depth),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.keyword("true", Json::Bool(true)),
            b'f' => self.keyword("false", Json::Bool(false)),
            b'n' => self.keyword("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(EncodingError::InvalidCharacter {
                position: self.pos,
                byte: other,
            }),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, EncodingError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(EncodingError::Malformed(format!(
                "invalid keyword at byte {}",
                self.pos
            )))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, EncodingError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Json::Object(fields)),
                other => {
                    return Err(EncodingError::InvalidCharacter {
                        position: self.pos - 1,
                        byte: other,
                    })
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, EncodingError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Json::Array(items)),
                other => {
                    return Err(EncodingError::InvalidCharacter {
                        position: self.pos - 1,
                        byte: other,
                    })
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, EncodingError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let cp = self.hex4()?;
                        if (0xd800..0xdc00).contains(&cp) {
                            // High surrogate: a low surrogate must follow.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(EncodingError::Malformed(
                                    "unpaired surrogate".into(),
                                ));
                            }
                            let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                            out.push(
                                char::from_u32(c).ok_or_else(|| {
                                    EncodingError::Malformed("bad surrogate pair".into())
                                })?,
                            );
                        } else if (0xdc00..0xe000).contains(&cp) {
                            return Err(EncodingError::Malformed("unpaired surrogate".into()));
                        } else {
                            out.push(char::from_u32(cp).ok_or_else(|| {
                                EncodingError::Malformed("bad codepoint".into())
                            })?);
                        }
                    }
                    other => {
                        return Err(EncodingError::InvalidCharacter {
                            position: self.pos - 1,
                            byte: other,
                        })
                    }
                },
                b if b < 0x20 => {
                    return Err(EncodingError::Malformed(
                        "control character in string".into(),
                    ))
                }
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or(EncodingError::InvalidCharacter {
                        position: start,
                        byte: b,
                    })?;
                    if start + len > self.bytes.len() {
                        return Err(EncodingError::UnexpectedEnd);
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| EncodingError::Malformed("invalid utf-8".into()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, EncodingError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => {
                    return Err(EncodingError::InvalidCharacter {
                        position: self.pos - 1,
                        byte: b,
                    })
                }
            };
            v = (v << 4) | d as u32;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, EncodingError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: "0" or non-zero digit followed by digits.
        match self.bump()? {
            b'0' => {}
            b'1'..=b'9' => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            other => {
                return Err(EncodingError::InvalidCharacter {
                    position: self.pos - 1,
                    byte: other,
                })
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(EncodingError::Malformed("digit expected after '.'".into()));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(EncodingError::Malformed("digit expected in exponent".into()));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| EncodingError::Malformed(format!("bad float: {e}")))
        } else {
            match text.parse::<i64>() {
                Ok(n) => Ok(Json::Int(n)),
                // Out-of-range integers degrade to floats rather than failing.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|e| EncodingError::Malformed(format!("bad number: {e}"))),
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().at(0), Some(&Json::Int(1)));
        assert_eq!(
            doc.get("a").unwrap().at(1).unwrap().get("b"),
            Some(&Json::Null)
        );
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::Str("line\nquote\" \\ tab\t unicode \u{263a} nul\u{0001}".into());
        let text = original.to_string();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            parse(r#""Aé""#).unwrap(),
            Json::Str("A\u{e9}".into())
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            Json::Str("\u{1f600}".into())
        );
    }

    #[test]
    fn rejects_unpaired_surrogates() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[", "\"", "{\"a\"}", "{\"a\":}", "[1,]", "{,}", "01", "1.",
            "--1", "+1", "tru", "nul", "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(parse(&deep), Err(EncodingError::TooDeep(MAX_DEPTH)));
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn object_builder_and_lookup() {
        let doc = Json::object()
            .with("name", "tee-1")
            .with("port", 8443i64)
            .with("ratio", 0.5)
            .with("ok", true)
            .with("tags", vec![Json::from("a"), Json::from("b")]);
        assert_eq!(doc.get("port").and_then(Json::as_i64), Some(8443));
        assert_eq!(doc.get("ratio").and_then(Json::as_f64), Some(0.5));
        assert_eq!(doc.get("tags").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut doc = Json::object().with("a", 1i64);
        doc.set("a", 2i64);
        assert_eq!(doc.get("a").and_then(Json::as_i64), Some(2));
        assert_eq!(doc.as_object().unwrap().len(), 1);
    }

    #[test]
    fn serialization_roundtrip() {
        let doc = Json::object()
            .with("list", (0..5i64).collect::<Json>())
            .with("nested", Json::object().with("f", 2.25).with("n", Json::Null));
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn float_serialization_keeps_type() {
        // A whole-valued float must not be re-read as an Int.
        let v = Json::Float(3.0);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn huge_integer_degrades_to_float() {
        let doc = parse("123456789012345678901234567890").unwrap();
        assert!(matches!(doc, Json::Float(_)));
    }
}
