//! Standard base64 (RFC 4648) with padding.
//!
//! Used for embedding binary blobs (quotes, sealed keys, signatures) inside
//! JSON documents exchanged on the REST interfaces.

use crate::EncodingError;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as standard padded base64.
///
/// ```
/// assert_eq!(vnfguard_encoding::base64::encode(b"hi"), "aGk=");
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Decode standard base64, requiring correct padding.
pub fn decode(s: &str) -> Result<Vec<u8>, EncodingError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(EncodingError::InvalidLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (ci, chunk) in bytes.chunks_exact(4).enumerate() {
        let last_chunk = ci == bytes.len() / 4 - 1;
        let pad = chunk.iter().rev().take_while(|&&b| b == b'=').count();
        if pad > 2 || (pad > 0 && !last_chunk) {
            return Err(EncodingError::Malformed("padding in interior".into()));
        }
        let mut n: u32 = 0;
        for (i, &b) in chunk.iter().enumerate() {
            let v = if b == b'=' && i >= 4 - pad {
                0
            } else {
                sextet(b).ok_or(EncodingError::InvalidCharacter {
                    position: ci * 4 + i,
                    byte: b,
                })?
            };
            n = (n << 6) | v as u32;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

fn sextet(b: u8) -> Option<u8> {
    match b {
        b'A'..=b'Z' => Some(b - b'A'),
        b'a'..=b'z' => Some(b - b'a' + 26),
        b'0'..=b'9' => Some(b - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, encoded) in cases {
            assert_eq!(encode(plain.as_bytes()), *encoded, "encode {plain}");
            assert_eq!(
                decode(encoded).unwrap(),
                plain.as_bytes(),
                "decode {encoded}"
            );
        }
    }

    #[test]
    fn rejects_bad_length() {
        assert!(matches!(
            decode("abc"),
            Err(EncodingError::InvalidLength(3))
        ));
    }

    #[test]
    fn rejects_interior_padding() {
        assert!(decode("Zg==Zg==").is_err());
        assert!(decode("Z===").is_err());
    }

    #[test]
    fn rejects_invalid_character() {
        assert!(matches!(
            decode("Zm9!"),
            Err(EncodingError::InvalidCharacter { position: 3, .. })
        ));
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1021).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
