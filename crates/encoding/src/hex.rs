//! Lowercase hexadecimal encoding and decoding.
//!
//! Used pervasively for digests, enclave measurements and key fingerprints.
//! Decoding accepts both upper- and lowercase input; encoding always emits
//! lowercase, matching the convention of Linux IMA measurement lists and the
//! Intel Attestation Service report fields.

use crate::EncodingError;

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encode `data` as a lowercase hex string.
///
/// ```
/// assert_eq!(vnfguard_encoding::hex::encode(&[0xde, 0xad, 0xbe, 0xef]), "deadbeef");
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decode a hex string (case-insensitive) into bytes.
///
/// Returns [`EncodingError::InvalidLength`] for odd-length input and
/// [`EncodingError::InvalidCharacter`] for non-hex bytes.
pub fn decode(s: &str) -> Result<Vec<u8>, EncodingError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(EncodingError::InvalidLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = nibble(pair[0]).ok_or(EncodingError::InvalidCharacter {
            position: i * 2,
            byte: pair[0],
        })?;
        let lo = nibble(pair[1]).ok_or(EncodingError::InvalidCharacter {
            position: i * 2 + 1,
            byte: pair[1],
        })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

/// Decode into a fixed-size array, checking the exact length.
pub fn decode_array<const N: usize>(s: &str) -> Result<[u8; N], EncodingError> {
    let v = decode(s)?;
    let got = v.len();
    v.try_into().map_err(|_| EncodingError::InvalidLength(got))
}

fn nibble(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_lowercase() {
        assert_eq!(encode(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decodes_mixed_case() {
        assert_eq!(decode("DeadBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn rejects_odd_length() {
        assert_eq!(decode("abc"), Err(EncodingError::InvalidLength(3)));
    }

    #[test]
    fn rejects_bad_character_with_position() {
        assert_eq!(
            decode("00zz"),
            Err(EncodingError::InvalidCharacter {
                position: 2,
                byte: b'z'
            })
        );
    }

    #[test]
    fn decode_array_checks_length() {
        let arr: [u8; 2] = decode_array("beef").unwrap();
        assert_eq!(arr, [0xbe, 0xef]);
        assert!(decode_array::<4>("beef").is_err());
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
