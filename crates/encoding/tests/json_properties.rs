//! Property tests: every JSON value the model can represent serializes and
//! re-parses to itself, and the parser never panics on arbitrary input.

use proptest::prelude::*;
use vnfguard_encoding::json::{parse, Json};

/// Strategy for arbitrary JSON values of bounded depth/size.
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        // Finite floats only: NaN/inf serialize as null by design.
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Json::Float),
        "[ -~]{0,20}".prop_map(Json::Str), // printable ASCII
        "\\PC{0,8}".prop_map(Json::Str),   // arbitrary printable unicode
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(|fields| {
                // Deduplicate keys: objects keep one value per key.
                let mut object = Json::object();
                for (key, value) in fields {
                    object.set(&key, value);
                }
                object
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(value in arb_json()) {
        let text = value.to_string();
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("failed to parse {text:?}: {e}"));
        prop_assert_eq!(reparsed, value);
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_bytes(input in proptest::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(text) = std::str::from_utf8(&input) {
            let _ = parse(text);
        }
    }

    #[test]
    fn double_roundtrip_is_stable(value in arb_json()) {
        // Serialization is canonical: parse(serialize(x)) serializes the same.
        let once = value.to_string();
        let twice = parse(&once).unwrap().to_string();
        prop_assert_eq!(once, twice);
    }
}
