//! The HKDF-based key schedule (TLS 1.3 shaped).

use crate::CipherSuite;
use vnfguard_crypto::hkdf;
use vnfguard_crypto::hmac::hmac_sha256;
use vnfguard_crypto::sha2::Sha256;

/// Running transcript hash over handshake message bytes.
#[derive(Clone)]
pub struct Transcript {
    hasher: Sha256,
}

impl Transcript {
    pub fn new() -> Transcript {
        Transcript {
            hasher: Sha256::new(),
        }
    }

    pub fn absorb(&mut self, message_bytes: &[u8]) {
        self.hasher.update(message_bytes);
    }

    /// Hash of everything absorbed so far (the transcript continues).
    pub fn current(&self) -> [u8; 32] {
        self.hasher.clone().finalize()
    }
}

impl Default for Transcript {
    fn default() -> Self {
        Self::new()
    }
}

/// Directional traffic secrets at one stage.
#[derive(Clone)]
pub struct StageSecrets {
    pub client: [u8; 32],
    pub server: [u8; 32],
}

/// Key material for one direction of the record layer.
#[derive(Clone)]
pub struct TrafficKeys {
    pub key: Vec<u8>,
    pub iv: [u8; 12],
}

/// The full schedule state.
pub struct KeySchedule {
    #[cfg_attr(not(test), allow(dead_code))]
    handshake_secret: [u8; 32],
    master_secret: [u8; 32],
    pub handshake: StageSecrets,
}

fn derive_secret(prk: &[u8; 32], label: &str, transcript_hash: &[u8]) -> [u8; 32] {
    hkdf::expand_label(prk, label, transcript_hash, 32)
        .try_into()
        .expect("32")
}

impl KeySchedule {
    /// Enter the handshake stage from the ECDHE shared secret and the
    /// transcript hash of ClientHello..ServerHello.
    pub fn after_hellos(shared_secret: &[u8; 32], hello_hash: &[u8; 32]) -> KeySchedule {
        let early = hkdf::extract(&[], &[0u8; 32]);
        let derived = derive_secret(&early, "derived", &[]);
        let handshake_secret = hkdf::extract(&derived, shared_secret);
        let handshake = StageSecrets {
            client: derive_secret(&handshake_secret, "c hs traffic", hello_hash),
            server: derive_secret(&handshake_secret, "s hs traffic", hello_hash),
        };
        let derived = derive_secret(&handshake_secret, "derived", &[]);
        let master_secret = hkdf::extract(&derived, &[0u8; 32]);
        KeySchedule {
            handshake_secret,
            master_secret,
            handshake,
        }
    }

    /// Application traffic secrets, bound to the transcript through the
    /// server Finished message.
    pub fn application(&self, finished_hash: &[u8; 32]) -> StageSecrets {
        StageSecrets {
            client: derive_secret(&self.master_secret, "c ap traffic", finished_hash),
            server: derive_secret(&self.master_secret, "s ap traffic", finished_hash),
        }
    }

    /// The Finished MAC key for a handshake traffic secret.
    pub fn finished_key(traffic_secret: &[u8; 32]) -> [u8; 32] {
        derive_secret(traffic_secret, "finished", &[])
    }

    /// Compute a Finished MAC over a transcript hash.
    pub fn finished_mac(traffic_secret: &[u8; 32], transcript_hash: &[u8; 32]) -> [u8; 32] {
        hmac_sha256(&Self::finished_key(traffic_secret), transcript_hash)
    }

    /// Exporter for channel-binding values (e.g. binding a provisioned
    /// credential to this exact session).
    pub fn exporter(&self, label: &str, context: &[u8], len: usize) -> Vec<u8> {
        hkdf::expand_label(&self.master_secret, label, context, len)
    }

    #[cfg(test)]
    pub(crate) fn handshake_secret(&self) -> [u8; 32] {
        self.handshake_secret
    }
}

/// Expand a traffic secret into record-protection keys for `suite`.
pub fn traffic_keys(secret: &[u8; 32], suite: CipherSuite) -> TrafficKeys {
    TrafficKeys {
        key: hkdf::expand_label(secret, "key", &[], suite.key_len()),
        iv: hkdf::expand_label(secret, "iv", &[], 12)
            .try_into()
            .expect("12"),
    }
}

/// Per-record nonce: IV xor big-endian sequence number.
pub fn record_nonce(iv: &[u8; 12], seq: u64) -> [u8; 12] {
    let mut nonce = *iv;
    let seq_bytes = seq.to_be_bytes();
    for i in 0..8 {
        nonce[4 + i] ^= seq_bytes[i];
    }
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_shared() {
        let shared = [7u8; 32];
        let hash = [9u8; 32];
        let a = KeySchedule::after_hellos(&shared, &hash);
        let b = KeySchedule::after_hellos(&shared, &hash);
        assert_eq!(a.handshake.client, b.handshake.client);
        assert_eq!(a.handshake.server, b.handshake.server);
        assert_eq!(a.handshake_secret(), b.handshake_secret());
    }

    #[test]
    fn directions_differ() {
        let ks = KeySchedule::after_hellos(&[1; 32], &[2; 32]);
        assert_ne!(ks.handshake.client, ks.handshake.server);
        let app = ks.application(&[3; 32]);
        assert_ne!(app.client, app.server);
        assert_ne!(app.client, ks.handshake.client);
    }

    #[test]
    fn transcript_binds_all_stages() {
        let a = KeySchedule::after_hellos(&[1; 32], &[2; 32]);
        let b = KeySchedule::after_hellos(&[1; 32], &[3; 32]);
        assert_ne!(a.handshake.client, b.handshake.client);
        // Different finished hashes give different app secrets even with
        // identical earlier stages.
        assert_ne!(
            a.application(&[4; 32]).client,
            a.application(&[5; 32]).client
        );
    }

    #[test]
    fn shared_secret_binds_schedule() {
        let a = KeySchedule::after_hellos(&[1; 32], &[2; 32]);
        let b = KeySchedule::after_hellos(&[9; 32], &[2; 32]);
        assert_ne!(a.handshake.server, b.handshake.server);
    }

    #[test]
    fn finished_mac_depends_on_secret_and_hash() {
        let m1 = KeySchedule::finished_mac(&[1; 32], &[2; 32]);
        let m2 = KeySchedule::finished_mac(&[1; 32], &[3; 32]);
        let m3 = KeySchedule::finished_mac(&[4; 32], &[2; 32]);
        assert_ne!(m1, m2);
        assert_ne!(m1, m3);
        assert_eq!(m1, KeySchedule::finished_mac(&[1; 32], &[2; 32]));
    }

    #[test]
    fn traffic_keys_lengths() {
        let aes = traffic_keys(&[1; 32], CipherSuite::Aes128Gcm);
        assert_eq!(aes.key.len(), 16);
        let chacha = traffic_keys(&[1; 32], CipherSuite::ChaCha20Poly1305);
        assert_eq!(chacha.key.len(), 32);
        assert_ne!(aes.key, chacha.key[..16]);
    }

    #[test]
    fn nonce_sequence() {
        let iv = [0xaa; 12];
        let n0 = record_nonce(&iv, 0);
        let n1 = record_nonce(&iv, 1);
        assert_eq!(n0, iv);
        assert_ne!(n0, n1);
        // Only the tail 8 bytes vary.
        assert_eq!(n0[..4], n1[..4]);
    }

    #[test]
    fn transcript_running_hash() {
        let mut t = Transcript::new();
        let h0 = t.current();
        t.absorb(b"msg1");
        let h1 = t.current();
        t.absorb(b"msg2");
        let h2 = t.current();
        assert_ne!(h0, h1);
        assert_ne!(h1, h2);
        // Same absorptions give the same hash; current() is non-destructive.
        let mut t2 = Transcript::new();
        t2.absorb(b"msg1");
        t2.absorb(b"msg2");
        assert_eq!(t2.current(), h2);
        assert_eq!(t2.current(), h2);
    }

    #[test]
    fn exporter_diversity() {
        let ks = KeySchedule::after_hellos(&[1; 32], &[2; 32]);
        let a = ks.exporter("binding", b"ctx", 32);
        let b = ks.exporter("binding", b"other", 32);
        let c = ks.exporter("other", b"ctx", 32);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
    }
}
