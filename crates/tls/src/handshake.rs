//! The handshake state machines.

use crate::keyschedule::{traffic_keys, KeySchedule, Transcript};
use crate::messages::Handshake;
use crate::record::{
    read_plaintext, read_protected, write_plaintext, write_protected, SealState, INNER_HANDSHAKE,
};
use crate::signer::{certificate_verify_payload, IdentitySigner};
use crate::stream::TlsStream;
use crate::validate::ClientValidator;
use crate::{CipherSuite, TlsError};
use std::io::{Read, Write};
use std::sync::Arc;
use vnfguard_crypto::drbg::SecureRandom;
use vnfguard_crypto::x25519;
use vnfguard_pki::cert::KeyUsage;
use vnfguard_pki::{Certificate, TrustStore};
use vnfguard_telemetry::Telemetry;

/// Client-side configuration.
pub struct ClientConfig {
    /// Anchors used to validate the server certificate.
    pub trust: Arc<TrustStore>,
    /// If set, the server certificate's CN must equal this.
    pub expected_server_cn: Option<String>,
    /// Client identity for mutual authentication (None → anonymous client).
    pub identity: Option<Arc<dyn IdentitySigner>>,
    /// Offered cipher suites, in preference order.
    pub suites: Vec<CipherSuite>,
    /// Validation time (unix seconds).
    pub now: u64,
    /// Observability sink for handshake spans and counters (disabled by
    /// default).
    pub telemetry: Telemetry,
}

impl ClientConfig {
    pub fn new(trust: Arc<TrustStore>, now: u64) -> ClientConfig {
        ClientConfig {
            trust,
            expected_server_cn: None,
            identity: None,
            suites: vec![CipherSuite::Aes128Gcm, CipherSuite::ChaCha20Poly1305],
            now,
            telemetry: Telemetry::disabled(),
        }
    }

    pub fn with_identity(mut self, identity: Arc<dyn IdentitySigner>) -> ClientConfig {
        self.identity = Some(identity);
        self
    }

    pub fn expecting_server(mut self, cn: &str) -> ClientConfig {
        self.expected_server_cn = Some(cn.to_string());
        self
    }

    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> ClientConfig {
        self.telemetry = telemetry.clone();
        self
    }
}

/// Server-side configuration.
pub struct ServerConfig {
    pub identity: Arc<dyn IdentitySigner>,
    /// Some(validator) → mutual TLS (Floodlight's "trusted HTTPS");
    /// None → server-auth only ("HTTPS").
    pub client_auth: Option<ClientValidator>,
    pub suites: Vec<CipherSuite>,
    pub now: u64,
    /// Observability sink for handshake spans and counters (disabled by
    /// default).
    pub telemetry: Telemetry,
}

impl ServerConfig {
    pub fn new(identity: Arc<dyn IdentitySigner>, now: u64) -> ServerConfig {
        ServerConfig {
            identity,
            client_auth: None,
            suites: vec![CipherSuite::Aes128Gcm, CipherSuite::ChaCha20Poly1305],
            now,
            telemetry: Telemetry::disabled(),
        }
    }

    pub fn require_client_auth(mut self, validator: ClientValidator) -> ServerConfig {
        self.client_auth = Some(validator);
        self
    }

    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> ServerConfig {
        self.telemetry = telemetry.clone();
        self
    }
}

/// Negotiated session facts.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    pub suite: CipherSuite,
    /// The authenticated peer certificate (server cert on the client side;
    /// client cert on the server side under mutual auth).
    pub peer_certificate: Option<Certificate>,
    /// Exporter value usable for channel binding.
    pub session_binding: [u8; 32],
}

fn send_hs(
    stream: &mut impl Write,
    seal: &mut SealState,
    transcript: &mut Transcript,
    message: &Handshake,
) -> Result<(), TlsError> {
    let bytes = message.encode();
    transcript.absorb(&bytes);
    write_protected(stream, seal, INNER_HANDSHAKE, &bytes)
}

fn recv_hs(
    stream: &mut impl Read,
    seal: &mut SealState,
) -> Result<(Handshake, Vec<u8>), TlsError> {
    let (inner_type, bytes) = read_protected(stream, seal)?;
    if inner_type != INNER_HANDSHAKE {
        return Err(TlsError::Protocol(
            "expected handshake message during handshake".into(),
        ));
    }
    let message = Handshake::decode(&bytes)?;
    Ok((message, bytes))
}

/// Run the client side of the handshake over `stream`.
pub fn client_handshake<S: Read + Write>(
    stream: S,
    config: &ClientConfig,
    rng: &mut dyn SecureRandom,
) -> Result<(TlsStream<S>, SessionInfo), TlsError> {
    let telemetry = &config.telemetry;
    let result = {
        let _span = telemetry
            .span("tls_client_handshake", config.now)
            .with_histogram(telemetry.histogram("vnfguard_tls_client_handshake_micros"));
        client_handshake_inner(stream, config, rng)
    };
    telemetry.counter("vnfguard_tls_handshakes_total").inc();
    if result.is_err() {
        telemetry.counter("vnfguard_tls_handshake_failures_total").inc();
    }
    result
}

fn client_handshake_inner<S: Read + Write>(
    mut stream: S,
    config: &ClientConfig,
    rng: &mut dyn SecureRandom,
) -> Result<(TlsStream<S>, SessionInfo), TlsError> {
    let mut transcript = Transcript::new();
    let hello_phase = config.telemetry.span("tls_client_hello", config.now);

    // ClientHello.
    let mut random = [0u8; 32];
    rng.fill(&mut random);
    let mut kx_seed = [0u8; 32];
    rng.fill(&mut kx_seed);
    let kx = x25519::EphemeralKeyPair::from_seed(kx_seed);
    let client_hello = Handshake::ClientHello {
        random,
        kx_public: kx.public,
        suites: config.suites.clone(),
    };
    let ch_bytes = client_hello.encode();
    transcript.absorb(&ch_bytes);
    write_plaintext(&mut stream, &ch_bytes)?;

    // ServerHello.
    let sh_bytes = read_plaintext(&mut stream)?;
    transcript.absorb(&sh_bytes);
    let (server_kx, suite) = match Handshake::decode(&sh_bytes)? {
        Handshake::ServerHello {
            kx_public, suite, ..
        } => (kx_public, suite),
        other => {
            return Err(TlsError::Protocol(format!(
                "expected ServerHello, got {other:?}"
            )))
        }
    };
    if !config.suites.contains(&suite) {
        return Err(TlsError::NoSuiteOverlap);
    }

    // Key schedule.
    let shared = kx.agree(&server_kx);
    if shared == [0u8; 32] {
        return Err(TlsError::BadKeyShare);
    }
    let schedule = KeySchedule::after_hellos(&shared, &transcript.current());
    let mut write_seal = SealState::new(suite, &traffic_keys(&schedule.handshake.client, suite));
    let mut read_seal = SealState::new(suite, &traffic_keys(&schedule.handshake.server, suite));
    drop(hello_phase);

    // Server's encrypted flight.
    let auth_phase = config.telemetry.span("tls_client_auth", config.now);
    let mut cert_requested = false;
    let mut server_cert: Option<Certificate> = None;
    let app_secrets;
    loop {
        let (message, bytes) = recv_hs(&mut stream, &mut read_seal)?;
        match message {
            Handshake::CertificateRequest => {
                cert_requested = true;
                transcript.absorb(&bytes);
            }
            Handshake::Certificate(cert) => {
                config
                    .trust
                    .validate(&cert, config.now, KeyUsage::SERVER_AUTH)
                    .map_err(TlsError::CertificateRejected)?;
                if let Some(expected) = &config.expected_server_cn {
                    if cert.subject_cn() != expected {
                        return Err(TlsError::AuthenticationFailed(format!(
                            "server CN {:?} != expected {:?}",
                            cert.subject_cn(),
                            expected
                        )));
                    }
                }
                server_cert = Some(cert);
                transcript.absorb(&bytes);
            }
            Handshake::CertificateVerify { signature } => {
                let cert = server_cert
                    .as_ref()
                    .ok_or_else(|| TlsError::Protocol("CertificateVerify before Certificate".into()))?;
                let payload = certificate_verify_payload(true, &transcript.current());
                cert.tbs
                    .public_key
                    .verify(&payload, &signature)
                    .map_err(|_| {
                        TlsError::AuthenticationFailed("server CertificateVerify".into())
                    })?;
                transcript.absorb(&bytes);
            }
            Handshake::Finished { mac } => {
                let expected =
                    KeySchedule::finished_mac(&schedule.handshake.server, &transcript.current());
                if !vnfguard_crypto::ct_eq(&expected, &mac) {
                    return Err(TlsError::AuthenticationFailed("server Finished".into()));
                }
                if server_cert.is_none() {
                    return Err(TlsError::Protocol("server sent no certificate".into()));
                }
                transcript.absorb(&bytes);
                // Application keys are fixed at the server-Finished transcript.
                app_secrets = Some(schedule.application(&transcript.current()));
                break;
            }
            other => {
                return Err(TlsError::Protocol(format!(
                    "unexpected message in server flight: {other:?}"
                )))
            }
        }
    }
    let app = app_secrets.expect("set at Finished");

    // Client authentication flight.
    if cert_requested {
        let identity = config
            .identity
            .as_ref()
            .ok_or(TlsError::ClientCertificateRequired)?;
        let cert_msg = Handshake::Certificate(identity.certificate());
        send_hs(&mut stream, &mut write_seal, &mut transcript, &cert_msg)?;
        let payload = certificate_verify_payload(false, &transcript.current());
        let verify_msg = Handshake::CertificateVerify {
            signature: identity.sign(&payload),
        };
        send_hs(&mut stream, &mut write_seal, &mut transcript, &verify_msg)?;
    }
    let finished = Handshake::Finished {
        mac: KeySchedule::finished_mac(&schedule.handshake.client, &transcript.current()),
    };
    send_hs(&mut stream, &mut write_seal, &mut transcript, &finished)?;

    // Wait for the server's confirmation: under mutual auth this is where a
    // rejected client certificate surfaces (the server aborts instead).
    match recv_hs(&mut stream, &mut read_seal) {
        Ok((Handshake::SessionConfirm, _)) => {}
        Ok((other, _)) => {
            return Err(TlsError::Protocol(format!(
                "expected SessionConfirm, got {other:?}"
            )))
        }
        Err(TlsError::Io(_)) => {
            return Err(TlsError::AuthenticationFailed(
                "server aborted before confirming the session".into(),
            ))
        }
        Err(e) => return Err(e),
    }

    drop(auth_phase);
    let info = SessionInfo {
        suite,
        peer_certificate: server_cert,
        session_binding: schedule
            .exporter("session binding", b"", 32)
            .try_into()
            .expect("32"),
    };
    let tls = TlsStream::new(
        stream,
        SealState::new(suite, &traffic_keys(&app.client, suite)),
        SealState::new(suite, &traffic_keys(&app.server, suite)),
    );
    Ok((tls, info))
}

/// Run the server side of the handshake over `stream`.
pub fn server_handshake<S: Read + Write>(
    stream: S,
    config: &ServerConfig,
    rng: &mut dyn SecureRandom,
) -> Result<(TlsStream<S>, SessionInfo), TlsError> {
    let telemetry = &config.telemetry;
    let result = {
        let _span = telemetry
            .span("tls_server_handshake", config.now)
            .with_histogram(telemetry.histogram("vnfguard_tls_server_handshake_micros"));
        server_handshake_inner(stream, config, rng)
    };
    telemetry.counter("vnfguard_tls_handshakes_total").inc();
    if result.is_err() {
        telemetry.counter("vnfguard_tls_handshake_failures_total").inc();
    }
    result
}

fn server_handshake_inner<S: Read + Write>(
    mut stream: S,
    config: &ServerConfig,
    rng: &mut dyn SecureRandom,
) -> Result<(TlsStream<S>, SessionInfo), TlsError> {
    let mut transcript = Transcript::new();
    let hello_phase = config.telemetry.span("tls_server_hello", config.now);

    // ClientHello.
    let ch_bytes = read_plaintext(&mut stream)?;
    transcript.absorb(&ch_bytes);
    let (client_kx, client_suites) = match Handshake::decode(&ch_bytes)? {
        Handshake::ClientHello {
            kx_public, suites, ..
        } => (kx_public, suites),
        other => {
            return Err(TlsError::Protocol(format!(
                "expected ClientHello, got {other:?}"
            )))
        }
    };
    // Pick the server's most preferred mutually supported suite.
    let suite = *config
        .suites
        .iter()
        .find(|s| client_suites.contains(s))
        .ok_or(TlsError::NoSuiteOverlap)?;

    // ServerHello.
    let mut random = [0u8; 32];
    rng.fill(&mut random);
    let mut kx_seed = [0u8; 32];
    rng.fill(&mut kx_seed);
    let kx = x25519::EphemeralKeyPair::from_seed(kx_seed);
    let server_hello = Handshake::ServerHello {
        random,
        kx_public: kx.public,
        suite,
    };
    let sh_bytes = server_hello.encode();
    transcript.absorb(&sh_bytes);
    write_plaintext(&mut stream, &sh_bytes)?;

    let shared = kx.agree(&client_kx);
    if shared == [0u8; 32] {
        return Err(TlsError::BadKeyShare);
    }
    let schedule = KeySchedule::after_hellos(&shared, &transcript.current());
    let mut write_seal = SealState::new(suite, &traffic_keys(&schedule.handshake.server, suite));
    let mut read_seal = SealState::new(suite, &traffic_keys(&schedule.handshake.client, suite));
    drop(hello_phase);

    // Server flight.
    let auth_phase = config.telemetry.span("tls_server_auth", config.now);
    if config.client_auth.is_some() {
        send_hs(
            &mut stream,
            &mut write_seal,
            &mut transcript,
            &Handshake::CertificateRequest,
        )?;
    }
    let cert_msg = Handshake::Certificate(config.identity.certificate());
    send_hs(&mut stream, &mut write_seal, &mut transcript, &cert_msg)?;
    let payload = certificate_verify_payload(true, &transcript.current());
    let verify_msg = Handshake::CertificateVerify {
        signature: config.identity.sign(&payload),
    };
    send_hs(&mut stream, &mut write_seal, &mut transcript, &verify_msg)?;
    let finished = Handshake::Finished {
        mac: KeySchedule::finished_mac(&schedule.handshake.server, &transcript.current()),
    };
    send_hs(&mut stream, &mut write_seal, &mut transcript, &finished)?;
    let app = schedule.application(&transcript.current());

    // Client flight.
    let mut client_cert: Option<Certificate> = None;
    loop {
        let (message, bytes) = recv_hs(&mut stream, &mut read_seal)?;
        match message {
            Handshake::Certificate(cert) => {
                let validator = config.client_auth.as_ref().ok_or_else(|| {
                    TlsError::Protocol("unsolicited client certificate".into())
                })?;
                validator.validate(&cert, config.now)?;
                client_cert = Some(cert);
                transcript.absorb(&bytes);
            }
            Handshake::CertificateVerify { signature } => {
                let cert = client_cert.as_ref().ok_or_else(|| {
                    TlsError::Protocol("CertificateVerify before Certificate".into())
                })?;
                let payload = certificate_verify_payload(false, &transcript.current());
                cert.tbs
                    .public_key
                    .verify(&payload, &signature)
                    .map_err(|_| {
                        TlsError::AuthenticationFailed("client CertificateVerify".into())
                    })?;
                transcript.absorb(&bytes);
            }
            Handshake::Finished { mac } => {
                if config.client_auth.is_some() && client_cert.is_none() {
                    return Err(TlsError::ClientCertificateRequired);
                }
                let expected =
                    KeySchedule::finished_mac(&schedule.handshake.client, &transcript.current());
                if !vnfguard_crypto::ct_eq(&expected, &mac) {
                    return Err(TlsError::AuthenticationFailed("client Finished".into()));
                }
                transcript.absorb(&bytes);
                break;
            }
            other => {
                return Err(TlsError::Protocol(format!(
                    "unexpected message in client flight: {other:?}"
                )))
            }
        }
    }

    // Confirm the accepted session to the client.
    send_hs(
        &mut stream,
        &mut write_seal,
        &mut transcript,
        &Handshake::SessionConfirm,
    )?;

    drop(auth_phase);
    let info = SessionInfo {
        suite,
        peer_certificate: client_cert,
        session_binding: schedule
            .exporter("session binding", b"", 32)
            .try_into()
            .expect("32"),
    };
    let tls = TlsStream::new(
        stream,
        SealState::new(suite, &traffic_keys(&app.server, suite)),
        SealState::new(suite, &traffic_keys(&app.client, suite)),
    );
    Ok((tls, info))
}
