//! The record layer: framing and AEAD protection.
//!
//! Wire format per record: `content_type (1) || length (u32 BE) || payload`.
//! Plaintext records carry handshake messages before keys exist; protected
//! records carry `AEAD(inner_type || data)` with the header as AAD.

use crate::keyschedule::{record_nonce, TrafficKeys};
use crate::{CipherSuite, TlsError};
use std::io::{Read, Write};
use vnfguard_crypto::chacha::ChaCha20Poly1305;
use vnfguard_crypto::gcm::AesGcm;

/// Content types.
pub const CT_HANDSHAKE: u8 = 22;
pub const CT_PROTECTED: u8 = 23;

/// Inner content types inside protected records.
pub const INNER_HANDSHAKE: u8 = 22;
pub const INNER_APPLICATION: u8 = 23;

/// Maximum plaintext fragment per record.
pub const MAX_FRAGMENT: usize = 16 * 1024;
/// Maximum record payload on the wire (fragment + tag).
pub const MAX_RECORD: usize = MAX_FRAGMENT + 64;

/// AEAD abstraction over the two negotiated suites.
#[derive(Clone)]
pub enum RecordCipher {
    Aes(AesGcm),
    ChaCha(ChaCha20Poly1305),
}

impl RecordCipher {
    pub fn new(suite: CipherSuite, keys: &TrafficKeys) -> RecordCipher {
        match suite {
            CipherSuite::Aes128Gcm => RecordCipher::Aes(AesGcm::new(&keys.key)),
            CipherSuite::ChaCha20Poly1305 => {
                let key: [u8; 32] = keys.key.as_slice().try_into().expect("32-byte key");
                RecordCipher::ChaCha(ChaCha20Poly1305::new(&key))
            }
        }
    }

    fn seal(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        match self {
            RecordCipher::Aes(gcm) => gcm.seal(nonce, aad, plaintext),
            RecordCipher::ChaCha(aead) => aead.seal(nonce, aad, plaintext),
        }
    }

    fn open(&self, nonce: &[u8; 12], aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, TlsError> {
        match self {
            RecordCipher::Aes(gcm) => gcm.open(nonce, aad, sealed).map_err(|_| TlsError::BadRecord),
            RecordCipher::ChaCha(aead) => {
                aead.open(nonce, aad, sealed).map_err(|_| TlsError::BadRecord)
            }
        }
    }
}

/// One protection direction: cipher, IV and sequence counter.
pub struct SealState {
    cipher: RecordCipher,
    iv: [u8; 12],
    seq: u64,
}

impl SealState {
    pub fn new(suite: CipherSuite, keys: &TrafficKeys) -> SealState {
        SealState {
            cipher: RecordCipher::new(suite, keys),
            iv: keys.iv,
            seq: 0,
        }
    }

    fn next_nonce(&mut self) -> [u8; 12] {
        let nonce = record_nonce(&self.iv, self.seq);
        self.seq += 1;
        nonce
    }
}

fn write_record_raw(
    stream: &mut impl Write,
    content_type: u8,
    payload: &[u8],
) -> Result<(), TlsError> {
    let mut header = [0u8; 5];
    header[0] = content_type;
    header[1..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    stream.write_all(&header)?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(())
}

fn read_record_raw(stream: &mut impl Read) -> Result<(u8, Vec<u8>), TlsError> {
    let mut header = [0u8; 5];
    stream.read_exact(&mut header).map_err(TlsError::Io)?;
    let content_type = header[0];
    let length = u32::from_be_bytes(header[1..].try_into().expect("4")) as usize;
    if length > MAX_RECORD {
        return Err(TlsError::Protocol(format!("record of {length} bytes too large")));
    }
    let mut payload = vec![0u8; length];
    stream.read_exact(&mut payload).map_err(TlsError::Io)?;
    Ok((content_type, payload))
}

/// Write an unprotected handshake record (hellos only).
pub fn write_plaintext(stream: &mut impl Write, message: &[u8]) -> Result<(), TlsError> {
    write_record_raw(stream, CT_HANDSHAKE, message)
}

/// Read an unprotected handshake record.
pub fn read_plaintext(stream: &mut impl Read) -> Result<Vec<u8>, TlsError> {
    let (content_type, payload) = read_record_raw(stream)?;
    if content_type != CT_HANDSHAKE {
        return Err(TlsError::Protocol(format!(
            "expected plaintext handshake record, got type {content_type}"
        )));
    }
    Ok(payload)
}

/// Write a protected record carrying `inner_type || data`.
pub fn write_protected(
    stream: &mut impl Write,
    seal: &mut SealState,
    inner_type: u8,
    data: &[u8],
) -> Result<(), TlsError> {
    debug_assert!(data.len() <= MAX_FRAGMENT);
    let mut inner = Vec::with_capacity(data.len() + 1);
    inner.push(inner_type);
    inner.extend_from_slice(data);
    let nonce = seal.next_nonce();
    // AAD: the outer header the receiver will observe.
    let sealed_len = inner.len() + 16;
    let mut aad = [0u8; 5];
    aad[0] = CT_PROTECTED;
    aad[1..].copy_from_slice(&(sealed_len as u32).to_be_bytes());
    let sealed = seal.cipher.seal(&nonce, &aad, &inner);
    write_record_raw(stream, CT_PROTECTED, &sealed)
}

/// Read a protected record; returns `(inner_type, data)`.
pub fn read_protected(
    stream: &mut impl Read,
    seal: &mut SealState,
) -> Result<(u8, Vec<u8>), TlsError> {
    let (content_type, payload) = read_record_raw(stream)?;
    if content_type != CT_PROTECTED {
        return Err(TlsError::Protocol(format!(
            "expected protected record, got type {content_type}"
        )));
    }
    let mut aad = [0u8; 5];
    aad[0] = CT_PROTECTED;
    aad[1..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    let nonce = seal.next_nonce();
    let mut inner = seal.cipher.open(&nonce, &aad, &payload)?;
    if inner.is_empty() {
        return Err(TlsError::Protocol("empty inner record".into()));
    }
    let inner_type = inner.remove(0);
    Ok((inner_type, inner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyschedule::traffic_keys;
    use vnfguard_net::stream::Duplex;

    fn seal_pair(suite: CipherSuite) -> (SealState, SealState) {
        let keys = traffic_keys(&[7; 32], suite);
        (SealState::new(suite, &keys), SealState::new(suite, &keys))
    }

    #[test]
    fn plaintext_records_roundtrip() {
        let (mut a, mut b) = Duplex::pipe();
        write_plaintext(&mut a, b"client hello bytes").unwrap();
        assert_eq!(read_plaintext(&mut b).unwrap(), b"client hello bytes");
    }

    #[test]
    fn protected_records_roundtrip_both_suites() {
        for suite in [CipherSuite::Aes128Gcm, CipherSuite::ChaCha20Poly1305] {
            let (mut a, mut b) = Duplex::pipe();
            let (mut seal, mut open) = seal_pair(suite);
            write_protected(&mut a, &mut seal, INNER_APPLICATION, b"secret payload").unwrap();
            write_protected(&mut a, &mut seal, INNER_HANDSHAKE, b"finished msg").unwrap();
            let (t1, d1) = read_protected(&mut b, &mut open).unwrap();
            let (t2, d2) = read_protected(&mut b, &mut open).unwrap();
            assert_eq!((t1, d1.as_slice()), (INNER_APPLICATION, &b"secret payload"[..]));
            assert_eq!((t2, d2.as_slice()), (INNER_HANDSHAKE, &b"finished msg"[..]));
        }
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let tap = vnfguard_net::stream::TapHandle::new();
        let (mut a, mut b) =
            Duplex::pair(std::time::Duration::ZERO, Some(&tap));
        let (mut seal, mut open) = seal_pair(CipherSuite::Aes128Gcm);
        write_protected(&mut a, &mut seal, INNER_APPLICATION, b"password=hunter2").unwrap();
        let (_, data) = read_protected(&mut b, &mut open).unwrap();
        assert_eq!(data, b"password=hunter2");
        assert!(!tap.contains(b"hunter2"), "plaintext leaked to the wire");
    }

    #[test]
    fn sequence_mismatch_detected() {
        let (mut a, mut b) = Duplex::pipe();
        let (mut seal, mut open) = seal_pair(CipherSuite::Aes128Gcm);
        write_protected(&mut a, &mut seal, INNER_APPLICATION, b"one").unwrap();
        write_protected(&mut a, &mut seal, INNER_APPLICATION, b"two").unwrap();
        // Receiver skips a record (simulating deletion by an attacker):
        // reading record 2 with nonce 1 fails.
        let (_, first) = read_protected(&mut b, &mut open).unwrap();
        assert_eq!(first, b"one");
        let mut open_skipped = {
            let keys = traffic_keys(&[7; 32], CipherSuite::Aes128Gcm);
            let mut s = SealState::new(CipherSuite::Aes128Gcm, &keys);
            s.seq = 5; // wrong sequence
            s
        };
        assert!(matches!(
            read_protected(&mut b, &mut open_skipped),
            Err(TlsError::BadRecord)
        ));
    }

    #[test]
    fn tampered_record_detected() {
        let (mut a, mut b) = Duplex::pipe();
        let (mut seal, _) = seal_pair(CipherSuite::ChaCha20Poly1305);
        write_protected(&mut a, &mut seal, INNER_APPLICATION, b"data").unwrap();
        // Intercept, flip a ciphertext byte, re-frame.
        let (ct, mut payload) = {
            use std::io::Read as _;
            let mut header = [0u8; 5];
            b.read_exact(&mut header).unwrap();
            let len = u32::from_be_bytes(header[1..].try_into().unwrap()) as usize;
            let mut payload = vec![0u8; len];
            b.read_exact(&mut payload).unwrap();
            (header[0], payload)
        };
        payload[0] ^= 1;
        let (mut c, mut d) = Duplex::pipe();
        write_record_raw(&mut c, ct, &payload).unwrap();
        let keys = traffic_keys(&[7; 32], CipherSuite::ChaCha20Poly1305);
        let mut open = SealState::new(CipherSuite::ChaCha20Poly1305, &keys);
        assert!(matches!(
            read_protected(&mut d, &mut open),
            Err(TlsError::BadRecord)
        ));
    }

    #[test]
    fn oversized_record_rejected() {
        let (mut a, mut b) = Duplex::pipe();
        let mut header = [0u8; 5];
        header[0] = CT_PROTECTED;
        header[1..].copy_from_slice(&((MAX_RECORD + 1) as u32).to_be_bytes());
        use std::io::Write as _;
        a.write_all(&header).unwrap();
        let keys = traffic_keys(&[7; 32], CipherSuite::Aes128Gcm);
        let mut open = SealState::new(CipherSuite::Aes128Gcm, &keys);
        assert!(matches!(
            read_protected(&mut b, &mut open),
            Err(TlsError::Protocol(_))
        ));
    }

    #[test]
    fn wrong_content_type_rejected() {
        let (mut a, mut b) = Duplex::pipe();
        write_plaintext(&mut a, b"hello").unwrap();
        let keys = traffic_keys(&[7; 32], CipherSuite::Aes128Gcm);
        let mut open = SealState::new(CipherSuite::Aes128Gcm, &keys);
        assert!(read_protected(&mut b, &mut open).is_err());
    }
}
