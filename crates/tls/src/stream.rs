//! The post-handshake protected stream.

use crate::record::{read_protected, write_protected, SealState, INNER_APPLICATION, MAX_FRAGMENT};
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Decomposed session state: `(transport, send state, recv state, buffered
/// plaintext)` — see [`TlsStream::into_parts`].
pub type SessionParts<S> = (S, SealState, SealState, Vec<u8>);

/// An established TLS session: `Read`/`Write` with AEAD record protection.
pub struct TlsStream<S> {
    inner: S,
    send: SealState,
    recv: SealState,
    read_buffer: VecDeque<u8>,
    records_sent: u64,
    records_received: u64,
}

impl<S: Read + Write> TlsStream<S> {
    pub(crate) fn new(inner: S, send: SealState, recv: SealState) -> TlsStream<S> {
        TlsStream {
            inner,
            send,
            recv,
            read_buffer: VecDeque::new(),
            records_sent: 0,
            records_received: 0,
        }
    }

    pub fn records_sent(&self) -> u64 {
        self.records_sent
    }

    pub fn records_received(&self) -> u64 {
        self.records_received
    }

    /// Access the underlying transport (e.g. for byte accounting).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Decompose into transport and directional record states.
    ///
    /// This exists for hosts that must persist a session across execution
    /// boundaries while swapping the transport — the SGX credential enclave
    /// keeps the [`SealState`]s (the session keys) inside enclave memory
    /// between ecalls and reattaches an ocall-backed transport on each
    /// entry. Buffered undelivered plaintext is returned as the final
    /// element and must be replayed into the successor.
    pub fn into_parts(self) -> SessionParts<S> {
        (
            self.inner,
            self.send,
            self.recv,
            self.read_buffer.into_iter().collect(),
        )
    }

    /// Reassemble a stream from parts produced by [`TlsStream::into_parts`]
    /// (possibly with a different transport instance).
    pub fn from_parts(
        inner: S,
        send: SealState,
        recv: SealState,
        buffered: Vec<u8>,
    ) -> TlsStream<S> {
        TlsStream {
            inner,
            send,
            recv,
            read_buffer: buffered.into(),
            records_sent: 0,
            records_received: 0,
        }
    }
}

impl<S: Read + Write> Read for TlsStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.read_buffer.is_empty() {
            match read_protected(&mut self.inner, &mut self.recv) {
                Ok((inner_type, data)) => {
                    if inner_type != INNER_APPLICATION {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "unexpected non-application record",
                        ));
                    }
                    self.records_received += 1;
                    self.read_buffer.extend(data);
                }
                Err(crate::TlsError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    return Ok(0); // clean transport EOF
                }
                Err(crate::TlsError::Io(e)) => return Err(e),
                Err(other) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, other.to_string()))
                }
            }
        }
        let n = buf.len().min(self.read_buffer.len());
        for slot in buf.iter_mut().take(n) {
            *slot = self.read_buffer.pop_front().expect("non-empty");
        }
        Ok(n)
    }
}

impl<S: Read + Write> Write for TlsStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for chunk in buf.chunks(MAX_FRAGMENT) {
            write_protected(&mut self.inner, &mut self.send, INNER_APPLICATION, chunk)
                .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
            self.records_sent += 1;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S> std::fmt::Debug for TlsStream<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Keys and buffered plaintext are never printed.
        f.debug_struct("TlsStream")
            .field("records_sent", &self.records_sent)
            .field("records_received", &self.records_received)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::{client_handshake, server_handshake, ClientConfig, ServerConfig};
    use crate::signer::LocalSigner;
    use crate::validate::ClientValidator;
    use crate::{CipherSuite, TlsError};
    use std::sync::Arc;
    use vnfguard_crypto::drbg::HmacDrbg;
    use vnfguard_crypto::ed25519::SigningKey;
    use vnfguard_net::stream::{Duplex, TapHandle};
    use vnfguard_pki::ca::{CertificateAuthority, IssueProfile};
    use vnfguard_pki::cert::{DistinguishedName, Validity};
    use vnfguard_pki::crl::RevocationReason;
    use vnfguard_pki::{Certificate, KeyStore, TrustStore};

    struct TestPki {
        ca: CertificateAuthority,
        server_signer: Arc<LocalSigner>,
        client_signer: Arc<LocalSigner>,
        client_cert: Certificate,
    }

    fn pki() -> TestPki {
        let mut rng = HmacDrbg::new(b"tls tests");
        let mut ca = CertificateAuthority::new(
            DistinguishedName::new("vm-ca"),
            Validity::new(0, 1_000_000),
            &mut rng,
        );
        let server_key = SigningKey::from_seed(&[10; 32]);
        let server_cert = ca.issue(
            DistinguishedName::new("controller"),
            server_key.public_key(),
            &IssueProfile::server(),
            0,
        );
        let client_key = SigningKey::from_seed(&[11; 32]);
        let client_cert = ca.issue(
            DistinguishedName::new("vnf-1"),
            client_key.public_key(),
            &IssueProfile::vnf_client([0; 32]),
            0,
        );
        TestPki {
            server_signer: Arc::new(LocalSigner::new(server_key, server_cert)),
            client_signer: Arc::new(LocalSigner::new(client_key, client_cert.clone())),
            client_cert,
            ca,
        }
    }

    fn trust(ca: &CertificateAuthority) -> Arc<TrustStore> {
        let mut store = TrustStore::new();
        store.add_anchor(ca.certificate().clone()).unwrap();
        Arc::new(store)
    }

    fn ca_validator(ca: &CertificateAuthority) -> ClientValidator {
        let mut store = TrustStore::new();
        store.add_anchor(ca.certificate().clone()).unwrap();
        ClientValidator::ca(store)
    }

    type HandshakeResult =
        Result<(TlsStream<Duplex>, crate::handshake::SessionInfo), TlsError>;

    /// Run client and server handshakes concurrently over a pipe.
    fn run_handshake(
        client_config: ClientConfig,
        server_config: ServerConfig,
    ) -> (HandshakeResult, HandshakeResult, TapHandle) {
        let tap = TapHandle::new();
        let (client_end, server_end) = Duplex::pair(std::time::Duration::ZERO, Some(&tap));
        let server_thread = std::thread::spawn(move || {
            let mut rng = HmacDrbg::new(b"server rng");
            server_handshake(server_end, &server_config, &mut rng)
        });
        let mut rng = HmacDrbg::new(b"client rng");
        let client_result = client_handshake(client_end, &client_config, &mut rng);
        let server_result = server_thread.join().expect("server thread");
        (client_result, server_result, tap)
    }

    #[test]
    fn server_auth_handshake_and_data() {
        let pki = pki();
        let (client, server, tap) = run_handshake(
            ClientConfig::new(trust(&pki.ca), 100).expecting_server("controller"),
            ServerConfig::new(pki.server_signer.clone(), 100),
        );
        let (mut client, client_info) = client.unwrap();
        let (mut server, server_info) = server.unwrap();
        assert_eq!(client_info.suite, server_info.suite);
        assert_eq!(
            client_info.peer_certificate.as_ref().map(|c| c.subject_cn()),
            Some("controller")
        );
        assert_eq!(server_info.peer_certificate, None);
        // Channel binding agrees on both ends.
        assert_eq!(client_info.session_binding, server_info.session_binding);

        client.write_all(b"GET /secret-credential").unwrap();
        let mut buf = [0u8; 22];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"GET /secret-credential");
        server.write_all(b"response body").unwrap();
        let mut buf = [0u8; 13];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"response body");

        // The wire never saw the plaintext.
        assert!(!tap.contains(b"secret-credential"));
        assert!(!tap.contains(b"response body"));
    }

    #[test]
    fn handshake_telemetry_records_spans_and_counters() {
        use vnfguard_telemetry::Telemetry;
        let pki = pki();
        // Separate bundles per side: the handshakes run on two threads, and
        // a shared tracer would interleave their nesting stacks.
        let client_tele = Telemetry::new();
        let server_tele = Telemetry::new();
        let (client, server, _tap) = run_handshake(
            ClientConfig::new(trust(&pki.ca), 100)
                .expecting_server("controller")
                .with_telemetry(&client_tele),
            ServerConfig::new(pki.server_signer.clone(), 100).with_telemetry(&server_tele),
        );
        client.unwrap();
        server.unwrap();
        assert_eq!(
            client_tele.metrics().counter_value("vnfguard_tls_handshakes_total"),
            Some(1)
        );
        assert_eq!(
            client_tele
                .metrics()
                .counter_value("vnfguard_tls_handshake_failures_total"),
            None
        );
        let names: Vec<String> = client_tele
            .tracer()
            .finished()
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert!(names.contains(&"tls_client_handshake".to_string()));
        assert!(names.contains(&"tls_client_hello".to_string()));
        assert!(names.contains(&"tls_client_auth".to_string()));
        let snapshot = client_tele
            .metrics()
            .histogram_snapshot("vnfguard_tls_client_handshake_micros")
            .unwrap();
        assert_eq!(snapshot.count(), 1);
        let server_names: Vec<String> = server_tele
            .tracer()
            .finished()
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert!(server_names.contains(&"tls_server_handshake".to_string()));
    }

    #[test]
    fn mutual_auth_handshake() {
        let pki = pki();
        let (client, server, _tap) = run_handshake(
            ClientConfig::new(trust(&pki.ca), 100).with_identity(pki.client_signer.clone()),
            ServerConfig::new(pki.server_signer.clone(), 100)
                .require_client_auth(ca_validator(&pki.ca)),
        );
        let (_c, _ci) = client.unwrap();
        let (_s, server_info) = server.unwrap();
        assert_eq!(
            server_info.peer_certificate.map(|c| c.subject_cn().to_string()),
            Some("vnf-1".to_string())
        );
    }

    #[test]
    fn client_without_identity_rejected_under_mutual_auth() {
        let pki = pki();
        let (client, server, _tap) = run_handshake(
            ClientConfig::new(trust(&pki.ca), 100),
            ServerConfig::new(pki.server_signer.clone(), 100)
                .require_client_auth(ca_validator(&pki.ca)),
        );
        assert!(matches!(client, Err(TlsError::ClientCertificateRequired)));
        assert!(server.is_err());
    }

    #[test]
    fn untrusted_server_rejected() {
        let pki = pki();
        // Client trusts a different CA.
        let mut rng = HmacDrbg::new(b"other ca");
        let other_ca = CertificateAuthority::new(
            DistinguishedName::new("rogue"),
            Validity::new(0, 1_000_000),
            &mut rng,
        );
        let (client, _server, _tap) = run_handshake(
            ClientConfig::new(trust(&other_ca), 100),
            ServerConfig::new(pki.server_signer.clone(), 100),
        );
        assert!(matches!(client, Err(TlsError::CertificateRejected(_))));
    }

    #[test]
    fn wrong_server_name_rejected() {
        let pki = pki();
        let (client, _server, _tap) = run_handshake(
            ClientConfig::new(trust(&pki.ca), 100).expecting_server("other-controller"),
            ServerConfig::new(pki.server_signer.clone(), 100),
        );
        assert!(matches!(client, Err(TlsError::AuthenticationFailed(_))));
    }

    #[test]
    fn revoked_client_rejected() {
        let mut pki = pki();
        let serial = pki.client_cert.serial();
        pki.ca.revoke(serial, RevocationReason::KeyCompromise, 50);
        let validator = ca_validator(&pki.ca);
        validator
            .trust_store()
            .unwrap()
            .write()
            .install_crl(pki.ca.current_crl(60, 1000))
            .unwrap();
        let (client, server, _tap) = run_handshake(
            ClientConfig::new(trust(&pki.ca), 100).with_identity(pki.client_signer.clone()),
            ServerConfig::new(pki.server_signer.clone(), 100).require_client_auth(validator),
        );
        assert!(matches!(server, Err(TlsError::CertificateRejected(_))));
        // The client may complete its half of the handshake before the
        // server aborts (it sends its flight without waiting) — but the
        // session is unusable: the first read sees EOF or an error.
        if let Ok((mut stream, _)) = client {
            let mut buf = [0u8; 1];
            match stream.read(&mut buf) {
                Ok(0) => {}         // clean EOF from the aborted server
                Ok(_) => panic!("revoked client received data"),
                Err(_) => {}        // transport error is equally a rejection
            }
        }
    }

    #[test]
    fn keystore_validation_mode() {
        let pki = pki();
        let mut keystore = KeyStore::new();
        keystore.set("vnf-1", pki.client_cert.clone());
        let (client, server, _tap) = run_handshake(
            ClientConfig::new(trust(&pki.ca), 100).with_identity(pki.client_signer.clone()),
            ServerConfig::new(pki.server_signer.clone(), 100)
                .require_client_auth(ClientValidator::keystore(keystore)),
        );
        client.unwrap();
        server.unwrap();

        // An issued-but-not-enrolled certificate is refused in this model.
        let (client, server, _tap) = run_handshake(
            ClientConfig::new(trust(&pki.ca), 100).with_identity(pki.client_signer.clone()),
            ServerConfig::new(pki.server_signer.clone(), 100)
                .require_client_auth(ClientValidator::keystore(KeyStore::new())),
        );
        assert!(client.is_err());
        assert!(matches!(server, Err(TlsError::CertificateRejected(_))));
    }

    #[test]
    fn suite_negotiation() {
        let pki = pki();
        let mut client_config = ClientConfig::new(trust(&pki.ca), 100);
        client_config.suites = vec![CipherSuite::ChaCha20Poly1305];
        let (client, server, _tap) = run_handshake(
            client_config,
            ServerConfig::new(pki.server_signer.clone(), 100),
        );
        let (_c, info) = client.unwrap();
        assert_eq!(info.suite, CipherSuite::ChaCha20Poly1305);
        server.unwrap();
    }

    #[test]
    fn no_suite_overlap_fails() {
        let pki = pki();
        let mut client_config = ClientConfig::new(trust(&pki.ca), 100);
        client_config.suites = vec![CipherSuite::ChaCha20Poly1305];
        let mut server_config = ServerConfig::new(pki.server_signer.clone(), 100);
        server_config.suites = vec![CipherSuite::Aes128Gcm];
        let (client, server, _tap) = run_handshake(client_config, server_config);
        assert!(matches!(server, Err(TlsError::NoSuiteOverlap)));
        assert!(client.is_err());
    }

    #[test]
    fn expired_certificates_rejected() {
        let pki = pki();
        // Validate far in the future: the server cert (365d) has expired.
        let far_future = 400 * 24 * 3600;
        let (client, _server, _tap) = run_handshake(
            ClientConfig::new(trust(&pki.ca), far_future),
            ServerConfig::new(pki.server_signer.clone(), far_future),
        );
        assert!(matches!(client, Err(TlsError::CertificateRejected(_))));
    }

    #[test]
    fn large_transfers_fragment_correctly() {
        let pki = pki();
        let (client, server, _tap) = run_handshake(
            ClientConfig::new(trust(&pki.ca), 100),
            ServerConfig::new(pki.server_signer.clone(), 100),
        );
        let (mut client, _) = client.unwrap();
        let (mut server, _) = server.unwrap();
        let payload: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        let expected = payload.clone();
        let writer = std::thread::spawn(move || {
            client.write_all(&payload).unwrap();
            client
        });
        let mut received = vec![0u8; expected.len()];
        server.read_exact(&mut received).unwrap();
        assert_eq!(received, expected);
        let client = writer.join().unwrap();
        assert!(client.records_sent() >= 7, "expected fragmentation");
    }
}
