//! Handshake message encoding.

use crate::{CipherSuite, TlsError};
use vnfguard_encoding::{TlvReader, TlvWriter};
use vnfguard_pki::Certificate;

const TAG_RANDOM: u8 = 0xb0;
const TAG_KX: u8 = 0xb1;
const TAG_SUITES: u8 = 0xb2;
const TAG_SUITE: u8 = 0xb3;
const TAG_CERT: u8 = 0xb4;
const TAG_SIGNATURE: u8 = 0xb5;
const TAG_MAC: u8 = 0xb6;

/// Message type discriminants (first byte of each handshake message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgType {
    ClientHello = 1,
    ServerHello = 2,
    CertificateRequest = 3,
    Certificate = 4,
    CertificateVerify = 5,
    Finished = 6,
    SessionConfirm = 7,
}

impl MsgType {
    fn from_u8(v: u8) -> Result<MsgType, TlsError> {
        Ok(match v {
            1 => MsgType::ClientHello,
            2 => MsgType::ServerHello,
            3 => MsgType::CertificateRequest,
            4 => MsgType::Certificate,
            5 => MsgType::CertificateVerify,
            6 => MsgType::Finished,
            7 => MsgType::SessionConfirm,
            other => return Err(TlsError::Protocol(format!("bad message type {other}"))),
        })
    }
}

/// A decoded handshake message.
#[derive(Debug, Clone, PartialEq)]
pub enum Handshake {
    ClientHello {
        random: [u8; 32],
        kx_public: [u8; 32],
        suites: Vec<CipherSuite>,
    },
    ServerHello {
        random: [u8; 32],
        kx_public: [u8; 32],
        suite: CipherSuite,
    },
    CertificateRequest,
    Certificate(Certificate),
    CertificateVerify {
        signature: Vec<u8>,
    },
    Finished {
        mac: [u8; 32],
    },
    /// Server → client after the client flight verified: confirms the
    /// mutual authentication outcome so the client learns about rejection
    /// at handshake time rather than on first read.
    SessionConfirm,
}

impl Handshake {
    /// Encode with the leading type byte (the transcript hashes these bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        let msg_type = match self {
            Handshake::ClientHello {
                random,
                kx_public,
                suites,
            } => {
                w.bytes(TAG_RANDOM, random).bytes(TAG_KX, kx_public);
                let suite_bytes: Vec<u8> = suites.iter().map(|s| s.to_u8()).collect();
                w.bytes(TAG_SUITES, &suite_bytes);
                MsgType::ClientHello
            }
            Handshake::ServerHello {
                random,
                kx_public,
                suite,
            } => {
                w.bytes(TAG_RANDOM, random)
                    .bytes(TAG_KX, kx_public)
                    .u8(TAG_SUITE, suite.to_u8());
                MsgType::ServerHello
            }
            Handshake::CertificateRequest => MsgType::CertificateRequest,
            Handshake::Certificate(cert) => {
                w.bytes(TAG_CERT, &cert.encode());
                MsgType::Certificate
            }
            Handshake::CertificateVerify { signature } => {
                w.bytes(TAG_SIGNATURE, signature);
                MsgType::CertificateVerify
            }
            Handshake::Finished { mac } => {
                w.bytes(TAG_MAC, mac);
                MsgType::Finished
            }
            Handshake::SessionConfirm => MsgType::SessionConfirm,
        };
        let mut out = vec![msg_type as u8];
        out.extend_from_slice(&w.finish());
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<Handshake, TlsError> {
        let (&type_byte, rest) = bytes
            .split_first()
            .ok_or_else(|| TlsError::Protocol("empty handshake message".into()))?;
        let mut r = TlvReader::new(rest);
        let msg = match MsgType::from_u8(type_byte)? {
            MsgType::ClientHello => {
                let random = r.expect_array::<32>(TAG_RANDOM)?;
                let kx_public = r.expect_array::<32>(TAG_KX)?;
                let suite_bytes = r.expect(TAG_SUITES)?;
                let mut suites = Vec::with_capacity(suite_bytes.len());
                for &b in suite_bytes {
                    suites.push(
                        CipherSuite::from_u8(b)
                            .ok_or_else(|| TlsError::Protocol(format!("bad suite {b}")))?,
                    );
                }
                if suites.is_empty() {
                    return Err(TlsError::Protocol("empty suite list".into()));
                }
                Handshake::ClientHello {
                    random,
                    kx_public,
                    suites,
                }
            }
            MsgType::ServerHello => Handshake::ServerHello {
                random: r.expect_array::<32>(TAG_RANDOM)?,
                kx_public: r.expect_array::<32>(TAG_KX)?,
                suite: {
                    let b = r.expect_u8(TAG_SUITE)?;
                    CipherSuite::from_u8(b)
                        .ok_or_else(|| TlsError::Protocol(format!("bad suite {b}")))?
                },
            },
            MsgType::CertificateRequest => Handshake::CertificateRequest,
            MsgType::Certificate => {
                let cert_bytes = r.expect(TAG_CERT)?;
                Handshake::Certificate(
                    Certificate::decode(cert_bytes)
                        .map_err(|e| TlsError::Protocol(format!("bad certificate: {e}")))?,
                )
            }
            MsgType::CertificateVerify => Handshake::CertificateVerify {
                signature: r.expect(TAG_SIGNATURE)?.to_vec(),
            },
            MsgType::Finished => Handshake::Finished {
                mac: r.expect_array::<32>(TAG_MAC)?,
            },
            MsgType::SessionConfirm => Handshake::SessionConfirm,
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_crypto::ed25519::SigningKey;
    use vnfguard_pki::cert::{DistinguishedName, KeyUsage, TbsCertificate, Validity};

    fn sample_cert() -> Certificate {
        let key = SigningKey::from_seed(&[1; 32]);
        Certificate::sign(
            TbsCertificate {
                serial: 1,
                subject: DistinguishedName::new("s"),
                issuer: DistinguishedName::new("i"),
                validity: Validity::new(0, 10),
                public_key: key.public_key(),
                key_usage: KeyUsage::DIGITAL_SIGNATURE,
                is_ca: false,
                enclave_binding: None,
            },
            &key,
        )
    }

    #[test]
    fn all_messages_roundtrip() {
        let messages = vec![
            Handshake::ClientHello {
                random: [1; 32],
                kx_public: [2; 32],
                suites: vec![CipherSuite::Aes128Gcm, CipherSuite::ChaCha20Poly1305],
            },
            Handshake::ServerHello {
                random: [3; 32],
                kx_public: [4; 32],
                suite: CipherSuite::ChaCha20Poly1305,
            },
            Handshake::CertificateRequest,
            Handshake::Certificate(sample_cert()),
            Handshake::CertificateVerify {
                signature: vec![9; 64],
            },
            Handshake::Finished { mac: [5; 32] },
            Handshake::SessionConfirm,
        ];
        for msg in messages {
            let decoded = Handshake::decode(&msg.encode()).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn rejects_bad_type() {
        assert!(Handshake::decode(&[99]).is_err());
        assert!(Handshake::decode(&[]).is_err());
    }

    #[test]
    fn rejects_empty_suites() {
        let ch = Handshake::ClientHello {
            random: [0; 32],
            kx_public: [0; 32],
            suites: vec![CipherSuite::Aes128Gcm],
        };
        let mut bytes = ch.encode();
        // The suites record is the last one: truncate its single byte and
        // patch the length... simpler: craft via writer.
        let _ = &mut bytes;
        let mut w = TlvWriter::new();
        w.bytes(TAG_RANDOM, &[0; 32])
            .bytes(TAG_KX, &[0; 32])
            .bytes(TAG_SUITES, &[]);
        let mut crafted = vec![MsgType::ClientHello as u8];
        crafted.extend_from_slice(&w.finish());
        assert!(Handshake::decode(&crafted).is_err());
    }

    #[test]
    fn rejects_unknown_suite_byte() {
        let mut w = TlvWriter::new();
        w.bytes(TAG_RANDOM, &[0; 32])
            .bytes(TAG_KX, &[0; 32])
            .bytes(TAG_SUITES, &[77]);
        let mut crafted = vec![MsgType::ClientHello as u8];
        crafted.extend_from_slice(&w.finish());
        assert!(Handshake::decode(&crafted).is_err());
    }

    #[test]
    fn trailing_data_rejected() {
        let mut bytes = Handshake::CertificateRequest.encode();
        bytes.extend_from_slice(&[0, 0, 0]);
        assert!(Handshake::decode(&bytes).is_err());
    }
}
