//! # vnfguard-tls
//!
//! A TLS-1.3-shaped secure channel, built from scratch on the workspace
//! crypto: X25519 ECDHE, an HKDF key schedule with labeled derivations,
//! Ed25519 certificate authentication, AEAD-protected records, and both
//! server-only and mutual authentication.
//!
//! This stands in for the paper's mbedtls-SGX: the handshake and record
//! protection run wherever the caller places them — in particular *inside*
//! the credential enclave (`vnfguard-vnf`), so that "the security context
//! established for each TLS session (including the session key) does not
//! leave the enclave" (paper §2).
//!
//! The crucial design decision enabling enclave residency is the
//! [`signer::IdentitySigner`] trait: the handshake never touches a private
//! key, it only requests signatures — the enclave implements the trait with
//! an internal key that has no extraction path.
//!
//! Client validation supports both models the paper contrasts (§3):
//! CA-signature validation ([`validate::ClientValidator::Ca`]) and
//! per-client keystore membership ([`validate::ClientValidator::Keystore`]).
//! Experiment **E5** benchmarks them against each other.
//!
//! ## Protocol shape (one round trip)
//!
//! ```text
//! C → S  ClientHello(random, x25519 share, suites)
//! S → C  ServerHello(random, x25519 share, suite)       [plaintext]
//! S → C  {CertRequest?} {Cert} {CertVerify} {Finished}  [hs keys]
//! C → S  {Cert CertVerify}? {Finished}                  [hs keys]
//! ......  application data                               [app keys]
//! ```

pub mod handshake;
pub mod keyschedule;
pub mod messages;
pub mod record;
pub mod signer;
pub mod stream;
pub mod validate;

pub use handshake::{client_handshake, server_handshake, ClientConfig, ServerConfig};
pub use signer::{IdentitySigner, LocalSigner};
pub use stream::TlsStream;
pub use validate::ClientValidator;

/// Cipher suites the channel can negotiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CipherSuite {
    Aes128Gcm,
    ChaCha20Poly1305,
}

impl CipherSuite {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            CipherSuite::Aes128Gcm => 1,
            CipherSuite::ChaCha20Poly1305 => 2,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<CipherSuite> {
        match v {
            1 => Some(CipherSuite::Aes128Gcm),
            2 => Some(CipherSuite::ChaCha20Poly1305),
            _ => None,
        }
    }

    pub(crate) fn key_len(self) -> usize {
        match self {
            CipherSuite::Aes128Gcm => 16,
            CipherSuite::ChaCha20Poly1305 => 32,
        }
    }
}

/// Errors from handshaking and record protection.
#[derive(Debug)]
pub enum TlsError {
    Io(std::io::Error),
    /// Structural problem in a handshake message or record.
    Protocol(String),
    /// No common cipher suite.
    NoSuiteOverlap,
    /// Peer certificate failed validation.
    CertificateRejected(vnfguard_pki::PkiError),
    /// A CertificateVerify or Finished check failed.
    AuthenticationFailed(String),
    /// Server requires a client certificate and none was offered.
    ClientCertificateRequired,
    /// Record decryption failed (tampering or key mismatch).
    BadRecord,
    /// The peer's key share was invalid (e.g. low-order point).
    BadKeyShare,
}

impl std::fmt::Display for TlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlsError::Io(e) => write!(f, "io: {e}"),
            TlsError::Protocol(msg) => write!(f, "protocol: {msg}"),
            TlsError::NoSuiteOverlap => write!(f, "no common cipher suite"),
            TlsError::CertificateRejected(e) => write!(f, "certificate rejected: {e}"),
            TlsError::AuthenticationFailed(msg) => write!(f, "authentication failed: {msg}"),
            TlsError::ClientCertificateRequired => write!(f, "client certificate required"),
            TlsError::BadRecord => write!(f, "record authentication failed"),
            TlsError::BadKeyShare => write!(f, "invalid peer key share"),
        }
    }
}

impl std::error::Error for TlsError {}

impl From<std::io::Error> for TlsError {
    fn from(e: std::io::Error) -> TlsError {
        TlsError::Io(e)
    }
}

impl From<vnfguard_encoding::EncodingError> for TlsError {
    fn from(e: vnfguard_encoding::EncodingError) -> TlsError {
        TlsError::Protocol(e.to_string())
    }
}
