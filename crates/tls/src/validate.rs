//! Client-certificate validation: the two models the paper contrasts.

use crate::TlsError;
use parking_lot::RwLock;
use std::sync::Arc;
use vnfguard_pki::cert::KeyUsage;
use vnfguard_pki::{Certificate, KeyStore, PkiError, TrustStore};

/// How a server decides whether to trust a presented client certificate.
#[derive(Clone)]
pub enum ClientValidator {
    /// CA model (the paper's choice): validate the signature chain against
    /// trust anchors, plus expiry and revocation. O(1) in the number of
    /// enrolled clients.
    Ca(Arc<RwLock<TrustStore>>),
    /// Keystore model (Floodlight's default): the exact certificate must be
    /// present in the server's keystore. O(n) scan, and the store must be
    /// updated for every newly created key.
    Keystore(Arc<RwLock<KeyStore>>),
}

impl ClientValidator {
    pub fn ca(store: TrustStore) -> ClientValidator {
        ClientValidator::Ca(Arc::new(RwLock::new(store)))
    }

    pub fn keystore(store: KeyStore) -> ClientValidator {
        ClientValidator::Keystore(Arc::new(RwLock::new(store)))
    }

    /// Validate the client certificate at time `now`.
    pub fn validate(&self, cert: &Certificate, now: u64) -> Result<(), TlsError> {
        match self {
            ClientValidator::Ca(store) => store
                .read()
                .validate(cert, now, KeyUsage::CLIENT_AUTH)
                .map_err(TlsError::CertificateRejected),
            ClientValidator::Keystore(store) => {
                if store.read().contains_certificate(cert) {
                    Ok(())
                } else {
                    Err(TlsError::CertificateRejected(PkiError::UnknownIssuer(
                        format!("certificate of {} not in keystore", cert.subject_cn()),
                    )))
                }
            }
        }
    }

    /// Shared handle for runtime updates (CRL installs / keystore churn).
    pub fn trust_store(&self) -> Option<Arc<RwLock<TrustStore>>> {
        match self {
            ClientValidator::Ca(store) => Some(store.clone()),
            ClientValidator::Keystore(_) => None,
        }
    }

    pub fn key_store(&self) -> Option<Arc<RwLock<KeyStore>>> {
        match self {
            ClientValidator::Keystore(store) => Some(store.clone()),
            ClientValidator::Ca(_) => None,
        }
    }
}

impl std::fmt::Debug for ClientValidator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientValidator::Ca(_) => write!(f, "ClientValidator::Ca"),
            ClientValidator::Keystore(store) => {
                write!(f, "ClientValidator::Keystore({} entries)", store.read().len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_crypto::drbg::HmacDrbg;
    use vnfguard_crypto::ed25519::SigningKey;
    use vnfguard_pki::ca::{CertificateAuthority, IssueProfile};
    use vnfguard_pki::cert::{DistinguishedName, Validity};
    use vnfguard_pki::crl::RevocationReason;

    fn ca_and_cert() -> (CertificateAuthority, Certificate) {
        let mut rng = HmacDrbg::new(b"validate");
        let mut ca = CertificateAuthority::new(
            DistinguishedName::new("vm-ca"),
            Validity::new(0, 1_000_000),
            &mut rng,
        );
        let key = SigningKey::from_seed(&[1; 32]);
        let cert = ca.issue(
            DistinguishedName::new("vnf-1"),
            key.public_key(),
            &IssueProfile::vnf_client([0; 32]),
            10,
        );
        (ca, cert)
    }

    #[test]
    fn ca_model_accepts_issued_cert() {
        let (ca, cert) = ca_and_cert();
        let mut store = TrustStore::new();
        store.add_anchor(ca.certificate().clone()).unwrap();
        let validator = ClientValidator::ca(store);
        validator.validate(&cert, 100).unwrap();
    }

    #[test]
    fn ca_model_rejects_foreign_cert() {
        let (_ca, cert) = ca_and_cert();
        let validator = ClientValidator::ca(TrustStore::new());
        assert!(validator.validate(&cert, 100).is_err());
    }

    #[test]
    fn ca_model_honors_revocation_updates() {
        let (mut ca, cert) = ca_and_cert();
        let mut store = TrustStore::new();
        store.add_anchor(ca.certificate().clone()).unwrap();
        let validator = ClientValidator::ca(store);
        validator.validate(&cert, 100).unwrap();
        // Revoke and push the CRL through the shared handle — this is how
        // the Verification Manager evicts a credential live.
        ca.revoke(cert.serial(), RevocationReason::KeyCompromise, 150);
        validator
            .trust_store()
            .unwrap()
            .write()
            .install_crl(ca.current_crl(150, 1000))
            .unwrap();
        assert!(validator.validate(&cert, 200).is_err());
    }

    #[test]
    fn keystore_model_requires_exact_membership() {
        let (_ca, cert) = ca_and_cert();
        let validator = ClientValidator::keystore(KeyStore::new());
        assert!(validator.validate(&cert, 100).is_err());
        validator
            .key_store()
            .unwrap()
            .write()
            .set("vnf-1", cert.clone());
        validator.validate(&cert, 100).unwrap();
        // Removal (the maintenance burden the paper avoids) de-trusts it.
        validator.key_store().unwrap().write().remove("vnf-1");
        assert!(validator.validate(&cert, 100).is_err());
    }

    #[test]
    fn handles_expose_correct_variants() {
        let (_, _) = ca_and_cert();
        let ca_validator = ClientValidator::ca(TrustStore::new());
        assert!(ca_validator.trust_store().is_some());
        assert!(ca_validator.key_store().is_none());
        let ks_validator = ClientValidator::keystore(KeyStore::new());
        assert!(ks_validator.key_store().is_some());
        assert!(ks_validator.trust_store().is_none());
    }
}
