//! Identity signing abstraction.
//!
//! The handshake requests CertificateVerify signatures through this trait
//! instead of holding a private key, so the key can live inside an SGX
//! enclave (the paper's core requirement). [`LocalSigner`] is the plain
//! in-process implementation used by servers and tests; the enclave-backed
//! implementation lives in `vnfguard-vnf`.

use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_pki::Certificate;

/// Something that can present a certificate and sign handshake transcripts
/// with the matching private key.
pub trait IdentitySigner: Send + Sync {
    /// The certificate to present to the peer.
    fn certificate(&self) -> Certificate;

    /// Sign `message` with the private key matching the certificate.
    fn sign(&self, message: &[u8]) -> Vec<u8>;
}

/// Process-local signer: key material held in ordinary memory.
pub struct LocalSigner {
    key: SigningKey,
    certificate: Certificate,
}

impl LocalSigner {
    /// Create from a key and its certificate. Panics if the certificate's
    /// public key does not match the signing key (a configuration bug that
    /// would otherwise surface as remote authentication failures).
    pub fn new(key: SigningKey, certificate: Certificate) -> LocalSigner {
        assert_eq!(
            certificate.tbs.public_key,
            key.public_key(),
            "certificate public key does not match signing key"
        );
        LocalSigner { key, certificate }
    }
}

impl IdentitySigner for LocalSigner {
    fn certificate(&self) -> Certificate {
        self.certificate.clone()
    }

    fn sign(&self, message: &[u8]) -> Vec<u8> {
        self.key.sign(message).to_vec()
    }
}

impl std::fmt::Debug for LocalSigner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalSigner")
            .field("subject", &self.certificate.subject_cn())
            .finish_non_exhaustive()
    }
}

/// Domain-separated message actually signed in CertificateVerify: prevents
/// cross-protocol signature reuse and distinguishes the two roles.
pub fn certificate_verify_payload(server: bool, transcript_hash: &[u8; 32]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.extend_from_slice(if server {
        b"vnfguard-tls server CertificateVerify".as_slice()
    } else {
        b"vnfguard-tls client CertificateVerify".as_slice()
    });
    payload.extend_from_slice(transcript_hash);
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_pki::cert::{DistinguishedName, KeyUsage, TbsCertificate, Validity};

    fn cert_for(key: &SigningKey) -> Certificate {
        Certificate::sign(
            TbsCertificate {
                serial: 1,
                subject: DistinguishedName::new("x"),
                issuer: DistinguishedName::new("ca"),
                validity: Validity::new(0, 100),
                public_key: key.public_key(),
                key_usage: KeyUsage::DIGITAL_SIGNATURE,
                is_ca: false,
                enclave_binding: None,
            },
            key,
        )
    }

    #[test]
    fn local_signer_signs_verifiably() {
        let key = SigningKey::from_seed(&[1; 32]);
        let signer = LocalSigner::new(key.clone(), cert_for(&key));
        let sig = signer.sign(b"transcript");
        signer
            .certificate()
            .tbs
            .public_key
            .verify(b"transcript", &sig)
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_certificate_panics() {
        let key = SigningKey::from_seed(&[1; 32]);
        let other = SigningKey::from_seed(&[2; 32]);
        let _ = LocalSigner::new(key, cert_for(&other));
    }

    #[test]
    fn verify_payload_separates_roles() {
        let h = [5u8; 32];
        assert_ne!(
            certificate_verify_payload(true, &h),
            certificate_verify_payload(false, &h)
        );
        assert_ne!(
            certificate_verify_payload(true, &h),
            certificate_verify_payload(true, &[6u8; 32])
        );
    }
}
