//! Property tests over CRL encoding, staleness and lookup invariants.

use proptest::prelude::*;
use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_pki::cert::DistinguishedName;
use vnfguard_pki::crl::{Crl, CrlEntry, RevocationReason};

fn arb_entry() -> impl Strategy<Value = CrlEntry> {
    (any::<u64>(), any::<u64>(), any::<u8>()).prop_map(|(serial, revoked_at, reason)| CrlEntry {
        serial,
        revoked_at,
        reason: RevocationReason::from_u8(reason),
    })
}

fn arb_crl_parts() -> impl Strategy<Value = (String, u64, u64, u64, Vec<CrlEntry>)> {
    (
        "[a-zA-Z0-9 ._-]{1,24}",
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(arb_entry(), 0..12),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_decode_roundtrip(
        parts in arb_crl_parts(),
        signer_seed in any::<[u8; 32]>()
    ) {
        let (cn, issued_at, next_update, number, entries) = parts;
        let key = SigningKey::from_seed(&signer_seed);
        let crl = Crl::build(
            DistinguishedName::new(&cn),
            issued_at,
            next_update,
            number,
            entries,
            &key,
        );
        let decoded = Crl::decode(&crl.encode()).unwrap();
        prop_assert_eq!(&decoded, &crl);
        prop_assert_eq!(decoded.crl_number, number);
        decoded.verify(&key.public_key()).unwrap();
    }

    #[test]
    fn staleness_boundary_is_exactly_next_update(
        next_update in any::<u64>(),
        signer_seed in any::<[u8; 32]>()
    ) {
        let key = SigningKey::from_seed(&signer_seed);
        let crl = Crl::build(DistinguishedName::new("ca"), 0, next_update, 1, [], &key);
        // A CRL is fresh at exactly `next_update` and stale one tick later.
        prop_assert!(!crl.is_stale(next_update));
        prop_assert!(!crl.is_stale(next_update.saturating_sub(1)));
        if next_update < u64::MAX {
            prop_assert!(crl.is_stale(next_update + 1));
        }
    }

    #[test]
    fn duplicate_serials_last_write_wins(
        serial in any::<u64>(),
        first_at in any::<u64>(),
        first_reason in any::<u8>(),
        last_at in any::<u64>(),
        last_reason in any::<u8>(),
        signer_seed in any::<[u8; 32]>()
    ) {
        let key = SigningKey::from_seed(&signer_seed);
        let entries = vec![
            CrlEntry { serial, revoked_at: first_at, reason: RevocationReason::from_u8(first_reason) },
            CrlEntry { serial, revoked_at: last_at, reason: RevocationReason::from_u8(last_reason) },
        ];
        let crl = Crl::build(DistinguishedName::new("ca"), 0, 10, 1, entries, &key);
        prop_assert_eq!(crl.len(), 1);
        let entry = crl.lookup(serial).unwrap();
        prop_assert_eq!(entry.revoked_at, last_at);
        prop_assert_eq!(entry.reason, RevocationReason::from_u8(last_reason));
    }

    #[test]
    fn lookup_only_finds_listed_serials(
        parts in arb_crl_parts(),
        probe in any::<u64>()
    ) {
        let (cn, issued_at, next_update, number, entries) = parts;
        let key = SigningKey::from_seed(&[1; 32]);
        let listed = entries.iter().any(|e| e.serial == probe);
        let crl = Crl::build(
            DistinguishedName::new(&cn),
            issued_at,
            next_update,
            number,
            entries,
            &key,
        );
        prop_assert_eq!(crl.lookup(probe).is_some(), listed);
    }

    #[test]
    fn signature_rejected_after_issuer_key_change(
        parts in arb_crl_parts(),
        old_seed in any::<[u8; 32]>(),
        new_seed in any::<[u8; 32]>()
    ) {
        let (cn, issued_at, next_update, number, entries) = parts;
        prop_assume!(old_seed != new_seed);
        // A CRL signed by the pre-rotation key must not verify under the
        // rotated key, and vice versa — relying parties re-verify cached
        // CRLs when anchors change.
        let old_key = SigningKey::from_seed(&old_seed);
        let new_key = SigningKey::from_seed(&new_seed);
        let crl = Crl::build(
            DistinguishedName::new(&cn),
            issued_at,
            next_update,
            number,
            entries,
            &old_key,
        );
        crl.verify(&old_key.public_key()).unwrap();
        prop_assert!(crl.verify(&new_key.public_key()).is_err());
    }
}
