//! Property tests over certificate encoding and validation invariants.

use proptest::prelude::*;
use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_pki::cert::{Certificate, DistinguishedName, KeyUsage, TbsCertificate, Validity};

fn arb_dn() -> impl Strategy<Value = DistinguishedName> {
    ("[a-zA-Z0-9 ._-]{1,24}", "[a-zA-Z0-9 ]{0,12}", "[a-zA-Z0-9 ]{0,12}").prop_map(
        |(cn, org, unit)| DistinguishedName {
            common_name: cn,
            organization: org,
            unit,
        },
    )
}

fn arb_tbs() -> impl Strategy<Value = TbsCertificate> {
    (
        any::<u64>(),
        arb_dn(),
        arb_dn(),
        any::<u64>(),
        any::<u64>(),
        any::<[u8; 32]>(),
        any::<u8>(),
        any::<bool>(),
        proptest::option::of(any::<[u8; 32]>()),
    )
        .prop_map(
            |(serial, subject, issuer, nb, na, seed, usage, is_ca, binding)| TbsCertificate {
                serial,
                subject,
                issuer,
                validity: Validity::new(nb.min(na), nb.max(na)),
                public_key: SigningKey::from_seed(&seed).public_key(),
                key_usage: KeyUsage(usage),
                is_ca,
                enclave_binding: binding,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_decode_roundtrip(tbs in arb_tbs(), signer_seed in any::<[u8; 32]>()) {
        let signer = SigningKey::from_seed(&signer_seed);
        let cert = Certificate::sign(tbs, &signer);
        let decoded = Certificate::decode(&cert.encode()).unwrap();
        prop_assert_eq!(&decoded, &cert);
        decoded.verify_signature(&signer.public_key()).unwrap();
    }

    #[test]
    fn any_single_byte_corruption_is_detected(
        tbs in arb_tbs(),
        signer_seed in any::<[u8; 32]>(),
        position_seed in any::<usize>(),
        flip in 1u8..=255
    ) {
        let signer = SigningKey::from_seed(&signer_seed);
        let cert = Certificate::sign(tbs, &signer);
        let mut bytes = cert.encode();
        let position = position_seed % bytes.len();
        bytes[position] ^= flip;
        // Either the structure no longer parses, or the signature fails,
        // or (for corruption inside the signature field that still parses)
        // verification fails. No corrupted certificate may verify.
        if let Ok(decoded) = Certificate::decode(&bytes) {
            prop_assert!(
                decoded.verify_signature(&signer.public_key()).is_err(),
                "corrupted certificate verified (byte {position})"
            );
        }
    }

    #[test]
    fn validity_contains_is_interval(nb in any::<u64>(), na in any::<u64>(), probe in any::<u64>()) {
        let validity = Validity::new(nb.min(na), nb.max(na));
        prop_assert_eq!(
            validity.contains(probe),
            probe >= validity.not_before && probe <= validity.not_after
        );
    }

    #[test]
    fn key_usage_union_permits_both(a in any::<u8>(), b in any::<u8>()) {
        let u = KeyUsage(a).union(KeyUsage(b));
        prop_assert!(u.permits(KeyUsage(a)));
        prop_assert!(u.permits(KeyUsage(b)));
    }
}
