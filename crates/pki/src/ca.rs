//! The certificate authority operated by the Verification Manager.
//!
//! Paper §3: "The Verification Manager acts as a certificate authority, and
//! signs all newly created client certificates. The Floodlight controller
//! must only validate that the client certificate has a valid signature
//! from the trusted certificate authority."

use crate::cert::{Certificate, DistinguishedName, KeyUsage, TbsCertificate, Validity};
use crate::crl::{Crl, CrlEntry, RevocationReason};
use crate::csr::CertificateRequest;
use crate::PkiError;
use std::collections::BTreeMap;
use vnfguard_crypto::drbg::SecureRandom;
use vnfguard_crypto::ed25519::{SigningKey, VerifyingKey};

/// Issuance profile: what kind of certificate the CA should mint.
#[derive(Debug, Clone)]
pub struct IssueProfile {
    pub validity_secs: u64,
    pub key_usage: KeyUsage,
    pub is_ca: bool,
    /// Bind the issued certificate to an enclave measurement.
    pub enclave_binding: Option<[u8; 32]>,
}

impl IssueProfile {
    /// The profile used for VNF north-bound client credentials.
    pub fn vnf_client(enclave_binding: [u8; 32]) -> IssueProfile {
        IssueProfile {
            validity_secs: 24 * 3600,
            key_usage: KeyUsage::DIGITAL_SIGNATURE.union(KeyUsage::CLIENT_AUTH),
            is_ca: false,
            enclave_binding: Some(enclave_binding),
        }
    }

    /// The profile for controller (server) certificates.
    pub fn server() -> IssueProfile {
        IssueProfile {
            validity_secs: 365 * 24 * 3600,
            key_usage: KeyUsage::DIGITAL_SIGNATURE.union(KeyUsage::SERVER_AUTH),
            is_ca: false,
            enclave_binding: None,
        }
    }
}

/// A certificate authority with an in-memory revocation registry.
///
/// The CA key can be **rotated**: [`rotate_to`](Self::rotate_to) installs a
/// successor signing key under the same distinguished name, keeping the
/// outgoing self-signed root (for the relying parties' dual-trust window)
/// and minting a cross-signed copy of the new root under the old key so the
/// handover is verifiable rather than trust-on-first-use.
pub struct CertificateAuthority {
    key: SigningKey,
    certificate: Certificate,
    next_serial: u64,
    revoked: BTreeMap<u64, CrlEntry>,
    issued: u64,
    /// Monotonic CRL issue number; the last number handed out by
    /// [`issue_crl`](Self::issue_crl).
    crl_number: u64,
    /// Self-signed roots from earlier key epochs, oldest first.
    previous_roots: Vec<Certificate>,
    /// The current root's public key endorsed (signed) by the previous
    /// epoch's key; `None` before the first rotation.
    cross_signed: Option<Certificate>,
    /// Every cross-signed handover cert ever minted, oldest first (index
    /// `i` endorses the epoch `i + 1` root under the epoch `i` key). A
    /// relying party that missed intermediate rotations walks this chain
    /// to re-establish trust step by step.
    cross_history: Vec<Certificate>,
    /// Key epoch: 0 for the original key, +1 per rotation.
    epoch: u32,
}

impl CertificateAuthority {
    /// Create a new root CA with a self-signed certificate.
    pub fn new(
        name: DistinguishedName,
        validity: Validity,
        rng: &mut dyn SecureRandom,
    ) -> CertificateAuthority {
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        let key = SigningKey::from_seed(&seed);
        let tbs = TbsCertificate {
            serial: 1,
            subject: name.clone(),
            issuer: name,
            validity,
            public_key: key.public_key(),
            key_usage: KeyUsage::KEY_CERT_SIGN
                .union(KeyUsage::CRL_SIGN)
                .union(KeyUsage::DIGITAL_SIGNATURE),
            is_ca: true,
            enclave_binding: None,
        };
        let certificate = Certificate::sign(tbs, &key);
        CertificateAuthority {
            key,
            certificate,
            next_serial: 2,
            revoked: BTreeMap::new(),
            issued: 0,
            crl_number: 0,
            previous_roots: Vec::new(),
            cross_signed: None,
            cross_history: Vec::new(),
            epoch: 0,
        }
    }

    /// The CA's own (self-signed) certificate — this is what the paper
    /// provisions into the controller's trust store.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    pub fn public_key(&self) -> VerifyingKey {
        self.key.public_key()
    }

    /// Number of certificates issued so far (excluding the root).
    pub fn issued_count(&self) -> u64 {
        self.issued
    }

    /// The serial the next issuance will mint. Lets a journaling caller
    /// record serials durably *before* the allocation happens.
    pub fn next_serial(&self) -> u64 {
        self.next_serial
    }

    /// Issue a certificate for an externally generated public key
    /// (the paper's primary flow: the VM generates the key pair itself and
    /// provisions it into the enclave).
    pub fn issue(
        &mut self,
        subject: DistinguishedName,
        public_key: VerifyingKey,
        profile: &IssueProfile,
        now: u64,
    ) -> Certificate {
        let serial = self.next_serial;
        self.next_serial += 1;
        self.issued += 1;
        let tbs = TbsCertificate {
            serial,
            subject,
            issuer: self.certificate.tbs.subject.clone(),
            validity: Validity::new(now, now.saturating_add(profile.validity_secs)),
            public_key,
            key_usage: profile.key_usage,
            is_ca: profile.is_ca,
            enclave_binding: profile.enclave_binding,
        };
        Certificate::sign(tbs, &self.key)
    }

    /// Issue from a CSR after checking proof-of-possession (the
    /// enclave-keygen enrollment mode).
    pub fn sign_request(
        &mut self,
        request: &CertificateRequest,
        profile: &IssueProfile,
        now: u64,
    ) -> Result<Certificate, PkiError> {
        request.verify()?;
        Ok(self.issue(request.subject.clone(), request.public_key, profile, now))
    }

    /// Mark a serial revoked.
    pub fn revoke(&mut self, serial: u64, reason: RevocationReason, now: u64) {
        self.revoked.insert(
            serial,
            CrlEntry {
                serial,
                revoked_at: now,
                reason,
            },
        );
    }

    pub fn is_revoked(&self, serial: u64) -> bool {
        self.revoked.contains_key(&serial)
    }

    /// Restore issuance continuity after a crash-recovery replay: the next
    /// serial to mint and the lifetime issued count. Serial allocation
    /// never moves backwards — a recovered CA must not re-mint a serial a
    /// previous incarnation already signed.
    pub fn restore_issuance(&mut self, next_serial: u64, issued: u64) {
        self.next_serial = self.next_serial.max(next_serial);
        self.issued = self.issued.max(issued);
    }

    /// Restore the CRL counter after a crash-recovery replay; never moves
    /// backwards, so a recovered CA cannot re-issue an already published
    /// CRL number.
    pub fn restore_crl_number(&mut self, crl_number: u64) {
        self.crl_number = self.crl_number.max(crl_number);
    }

    /// The last CRL number handed out by [`issue_crl`](Self::issue_crl).
    pub fn crl_number(&self) -> u64 {
        self.crl_number
    }

    /// Produce a freshly signed CRL valid until `now + lifetime_secs`,
    /// carrying the *current* CRL number (no bump). Relying parties that
    /// enforce number monotonicity should be fed from
    /// [`issue_crl`](Self::issue_crl) instead.
    pub fn current_crl(&self, now: u64, lifetime_secs: u64) -> Crl {
        Crl::build(
            self.certificate.tbs.subject.clone(),
            now,
            now.saturating_add(lifetime_secs),
            self.crl_number,
            self.revoked.values().copied(),
            &self.key,
        )
    }

    /// Mint the next numbered CRL: bumps the monotonic counter and signs.
    /// The Verification Manager journals the bump before calling this so
    /// the sequence survives crash recovery.
    pub fn issue_crl(&mut self, now: u64, lifetime_secs: u64) -> Crl {
        self.crl_number += 1;
        self.current_crl(now, lifetime_secs)
    }

    /// Like [`current_crl`](Self::current_crl) but merging `extra`
    /// revocation entries into the signed list — the sharded deployment's
    /// authority CA folds the other shards' revocations in here, so one
    /// signed CRL still covers the whole fleet. Duplicate serials keep the
    /// authority's own entry.
    pub fn current_crl_with(&self, extra: &[CrlEntry], now: u64, lifetime_secs: u64) -> Crl {
        let mut merged: std::collections::BTreeMap<u64, CrlEntry> = extra
            .iter()
            .map(|entry| (entry.serial, *entry))
            .collect();
        for entry in self.revoked.values() {
            merged.insert(entry.serial, *entry);
        }
        Crl::build(
            self.certificate.tbs.subject.clone(),
            now,
            now.saturating_add(lifetime_secs),
            self.crl_number,
            merged.into_values(),
            &self.key,
        )
    }

    /// [`issue_crl`](Self::issue_crl) with merged `extra` entries: bumps
    /// the monotonic counter and signs the fleet-wide list.
    pub fn issue_crl_with(&mut self, extra: &[CrlEntry], now: u64, lifetime_secs: u64) -> Crl {
        self.crl_number += 1;
        self.current_crl_with(extra, now, lifetime_secs)
    }

    /// Serials currently in the revocation registry, with their entries.
    pub fn revoked_entries(&self) -> impl Iterator<Item = &CrlEntry> {
        self.revoked.values()
    }

    /// Rotate to a successor signing key under the same distinguished name.
    ///
    /// Allocates two serials: a new self-signed root for `new_key`, and a
    /// cross-signed copy of that root signed by the *outgoing* key — the
    /// cryptographic handover evidence a relying party checks against its
    /// currently trusted anchor before adopting the new root. The outgoing
    /// root is retained (served for the dual-trust drain window) and the
    /// revocation registry carries over, so post-rotation CRLs still cover
    /// serials minted by earlier epochs.
    pub fn rotate_to(&mut self, new_key: SigningKey, validity: Validity) -> (Certificate, Certificate) {
        let root_serial = self.next_serial;
        let cross_serial = self.next_serial + 1;
        self.next_serial += 2;
        self.issued += 2;
        self.install_rotation(new_key, validity, root_serial, cross_serial)
    }

    /// Deterministically re-apply a journaled rotation during crash
    /// recovery: same key, validity and serials as the pre-crash rotation.
    /// Does **not** advance the serial allocator — recovery restores that
    /// separately from the journaled issuance records.
    pub fn install_rotation(
        &mut self,
        new_key: SigningKey,
        validity: Validity,
        root_serial: u64,
        cross_serial: u64,
    ) -> (Certificate, Certificate) {
        let subject = self.certificate.tbs.subject.clone();
        let usage = KeyUsage::KEY_CERT_SIGN
            .union(KeyUsage::CRL_SIGN)
            .union(KeyUsage::DIGITAL_SIGNATURE);
        let root_tbs = TbsCertificate {
            serial: root_serial,
            subject: subject.clone(),
            issuer: subject.clone(),
            validity,
            public_key: new_key.public_key(),
            key_usage: usage,
            is_ca: true,
            enclave_binding: None,
        };
        let new_root = Certificate::sign(root_tbs, &new_key);
        let cross_tbs = TbsCertificate {
            serial: cross_serial,
            subject: subject.clone(),
            issuer: subject,
            validity,
            public_key: new_key.public_key(),
            key_usage: usage,
            is_ca: true,
            enclave_binding: None,
        };
        let cross = Certificate::sign(cross_tbs, &self.key);
        let old_root = std::mem::replace(&mut self.certificate, new_root.clone());
        self.previous_roots.push(old_root);
        self.key = new_key;
        self.cross_signed = Some(cross.clone());
        self.cross_history.push(cross.clone());
        self.epoch += 1;
        (new_root, cross)
    }

    /// Self-signed roots from earlier key epochs, oldest first.
    pub fn previous_roots(&self) -> &[Certificate] {
        &self.previous_roots
    }

    /// The current root endorsed by the previous epoch's key (`None`
    /// before the first rotation).
    pub fn cross_signed(&self) -> Option<&Certificate> {
        self.cross_signed.as_ref()
    }

    /// Every cross-signed handover cert ever minted, oldest first: entry
    /// `i` endorses the epoch `i + 1` root under the epoch `i` key.
    pub fn cross_signed_history(&self) -> &[Certificate] {
        &self.cross_history
    }

    /// Key epoch: 0 for the original key, +1 per rotation.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

impl std::fmt::Debug for CertificateAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CertificateAuthority")
            .field("subject", &self.certificate.tbs.subject.common_name)
            .field("issued", &self.issued)
            .field("revoked", &self.revoked.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_crypto::drbg::HmacDrbg;

    fn test_ca() -> CertificateAuthority {
        let mut rng = HmacDrbg::new(b"ca test seed");
        CertificateAuthority::new(
            DistinguishedName::new("verification-manager").with_org("rise-sics"),
            Validity::new(0, 1_000_000),
            &mut rng,
        )
    }

    #[test]
    fn root_is_self_signed_ca() {
        let ca = test_ca();
        assert!(ca.certificate().is_self_signed());
        assert!(ca.certificate().tbs.is_ca);
        assert!(ca
            .certificate()
            .tbs
            .key_usage
            .permits(KeyUsage::KEY_CERT_SIGN));
    }

    #[test]
    fn issues_verifiable_certificates_with_unique_serials() {
        let mut ca = test_ca();
        let leaf = SigningKey::from_seed(&[9; 32]);
        let a = ca.issue(
            DistinguishedName::new("vnf-1"),
            leaf.public_key(),
            &IssueProfile::vnf_client([1; 32]),
            100,
        );
        let b = ca.issue(
            DistinguishedName::new("vnf-2"),
            leaf.public_key(),
            &IssueProfile::vnf_client([1; 32]),
            100,
        );
        a.verify_signature(&ca.public_key()).unwrap();
        b.verify_signature(&ca.public_key()).unwrap();
        assert_ne!(a.serial(), b.serial());
        assert_eq!(ca.issued_count(), 2);
        assert_eq!(a.tbs.enclave_binding, Some([1; 32]));
        assert!(a.tbs.key_usage.permits(KeyUsage::CLIENT_AUTH));
        assert!(!a.tbs.is_ca);
        assert_eq!(a.tbs.validity.not_after, 100 + 24 * 3600);
    }

    #[test]
    fn sign_request_checks_pop() {
        let mut ca = test_ca();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let csr = CertificateRequest::new(DistinguishedName::new("vnf"), &leaf, b"ctx");
        let cert = ca
            .sign_request(&csr, &IssueProfile::vnf_client([2; 32]), 0)
            .unwrap();
        cert.verify_signature(&ca.public_key()).unwrap();

        // A tampered CSR is refused.
        let mut bad = csr;
        bad.subject.common_name = "other".into();
        assert!(ca
            .sign_request(&bad, &IssueProfile::vnf_client([2; 32]), 0)
            .is_err());
    }

    #[test]
    fn revocation_appears_in_crl() {
        let mut ca = test_ca();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let cert = ca.issue(
            DistinguishedName::new("vnf"),
            leaf.public_key(),
            &IssueProfile::vnf_client([0; 32]),
            0,
        );
        assert!(!ca.is_revoked(cert.serial()));
        ca.revoke(cert.serial(), RevocationReason::KeyCompromise, 50);
        assert!(ca.is_revoked(cert.serial()));

        let crl = ca.current_crl(60, 300);
        crl.verify(&ca.public_key()).unwrap();
        let entry = crl.lookup(cert.serial()).unwrap();
        assert_eq!(entry.reason, RevocationReason::KeyCompromise);
        assert_eq!(entry.revoked_at, 50);
        assert_eq!(crl.next_update, 360);
    }

    #[test]
    fn crl_reflects_current_registry() {
        let mut ca = test_ca();
        assert!(ca.current_crl(0, 10).is_empty());
        ca.revoke(5, RevocationReason::Unspecified, 1);
        ca.revoke(6, RevocationReason::Unspecified, 2);
        assert_eq!(ca.current_crl(3, 10).len(), 2);
    }

    #[test]
    fn issue_crl_bumps_number_monotonically() {
        let mut ca = test_ca();
        assert_eq!(ca.crl_number(), 0);
        assert_eq!(ca.issue_crl(10, 100).crl_number, 1);
        assert_eq!(ca.issue_crl(20, 100).crl_number, 2);
        // current_crl re-serves the latest number without bumping.
        assert_eq!(ca.current_crl(30, 100).crl_number, 2);
        // Restoration never moves backwards.
        ca.restore_crl_number(1);
        assert_eq!(ca.crl_number(), 2);
        ca.restore_crl_number(9);
        assert_eq!(ca.issue_crl(40, 100).crl_number, 10);
    }

    #[test]
    fn rotation_swaps_key_and_keeps_registry() {
        let mut ca = test_ca();
        let old_key = ca.public_key();
        let old_root = ca.certificate().clone();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let pre = ca.issue(
            DistinguishedName::new("vnf"),
            leaf.public_key(),
            &IssueProfile::vnf_client([0; 32]),
            0,
        );
        ca.revoke(pre.serial(), RevocationReason::KeyCompromise, 5);

        let next = SigningKey::from_seed(&[77; 32]);
        let (new_root, cross) = ca.rotate_to(next.clone(), Validity::new(0, 9_000_000));
        assert_eq!(ca.epoch(), 1);
        assert_eq!(ca.previous_roots(), &[old_root]);
        assert_eq!(ca.cross_signed(), Some(&cross));
        assert_eq!(ca.public_key().as_bytes(), next.public_key().as_bytes());
        // Same DN, new self-signed root; the cross cert verifies under the
        // outgoing key and the two minted serials are distinct.
        assert_eq!(new_root.tbs.subject, ca.certificate().tbs.subject);
        assert!(new_root.is_self_signed());
        cross.verify_signature(&old_key).unwrap();
        assert_ne!(new_root.serial(), cross.serial());

        // Post-rotation issuance signs with the new key; post-rotation CRLs
        // still cover the pre-rotation revocation.
        let post = ca.issue(
            DistinguishedName::new("vnf-2"),
            leaf.public_key(),
            &IssueProfile::vnf_client([0; 32]),
            10,
        );
        post.verify_signature(&ca.public_key()).unwrap();
        assert!(post.verify_signature(&old_key).is_err());
        let crl = ca.issue_crl(20, 100);
        crl.verify(&ca.public_key()).unwrap();
        assert!(crl.lookup(pre.serial()).is_some());
    }

    #[test]
    fn install_rotation_replays_deterministically() {
        let mut a = test_ca();
        let mut b = test_ca();
        let key = SigningKey::from_seed(&[13; 32]);
        let validity = Validity::new(100, 5_000_000);
        let (root_a, cross_a) = a.rotate_to(key.clone(), validity);
        let (root_b, cross_b) =
            b.install_rotation(key, validity, root_a.serial(), cross_a.serial());
        assert_eq!(root_a, root_b);
        assert_eq!(cross_a, cross_b);
    }

    #[test]
    fn server_profile_lacks_client_auth() {
        let mut ca = test_ca();
        let key = SigningKey::from_seed(&[2; 32]);
        let cert = ca.issue(
            DistinguishedName::new("controller"),
            key.public_key(),
            &IssueProfile::server(),
            0,
        );
        assert!(cert.tbs.key_usage.permits(KeyUsage::SERVER_AUTH));
        assert!(!cert.tbs.key_usage.permits(KeyUsage::CLIENT_AUTH));
        assert_eq!(cert.tbs.enclave_binding, None);
    }
}
