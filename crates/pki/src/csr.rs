//! Certificate signing requests with proof-of-possession.
//!
//! In the paper's workflow the key pair is generated *by the Verification
//! Manager* and pushed into the enclave (step 5 of Figure 1). The CSR path
//! exists for the alternative enrollment mode (key generated inside the
//! enclave, never leaving it even towards the VM) — implemented here as the
//! `enclave-keygen` extension and compared in the E3 bench.

use crate::cert::DistinguishedName;
use crate::PkiError;
use vnfguard_crypto::ed25519::{SigningKey, VerifyingKey};
use vnfguard_encoding::{TlvReader, TlvWriter};

const TAG_BODY: u8 = 0x20;
const TAG_SUBJECT: u8 = 0x21;
const TAG_PUBKEY: u8 = 0x22;
const TAG_CONTEXT: u8 = 0x23;
const TAG_POP: u8 = 0x24;
const TAG_CN: u8 = 0x10;
const TAG_ORG: u8 = 0x11;
const TAG_UNIT: u8 = 0x12;

/// A request for certification of `public_key` under `subject`.
///
/// `context` carries free-form binding data (e.g. the hex MRENCLAVE of the
/// requesting enclave) that the CA can cross-check against attestation
/// evidence before issuing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateRequest {
    pub subject: DistinguishedName,
    pub public_key: VerifyingKey,
    pub context: Vec<u8>,
    proof_of_possession: Vec<u8>,
}

impl CertificateRequest {
    /// Create a request, signing the body with the subject key to prove
    /// possession of the private half.
    pub fn new(
        subject: DistinguishedName,
        key: &SigningKey,
        context: &[u8],
    ) -> CertificateRequest {
        let body = Self::body_bytes(&subject, &key.public_key(), context);
        CertificateRequest {
            subject,
            public_key: key.public_key(),
            context: context.to_vec(),
            proof_of_possession: key.sign(&body).to_vec(),
        }
    }

    fn body_bytes(subject: &DistinguishedName, key: &VerifyingKey, context: &[u8]) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.nested(TAG_SUBJECT, |inner| {
            inner
                .string(TAG_CN, &subject.common_name)
                .string(TAG_ORG, &subject.organization)
                .string(TAG_UNIT, &subject.unit);
        })
        .bytes(TAG_PUBKEY, key.as_bytes())
        .bytes(TAG_CONTEXT, context);
        w.finish()
    }

    /// Verify the proof-of-possession signature.
    pub fn verify(&self) -> Result<(), PkiError> {
        let body = Self::body_bytes(&self.subject, &self.public_key, &self.context);
        self.public_key
            .verify(&body, &self.proof_of_possession)
            .map_err(|_| PkiError::BadSignature)
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        let body = Self::body_bytes(&self.subject, &self.public_key, &self.context);
        w.bytes(TAG_BODY, &body)
            .bytes(TAG_POP, &self.proof_of_possession);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<CertificateRequest, PkiError> {
        let mut r = TlvReader::new(bytes);
        let body = r.expect(TAG_BODY)?;
        let pop = r.expect(TAG_POP)?.to_vec();
        r.finish()?;

        let mut br = TlvReader::new(body);
        let mut subject_r = br.expect_nested(TAG_SUBJECT)?;
        let subject = DistinguishedName {
            common_name: subject_r.expect_string(TAG_CN)?,
            organization: subject_r.expect_string(TAG_ORG)?,
            unit: subject_r.expect_string(TAG_UNIT)?,
        };
        subject_r.finish()?;
        let pubkey = br.expect_array::<32>(TAG_PUBKEY)?;
        let context = br.expect(TAG_CONTEXT)?.to_vec();
        br.finish()?;

        Ok(CertificateRequest {
            subject,
            public_key: VerifyingKey::from_bytes(&pubkey),
            context,
            proof_of_possession: pop,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_verify() {
        let key = SigningKey::from_seed(&[1; 32]);
        let csr = CertificateRequest::new(DistinguishedName::new("vnf-9"), &key, b"mrenclave");
        csr.verify().unwrap();
    }

    #[test]
    fn roundtrip() {
        let key = SigningKey::from_seed(&[2; 32]);
        let csr = CertificateRequest::new(
            DistinguishedName::new("vnf-9").with_org("org"),
            &key,
            &[1, 2, 3],
        );
        let decoded = CertificateRequest::decode(&csr.encode()).unwrap();
        assert_eq!(decoded, csr);
        decoded.verify().unwrap();
    }

    #[test]
    fn tampered_subject_rejected() {
        let key = SigningKey::from_seed(&[3; 32]);
        let mut csr = CertificateRequest::new(DistinguishedName::new("honest"), &key, b"");
        csr.subject.common_name = "mallory".into();
        assert_eq!(csr.verify(), Err(PkiError::BadSignature));
    }

    #[test]
    fn tampered_context_rejected() {
        let key = SigningKey::from_seed(&[4; 32]);
        let mut csr = CertificateRequest::new(DistinguishedName::new("vnf"), &key, b"real");
        csr.context = b"fake".to_vec();
        assert!(csr.verify().is_err());
    }

    #[test]
    fn foreign_key_substitution_rejected() {
        // An attacker replacing the public key cannot produce a valid PoP.
        let victim = SigningKey::from_seed(&[5; 32]);
        let attacker = SigningKey::from_seed(&[6; 32]);
        let mut csr = CertificateRequest::new(DistinguishedName::new("vnf"), &victim, b"");
        csr.public_key = attacker.public_key();
        assert!(csr.verify().is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let key = SigningKey::from_seed(&[7; 32]);
        let bytes = CertificateRequest::new(DistinguishedName::new("v"), &key, b"x").encode();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(CertificateRequest::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
