//! # vnfguard-pki
//!
//! Public-key infrastructure for the vnfguard workspace: certificates,
//! certificate signing requests, a certificate authority, revocation lists,
//! and the two client-validation models the paper contrasts in §3:
//!
//! > "Floodlight performs client certificate validation by adding client
//! > certificates to its keystore, which introduces the challenge of
//! > maintaining the keystore updated with newly created keys. We solve this
//! > by provisioning the controller with a trusted certificate authority."
//!
//! [`keystore::KeyStore`] models the per-client keystore; [`chain`] and
//! [`ca::CertificateAuthority`] model the CA approach the paper adopts.
//! Experiment **E5** benchmarks the two against each other.
//!
//! Certificates use a compact TLV encoding (not DER) with Ed25519
//! signatures, and carry an optional **enclave binding** extension tying a
//! credential to an SGX enclave measurement — the mechanism the Verification
//! Manager uses to ensure a provisioned key is only meaningful together with
//! the attested enclave identity.

pub mod ca;
pub mod cert;
pub mod chain;
pub mod crl;
pub mod csr;
pub mod keystore;

pub use ca::CertificateAuthority;
pub use cert::{Certificate, DistinguishedName, KeyUsage, Validity};
pub use chain::{RevocationPolicy, TrustStore};
pub use crl::{Crl, RevocationReason};
pub use csr::CertificateRequest;
pub use keystore::KeyStore;

/// Errors raised by PKI operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PkiError {
    /// A TLV/structural decoding problem.
    Encoding(String),
    /// The signature over a certificate, CRL or CSR did not verify.
    BadSignature,
    /// The certificate is outside its validity window.
    Expired { now: u64, not_before: u64, not_after: u64 },
    /// The certificate's serial appears on a CRL.
    Revoked { serial: u64, reason: crl::RevocationReason },
    /// No trust anchor matches the certificate's issuer.
    UnknownIssuer(String),
    /// The issuing certificate is not a CA or lacks the required key usage.
    NotAuthorized(String),
    /// The certificate does not carry a required property (usage, binding).
    ConstraintViolated(String),
    /// The cached CRL for the issuer is past `next_update` and the relying
    /// party runs a fail-closed revocation policy.
    StaleCrl { issuer: String, next_update: u64, now: u64 },
    /// An offered CRL carries a lower number than the cached one — a replay
    /// or out-of-order distribution that must not overwrite fresher data.
    CrlReplay { issuer: String, cached: u64, offered: u64 },
}

impl std::fmt::Display for PkiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PkiError::Encoding(msg) => write!(f, "encoding error: {msg}"),
            PkiError::BadSignature => write!(f, "signature verification failed"),
            PkiError::Expired {
                now,
                not_before,
                not_after,
            } => write!(
                f,
                "certificate not valid at {now} (window {not_before}..{not_after})"
            ),
            PkiError::Revoked { serial, reason } => {
                write!(f, "certificate {serial} revoked ({reason:?})")
            }
            PkiError::UnknownIssuer(name) => write!(f, "unknown issuer: {name}"),
            PkiError::NotAuthorized(msg) => write!(f, "issuer not authorized: {msg}"),
            PkiError::ConstraintViolated(msg) => write!(f, "constraint violated: {msg}"),
            PkiError::StaleCrl {
                issuer,
                next_update,
                now,
            } => write!(
                f,
                "CRL from {issuer} stale at {now} (next_update {next_update}) under fail-closed policy"
            ),
            PkiError::CrlReplay {
                issuer,
                cached,
                offered,
            } => write!(
                f,
                "CRL replay from {issuer}: offered number {offered} below cached {cached}"
            ),
        }
    }
}

impl std::error::Error for PkiError {}

impl From<vnfguard_encoding::EncodingError> for PkiError {
    fn from(e: vnfguard_encoding::EncodingError) -> PkiError {
        PkiError::Encoding(e.to_string())
    }
}

/// Current wall-clock time as unix seconds. Validation functions take `now`
/// explicitly so tests and the simulator control time; this helper is for
/// binaries at the edge.
pub fn wall_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
