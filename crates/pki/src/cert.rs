//! Certificate structure, encoding and primitive verification.

use crate::PkiError;
use vnfguard_crypto::ed25519::{SigningKey, VerifyingKey};
use vnfguard_crypto::sha2::sha256;
use vnfguard_encoding::{TlvReader, TlvWriter};

// TLV tags for the certificate structure.
const TAG_TBS: u8 = 0x01;
const TAG_SERIAL: u8 = 0x02;
const TAG_SUBJECT: u8 = 0x03;
const TAG_ISSUER: u8 = 0x04;
const TAG_NOT_BEFORE: u8 = 0x05;
const TAG_NOT_AFTER: u8 = 0x06;
const TAG_PUBKEY: u8 = 0x07;
const TAG_KEY_USAGE: u8 = 0x08;
const TAG_IS_CA: u8 = 0x09;
const TAG_ENCLAVE_BINDING: u8 = 0x0a;
const TAG_SIGNATURE: u8 = 0x0b;
const TAG_CN: u8 = 0x10;
const TAG_ORG: u8 = 0x11;
const TAG_UNIT: u8 = 0x12;

/// Key-usage flags carried in a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyUsage(pub u8);

impl KeyUsage {
    pub const DIGITAL_SIGNATURE: KeyUsage = KeyUsage(0b0000_0001);
    pub const KEY_CERT_SIGN: KeyUsage = KeyUsage(0b0000_0010);
    pub const CRL_SIGN: KeyUsage = KeyUsage(0b0000_0100);
    pub const CLIENT_AUTH: KeyUsage = KeyUsage(0b0000_1000);
    pub const SERVER_AUTH: KeyUsage = KeyUsage(0b0001_0000);

    pub fn union(self, other: KeyUsage) -> KeyUsage {
        KeyUsage(self.0 | other.0)
    }

    pub fn permits(self, required: KeyUsage) -> bool {
        self.0 & required.0 == required.0
    }
}

/// A simplified X.500 distinguished name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DistinguishedName {
    pub common_name: String,
    pub organization: String,
    pub unit: String,
}

impl DistinguishedName {
    pub fn new(common_name: &str) -> DistinguishedName {
        DistinguishedName {
            common_name: common_name.to_string(),
            organization: String::new(),
            unit: String::new(),
        }
    }

    pub fn with_org(mut self, org: &str) -> DistinguishedName {
        self.organization = org.to_string();
        self
    }

    pub fn with_unit(mut self, unit: &str) -> DistinguishedName {
        self.unit = unit.to_string();
        self
    }

    fn encode(&self, w: &mut TlvWriter, tag: u8) {
        w.nested(tag, |inner| {
            inner
                .string(TAG_CN, &self.common_name)
                .string(TAG_ORG, &self.organization)
                .string(TAG_UNIT, &self.unit);
        });
    }

    fn decode(r: &mut TlvReader, tag: u8) -> Result<DistinguishedName, PkiError> {
        let mut inner = r.expect_nested(tag)?;
        let dn = DistinguishedName {
            common_name: inner.expect_string(TAG_CN)?,
            organization: inner.expect_string(TAG_ORG)?,
            unit: inner.expect_string(TAG_UNIT)?,
        };
        inner.finish()?;
        Ok(dn)
    }
}

impl std::fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CN={}", self.common_name)?;
        if !self.organization.is_empty() {
            write!(f, ",O={}", self.organization)?;
        }
        if !self.unit.is_empty() {
            write!(f, ",OU={}", self.unit)?;
        }
        Ok(())
    }
}

/// A validity window in unix seconds, inclusive on both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validity {
    pub not_before: u64,
    pub not_after: u64,
}

impl Validity {
    pub fn new(not_before: u64, not_after: u64) -> Validity {
        Validity {
            not_before,
            not_after,
        }
    }

    pub fn contains(&self, now: u64) -> bool {
        self.not_before <= now && now <= self.not_after
    }
}

/// The to-be-signed content of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    pub serial: u64,
    pub subject: DistinguishedName,
    pub issuer: DistinguishedName,
    pub validity: Validity,
    pub public_key: VerifyingKey,
    pub key_usage: KeyUsage,
    pub is_ca: bool,
    /// Optional binding to an SGX enclave measurement (MRENCLAVE): a relying
    /// party may require that the presented credential was provisioned into
    /// an enclave with this exact measurement.
    pub enclave_binding: Option<[u8; 32]>,
}

impl TbsCertificate {
    /// Canonical TLV encoding of the signed content.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.u64(TAG_SERIAL, self.serial);
        self.subject.encode(&mut w, TAG_SUBJECT);
        self.issuer.encode(&mut w, TAG_ISSUER);
        w.u64(TAG_NOT_BEFORE, self.validity.not_before)
            .u64(TAG_NOT_AFTER, self.validity.not_after)
            .bytes(TAG_PUBKEY, self.public_key.as_bytes())
            .u8(TAG_KEY_USAGE, self.key_usage.0)
            .u8(TAG_IS_CA, self.is_ca as u8);
        if let Some(binding) = &self.enclave_binding {
            w.bytes(TAG_ENCLAVE_BINDING, binding);
        }
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Result<TbsCertificate, PkiError> {
        let mut r = TlvReader::new(bytes);
        let serial = r.expect_u64(TAG_SERIAL)?;
        let subject = DistinguishedName::decode(&mut r, TAG_SUBJECT)?;
        let issuer = DistinguishedName::decode(&mut r, TAG_ISSUER)?;
        let not_before = r.expect_u64(TAG_NOT_BEFORE)?;
        let not_after = r.expect_u64(TAG_NOT_AFTER)?;
        let pubkey = r.expect_array::<32>(TAG_PUBKEY)?;
        let key_usage = KeyUsage(r.expect_u8(TAG_KEY_USAGE)?);
        let is_ca = r.expect_u8(TAG_IS_CA)? != 0;
        let enclave_binding = if !r.is_empty() {
            Some(r.expect_array::<32>(TAG_ENCLAVE_BINDING)?)
        } else {
            None
        };
        r.finish()?;
        Ok(TbsCertificate {
            serial,
            subject,
            issuer,
            validity: Validity::new(not_before, not_after),
            public_key: VerifyingKey::from_bytes(&pubkey),
            key_usage,
            is_ca,
            enclave_binding,
        })
    }
}

/// A signed certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    pub tbs: TbsCertificate,
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Sign a TBS structure with the issuer's key.
    pub fn sign(tbs: TbsCertificate, issuer_key: &SigningKey) -> Certificate {
        let signature = issuer_key.sign(&tbs.encode()).to_vec();
        Certificate { tbs, signature }
    }

    /// Verify this certificate's signature against an issuer public key.
    pub fn verify_signature(&self, issuer_key: &VerifyingKey) -> Result<(), PkiError> {
        issuer_key
            .verify(&self.tbs.encode(), &self.signature)
            .map_err(|_| PkiError::BadSignature)
    }

    /// True for a self-signed certificate that verifies under its own key.
    pub fn is_self_signed(&self) -> bool {
        self.tbs.subject == self.tbs.issuer
            && self.verify_signature(&self.tbs.public_key).is_ok()
    }

    /// SHA-256 fingerprint over the complete encoded certificate.
    pub fn fingerprint(&self) -> [u8; 32] {
        sha256(&self.encode())
    }

    /// Full TLV encoding: TBS followed by the signature.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(TAG_TBS, &self.tbs.encode())
            .bytes(TAG_SIGNATURE, &self.signature);
        w.finish()
    }

    /// Decode a certificate; the signature is *not* verified here.
    pub fn decode(bytes: &[u8]) -> Result<Certificate, PkiError> {
        let mut r = TlvReader::new(bytes);
        let tbs_bytes = r.expect(TAG_TBS)?;
        let signature = r.expect(TAG_SIGNATURE)?.to_vec();
        r.finish()?;
        Ok(Certificate {
            tbs: TbsCertificate::decode(tbs_bytes)?,
            signature,
        })
    }

    /// Convenience accessors.
    pub fn subject_cn(&self) -> &str {
        &self.tbs.subject.common_name
    }

    pub fn serial(&self) -> u64 {
        self.tbs.serial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_crypto::ed25519::SigningKey;

    fn sample_tbs(key: &SigningKey) -> TbsCertificate {
        TbsCertificate {
            serial: 7,
            subject: DistinguishedName::new("vnf-1").with_org("tenant-a").with_unit("edge"),
            issuer: DistinguishedName::new("verification-manager"),
            validity: Validity::new(1000, 2000),
            public_key: key.public_key(),
            key_usage: KeyUsage::DIGITAL_SIGNATURE.union(KeyUsage::CLIENT_AUTH),
            is_ca: false,
            enclave_binding: Some([0xaa; 32]),
        }
    }

    #[test]
    fn sign_and_verify() {
        let issuer = SigningKey::from_seed(&[1; 32]);
        let leaf_key = SigningKey::from_seed(&[2; 32]);
        let cert = Certificate::sign(sample_tbs(&leaf_key), &issuer);
        cert.verify_signature(&issuer.public_key()).unwrap();
        // Wrong issuer key fails.
        let other = SigningKey::from_seed(&[3; 32]);
        assert_eq!(
            cert.verify_signature(&other.public_key()),
            Err(PkiError::BadSignature)
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let issuer = SigningKey::from_seed(&[1; 32]);
        let leaf_key = SigningKey::from_seed(&[2; 32]);
        let cert = Certificate::sign(sample_tbs(&leaf_key), &issuer);
        let decoded = Certificate::decode(&cert.encode()).unwrap();
        assert_eq!(decoded, cert);
        decoded.verify_signature(&issuer.public_key()).unwrap();
    }

    #[test]
    fn roundtrip_without_binding() {
        let issuer = SigningKey::from_seed(&[1; 32]);
        let mut tbs = sample_tbs(&issuer);
        tbs.enclave_binding = None;
        let cert = Certificate::sign(tbs, &issuer);
        let decoded = Certificate::decode(&cert.encode()).unwrap();
        assert_eq!(decoded.tbs.enclave_binding, None);
    }

    #[test]
    fn tampered_tbs_fails_verification() {
        let issuer = SigningKey::from_seed(&[1; 32]);
        let cert = Certificate::sign(sample_tbs(&issuer), &issuer);
        let mut tampered = cert.clone();
        tampered.tbs.serial = 999;
        assert_eq!(
            tampered.verify_signature(&issuer.public_key()),
            Err(PkiError::BadSignature)
        );
        let mut tampered = cert.clone();
        tampered.tbs.subject.common_name = "mallory".into();
        assert!(tampered.verify_signature(&issuer.public_key()).is_err());
        let mut tampered = cert;
        tampered.tbs.enclave_binding = Some([0xbb; 32]);
        assert!(tampered.verify_signature(&issuer.public_key()).is_err());
    }

    #[test]
    fn self_signed_detection() {
        let key = SigningKey::from_seed(&[5; 32]);
        let tbs = TbsCertificate {
            serial: 1,
            subject: DistinguishedName::new("root"),
            issuer: DistinguishedName::new("root"),
            validity: Validity::new(0, u64::MAX),
            public_key: key.public_key(),
            key_usage: KeyUsage::KEY_CERT_SIGN,
            is_ca: true,
            enclave_binding: None,
        };
        let cert = Certificate::sign(tbs, &key);
        assert!(cert.is_self_signed());

        // Same subject/issuer but signed by someone else is not self-signed.
        let other = SigningKey::from_seed(&[6; 32]);
        let cert2 = Certificate::sign(cert.tbs.clone(), &other);
        assert!(!cert2.is_self_signed());
    }

    #[test]
    fn key_usage_flags() {
        let u = KeyUsage::DIGITAL_SIGNATURE.union(KeyUsage::CLIENT_AUTH);
        assert!(u.permits(KeyUsage::CLIENT_AUTH));
        assert!(u.permits(KeyUsage::DIGITAL_SIGNATURE));
        assert!(!u.permits(KeyUsage::KEY_CERT_SIGN));
        assert!(!u.permits(KeyUsage::CLIENT_AUTH.union(KeyUsage::SERVER_AUTH)));
    }

    #[test]
    fn validity_window() {
        let v = Validity::new(100, 200);
        assert!(!v.contains(99));
        assert!(v.contains(100));
        assert!(v.contains(200));
        assert!(!v.contains(201));
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let issuer = SigningKey::from_seed(&[1; 32]);
        let a = Certificate::sign(sample_tbs(&issuer), &issuer);
        let mut tbs = sample_tbs(&issuer);
        tbs.serial = 8;
        let b = Certificate::sign(tbs, &issuer);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn dn_display() {
        let dn = DistinguishedName::new("vnf-1").with_org("acme");
        assert_eq!(dn.to_string(), "CN=vnf-1,O=acme");
        assert_eq!(DistinguishedName::new("x").to_string(), "CN=x");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Certificate::decode(&[0xff, 0x00]).is_err());
        assert!(Certificate::decode(&[]).is_err());
    }
}
