//! The per-client keystore model (Floodlight's default trusted-HTTPS mode).
//!
//! Floodlight validates clients "by adding client certificates to its
//! keystore" (paper §3). This module reproduces that model faithfully —
//! including its operational pain: every newly provisioned VNF credential
//! requires a keystore update on the controller, lookups scan the store,
//! and stale entries accumulate. Experiment E5 benchmarks this against the
//! CA validation in [`crate::chain::TrustStore`].

use crate::cert::Certificate;

/// An alias→certificate store in the style of a Java keystore used as a
/// trust source (linear structure, insertion order preserved).
#[derive(Debug, Default)]
pub struct KeyStore {
    entries: Vec<(String, Certificate)>,
}

impl KeyStore {
    pub fn new() -> KeyStore {
        KeyStore::default()
    }

    /// Add (or replace) an entry under `alias`.
    pub fn set(&mut self, alias: &str, cert: Certificate) {
        if let Some(slot) = self.entries.iter_mut().find(|(a, _)| a == alias) {
            slot.1 = cert;
        } else {
            self.entries.push((alias.to_string(), cert));
        }
    }

    /// Remove an entry; returns whether it existed.
    pub fn remove(&mut self, alias: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(a, _)| a != alias);
        self.entries.len() != before
    }

    pub fn get(&self, alias: &str) -> Option<&Certificate> {
        self.entries
            .iter()
            .find(|(a, _)| a == alias)
            .map(|(_, c)| c)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn aliases(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(a, _)| a.as_str())
    }

    /// The keystore trust decision: is this exact certificate present?
    ///
    /// This is a full scan comparing fingerprints — the per-client model the
    /// paper replaces. Cost grows linearly with enrolled clients.
    pub fn contains_certificate(&self, cert: &Certificate) -> bool {
        let fp = cert.fingerprint();
        self.entries.iter().any(|(_, c)| c.fingerprint() == fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::{CertificateAuthority, IssueProfile};
    use crate::cert::{DistinguishedName, Validity};
    use vnfguard_crypto::drbg::HmacDrbg;
    use vnfguard_crypto::ed25519::SigningKey;

    fn certs(n: usize) -> Vec<Certificate> {
        let mut rng = HmacDrbg::new(b"keystore");
        let mut ca = CertificateAuthority::new(
            DistinguishedName::new("ca"),
            Validity::new(0, 1000),
            &mut rng,
        );
        let key = SigningKey::from_seed(&[1; 32]);
        (0..n)
            .map(|i| {
                ca.issue(
                    DistinguishedName::new(&format!("vnf-{i}")),
                    key.public_key(),
                    &IssueProfile::vnf_client([i as u8; 32]),
                    0,
                )
            })
            .collect()
    }

    #[test]
    fn set_get_remove() {
        let mut ks = KeyStore::new();
        let cs = certs(2);
        ks.set("a", cs[0].clone());
        ks.set("b", cs[1].clone());
        assert_eq!(ks.len(), 2);
        assert_eq!(ks.get("a").unwrap().subject_cn(), "vnf-0");
        assert!(ks.remove("a"));
        assert!(!ks.remove("a"));
        assert!(ks.get("a").is_none());
        assert_eq!(ks.len(), 1);
    }

    #[test]
    fn replace_under_same_alias() {
        let mut ks = KeyStore::new();
        let cs = certs(2);
        ks.set("x", cs[0].clone());
        ks.set("x", cs[1].clone());
        assert_eq!(ks.len(), 1);
        assert_eq!(ks.get("x").unwrap().subject_cn(), "vnf-1");
    }

    #[test]
    fn membership_is_exact_certificate_match() {
        let mut ks = KeyStore::new();
        let cs = certs(3);
        ks.set("a", cs[0].clone());
        ks.set("b", cs[1].clone());
        assert!(ks.contains_certificate(&cs[0]));
        assert!(ks.contains_certificate(&cs[1]));
        // Same subject, different serial — not trusted.
        assert!(!ks.contains_certificate(&cs[2]));
    }

    #[test]
    fn aliases_iteration() {
        let mut ks = KeyStore::new();
        for (i, c) in certs(3).into_iter().enumerate() {
            ks.set(&format!("alias-{i}"), c);
        }
        let aliases: Vec<&str> = ks.aliases().collect();
        assert_eq!(aliases, vec!["alias-0", "alias-1", "alias-2"]);
    }

    #[test]
    fn empty_store_trusts_nothing() {
        let ks = KeyStore::new();
        assert!(ks.is_empty());
        assert!(!ks.contains_certificate(&certs(1)[0]));
    }
}
