//! Trust-anchor based certificate validation — the CA model the paper
//! adopts for the controller.

use crate::cert::{Certificate, KeyUsage};
use crate::crl::Crl;
use crate::PkiError;

/// What a relying party does when its cached CRL is past `next_update`.
///
/// The lifecycle subsystem distributes CRLs on a poll loop; a partitioned
/// controller eventually holds a stale list. Fail-open keeps the network
/// running on possibly outdated revocation data, fail-closed refuses every
/// client from that issuer until a fresh CRL arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RevocationPolicy {
    /// Keep honoring a stale CRL's entries; do not reject on staleness.
    #[default]
    FailOpen,
    /// Reject all certificates from an issuer whose cached CRL is stale.
    FailClosed,
}

/// A set of trust anchors plus current revocation data.
///
/// This is what the network controller holds instead of a per-client
/// keystore: one CA certificate and a CRL, independent of how many VNF
/// clients exist. During a CA rotation's dual-trust window the store holds
/// *two* self-signed roots sharing one distinguished name (old and new
/// generation); all lookups therefore try every matching anchor rather than
/// the first.
#[derive(Debug, Default)]
pub struct TrustStore {
    anchors: Vec<Certificate>,
    crls: Vec<Crl>,
    revocation_policy: RevocationPolicy,
}

impl TrustStore {
    pub fn new() -> TrustStore {
        TrustStore::default()
    }

    /// Install a trust anchor. Rejects certificates that are not self-signed
    /// CA certificates with the cert-sign usage.
    pub fn add_anchor(&mut self, anchor: Certificate) -> Result<(), PkiError> {
        if !anchor.tbs.is_ca {
            return Err(PkiError::NotAuthorized("anchor is not a CA".into()));
        }
        if !anchor.tbs.key_usage.permits(KeyUsage::KEY_CERT_SIGN) {
            return Err(PkiError::NotAuthorized(
                "anchor lacks keyCertSign usage".into(),
            ));
        }
        if !anchor.is_self_signed() {
            return Err(PkiError::BadSignature);
        }
        if self
            .anchors
            .iter()
            .any(|a| a.fingerprint() == anchor.fingerprint())
        {
            return Ok(()); // idempotent re-install
        }
        self.anchors.push(anchor);
        Ok(())
    }

    /// Remove the anchor with this fingerprint (end of a rotation's drain
    /// window). Returns whether an anchor was removed. Cached CRLs are kept:
    /// they are re-verified against the remaining anchors on replacement.
    pub fn remove_anchor(&mut self, fingerprint: &[u8; 32]) -> bool {
        let before = self.anchors.len();
        self.anchors.retain(|a| a.fingerprint() != *fingerprint);
        self.anchors.len() != before
    }

    /// The installed trust anchors.
    pub fn anchors(&self) -> impl Iterator<Item = &Certificate> {
        self.anchors.iter()
    }

    /// How to treat a stale cached CRL during validation.
    pub fn set_revocation_policy(&mut self, policy: RevocationPolicy) {
        self.revocation_policy = policy;
    }

    pub fn revocation_policy(&self) -> RevocationPolicy {
        self.revocation_policy
    }

    /// Install or replace the CRL from `issuer`, verifying its signature
    /// against any matching anchor (during a rotation window two anchors
    /// share the issuer name — the CRL is signed by the current key).
    /// Refuses to replace a cached CRL with a lower-numbered one.
    pub fn install_crl(&mut self, crl: Crl) -> Result<(), PkiError> {
        let mut seen_issuer = false;
        let mut verified = false;
        for anchor in &self.anchors {
            if anchor.tbs.subject.common_name == crl.issuer.common_name {
                seen_issuer = true;
                if crl.verify(&anchor.tbs.public_key).is_ok() {
                    verified = true;
                    break;
                }
            }
        }
        if !seen_issuer {
            return Err(PkiError::UnknownIssuer(crl.issuer.common_name.clone()));
        }
        if !verified {
            return Err(PkiError::BadSignature);
        }
        if let Some(existing) = self
            .crls
            .iter()
            .find(|existing| existing.issuer.common_name == crl.issuer.common_name)
        {
            if existing.crl_number > crl.crl_number {
                return Err(PkiError::CrlReplay {
                    issuer: crl.issuer.common_name.clone(),
                    cached: existing.crl_number,
                    offered: crl.crl_number,
                });
            }
        }
        self.crls
            .retain(|existing| existing.issuer.common_name != crl.issuer.common_name);
        self.crls.push(crl);
        Ok(())
    }

    /// The cached CRL from `issuer_cn`, if any (controller-side freshness
    /// gauges read its `issued_at`/`crl_number`).
    pub fn crl(&self, issuer_cn: &str) -> Option<&Crl> {
        self.crls
            .iter()
            .find(|crl| crl.issuer.common_name == issuer_cn)
    }

    pub fn anchor_count(&self) -> usize {
        self.anchors.len()
    }

    /// Validate a leaf certificate at time `now`, requiring `usage`.
    ///
    /// Checks, in order: issuer known → signature → validity window →
    /// revocation (incl. the fail-open/fail-closed staleness policy) → key
    /// usage. The cost of this routine is independent of the number of
    /// clients ever enrolled (experiment E5). Every anchor whose subject
    /// matches the leaf's issuer is tried, so a dual-trust rotation window
    /// accepts leaves from either CA generation.
    pub fn validate(
        &self,
        cert: &Certificate,
        now: u64,
        usage: KeyUsage,
    ) -> Result<(), PkiError> {
        let mut seen_issuer = false;
        let mut verified = false;
        for anchor in &self.anchors {
            if anchor.tbs.subject == cert.tbs.issuer {
                seen_issuer = true;
                if cert.verify_signature(&anchor.tbs.public_key).is_ok() {
                    verified = true;
                    break;
                }
            }
        }
        if !seen_issuer {
            return Err(PkiError::UnknownIssuer(cert.tbs.issuer.to_string()));
        }
        if !verified {
            return Err(PkiError::BadSignature);
        }
        if !cert.tbs.validity.contains(now) {
            return Err(PkiError::Expired {
                now,
                not_before: cert.tbs.validity.not_before,
                not_after: cert.tbs.validity.not_after,
            });
        }
        for crl in &self.crls {
            if crl.issuer.common_name == cert.tbs.issuer.common_name {
                if let Some(entry) = crl.lookup(cert.serial()) {
                    return Err(PkiError::Revoked {
                        serial: cert.serial(),
                        reason: entry.reason,
                    });
                }
                if self.revocation_policy == RevocationPolicy::FailClosed && crl.is_stale(now) {
                    return Err(PkiError::StaleCrl {
                        issuer: crl.issuer.common_name.clone(),
                        next_update: crl.next_update,
                        now,
                    });
                }
            }
        }
        if !cert.tbs.key_usage.permits(usage) {
            return Err(PkiError::ConstraintViolated(format!(
                "key usage {:#04x} does not permit required {:#04x}",
                cert.tbs.key_usage.0, usage.0
            )));
        }
        Ok(())
    }

    /// Validate and additionally require an enclave binding matching
    /// `expected_mrenclave` — used by relying parties that insist the
    /// credential lives inside an attested enclave.
    pub fn validate_with_binding(
        &self,
        cert: &Certificate,
        now: u64,
        usage: KeyUsage,
        expected_mrenclave: &[u8; 32],
    ) -> Result<(), PkiError> {
        self.validate(cert, now, usage)?;
        match &cert.tbs.enclave_binding {
            Some(binding) if binding == expected_mrenclave => Ok(()),
            Some(_) => Err(PkiError::ConstraintViolated(
                "enclave binding mismatch".into(),
            )),
            None => Err(PkiError::ConstraintViolated(
                "certificate carries no enclave binding".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::{CertificateAuthority, IssueProfile};
    use crate::cert::{DistinguishedName, TbsCertificate, Validity};
    use crate::crl::RevocationReason;
    use vnfguard_crypto::drbg::HmacDrbg;
    use vnfguard_crypto::ed25519::SigningKey;

    fn setup() -> (CertificateAuthority, TrustStore) {
        let mut rng = HmacDrbg::new(b"chain tests");
        let ca = CertificateAuthority::new(
            DistinguishedName::new("vm-ca"),
            Validity::new(0, 1_000_000),
            &mut rng,
        );
        let mut store = TrustStore::new();
        store.add_anchor(ca.certificate().clone()).unwrap();
        (ca, store)
    }

    #[test]
    fn valid_leaf_accepted() {
        let (mut ca, store) = setup();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let cert = ca.issue(
            DistinguishedName::new("vnf-1"),
            leaf.public_key(),
            &IssueProfile::vnf_client([7; 32]),
            100,
        );
        store.validate(&cert, 200, KeyUsage::CLIENT_AUTH).unwrap();
        store
            .validate_with_binding(&cert, 200, KeyUsage::CLIENT_AUTH, &[7; 32])
            .unwrap();
    }

    #[test]
    fn unknown_issuer_rejected() {
        let (_ca, store) = setup();
        let mut rng = HmacDrbg::new(b"rogue");
        let mut rogue = CertificateAuthority::new(
            DistinguishedName::new("rogue-ca"),
            Validity::new(0, 1_000_000),
            &mut rng,
        );
        let leaf = SigningKey::from_seed(&[1; 32]);
        let cert = rogue.issue(
            DistinguishedName::new("vnf-1"),
            leaf.public_key(),
            &IssueProfile::vnf_client([7; 32]),
            100,
        );
        assert!(matches!(
            store.validate(&cert, 200, KeyUsage::CLIENT_AUTH),
            Err(PkiError::UnknownIssuer(_))
        ));
    }

    #[test]
    fn forged_signature_rejected() {
        let (mut ca, store) = setup();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let mut cert = ca.issue(
            DistinguishedName::new("vnf-1"),
            leaf.public_key(),
            &IssueProfile::vnf_client([7; 32]),
            100,
        );
        // Attacker upgrades their own name after issuance.
        cert.tbs.subject.common_name = "admin".into();
        assert_eq!(
            store.validate(&cert, 200, KeyUsage::CLIENT_AUTH),
            Err(PkiError::BadSignature)
        );
    }

    #[test]
    fn expiry_enforced() {
        let (mut ca, store) = setup();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let cert = ca.issue(
            DistinguishedName::new("vnf-1"),
            leaf.public_key(),
            &IssueProfile::vnf_client([7; 32]),
            100,
        );
        let expiry = cert.tbs.validity.not_after;
        assert!(store.validate(&cert, expiry, KeyUsage::CLIENT_AUTH).is_ok());
        assert!(matches!(
            store.validate(&cert, expiry + 1, KeyUsage::CLIENT_AUTH),
            Err(PkiError::Expired { .. })
        ));
        assert!(matches!(
            store.validate(&cert, 99, KeyUsage::CLIENT_AUTH),
            Err(PkiError::Expired { .. })
        ));
    }

    #[test]
    fn revocation_enforced_after_crl_install() {
        let (mut ca, mut store) = setup();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let cert = ca.issue(
            DistinguishedName::new("vnf-1"),
            leaf.public_key(),
            &IssueProfile::vnf_client([7; 32]),
            100,
        );
        ca.revoke(cert.serial(), RevocationReason::PlatformCompromise, 150);
        // Until the CRL reaches the relying party, the cert still validates.
        store.validate(&cert, 200, KeyUsage::CLIENT_AUTH).unwrap();
        store.install_crl(ca.current_crl(200, 300)).unwrap();
        assert!(matches!(
            store.validate(&cert, 201, KeyUsage::CLIENT_AUTH),
            Err(PkiError::Revoked { .. })
        ));
    }

    #[test]
    fn crl_from_unknown_issuer_rejected() {
        let (_, mut store) = setup();
        let key = SigningKey::from_seed(&[9; 32]);
        let crl = Crl::build(DistinguishedName::new("nobody"), 0, 10, 0, [], &key);
        assert!(store.install_crl(crl).is_err());
    }

    #[test]
    fn lower_numbered_crl_rejected() {
        let (mut ca, mut store) = setup();
        let fresh = ca.issue_crl(10, 100);
        let newer = ca.issue_crl(20, 100);
        store.install_crl(newer).unwrap();
        assert!(matches!(
            store.install_crl(fresh),
            Err(PkiError::CrlReplay { cached: 2, offered: 1, .. })
        ));
        // Re-installing the same number is idempotent, not a replay.
        store.install_crl(ca.current_crl(30, 100)).unwrap();
    }

    #[test]
    fn fail_closed_rejects_on_stale_crl() {
        let (mut ca, mut store) = setup();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let cert = ca.issue(
            DistinguishedName::new("vnf-1"),
            leaf.public_key(),
            &IssueProfile::vnf_client([7; 32]),
            100,
        );
        store.install_crl(ca.issue_crl(100, 50)).unwrap();
        // Fresh CRL: fine under either policy.
        store.validate(&cert, 140, KeyUsage::CLIENT_AUTH).unwrap();
        store.set_revocation_policy(RevocationPolicy::FailClosed);
        store.validate(&cert, 150, KeyUsage::CLIENT_AUTH).unwrap();
        // One past next_update: fail-closed rejects, fail-open does not.
        assert!(matches!(
            store.validate(&cert, 151, KeyUsage::CLIENT_AUTH),
            Err(PkiError::StaleCrl { next_update: 150, .. })
        ));
        store.set_revocation_policy(RevocationPolicy::FailOpen);
        store.validate(&cert, 151, KeyUsage::CLIENT_AUTH).unwrap();
    }

    #[test]
    fn dual_trust_window_accepts_both_epochs() {
        let (mut ca, mut store) = setup();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let old_leaf = ca.issue(
            DistinguishedName::new("vnf-old"),
            leaf.public_key(),
            &IssueProfile::vnf_client([7; 32]),
            100,
        );
        let old_root = ca.certificate().clone();
        let (new_root, cross) =
            ca.rotate_to(SigningKey::from_seed(&[42; 32]), Validity::new(0, 2_000_000));
        // The handover is verifiable: cross cert carries the new key, signed
        // by the old one — and cannot itself be abused as an anchor.
        assert_eq!(cross.tbs.public_key, new_root.tbs.public_key);
        cross.verify_signature(&old_root.tbs.public_key).unwrap();
        assert!(!cross.is_self_signed());
        assert!(store.add_anchor(cross.clone()).is_err());

        store.add_anchor(new_root.clone()).unwrap();
        assert_eq!(store.anchor_count(), 2);
        let new_leaf = ca.issue(
            DistinguishedName::new("vnf-new"),
            leaf.public_key(),
            &IssueProfile::vnf_client([7; 32]),
            100,
        );
        // Both epochs validate while both anchors are installed, and the
        // post-rotation CRL (signed by the new key) still installs and
        // covers serials minted by the old epoch.
        store.validate(&old_leaf, 200, KeyUsage::CLIENT_AUTH).unwrap();
        store.validate(&new_leaf, 200, KeyUsage::CLIENT_AUTH).unwrap();
        ca.revoke(old_leaf.serial(), RevocationReason::Superseded, 250);
        store.install_crl(ca.issue_crl(260, 300)).unwrap();
        assert!(matches!(
            store.validate(&old_leaf, 270, KeyUsage::CLIENT_AUTH),
            Err(PkiError::Revoked { .. })
        ));

        // Drain deadline: retire the old root; old-epoch signatures stop
        // verifying, the new epoch is untouched.
        assert!(store.remove_anchor(&old_root.fingerprint()));
        assert!(!store.remove_anchor(&old_root.fingerprint()));
        assert_eq!(store.anchor_count(), 1);
        assert!(store.validate(&new_leaf, 300, KeyUsage::CLIENT_AUTH).is_ok());
        assert_eq!(
            store.validate(&old_leaf, 300, KeyUsage::CLIENT_AUTH),
            Err(PkiError::BadSignature)
        );
    }

    #[test]
    fn crl_replacement_keeps_latest() {
        let (mut ca, mut store) = setup();
        ca.revoke(42, RevocationReason::Unspecified, 1);
        store.install_crl(ca.current_crl(2, 10)).unwrap();
        ca.revoke(43, RevocationReason::Unspecified, 3);
        store.install_crl(ca.current_crl(4, 10)).unwrap();
        assert_eq!(store.crls.len(), 1);
        assert_eq!(store.crls[0].len(), 2);
    }

    #[test]
    fn usage_constraints_enforced() {
        let (mut ca, store) = setup();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let cert = ca.issue(
            DistinguishedName::new("controller"),
            leaf.public_key(),
            &IssueProfile::server(),
            0,
        );
        store.validate(&cert, 10, KeyUsage::SERVER_AUTH).unwrap();
        assert!(matches!(
            store.validate(&cert, 10, KeyUsage::CLIENT_AUTH),
            Err(PkiError::ConstraintViolated(_))
        ));
    }

    #[test]
    fn binding_mismatch_rejected() {
        let (mut ca, store) = setup();
        let leaf = SigningKey::from_seed(&[1; 32]);
        let bound = ca.issue(
            DistinguishedName::new("vnf"),
            leaf.public_key(),
            &IssueProfile::vnf_client([7; 32]),
            0,
        );
        assert!(matches!(
            store.validate_with_binding(&bound, 10, KeyUsage::CLIENT_AUTH, &[8; 32]),
            Err(PkiError::ConstraintViolated(_))
        ));
        let unbound = ca.issue(
            DistinguishedName::new("srv"),
            leaf.public_key(),
            &IssueProfile::server(),
            0,
        );
        assert!(store
            .validate_with_binding(&unbound, 10, KeyUsage::SERVER_AUTH, &[7; 32])
            .is_err());
    }

    #[test]
    fn anchor_requirements() {
        let (mut ca, mut store) = setup();
        let leaf = SigningKey::from_seed(&[1; 32]);
        // Leaf certs cannot be anchors.
        let cert = ca.issue(
            DistinguishedName::new("vnf"),
            leaf.public_key(),
            &IssueProfile::vnf_client([0; 32]),
            0,
        );
        assert!(store.add_anchor(cert).is_err());
        // Self-signed-looking cert with a bad signature is refused.
        let key = SigningKey::from_seed(&[2; 32]);
        let tbs = TbsCertificate {
            serial: 1,
            subject: DistinguishedName::new("fake-ca"),
            issuer: DistinguishedName::new("fake-ca"),
            validity: Validity::new(0, 100),
            public_key: key.public_key(),
            key_usage: KeyUsage::KEY_CERT_SIGN,
            is_ca: true,
            enclave_binding: None,
        };
        let wrong_signer = SigningKey::from_seed(&[3; 32]);
        let forged = Certificate::sign(tbs, &wrong_signer);
        assert_eq!(store.add_anchor(forged), Err(PkiError::BadSignature));
    }
}
