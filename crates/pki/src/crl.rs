//! Certificate revocation lists.
//!
//! The Verification Manager "provisions **or revokes** authentication keys"
//! (paper §2). Revocation is delivered to relying parties (the network
//! controller) as a signed CRL; experiment E8 measures how lookup and
//! distribution costs grow with the number of revoked credentials.

use crate::cert::DistinguishedName;
use crate::PkiError;
use std::collections::BTreeMap;
use vnfguard_crypto::ed25519::{SigningKey, VerifyingKey};
use vnfguard_encoding::{TlvReader, TlvWriter};

const TAG_BODY: u8 = 0x30;
const TAG_ISSUER_CN: u8 = 0x31;
const TAG_ISSUED_AT: u8 = 0x32;
const TAG_NEXT_UPDATE: u8 = 0x33;
const TAG_ENTRY: u8 = 0x34;
const TAG_SIGNATURE: u8 = 0x35;
const TAG_SERIAL: u8 = 0x36;
const TAG_REVOKED_AT: u8 = 0x37;
const TAG_REASON: u8 = 0x38;
const TAG_NUMBER: u8 = 0x39;

/// Why a credential was revoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevocationReason {
    /// Key material suspected or known to be exposed.
    KeyCompromise,
    /// The platform hosting the enclave failed a later attestation.
    PlatformCompromise,
    /// Normal decommissioning of the VNF.
    CessationOfOperation,
    /// Superseded by a re-issued credential.
    Superseded,
    /// Unspecified.
    Unspecified,
}

impl RevocationReason {
    /// Stable wire code for this reason (CRL entries and the manager's
    /// write-ahead log share this encoding).
    pub fn to_u8(self) -> u8 {
        match self {
            RevocationReason::KeyCompromise => 1,
            RevocationReason::PlatformCompromise => 2,
            RevocationReason::CessationOfOperation => 3,
            RevocationReason::Superseded => 4,
            RevocationReason::Unspecified => 0,
        }
    }

    /// Decode a wire code; unknown values map to `Unspecified`.
    pub fn from_u8(v: u8) -> RevocationReason {
        match v {
            1 => RevocationReason::KeyCompromise,
            2 => RevocationReason::PlatformCompromise,
            3 => RevocationReason::CessationOfOperation,
            4 => RevocationReason::Superseded,
            _ => RevocationReason::Unspecified,
        }
    }
}

/// One revoked certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrlEntry {
    pub serial: u64,
    pub revoked_at: u64,
    pub reason: RevocationReason,
}

/// A signed certificate revocation list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crl {
    pub issuer: DistinguishedName,
    pub issued_at: u64,
    pub next_update: u64,
    /// Monotonically increasing issue number (RFC 5280 CRL number). Relying
    /// parties must never replace a cached CRL with a lower-numbered one;
    /// the Verification Manager journals the counter so it survives crash
    /// recovery.
    pub crl_number: u64,
    entries: BTreeMap<u64, CrlEntry>,
    signature: Vec<u8>,
}

impl Crl {
    /// Build and sign a CRL.
    pub fn build(
        issuer: DistinguishedName,
        issued_at: u64,
        next_update: u64,
        crl_number: u64,
        entries: impl IntoIterator<Item = CrlEntry>,
        key: &SigningKey,
    ) -> Crl {
        let entries: BTreeMap<u64, CrlEntry> =
            entries.into_iter().map(|e| (e.serial, e)).collect();
        let body = Self::body_bytes(&issuer, issued_at, next_update, crl_number, &entries);
        Crl {
            issuer,
            issued_at,
            next_update,
            crl_number,
            entries,
            signature: key.sign(&body).to_vec(),
        }
    }

    fn body_bytes(
        issuer: &DistinguishedName,
        issued_at: u64,
        next_update: u64,
        crl_number: u64,
        entries: &BTreeMap<u64, CrlEntry>,
    ) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.string(TAG_ISSUER_CN, &issuer.common_name)
            .u64(TAG_ISSUED_AT, issued_at)
            .u64(TAG_NEXT_UPDATE, next_update)
            .u64(TAG_NUMBER, crl_number);
        for entry in entries.values() {
            w.nested(TAG_ENTRY, |inner| {
                inner
                    .u64(TAG_SERIAL, entry.serial)
                    .u64(TAG_REVOKED_AT, entry.revoked_at)
                    .u8(TAG_REASON, entry.reason.to_u8());
            });
        }
        w.finish()
    }

    /// Verify the issuer signature.
    pub fn verify(&self, issuer_key: &VerifyingKey) -> Result<(), PkiError> {
        let body = Self::body_bytes(
            &self.issuer,
            self.issued_at,
            self.next_update,
            self.crl_number,
            &self.entries,
        );
        issuer_key
            .verify(&body, &self.signature)
            .map_err(|_| PkiError::BadSignature)
    }

    /// Is the serial revoked according to this list?
    pub fn lookup(&self, serial: u64) -> Option<&CrlEntry> {
        self.entries.get(&serial)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the list is stale at `now` and should be refreshed.
    pub fn is_stale(&self, now: u64) -> bool {
        now > self.next_update
    }

    pub fn entries(&self) -> impl Iterator<Item = &CrlEntry> {
        self.entries.values()
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        let body = Self::body_bytes(
            &self.issuer,
            self.issued_at,
            self.next_update,
            self.crl_number,
            &self.entries,
        );
        w.bytes(TAG_BODY, &body).bytes(TAG_SIGNATURE, &self.signature);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<Crl, PkiError> {
        let mut r = TlvReader::new(bytes);
        let body = r.expect(TAG_BODY)?;
        let signature = r.expect(TAG_SIGNATURE)?.to_vec();
        r.finish()?;

        let mut br = TlvReader::new(body);
        let issuer_cn = br.expect_string(TAG_ISSUER_CN)?;
        let issued_at = br.expect_u64(TAG_ISSUED_AT)?;
        let next_update = br.expect_u64(TAG_NEXT_UPDATE)?;
        let crl_number = br.expect_u64(TAG_NUMBER)?;
        let mut entries = BTreeMap::new();
        while !br.is_empty() {
            let mut er = br.expect_nested(TAG_ENTRY)?;
            let entry = CrlEntry {
                serial: er.expect_u64(TAG_SERIAL)?,
                revoked_at: er.expect_u64(TAG_REVOKED_AT)?,
                reason: RevocationReason::from_u8(er.expect_u8(TAG_REASON)?),
            };
            er.finish()?;
            entries.insert(entry.serial, entry);
        }
        Ok(Crl {
            issuer: DistinguishedName::new(&issuer_cn),
            issued_at,
            next_update,
            crl_number,
            entries,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<CrlEntry> {
        vec![
            CrlEntry {
                serial: 3,
                revoked_at: 500,
                reason: RevocationReason::KeyCompromise,
            },
            CrlEntry {
                serial: 9,
                revoked_at: 600,
                reason: RevocationReason::CessationOfOperation,
            },
        ]
    }

    #[test]
    fn build_verify_lookup() {
        let key = SigningKey::from_seed(&[1; 32]);
        let crl = Crl::build(
            DistinguishedName::new("vm-ca"),
            1000,
            2000,
            7,
            sample_entries(),
            &key,
        );
        crl.verify(&key.public_key()).unwrap();
        assert_eq!(crl.len(), 2);
        assert_eq!(crl.crl_number, 7);
        assert!(crl.lookup(3).is_some());
        assert_eq!(
            crl.lookup(3).unwrap().reason,
            RevocationReason::KeyCompromise
        );
        assert!(crl.lookup(4).is_none());
    }

    #[test]
    fn roundtrip() {
        let key = SigningKey::from_seed(&[2; 32]);
        let crl = Crl::build(
            DistinguishedName::new("vm-ca"),
            1,
            2,
            42,
            sample_entries(),
            &key,
        );
        let decoded = Crl::decode(&crl.encode()).unwrap();
        assert_eq!(decoded, crl);
        assert_eq!(decoded.crl_number, 42);
        decoded.verify(&key.public_key()).unwrap();
    }

    #[test]
    fn empty_crl_is_valid() {
        let key = SigningKey::from_seed(&[3; 32]);
        let crl = Crl::build(DistinguishedName::new("ca"), 1, 2, 0, [], &key);
        crl.verify(&key.public_key()).unwrap();
        assert!(crl.is_empty());
        let decoded = Crl::decode(&crl.encode()).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn forged_entry_rejected() {
        let key = SigningKey::from_seed(&[4; 32]);
        let crl = Crl::build(DistinguishedName::new("ca"), 1, 2, 1, sample_entries(), &key);
        let mut bytes = crl.encode();
        // Tamper a byte inside the body.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        if let Ok(tampered) = Crl::decode(&bytes) {
            assert!(tampered.verify(&key.public_key()).is_err());
        } // a decode failure is equally a rejection
    }

    #[test]
    fn wrong_issuer_key_rejected() {
        let key = SigningKey::from_seed(&[5; 32]);
        let crl = Crl::build(DistinguishedName::new("ca"), 1, 2, 0, [], &key);
        let other = SigningKey::from_seed(&[6; 32]);
        assert!(crl.verify(&other.public_key()).is_err());
    }

    #[test]
    fn staleness() {
        let key = SigningKey::from_seed(&[7; 32]);
        let crl = Crl::build(DistinguishedName::new("ca"), 100, 200, 0, [], &key);
        assert!(!crl.is_stale(150));
        assert!(!crl.is_stale(200));
        assert!(crl.is_stale(201));
    }

    #[test]
    fn duplicate_serials_deduplicate() {
        let key = SigningKey::from_seed(&[8; 32]);
        let entries = vec![
            CrlEntry {
                serial: 5,
                revoked_at: 1,
                reason: RevocationReason::Unspecified,
            },
            CrlEntry {
                serial: 5,
                revoked_at: 2,
                reason: RevocationReason::KeyCompromise,
            },
        ];
        let crl = Crl::build(DistinguishedName::new("ca"), 1, 2, 0, entries, &key);
        assert_eq!(crl.len(), 1);
        // Last write wins.
        assert_eq!(crl.lookup(5).unwrap().revoked_at, 2);
    }
}
