//! Property tests over sealed-storage and measurement invariants.

use proptest::prelude::*;
use vnfguard_sgx::enclave::{EnclaveCode, EnclaveContext};
use vnfguard_sgx::measurement::{MeasurementBuilder, PagePerm};
use vnfguard_sgx::platform::SgxPlatform;
use vnfguard_sgx::seal::{SealPolicy, SealedBlob};
use vnfguard_sgx::sigstruct::EnclaveAuthor;
use vnfguard_sgx::SgxError;

/// Minimal enclave that seals/unseals caller data.
struct SealEcho(Vec<u8>);

impl EnclaveCode for SealEcho {
    fn image(&self) -> Vec<u8> {
        self.0.clone()
    }
    fn on_call(
        &mut self,
        ctx: &mut EnclaveContext,
        opcode: u16,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            1 => Ok(ctx.seal(SealPolicy::MrEnclave, b"prop", input)?.encode()),
            2 => {
                let blob = SealedBlob::decode(input)?;
                ctx.unseal(&blob, b"prop")
            }
            3 => Ok(ctx.seal(SealPolicy::MrSigner, b"prop", input)?.encode()),
            other => Err(SgxError::BadCall(other)),
        }
    }
}

fn enclave(platform: &SgxPlatform, image: &[u8]) -> vnfguard_sgx::enclave::Enclave {
    let author = EnclaveAuthor::from_seed(&[1; 32]);
    let signed = author.sign_enclave(SgxPlatform::measure_image(image, 8192), 1, 1, false);
    platform
        .load_enclave(&signed, 8192, Box::new(SealEcho(image.to_vec())))
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn seal_unseal_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let platform = SgxPlatform::new(b"prop seal");
        let e = enclave(&platform, b"seal echo v1");
        let blob = e.ecall(1, &data).unwrap();
        prop_assert_eq!(e.ecall(2, &blob).unwrap(), data);
    }

    #[test]
    fn sealed_blob_corruption_detected(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        position_seed in any::<usize>(),
        flip in 1u8..=255
    ) {
        let platform = SgxPlatform::new(b"prop corrupt");
        let e = enclave(&platform, b"seal echo v1");
        let mut blob = e.ecall(1, &data).unwrap();
        let position = position_seed % blob.len();
        blob[position] ^= flip;
        // Every single-byte corruption must fail decode or unseal — never
        // return different plaintext.
        match e.ecall(2, &blob) {
            Err(_) => {}
            Ok(plain) => prop_assert_eq!(plain, data, "corruption changed plaintext silently"),
        }
    }

    #[test]
    fn mrsigner_blobs_migrate_between_same_author_images(
        data in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let platform = SgxPlatform::new(b"prop migrate");
        let v1 = enclave(&platform, b"image v1");
        let v2 = enclave(&platform, b"image v2");
        // MRSIGNER-policy blob from v1 opens in v2 (same author & prod id).
        let blob = v1.ecall(3, &data).unwrap();
        prop_assert_eq!(v2.ecall(2, &blob).unwrap(), data.clone());
        // MRENCLAVE-policy blob does not.
        let strict = v1.ecall(1, &data).unwrap();
        prop_assert!(v2.ecall(2, &strict).is_err());
    }

    #[test]
    fn measurement_is_injective_on_content(a in proptest::collection::vec(any::<u8>(), 0..256),
                                           b in proptest::collection::vec(any::<u8>(), 0..256)) {
        let ma = SgxPlatform::measure_image(&a, 8192);
        let mb = SgxPlatform::measure_image(&b, 8192);
        prop_assert_eq!(a == b, ma == mb);
    }

    #[test]
    fn page_order_changes_measurement(
        pages in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 2..5)
    ) {
        let mut forward = MeasurementBuilder::ecreate(1 << 20);
        for (i, page) in pages.iter().enumerate() {
            forward.add_page(i * 4096, PagePerm::Rx, page);
        }
        let mut reversed = MeasurementBuilder::ecreate(1 << 20);
        for (i, page) in pages.iter().rev().enumerate() {
            reversed.add_page(i * 4096, PagePerm::Rx, page);
        }
        let same_content = pages.iter().rev().eq(pages.iter());
        prop_assert_eq!(forward.einit() == reversed.einit(), same_content);
    }
}
