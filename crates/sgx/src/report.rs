//! Local attestation reports (`EREPORT`).
//!
//! A report binds an enclave's identity and 64 bytes of caller data to a
//! MAC that only the *target* enclave on the same platform can re-derive
//! (via its report key). The quoting enclave consumes these to produce
//! remotely verifiable quotes.

use crate::measurement::Measurement;
use crate::SgxError;
use vnfguard_encoding::{TlvReader, TlvWriter};

const TAG_CPU_SVN: u8 = 0x50;
const TAG_ATTRIBUTES: u8 = 0x51;
const TAG_MRENCLAVE: u8 = 0x52;
const TAG_MRSIGNER: u8 = 0x53;
const TAG_PROD_ID: u8 = 0x54;
const TAG_ISV_SVN: u8 = 0x55;
const TAG_REPORT_DATA: u8 = 0x56;
const TAG_BODY: u8 = 0x57;
const TAG_KEY_ID: u8 = 0x58;
const TAG_MAC: u8 = 0x59;

/// Attribute flags carried in reports and quotes.
pub mod attributes {
    /// Enclave was initialized in debug mode (its memory is inspectable —
    /// production appraisal must reject this).
    pub const DEBUG: u64 = 1 << 1;
    /// Enclave has been initialized.
    pub const INIT: u64 = 1 << 0;
}

/// Identity of the enclave a report should be targeted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetInfo {
    pub mrenclave: Measurement,
}

/// The signed body of a report (identical fields appear inside quotes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportBody {
    pub cpu_svn: [u8; 16],
    pub attributes: u64,
    pub mrenclave: Measurement,
    pub mrsigner: Measurement,
    pub isv_prod_id: u16,
    pub isv_svn: u16,
    pub report_data: [u8; 64],
}

impl ReportBody {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(TAG_CPU_SVN, &self.cpu_svn)
            .u64(TAG_ATTRIBUTES, self.attributes)
            .bytes(TAG_MRENCLAVE, self.mrenclave.as_bytes())
            .bytes(TAG_MRSIGNER, self.mrsigner.as_bytes())
            .u32(TAG_PROD_ID, self.isv_prod_id as u32)
            .u32(TAG_ISV_SVN, self.isv_svn as u32)
            .bytes(TAG_REPORT_DATA, &self.report_data);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<ReportBody, SgxError> {
        let mut r = TlvReader::new(bytes);
        let body = ReportBody {
            cpu_svn: r.expect_array::<16>(TAG_CPU_SVN)?,
            attributes: r.expect_u64(TAG_ATTRIBUTES)?,
            mrenclave: Measurement(r.expect_array::<32>(TAG_MRENCLAVE)?),
            mrsigner: Measurement(r.expect_array::<32>(TAG_MRSIGNER)?),
            isv_prod_id: r.expect_u32(TAG_PROD_ID)? as u16,
            isv_svn: r.expect_u32(TAG_ISV_SVN)? as u16,
            report_data: r.expect_array::<64>(TAG_REPORT_DATA)?,
        };
        r.finish()?;
        Ok(body)
    }

    /// Is the debug attribute set?
    pub fn is_debug(&self) -> bool {
        self.attributes & attributes::DEBUG != 0
    }
}

/// A MAC'd local-attestation report targeted at one enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    pub body: ReportBody,
    /// Key-derivation diversifier for the report key.
    pub key_id: [u8; 16],
    /// HMAC-SHA256 under the target's report key.
    pub mac: [u8; 32],
}

impl Report {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(TAG_BODY, &self.body.encode())
            .bytes(TAG_KEY_ID, &self.key_id)
            .bytes(TAG_MAC, &self.mac);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<Report, SgxError> {
        let mut r = TlvReader::new(bytes);
        let body = ReportBody::decode(r.expect(TAG_BODY)?)?;
        let key_id = r.expect_array::<16>(TAG_KEY_ID)?;
        let mac = r.expect_array::<32>(TAG_MAC)?;
        r.finish()?;
        Ok(Report { body, key_id, mac })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_body() -> ReportBody {
        ReportBody {
            cpu_svn: [1; 16],
            attributes: attributes::INIT,
            mrenclave: Measurement([2; 32]),
            mrsigner: Measurement([3; 32]),
            isv_prod_id: 4,
            isv_svn: 5,
            report_data: [6; 64],
        }
    }

    #[test]
    fn body_roundtrip() {
        let body = sample_body();
        assert_eq!(ReportBody::decode(&body.encode()).unwrap(), body);
    }

    #[test]
    fn report_roundtrip() {
        let report = Report {
            body: sample_body(),
            key_id: [7; 16],
            mac: [8; 32],
        };
        assert_eq!(Report::decode(&report.encode()).unwrap(), report);
    }

    #[test]
    fn debug_flag() {
        let mut body = sample_body();
        assert!(!body.is_debug());
        body.attributes |= attributes::DEBUG;
        assert!(body.is_debug());
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = sample_body().encode();
        assert!(ReportBody::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(ReportBody::decode(&[]).is_err());
    }
}
