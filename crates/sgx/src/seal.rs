//! Sealed storage: AEAD blobs under `EGETKEY`-derived keys.
//!
//! The VNF credential enclave seals provisioned keys so they survive
//! restarts without ever existing in host-readable plaintext. Blobs are
//! bound to the sealing policy (exact enclave vs. same author), the SVN at
//! sealing time (rollback protection) and the platform fuse key.

use crate::SgxError;
use vnfguard_crypto::gcm::AesGcm;
use vnfguard_encoding::{TlvReader, TlvWriter};

const TAG_POLICY: u8 = 0x60;
const TAG_SVN: u8 = 0x61;
const TAG_PROD_ID: u8 = 0x62;
const TAG_KEY_ID: u8 = 0x63;
const TAG_NONCE: u8 = 0x64;
const TAG_CIPHERTEXT: u8 = 0x65;

/// Which identity the sealing key binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealPolicy {
    /// Bound to the exact enclave measurement: only the identical enclave
    /// can unseal.
    MrEnclave,
    /// Bound to the enclave author: any enclave from the same signer with
    /// the same product id (and SVN ≥ sealing SVN) can unseal — this is the
    /// upgrade/migration path.
    MrSigner,
}

impl SealPolicy {
    fn to_u8(self) -> u8 {
        match self {
            SealPolicy::MrEnclave => 1,
            SealPolicy::MrSigner => 2,
        }
    }

    fn from_u8(v: u8) -> Result<SealPolicy, SgxError> {
        match v {
            1 => Ok(SealPolicy::MrEnclave),
            2 => Ok(SealPolicy::MrSigner),
            other => Err(SgxError::Encoding(format!("bad seal policy {other}"))),
        }
    }
}

/// An encrypted, integrity-protected blob sealed to an enclave identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    pub policy: SealPolicy,
    /// ISV SVN at sealing time (the unsealing enclave must be ≥ this).
    pub svn: u16,
    pub isv_prod_id: u16,
    /// Key-derivation diversifier.
    pub key_id: [u8; 16],
    nonce: [u8; 12],
    ciphertext: Vec<u8>,
}

impl SealedBlob {
    /// Seal plaintext under a derived key. Internal: use
    /// [`crate::enclave::EnclaveContext::seal`] from enclave code.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn seal(
        key: &[u8; 32],
        policy: SealPolicy,
        svn: u16,
        isv_prod_id: u16,
        key_id: [u8; 16],
        nonce: [u8; 12],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<SealedBlob, SgxError> {
        let gcm = AesGcm::new(key);
        let mut bound_aad = aad.to_vec();
        bound_aad.push(policy.to_u8());
        bound_aad.extend_from_slice(&svn.to_be_bytes());
        bound_aad.extend_from_slice(&isv_prod_id.to_be_bytes());
        let ciphertext = gcm.seal(&nonce, &bound_aad, plaintext);
        Ok(SealedBlob {
            policy,
            svn,
            isv_prod_id,
            key_id,
            nonce,
            ciphertext,
        })
    }

    /// Decrypt with the given (re-derived) key.
    pub(crate) fn unseal(&self, key: &[u8; 32], aad: &[u8]) -> Result<Vec<u8>, SgxError> {
        let gcm = AesGcm::new(key);
        let mut bound_aad = aad.to_vec();
        bound_aad.push(self.policy.to_u8());
        bound_aad.extend_from_slice(&self.svn.to_be_bytes());
        bound_aad.extend_from_slice(&self.isv_prod_id.to_be_bytes());
        gcm.open(&self.nonce, &bound_aad, &self.ciphertext)
            .map_err(|_| SgxError::UnsealFailed("authentication failed".into()))
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.u8(TAG_POLICY, self.policy.to_u8())
            .u32(TAG_SVN, self.svn as u32)
            .u32(TAG_PROD_ID, self.isv_prod_id as u32)
            .bytes(TAG_KEY_ID, &self.key_id)
            .bytes(TAG_NONCE, &self.nonce)
            .bytes(TAG_CIPHERTEXT, &self.ciphertext);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<SealedBlob, SgxError> {
        let mut r = TlvReader::new(bytes);
        let policy = SealPolicy::from_u8(r.expect_u8(TAG_POLICY)?)?;
        let svn = r.expect_u32(TAG_SVN)? as u16;
        let isv_prod_id = r.expect_u32(TAG_PROD_ID)? as u16;
        let key_id = r.expect_array::<16>(TAG_KEY_ID)?;
        let nonce = r.expect_array::<12>(TAG_NONCE)?;
        let ciphertext = r.expect(TAG_CIPHERTEXT)?.to_vec();
        r.finish()?;
        Ok(SealedBlob {
            policy,
            svn,
            isv_prod_id,
            key_id,
            nonce,
            ciphertext,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(aad: &[u8], pt: &[u8]) -> ([u8; 32], SealedBlob) {
        let key = [0x11; 32];
        let blob = SealedBlob::seal(
            &key,
            SealPolicy::MrEnclave,
            3,
            7,
            [1; 16],
            [2; 12],
            aad,
            pt,
        )
        .unwrap();
        (key, blob)
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let (key, blob) = blob(b"aad", b"credential bytes");
        assert_eq!(blob.unseal(&key, b"aad").unwrap(), b"credential bytes");
    }

    #[test]
    fn wrong_key_rejected() {
        let (_, blob) = blob(b"aad", b"pt");
        assert!(blob.unseal(&[0x22; 32], b"aad").is_err());
    }

    #[test]
    fn wrong_aad_rejected() {
        let (key, blob) = blob(b"aad", b"pt");
        assert!(blob.unseal(&key, b"other").is_err());
    }

    #[test]
    fn metadata_is_authenticated() {
        let (key, blob) = blob(b"aad", b"pt");
        // Tampering the SVN breaks the bound AAD even with the right key.
        let mut forged = blob.clone();
        forged.svn = 1;
        assert!(forged.unseal(&key, b"aad").is_err());
        let mut forged = blob.clone();
        forged.policy = SealPolicy::MrSigner;
        assert!(forged.unseal(&key, b"aad").is_err());
        let mut forged = blob;
        forged.isv_prod_id = 9;
        assert!(forged.unseal(&key, b"aad").is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (key, blob) = blob(b"a", b"secret");
        let decoded = SealedBlob::decode(&blob.encode()).unwrap();
        assert_eq!(decoded, blob);
        assert_eq!(decoded.unseal(&key, b"a").unwrap(), b"secret");
    }

    #[test]
    fn decode_rejects_bad_policy() {
        let (_, blob) = blob(b"a", b"s");
        let mut bytes = blob.encode();
        // First record is the policy byte: set to an invalid value.
        bytes[5] = 99;
        assert!(SealedBlob::decode(&bytes).is_err());
    }

    #[test]
    fn ciphertext_tamper_rejected() {
        let (key, blob) = blob(b"a", b"s");
        let mut bytes = blob.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let forged = SealedBlob::decode(&bytes).unwrap();
        assert!(forged.unseal(&key, b"a").is_err());
    }
}
