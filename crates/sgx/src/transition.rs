//! The enclave-transition cost model.
//!
//! Real SGX pays thousands of cycles per `ECALL`/`OCALL` crossing (TLB
//! flushes, register scrubbing). The simulator models this as a calibrated
//! busy-wait so that experiments measuring the enclave-residency overhead
//! (E4, E7) reproduce the *shape* of that cost: a fixed per-crossing price
//! that is amortized by batching. Tests run with the cost set to zero.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cost model shared by all enclaves of a platform.
#[derive(Debug)]
pub struct TransitionModel {
    /// Busy-wait iterations per enclave entry (ECALL).
    ecall_spin: u64,
    /// Busy-wait iterations per enclave exit back to the caller.
    oret_spin: u64,
    ecalls: AtomicU64,
}

impl TransitionModel {
    /// Zero-cost model (unit tests, functional runs).
    pub fn free() -> TransitionModel {
        TransitionModel::new(0, 0)
    }

    /// Calibrated model: `ecall_spin`/`oret_spin` busy-wait iterations per
    /// crossing. On the machines this workspace targets, one iteration is
    /// roughly one cycle, so ~8000/4000 approximates published SGX1 numbers.
    pub fn new(ecall_spin: u64, oret_spin: u64) -> TransitionModel {
        TransitionModel {
            ecall_spin,
            oret_spin,
            ecalls: AtomicU64::new(0),
        }
    }

    /// Default calibration approximating SGX1 crossing costs.
    pub fn sgx1_like() -> TransitionModel {
        TransitionModel::new(8_000, 4_000)
    }

    /// Account and pay for one full ecall round trip.
    pub fn enter_exit(&self) {
        self.ecalls.fetch_add(1, Ordering::Relaxed);
        spin(self.ecall_spin);
        spin(self.oret_spin);
    }

    /// Number of ecalls performed through this model.
    pub fn ecall_count(&self) -> u64 {
        self.ecalls.load(Ordering::Relaxed)
    }

    /// Whether crossings are free (functional mode).
    pub fn is_free(&self) -> bool {
        self.ecall_spin == 0 && self.oret_spin == 0
    }
}

#[inline]
fn spin(iterations: u64) {
    for _ in 0..iterations {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_crossings() {
        let model = TransitionModel::free();
        assert_eq!(model.ecall_count(), 0);
        model.enter_exit();
        model.enter_exit();
        assert_eq!(model.ecall_count(), 2);
    }

    #[test]
    fn free_model_is_flagged() {
        assert!(TransitionModel::free().is_free());
        assert!(!TransitionModel::sgx1_like().is_free());
    }

    #[test]
    fn calibrated_model_costs_time() {
        let free = TransitionModel::free();
        let costly = TransitionModel::new(2_000_000, 0);
        let t0 = std::time::Instant::now();
        free.enter_exit();
        let free_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        costly.enter_exit();
        let costly_time = t1.elapsed();
        assert!(
            costly_time > free_time,
            "calibrated crossing ({costly_time:?}) should exceed free ({free_time:?})"
        );
    }
}
