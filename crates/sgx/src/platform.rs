//! The SGX-capable platform: fuse keys, EPC accounting, enclave loading and
//! launch control, and platform-bound key derivation (`EGETKEY`).

use crate::enclave::{Enclave, EnclaveCode, EnclaveIdentity};
use crate::measurement::{Measurement, MeasurementBuilder, PagePerm};
use crate::quote::QuotingEnclave;
use crate::report::{attributes, Report, ReportBody, TargetInfo};
use crate::seal::SealPolicy;
use crate::sigstruct::SignedEnclave;
use crate::transition::TransitionModel;
use crate::SgxError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_crypto::hkdf;
use vnfguard_crypto::hmac::hmac_sha256;

/// Static configuration of a platform.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Enclave page cache capacity in bytes.
    pub epc_bytes: usize,
    /// Microcode/platform TCB version.
    pub cpu_svn: [u8; 16],
    /// EPID group this platform's attestation key belongs to.
    pub epid_group_id: u32,
    /// Whether launch control admits debug enclaves.
    pub allow_debug: bool,
    /// Security version of the quoting enclave.
    pub qe_svn: u16,
}

impl Default for PlatformConfig {
    fn default() -> PlatformConfig {
        PlatformConfig {
            epc_bytes: 128 << 20,
            cpu_svn: [1; 16],
            epid_group_id: 0x0a0b,
            allow_debug: false,
            qe_svn: 2,
        }
    }
}

/// Key classes for platform key derivation (EGETKEY key names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KeyClass {
    Seal,
    Report,
}

impl KeyClass {
    fn label(self) -> &'static [u8] {
        match self {
            KeyClass::Seal => b"SEAL",
            KeyClass::Report => b"REPORT",
        }
    }
}

pub(crate) struct PlatformInner {
    fuse_key: [u8; 32],
    owner_epoch: [u8; 16],
    pub(crate) config: PlatformConfig,
    epc_used: Mutex<usize>,
    next_enclave_id: AtomicU64,
    /// EPID-style attestation member key held by the quoting enclave.
    pub(crate) attestation_key: SigningKey,
    pub(crate) transition: TransitionModel,
    rng_state: Mutex<vnfguard_crypto::drbg::HmacDrbg>,
}

impl PlatformInner {
    /// EGETKEY: derive a platform- and identity-bound symmetric key.
    ///
    /// `mrenclave` participates only for MRENCLAVE-policy keys; MRSIGNER
    /// keys omit it so sealed data survives enclave updates by the same
    /// author. The SVN is the *minimum of requested and current* enforced by
    /// the caller — lower-SVN keys remain derivable (data migration), higher
    /// ones are refused (rollback protection).
    pub(crate) fn derive_key(
        &self,
        class: KeyClass,
        mrenclave: Option<&Measurement>,
        mrsigner: &Measurement,
        isv_prod_id: u16,
        svn: u16,
        key_id: &[u8; 16],
    ) -> [u8; 32] {
        let prk = hkdf::extract(&self.owner_epoch, &self.fuse_key);
        let mut info = Vec::with_capacity(128);
        info.extend_from_slice(class.label());
        info.push(mrenclave.is_some() as u8);
        if let Some(m) = mrenclave {
            info.extend_from_slice(m.as_bytes());
        }
        info.extend_from_slice(mrsigner.as_bytes());
        info.extend_from_slice(&isv_prod_id.to_be_bytes());
        info.extend_from_slice(&svn.to_be_bytes());
        info.extend_from_slice(&self.config.cpu_svn);
        info.extend_from_slice(key_id);
        hkdf::expand(&prk, &info, 32)
            .try_into()
            .expect("32-byte key")
    }

    /// Derive the report key for a target enclave and MAC a report body.
    pub(crate) fn mac_report(
        &self,
        target: &TargetInfo,
        body: &ReportBody,
        key_id: &[u8; 16],
    ) -> [u8; 32] {
        let key = self.derive_key(
            KeyClass::Report,
            Some(&target.mrenclave),
            // The report key depends only on the target enclave identity.
            &Measurement([0; 32]),
            0,
            0,
            key_id,
        );
        hmac_sha256(&key, &body.encode())
    }

    pub(crate) fn random_bytes(&self, out: &mut [u8]) {
        use vnfguard_crypto::drbg::SecureRandom;
        self.rng_state.lock().fill(out);
    }

    pub(crate) fn seal_key_for(
        &self,
        identity: &EnclaveIdentity,
        policy: SealPolicy,
        svn: u16,
        key_id: &[u8; 16],
    ) -> Result<[u8; 32], SgxError> {
        if svn > identity.isv_svn {
            return Err(SgxError::SvnTooHigh {
                requested: svn,
                current: identity.isv_svn,
            });
        }
        let mrenclave = match policy {
            SealPolicy::MrEnclave => Some(&identity.mrenclave),
            SealPolicy::MrSigner => None,
        };
        Ok(self.derive_key(
            KeyClass::Seal,
            mrenclave,
            &identity.mrsigner,
            identity.isv_prod_id,
            svn,
            key_id,
        ))
    }

    pub(crate) fn release_epc(&self, bytes: usize) {
        let mut used = self.epc_used.lock();
        *used = used.saturating_sub(bytes);
    }
}

/// A machine with (simulated) SGX support.
///
/// Cloning is cheap and shares the platform state, mirroring the fact that
/// all enclaves on one host share fuse keys and the EPC.
#[derive(Clone)]
pub struct SgxPlatform {
    inner: Arc<PlatformInner>,
}

impl SgxPlatform {
    /// Create a platform whose fuse key is derived from `seed`
    /// (deterministic platforms make attestation tests reproducible).
    pub fn new(seed: &[u8]) -> SgxPlatform {
        SgxPlatform::with_config(seed, PlatformConfig::default(), TransitionModel::free())
    }

    pub fn with_config(
        seed: &[u8],
        config: PlatformConfig,
        transition: TransitionModel,
    ) -> SgxPlatform {
        let fuse_key = hkdf::derive(b"sgx-fuse", seed, b"fuse key", 32)
            .try_into()
            .expect("32");
        let owner_epoch = hkdf::derive(b"sgx-epoch", seed, b"owner epoch", 16)
            .try_into()
            .expect("16");
        let ak_seed: [u8; 32] = hkdf::derive(b"sgx-epid", seed, b"attestation key", 32)
            .try_into()
            .expect("32");
        let rng = vnfguard_crypto::drbg::HmacDrbg::new(
            &hkdf::derive(b"sgx-rdrand", seed, b"platform rng", 32),
        );
        SgxPlatform {
            inner: Arc::new(PlatformInner {
                fuse_key,
                owner_epoch,
                config,
                epc_used: Mutex::new(0),
                next_enclave_id: AtomicU64::new(1),
                attestation_key: SigningKey::from_seed(&ak_seed),
                transition,
                rng_state: Mutex::new(rng),
            }),
        }
    }

    /// Compute the MRENCLAVE a given image will measure to. Enclave authors
    /// use this to produce SIGSTRUCTs; the Verification Manager uses it to
    /// compute expected measurements.
    pub fn measure_image(image: &[u8], size_bytes: usize) -> Measurement {
        let mut b = MeasurementBuilder::ecreate(size_bytes);
        b.add_blob(0, PagePerm::Rx, image);
        b.einit()
    }

    /// Load, verify and initialize an enclave
    /// (`ECREATE` + `EADD`/`EEXTEND` + launch control + `EINIT`).
    ///
    /// The image provided by `code` is measured page-by-page; the result
    /// must match the author-signed MRENCLAVE or launch fails — this is the
    /// integrity-verification anchor the paper's workflow relies on.
    pub fn load_enclave(
        &self,
        signed: &SignedEnclave,
        size_bytes: usize,
        code: Box<dyn EnclaveCode>,
    ) -> Result<Enclave, SgxError> {
        let mrsigner = signed.verify()?;
        if signed.debug && !self.inner.config.allow_debug {
            return Err(SgxError::LaunchFailed(
                "debug enclaves not admitted by launch control".into(),
            ));
        }
        let measured = Self::measure_image(&code.image(), size_bytes);
        if measured != signed.mrenclave {
            return Err(SgxError::LaunchFailed(format!(
                "measurement mismatch: image measures to {measured}, SIGSTRUCT expects {}",
                signed.mrenclave
            )));
        }
        {
            let mut used = self.inner.epc_used.lock();
            let available = self.inner.config.epc_bytes - *used;
            if size_bytes > available {
                return Err(SgxError::OutOfEpc {
                    requested: size_bytes,
                    available,
                });
            }
            *used += size_bytes;
        }
        let mut attrs = attributes::INIT;
        if signed.debug {
            attrs |= attributes::DEBUG;
        }
        let identity = EnclaveIdentity {
            mrenclave: measured,
            mrsigner,
            isv_prod_id: signed.isv_prod_id,
            isv_svn: signed.isv_svn,
            attributes: attrs,
        };
        Ok(Enclave::new(
            EnclaveHandle {
                inner: self.inner.clone(),
            },
            self.inner.next_enclave_id.fetch_add(1, Ordering::Relaxed),
            identity,
            size_bytes,
            code,
        ))
    }

    /// The platform's quoting enclave.
    pub fn quoting_enclave(&self) -> QuotingEnclave {
        QuotingEnclave::new(self.inner.clone())
    }

    /// EPID group id of this platform's attestation key.
    pub fn epid_group_id(&self) -> u32 {
        self.inner.config.epid_group_id
    }

    /// Public half of the attestation (EPID member) key — registered with
    /// the attestation service when the platform is provisioned.
    pub fn attestation_public_key(&self) -> vnfguard_crypto::ed25519::VerifyingKey {
        self.inner.attestation_key.public_key()
    }

    /// Bytes of EPC currently in use.
    pub fn epc_used(&self) -> usize {
        *self.inner.epc_used.lock()
    }

    /// Total ecalls performed on this platform (cost-model counter).
    pub fn ecall_count(&self) -> u64 {
        self.inner.transition.ecall_count()
    }

    /// Build a report *as if from* a hypothetical enclave — used only by
    /// tests to exercise verification failure paths.
    #[doc(hidden)]
    pub fn forge_report(&self, body: ReportBody, target: &TargetInfo) -> Report {
        let key_id = {
            let mut id = [0u8; 16];
            self.inner.random_bytes(&mut id);
            id
        };
        let mac = self.inner.mac_report(target, &body, &key_id);
        Report { body, key_id, mac }
    }
}

impl std::fmt::Debug for SgxPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SgxPlatform")
            .field("epid_group_id", &self.inner.config.epid_group_id)
            .field("epc_bytes", &self.inner.config.epc_bytes)
            .field("epc_used", &self.epc_used())
            .finish_non_exhaustive()
    }
}

/// Capability handle enclaves hold back to their platform (private).
pub struct EnclaveHandle {
    pub(crate) inner: Arc<PlatformInner>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveContext;
    use crate::sigstruct::EnclaveAuthor;

    struct NullCode(Vec<u8>);
    impl EnclaveCode for NullCode {
        fn image(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn on_call(
            &mut self,
            _ctx: &mut EnclaveContext,
            opcode: u16,
            _input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            Err(SgxError::BadCall(opcode))
        }
    }

    fn signed_for(author: &EnclaveAuthor, image: &[u8], size: usize, debug: bool) -> SignedEnclave {
        author.sign_enclave(SgxPlatform::measure_image(image, size), 1, 1, debug)
    }

    #[test]
    fn loads_enclave_with_matching_measurement() {
        let platform = SgxPlatform::new(b"p1");
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let signed = signed_for(&author, b"enclave code v1", 4096, false);
        let enclave = platform
            .load_enclave(&signed, 4096, Box::new(NullCode(b"enclave code v1".to_vec())))
            .unwrap();
        assert_eq!(enclave.identity().mrsigner, author.mrsigner());
        assert_eq!(platform.epc_used(), 4096);
    }

    #[test]
    fn rejects_tampered_image() {
        let platform = SgxPlatform::new(b"p1");
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let signed = signed_for(&author, b"enclave code v1", 4096, false);
        // A backdoored image measures differently.
        let err = platform
            .load_enclave(&signed, 4096, Box::new(NullCode(b"enclave code vX".to_vec())))
            .unwrap_err();
        assert!(matches!(err, SgxError::LaunchFailed(_)), "{err}");
    }

    #[test]
    fn rejects_debug_when_disallowed() {
        let platform = SgxPlatform::new(b"p1");
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let signed = signed_for(&author, b"img", 4096, true);
        assert!(matches!(
            platform.load_enclave(&signed, 4096, Box::new(NullCode(b"img".to_vec()))),
            Err(SgxError::LaunchFailed(_))
        ));
        // But a debug-permitting platform admits it.
        let permissive = SgxPlatform::with_config(
            b"p2",
            PlatformConfig {
                allow_debug: true,
                ..PlatformConfig::default()
            },
            TransitionModel::free(),
        );
        let enclave = permissive
            .load_enclave(&signed, 4096, Box::new(NullCode(b"img".to_vec())))
            .unwrap();
        assert!(enclave.identity().attributes & attributes::DEBUG != 0);
    }

    #[test]
    fn epc_exhaustion() {
        let platform = SgxPlatform::with_config(
            b"p3",
            PlatformConfig {
                epc_bytes: 8192,
                ..PlatformConfig::default()
            },
            TransitionModel::free(),
        );
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let signed = signed_for(&author, b"a", 4096, false);
        let _e1 = platform
            .load_enclave(&signed, 4096, Box::new(NullCode(b"a".to_vec())))
            .unwrap();
        let _e2 = platform
            .load_enclave(&signed, 4096, Box::new(NullCode(b"a".to_vec())))
            .unwrap();
        let err = platform
            .load_enclave(&signed, 4096, Box::new(NullCode(b"a".to_vec())))
            .unwrap_err();
        assert_eq!(
            err,
            SgxError::OutOfEpc {
                requested: 4096,
                available: 0
            }
        );
        // Dropping an enclave releases its EPC.
        drop(_e1);
        assert_eq!(platform.epc_used(), 4096);
        platform
            .load_enclave(&signed, 4096, Box::new(NullCode(b"a".to_vec())))
            .unwrap();
    }

    #[test]
    fn key_derivation_is_platform_bound() {
        let p1 = SgxPlatform::new(b"platform-a");
        let p2 = SgxPlatform::new(b"platform-b");
        let id = [9u8; 16];
        let k1 = p1.inner.derive_key(
            KeyClass::Seal,
            None,
            &Measurement([1; 32]),
            1,
            1,
            &id,
        );
        let k2 = p2.inner.derive_key(
            KeyClass::Seal,
            None,
            &Measurement([1; 32]),
            1,
            1,
            &id,
        );
        assert_ne!(k1, k2, "different fuse keys must give different keys");
        // Same inputs on the same platform are deterministic.
        let k1b = p1.inner.derive_key(
            KeyClass::Seal,
            None,
            &Measurement([1; 32]),
            1,
            1,
            &id,
        );
        assert_eq!(k1, k1b);
    }

    #[test]
    fn key_derivation_separates_identities_and_classes() {
        let p = SgxPlatform::new(b"p");
        let id = [0u8; 16];
        let base = p
            .inner
            .derive_key(KeyClass::Seal, None, &Measurement([1; 32]), 1, 1, &id);
        let by_class = p
            .inner
            .derive_key(KeyClass::Report, None, &Measurement([1; 32]), 1, 1, &id);
        let by_signer = p
            .inner
            .derive_key(KeyClass::Seal, None, &Measurement([2; 32]), 1, 1, &id);
        let by_svn = p
            .inner
            .derive_key(KeyClass::Seal, None, &Measurement([1; 32]), 1, 2, &id);
        let by_mrenclave = p.inner.derive_key(
            KeyClass::Seal,
            Some(&Measurement([3; 32])),
            &Measurement([1; 32]),
            1,
            1,
            &id,
        );
        for (name, k) in [
            ("class", by_class),
            ("signer", by_signer),
            ("svn", by_svn),
            ("mrenclave", by_mrenclave),
        ] {
            assert_ne!(base, k, "{name} must diversify the key");
        }
    }
}
