//! Remote attestation quotes and the quoting enclave.
//!
//! The quoting enclave (QE) converts a local report into a *quote*: the
//! report body plus the platform's EPID group id, signed with the
//! platform's attestation member key. Relying parties cannot verify quotes
//! themselves — they submit them to the attestation service
//! (`vnfguard-ias`), which knows the group membership and revocation state.
//! This mirrors the paper's step 2/4: "the Verification Manager contacts
//! the Intel Attestation Service … to both verify the validity of the
//! enclave key against the revocation list and the validity of the
//! integrity quote."

use crate::platform::PlatformInner;
use crate::report::{Report, ReportBody, TargetInfo};
use crate::SgxError;
use std::sync::Arc;
use vnfguard_crypto::sha2::sha256;
use vnfguard_encoding::{TlvReader, TlvWriter};

const TAG_BODY: u8 = 0x70;
const TAG_VERSION: u8 = 0x71;
const TAG_GROUP_ID: u8 = 0x72;
const TAG_QE_SVN: u8 = 0x73;
const TAG_BASENAME: u8 = 0x74;
const TAG_MEMBER_ID: u8 = 0x75;
const TAG_REPORT_BODY: u8 = 0x76;
const TAG_SIGNATURE: u8 = 0x77;

/// Current quote format version.
pub const QUOTE_VERSION: u16 = 2;

/// A remotely verifiable attestation quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    pub version: u16,
    /// EPID group of the attesting platform.
    pub epid_group_id: u32,
    /// Security version of the quoting enclave that produced this quote.
    pub qe_svn: u16,
    /// Verifier-chosen basename (linkable mode); binds the quote to one
    /// attestation exchange.
    pub basename: [u8; 32],
    /// Identity and user data of the attested enclave.
    pub report_body: ReportBody,
    /// Pseudonymous member identifier (hash of the member public key) the
    /// attestation service uses for signature-revocation checks.
    pub member_id: [u8; 32],
    signature: Vec<u8>,
}

impl Quote {
    fn signed_bytes(
        version: u16,
        epid_group_id: u32,
        qe_svn: u16,
        basename: &[u8; 32],
        member_id: &[u8; 32],
        report_body: &ReportBody,
    ) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.u32(TAG_VERSION, version as u32)
            .u32(TAG_GROUP_ID, epid_group_id)
            .u32(TAG_QE_SVN, qe_svn as u32)
            .bytes(TAG_BASENAME, basename)
            .bytes(TAG_MEMBER_ID, member_id)
            .bytes(TAG_REPORT_BODY, &report_body.encode());
        w.finish()
    }

    /// Verify the quote signature against a candidate member public key.
    /// (Only the attestation service holds the member key registry.)
    pub fn verify_with_member_key(
        &self,
        member_key: &vnfguard_crypto::ed25519::VerifyingKey,
    ) -> Result<(), SgxError> {
        let bytes = Self::signed_bytes(
            self.version,
            self.epid_group_id,
            self.qe_svn,
            &self.basename,
            &self.member_id,
            &self.report_body,
        );
        member_key
            .verify(&bytes, &self.signature)
            .map_err(|_| SgxError::BadReport)
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.nested(TAG_BODY, |inner| {
            inner
                .u32(TAG_VERSION, self.version as u32)
                .u32(TAG_GROUP_ID, self.epid_group_id)
                .u32(TAG_QE_SVN, self.qe_svn as u32)
                .bytes(TAG_BASENAME, &self.basename)
                .bytes(TAG_MEMBER_ID, &self.member_id)
                .bytes(TAG_REPORT_BODY, &self.report_body.encode());
        })
        .bytes(TAG_SIGNATURE, &self.signature);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<Quote, SgxError> {
        let mut r = TlvReader::new(bytes);
        let mut body = r.expect_nested(TAG_BODY)?;
        let version = body.expect_u32(TAG_VERSION)? as u16;
        let epid_group_id = body.expect_u32(TAG_GROUP_ID)?;
        let qe_svn = body.expect_u32(TAG_QE_SVN)? as u16;
        let basename = body.expect_array::<32>(TAG_BASENAME)?;
        let member_id = body.expect_array::<32>(TAG_MEMBER_ID)?;
        let report_body = ReportBody::decode(body.expect(TAG_REPORT_BODY)?)?;
        body.finish()?;
        let signature = r.expect(TAG_SIGNATURE)?.to_vec();
        r.finish()?;
        Ok(Quote {
            version,
            epid_group_id,
            qe_svn,
            basename,
            member_id,
            report_body,
            signature,
        })
    }
}

/// The platform's quoting enclave.
pub struct QuotingEnclave {
    inner: Arc<PlatformInner>,
    target: TargetInfo,
}

impl QuotingEnclave {
    pub(crate) fn new(inner: Arc<PlatformInner>) -> QuotingEnclave {
        // The QE's own measured identity, to which reports must be targeted.
        let target = TargetInfo {
            mrenclave: crate::measurement::Measurement(sha256(b"vnfguard quoting enclave")),
        };
        QuotingEnclave { inner, target }
    }

    /// The target info application enclaves must use when creating reports
    /// for quoting.
    pub fn target_info(&self) -> TargetInfo {
        self.target
    }

    /// Pseudonymous member id of this platform's attestation key.
    pub fn member_id(&self) -> [u8; 32] {
        sha256(self.inner.attestation_key.public_key().as_bytes())
    }

    /// Verify the local report (it must be targeted at the QE) and produce
    /// a quote over its body.
    pub fn quote(&self, report: &Report, basename: [u8; 32]) -> Result<Quote, SgxError> {
        let expected = self
            .inner
            .mac_report(&self.target, &report.body, &report.key_id);
        if !vnfguard_crypto::ct_eq(&expected, &report.mac) {
            return Err(SgxError::BadReport);
        }
        self.inner.transition.enter_exit();
        let member_id = self.member_id();
        let bytes = Quote::signed_bytes(
            QUOTE_VERSION,
            self.inner.config.epid_group_id,
            self.inner.config.qe_svn,
            &basename,
            &member_id,
            &report.body,
        );
        let signature = self.inner.attestation_key.sign(&bytes).to_vec();
        Ok(Quote {
            version: QUOTE_VERSION,
            epid_group_id: self.inner.config.epid_group_id,
            qe_svn: self.inner.config.qe_svn,
            basename,
            member_id,
            report_body: report.body.clone(),
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::{EnclaveCode, EnclaveContext};
    use crate::platform::SgxPlatform;
    use crate::sigstruct::EnclaveAuthor;

    struct Null(Vec<u8>);
    impl EnclaveCode for Null {
        fn image(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn on_call(
            &mut self,
            _ctx: &mut EnclaveContext,
            op: u16,
            _input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            Err(SgxError::BadCall(op))
        }
    }

    fn setup() -> (SgxPlatform, crate::enclave::Enclave) {
        let platform = SgxPlatform::new(b"quote tests");
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let image = b"app enclave";
        let signed = author.sign_enclave(SgxPlatform::measure_image(image, 4096), 1, 1, false);
        let enclave = platform
            .load_enclave(&signed, 4096, Box::new(Null(image.to_vec())))
            .unwrap();
        (platform, enclave)
    }

    #[test]
    fn quote_generation_and_member_verification() {
        let (platform, enclave) = setup();
        let qe = platform.quoting_enclave();
        let report = enclave.create_report(&qe.target_info(), [3; 64]);
        let quote = qe.quote(&report, [9; 32]).unwrap();
        assert_eq!(quote.epid_group_id, platform.epid_group_id());
        assert_eq!(quote.report_body.mrenclave, enclave.mrenclave());
        assert_eq!(quote.report_body.report_data, [3; 64]);
        quote
            .verify_with_member_key(&platform.attestation_public_key())
            .unwrap();
    }

    #[test]
    fn qe_rejects_misdirected_report() {
        let (platform, enclave) = setup();
        let qe = platform.quoting_enclave();
        // Report targeted at the app enclave itself, not the QE.
        let report = enclave.create_report(&enclave.target_info(), [0; 64]);
        assert_eq!(qe.quote(&report, [0; 32]), Err(SgxError::BadReport));
    }

    #[test]
    fn qe_rejects_cross_platform_report() {
        let (_p1, enclave) = setup();
        let other = SgxPlatform::new(b"other platform");
        let qe = other.quoting_enclave();
        let report = enclave.create_report(&qe.target_info(), [0; 64]);
        assert_eq!(qe.quote(&report, [0; 32]), Err(SgxError::BadReport));
    }

    #[test]
    fn quote_tamper_detected() {
        let (platform, enclave) = setup();
        let qe = platform.quoting_enclave();
        let report = enclave.create_report(&qe.target_info(), [3; 64]);
        let quote = qe.quote(&report, [9; 32]).unwrap();
        let key = platform.attestation_public_key();

        let mut bad = quote.clone();
        bad.report_body.mrenclave = crate::measurement::Measurement([0xee; 32]);
        assert!(bad.verify_with_member_key(&key).is_err());

        let mut bad = quote.clone();
        bad.basename = [0; 32];
        assert!(bad.verify_with_member_key(&key).is_err());

        let mut bad = quote;
        bad.epid_group_id ^= 1;
        assert!(bad.verify_with_member_key(&key).is_err());
    }

    #[test]
    fn quote_roundtrip() {
        let (platform, enclave) = setup();
        let qe = platform.quoting_enclave();
        let report = enclave.create_report(&qe.target_info(), [1; 64]);
        let quote = qe.quote(&report, [2; 32]).unwrap();
        let decoded = Quote::decode(&quote.encode()).unwrap();
        assert_eq!(decoded, quote);
        decoded
            .verify_with_member_key(&platform.attestation_public_key())
            .unwrap();
    }

    #[test]
    fn wrong_member_key_rejected() {
        let (platform, enclave) = setup();
        let qe = platform.quoting_enclave();
        let report = enclave.create_report(&qe.target_info(), [1; 64]);
        let quote = qe.quote(&report, [2; 32]).unwrap();
        let other = SgxPlatform::new(b"other");
        assert!(quote
            .verify_with_member_key(&other.attestation_public_key())
            .is_err());
    }
}
