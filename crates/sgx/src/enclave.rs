//! Enclave instances and the in-enclave execution context.
//!
//! An [`Enclave`] owns its code and private state behind a mutex; the only
//! way in is [`Enclave::ecall`], which pays the transition cost and hands
//! the code an [`EnclaveContext`] with the in-enclave capabilities
//! (`EGETKEY`, `EREPORT`, randomness, sealing). Nothing on `Enclave`
//! exposes the private state — this is the simulator's enforcement of the
//! paper's "credentials do not leave the security context of the enclave".

use crate::measurement::Measurement;
use crate::platform::EnclaveHandle;
use crate::report::{Report, ReportBody, TargetInfo};
use crate::seal::{SealPolicy, SealedBlob};
use crate::SgxError;
use parking_lot::Mutex;

/// Identifier of a loaded enclave on its platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EnclaveId(pub u64);

/// The measured identity of a running enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnclaveIdentity {
    pub mrenclave: Measurement,
    pub mrsigner: Measurement,
    pub isv_prod_id: u16,
    pub isv_svn: u16,
    pub attributes: u64,
}

/// Code loaded into an enclave.
///
/// `image()` returns the bytes that are measured at load time (the "code
/// pages"); `on_call` handles ecalls. State kept in the implementing type
/// is enclave-private by construction.
pub trait EnclaveCode: Send {
    /// The measured enclave image. Must be stable for the lifetime of the
    /// value: it is called once at load time.
    fn image(&self) -> Vec<u8>;

    /// Handle an ecall.
    fn on_call(
        &mut self,
        ctx: &mut EnclaveContext,
        opcode: u16,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError>;
}

/// Host-provided ocall handler: enclave code calls out for services the
/// enclave cannot perform itself (network I/O, time). The host decides what
/// each opcode means. Mirrors the `OCALL` mechanism of the SGX SDK.
pub type OcallHandler<'h> = dyn FnMut(u16, &[u8]) -> Result<Vec<u8>, SgxError> + 'h;

/// In-enclave view of platform capabilities, passed to [`EnclaveCode::on_call`].
pub struct EnclaveContext<'a> {
    handle: &'a EnclaveHandle,
    identity: &'a EnclaveIdentity,
    ocall: Option<&'a mut OcallHandler<'a>>,
}

impl<'a> EnclaveContext<'a> {
    /// This enclave's own identity.
    pub fn identity(&self) -> &EnclaveIdentity {
        self.identity
    }

    /// OCALL: leave the enclave to request a host service. Each crossing
    /// pays the transition cost, exactly like an ecall. Fails if the
    /// current ecall was made without an ocall handler.
    pub fn ocall(&mut self, opcode: u16, payload: &[u8]) -> Result<Vec<u8>, SgxError> {
        match self.ocall.as_mut() {
            Some(handler) => {
                self.handle.inner.transition.enter_exit();
                handler(opcode, payload)
            }
            None => Err(SgxError::App(format!(
                "ocall {opcode} attempted without a host handler"
            ))),
        }
    }

    /// RDRAND: platform randomness usable inside the enclave.
    pub fn random_bytes(&mut self, out: &mut [u8]) {
        self.handle.inner.random_bytes(out);
    }

    /// EGETKEY(SEAL): derive this enclave's sealing key for `policy` at
    /// security version `svn` (≤ own SVN) with diversifier `key_id`.
    pub fn get_seal_key(
        &self,
        policy: SealPolicy,
        svn: u16,
        key_id: &[u8; 16],
    ) -> Result<[u8; 32], SgxError> {
        self.handle
            .inner
            .seal_key_for(self.identity, policy, svn, key_id)
    }

    /// EREPORT: produce a report about this enclave targeted at another
    /// enclave, carrying 64 bytes of caller data.
    pub fn create_report(&mut self, target: &TargetInfo, report_data: [u8; 64]) -> Report {
        let body = ReportBody {
            cpu_svn: self.handle.inner.config.cpu_svn,
            attributes: self.identity.attributes,
            mrenclave: self.identity.mrenclave,
            mrsigner: self.identity.mrsigner,
            isv_prod_id: self.identity.isv_prod_id,
            isv_svn: self.identity.isv_svn,
            report_data,
        };
        let mut key_id = [0u8; 16];
        self.handle.inner.random_bytes(&mut key_id);
        let mac = self.handle.inner.mac_report(target, &body, &key_id);
        Report { body, key_id, mac }
    }

    /// Verify a report that was targeted at *this* enclave.
    pub fn verify_report(&self, report: &Report) -> Result<(), SgxError> {
        let target = TargetInfo {
            mrenclave: self.identity.mrenclave,
        };
        let expected = self
            .handle
            .inner
            .mac_report(&target, &report.body, &report.key_id);
        if vnfguard_crypto::ct_eq(&expected, &report.mac) {
            Ok(())
        } else {
            Err(SgxError::BadReport)
        }
    }

    /// Seal `plaintext` under this enclave's identity with `policy`.
    pub fn seal(
        &mut self,
        policy: SealPolicy,
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<SealedBlob, SgxError> {
        let mut key_id = [0u8; 16];
        self.handle.inner.random_bytes(&mut key_id);
        let mut nonce = [0u8; 12];
        self.handle.inner.random_bytes(&mut nonce);
        let key = self.get_seal_key(policy, self.identity.isv_svn, &key_id)?;
        SealedBlob::seal(
            &key,
            policy,
            self.identity.isv_svn,
            self.identity.isv_prod_id,
            key_id,
            nonce,
            aad,
            plaintext,
        )
    }

    /// Unseal a blob previously sealed by this enclave identity (or, for
    /// MRSIGNER policy, by any enclave from the same author at SVN ≤ ours).
    pub fn unseal(&self, blob: &SealedBlob, aad: &[u8]) -> Result<Vec<u8>, SgxError> {
        let key = self.get_seal_key(blob.policy, blob.svn, &blob.key_id)?;
        blob.unseal(&key, aad)
    }
}

/// A loaded, initialized (and therefore immutable) enclave.
pub struct Enclave {
    id: EnclaveId,
    handle: EnclaveHandle,
    identity: EnclaveIdentity,
    size_bytes: usize,
    code: Mutex<Box<dyn EnclaveCode>>,
    destroyed: bool,
}

impl Enclave {
    pub(crate) fn new(
        handle: EnclaveHandle,
        id: u64,
        identity: EnclaveIdentity,
        size_bytes: usize,
        code: Box<dyn EnclaveCode>,
    ) -> Enclave {
        Enclave {
            id: EnclaveId(id),
            handle,
            identity,
            size_bytes,
            code: Mutex::new(code),
            destroyed: false,
        }
    }

    pub fn id(&self) -> EnclaveId {
        self.id
    }

    pub fn identity(&self) -> &EnclaveIdentity {
        &self.identity
    }

    pub fn mrenclave(&self) -> Measurement {
        self.identity.mrenclave
    }

    /// The target info another enclave needs to direct a report here.
    pub fn target_info(&self) -> TargetInfo {
        TargetInfo {
            mrenclave: self.identity.mrenclave,
        }
    }

    /// Enter the enclave: dispatch `opcode`/`input` to the enclave code.
    ///
    /// Pays the platform's transition cost on every crossing. Ocalls from
    /// the enclave code fail; use [`Enclave::ecall_io`] to provide them.
    pub fn ecall(&self, opcode: u16, input: &[u8]) -> Result<Vec<u8>, SgxError> {
        if self.destroyed {
            return Err(SgxError::EnclaveDestroyed);
        }
        self.handle.inner.transition.enter_exit();
        let mut code = self.code.lock();
        let mut ctx = EnclaveContext {
            handle: &self.handle,
            identity: &self.identity,
            ocall: None,
        };
        code.on_call(&mut ctx, opcode, input)
    }

    /// Enter the enclave with an ocall handler available, so the enclave
    /// code can call back out (e.g. for network I/O during an in-enclave
    /// TLS handshake).
    pub fn ecall_io(
        &self,
        opcode: u16,
        input: &[u8],
        mut ocall: impl FnMut(u16, &[u8]) -> Result<Vec<u8>, SgxError>,
    ) -> Result<Vec<u8>, SgxError> {
        if self.destroyed {
            return Err(SgxError::EnclaveDestroyed);
        }
        self.handle.inner.transition.enter_exit();
        let mut code = self.code.lock();
        let mut ctx = EnclaveContext {
            handle: &self.handle,
            identity: &self.identity,
            ocall: Some(&mut ocall),
        };
        code.on_call(&mut ctx, opcode, input)
    }

    /// Produce a report about this enclave (host-invoked EREPORT wrapper:
    /// the report attests the enclave's measured identity).
    pub fn create_report(&self, target: &TargetInfo, report_data: [u8; 64]) -> Report {
        let mut ctx = EnclaveContext {
            handle: &self.handle,
            identity: &self.identity,
            ocall: None,
        };
        ctx.create_report(target, report_data)
    }

    /// Tear down the enclave, releasing its EPC pages. Further ecalls fail.
    pub fn destroy(&mut self) {
        if !self.destroyed {
            self.destroyed = true;
            self.handle.inner.release_epc(self.size_bytes);
        }
    }
}

impl Drop for Enclave {
    fn drop(&mut self) {
        self.destroy();
    }
}

impl std::fmt::Debug for Enclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately excludes the code/state: enclave memory is opaque.
        f.debug_struct("Enclave")
            .field("id", &self.id)
            .field("mrenclave", &self.identity.mrenclave)
            .field("size_bytes", &self.size_bytes)
            .field("destroyed", &self.destroyed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SgxPlatform;
    use crate::sigstruct::EnclaveAuthor;

    /// A counter enclave: private state only reachable through ecalls.
    struct Counter {
        image: Vec<u8>,
        value: u64,
        secret: [u8; 32],
    }

    impl Counter {
        const OP_INCREMENT: u16 = 1;
        const OP_GET: u16 = 2;
        const OP_SEAL_SECRET: u16 = 3;
        const OP_UNSEAL_SECRET: u16 = 4;
        const OP_HMAC_WITH_SECRET: u16 = 5;

        fn new(image: &[u8]) -> Counter {
            Counter {
                image: image.to_vec(),
                value: 0,
                secret: [0x5a; 32],
            }
        }
    }

    impl EnclaveCode for Counter {
        fn image(&self) -> Vec<u8> {
            self.image.clone()
        }

        fn on_call(
            &mut self,
            ctx: &mut EnclaveContext,
            opcode: u16,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match opcode {
                Self::OP_INCREMENT => {
                    self.value += 1;
                    Ok(Vec::new())
                }
                Self::OP_GET => Ok(self.value.to_be_bytes().to_vec()),
                Self::OP_SEAL_SECRET => {
                    let blob = ctx.seal(SealPolicy::MrEnclave, b"counter", &self.secret)?;
                    Ok(blob.encode())
                }
                Self::OP_UNSEAL_SECRET => {
                    let blob = SealedBlob::decode(input)?;
                    let secret = ctx.unseal(&blob, b"counter")?;
                    // Restore, returning only a success marker.
                    self.secret = secret
                        .try_into()
                        .map_err(|_| SgxError::App("bad secret length".into()))?;
                    Ok(b"ok".to_vec())
                }
                Self::OP_HMAC_WITH_SECRET => Ok(vnfguard_crypto::hmac::hmac_sha256(
                    &self.secret,
                    input,
                )
                .to_vec()),
                other => Err(SgxError::BadCall(other)),
            }
        }
    }

    fn load_counter(platform: &SgxPlatform, image: &[u8]) -> Enclave {
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let signed = author.sign_enclave(SgxPlatform::measure_image(image, 8192), 1, 1, false);
        platform
            .load_enclave(&signed, 8192, Box::new(Counter::new(image)))
            .unwrap()
    }

    #[test]
    fn ecalls_reach_private_state() {
        let platform = SgxPlatform::new(b"host");
        let enclave = load_counter(&platform, b"counter v1");
        enclave.ecall(Counter::OP_INCREMENT, &[]).unwrap();
        enclave.ecall(Counter::OP_INCREMENT, &[]).unwrap();
        let out = enclave.ecall(Counter::OP_GET, &[]).unwrap();
        assert_eq!(u64::from_be_bytes(out.try_into().unwrap()), 2);
        assert_eq!(platform.ecall_count(), 3);
    }

    #[test]
    fn unknown_opcode_rejected() {
        let platform = SgxPlatform::new(b"host");
        let enclave = load_counter(&platform, b"counter v1");
        assert_eq!(enclave.ecall(999, &[]), Err(SgxError::BadCall(999)));
    }

    #[test]
    fn destroyed_enclave_refuses_calls() {
        let platform = SgxPlatform::new(b"host");
        let mut enclave = load_counter(&platform, b"counter v1");
        enclave.destroy();
        assert_eq!(
            enclave.ecall(Counter::OP_GET, &[]),
            Err(SgxError::EnclaveDestroyed)
        );
        assert_eq!(platform.epc_used(), 0);
    }

    #[test]
    fn seal_unseal_roundtrip_same_enclave() {
        let platform = SgxPlatform::new(b"host");
        let enclave = load_counter(&platform, b"counter v1");
        let blob = enclave.ecall(Counter::OP_SEAL_SECRET, &[]).unwrap();
        let out = enclave.ecall(Counter::OP_UNSEAL_SECRET, &blob).unwrap();
        assert_eq!(out, b"ok");
    }

    #[test]
    fn sealed_blob_bound_to_mrenclave() {
        let platform = SgxPlatform::new(b"host");
        let v1 = load_counter(&platform, b"counter v1");
        let v2 = load_counter(&platform, b"counter v2"); // different measurement
        let blob = v1.ecall(Counter::OP_SEAL_SECRET, &[]).unwrap();
        // The v2 enclave derives a different MRENCLAVE seal key.
        let err = v2.ecall(Counter::OP_UNSEAL_SECRET, &blob).unwrap_err();
        assert!(matches!(err, SgxError::UnsealFailed(_)), "{err}");
    }

    #[test]
    fn sealed_blob_bound_to_platform() {
        let p1 = SgxPlatform::new(b"host-1");
        let p2 = SgxPlatform::new(b"host-2");
        let e1 = load_counter(&p1, b"counter v1");
        let e2 = load_counter(&p2, b"counter v1"); // same image, other machine
        let blob = e1.ecall(Counter::OP_SEAL_SECRET, &[]).unwrap();
        assert!(e2.ecall(Counter::OP_UNSEAL_SECRET, &blob).is_err());
    }

    #[test]
    fn local_attestation_between_enclaves() {
        let platform = SgxPlatform::new(b"host");
        let prover = load_counter(&platform, b"counter v1");
        let verifier = load_counter(&platform, b"counter v2");
        let report = prover.create_report(&verifier.target_info(), [7; 64]);
        assert_eq!(report.body.mrenclave, prover.mrenclave());

        // Verification must run inside the verifier enclave: model it with a
        // context produced through its ecall path. For the test we use the
        // EnclaveContext directly through create_report's host wrapper on
        // verifier, checking the MAC cross-enclave.
        let ctx_identity = verifier.identity();
        let target = TargetInfo {
            mrenclave: ctx_identity.mrenclave,
        };
        let expected_ok = {
            // Re-MAC via a context borrowed from the verifier enclave.
            let ctx = EnclaveContext {
                handle: &verifier.handle,
                identity: &verifier.identity,
                ocall: None,
            };
            ctx.verify_report(&report)
        };
        expected_ok.unwrap();
        let _ = target;

        // A report targeted at someone else fails verification here.
        let misdirected = prover.create_report(&prover.target_info(), [7; 64]);
        let ctx = EnclaveContext {
            handle: &verifier.handle,
            identity: &verifier.identity,
            ocall: None,
        };
        assert_eq!(ctx.verify_report(&misdirected), Err(SgxError::BadReport));

        // A tampered body fails.
        let mut tampered = prover.create_report(&verifier.target_info(), [7; 64]);
        tampered.body.isv_svn = 99;
        let ctx = EnclaveContext {
            handle: &verifier.handle,
            identity: &verifier.identity,
            ocall: None,
        };
        assert_eq!(ctx.verify_report(&tampered), Err(SgxError::BadReport));
    }

    #[test]
    fn private_state_never_escapes_via_api() {
        // The only way to use the secret is an HMAC through an ecall; the
        // Enclave type offers no accessor for it, and Debug is redacted.
        let platform = SgxPlatform::new(b"host");
        let enclave = load_counter(&platform, b"counter v1");
        let mac = enclave.ecall(Counter::OP_HMAC_WITH_SECRET, b"msg").unwrap();
        assert_eq!(mac.len(), 32);
        let dbg = format!("{enclave:?}");
        assert!(!dbg.contains("5a5a"), "secret leaked: {dbg}");
    }
}
