//! SIGSTRUCT: the enclave author's signature over the enclave identity.
//!
//! Launch control verifies this structure before `EINIT` completes. The
//! signed fields are the expected MRENCLAVE, the product id and the
//! security version number (ISV SVN); MRSIGNER is derived from the author's
//! public key.

use crate::measurement::{mrsigner, Measurement};
use crate::SgxError;
use vnfguard_crypto::ed25519::{SigningKey, VerifyingKey};
use vnfguard_encoding::{TlvReader, TlvWriter};

const TAG_BODY: u8 = 0x40;
const TAG_MRENCLAVE: u8 = 0x41;
const TAG_PROD_ID: u8 = 0x42;
const TAG_SVN: u8 = 0x43;
const TAG_DEBUG: u8 = 0x44;
const TAG_AUTHOR_KEY: u8 = 0x45;
const TAG_SIGNATURE: u8 = 0x46;

/// An enclave author (ISV) identity that signs enclaves for launch.
pub struct EnclaveAuthor {
    key: SigningKey,
}

impl EnclaveAuthor {
    pub fn from_seed(seed: &[u8; 32]) -> EnclaveAuthor {
        EnclaveAuthor {
            key: SigningKey::from_seed(seed),
        }
    }

    pub fn public_key(&self) -> VerifyingKey {
        self.key.public_key()
    }

    /// The MRSIGNER value enclaves signed by this author will carry.
    pub fn mrsigner(&self) -> Measurement {
        mrsigner(self.key.public_key().as_bytes())
    }

    /// Produce the SIGSTRUCT for an enclave build.
    pub fn sign_enclave(
        &self,
        mrenclave: Measurement,
        isv_prod_id: u16,
        isv_svn: u16,
        debug: bool,
    ) -> SignedEnclave {
        let body = SignedEnclave::body_bytes(&mrenclave, isv_prod_id, isv_svn, debug);
        SignedEnclave {
            mrenclave,
            isv_prod_id,
            isv_svn,
            debug,
            author_key: self.key.public_key(),
            signature: self.key.sign(&body).to_vec(),
        }
    }
}

impl std::fmt::Debug for EnclaveAuthor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnclaveAuthor")
            .field("mrsigner", &self.mrsigner())
            .finish_non_exhaustive()
    }
}

/// The signed enclave identity presented at launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedEnclave {
    pub mrenclave: Measurement,
    pub isv_prod_id: u16,
    pub isv_svn: u16,
    pub debug: bool,
    pub author_key: VerifyingKey,
    signature: Vec<u8>,
}

impl SignedEnclave {
    fn body_bytes(
        mrenclave: &Measurement,
        isv_prod_id: u16,
        isv_svn: u16,
        debug: bool,
    ) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(TAG_MRENCLAVE, mrenclave.as_bytes())
            .u32(TAG_PROD_ID, isv_prod_id as u32)
            .u32(TAG_SVN, isv_svn as u32)
            .u8(TAG_DEBUG, debug as u8);
        w.finish()
    }

    /// Verify the author signature; returns the MRSIGNER on success.
    pub fn verify(&self) -> Result<Measurement, SgxError> {
        let body = Self::body_bytes(&self.mrenclave, self.isv_prod_id, self.isv_svn, self.debug);
        self.author_key
            .verify(&body, &self.signature)
            .map_err(|_| SgxError::LaunchFailed("SIGSTRUCT signature invalid".into()))?;
        Ok(mrsigner(self.author_key.as_bytes()))
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.nested(TAG_BODY, |inner| {
            inner
                .bytes(TAG_MRENCLAVE, self.mrenclave.as_bytes())
                .u32(TAG_PROD_ID, self.isv_prod_id as u32)
                .u32(TAG_SVN, self.isv_svn as u32)
                .u8(TAG_DEBUG, self.debug as u8)
                .bytes(TAG_AUTHOR_KEY, self.author_key.as_bytes());
        })
        .bytes(TAG_SIGNATURE, &self.signature);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<SignedEnclave, SgxError> {
        let mut r = TlvReader::new(bytes);
        let mut body = r.expect_nested(TAG_BODY)?;
        let mrenclave = Measurement(body.expect_array::<32>(TAG_MRENCLAVE)?);
        let isv_prod_id = body.expect_u32(TAG_PROD_ID)? as u16;
        let isv_svn = body.expect_u32(TAG_SVN)? as u16;
        let debug = body.expect_u8(TAG_DEBUG)? != 0;
        let author_key = VerifyingKey::from_bytes(&body.expect_array::<32>(TAG_AUTHOR_KEY)?);
        body.finish()?;
        let signature = r.expect(TAG_SIGNATURE)?.to_vec();
        r.finish()?;
        Ok(SignedEnclave {
            mrenclave,
            isv_prod_id,
            isv_svn,
            debug,
            author_key,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mre(b: u8) -> Measurement {
        Measurement([b; 32])
    }

    #[test]
    fn sign_and_verify() {
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let signed = author.sign_enclave(mre(7), 10, 2, false);
        assert_eq!(signed.verify().unwrap(), author.mrsigner());
    }

    #[test]
    fn tamper_rejected() {
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let signed = author.sign_enclave(mre(7), 10, 2, false);

        let mut bad = signed.clone();
        bad.mrenclave = mre(8);
        assert!(bad.verify().is_err());

        let mut bad = signed.clone();
        bad.isv_svn = 3;
        assert!(bad.verify().is_err());

        let mut bad = signed.clone();
        bad.debug = true;
        assert!(bad.verify().is_err());

        // Key substitution: verify succeeds under the new key only if the
        // signature matches, which it cannot.
        let other = EnclaveAuthor::from_seed(&[2; 32]);
        let mut bad = signed;
        bad.author_key = other.public_key();
        assert!(bad.verify().is_err());
    }

    #[test]
    fn roundtrip() {
        let author = EnclaveAuthor::from_seed(&[3; 32]);
        let signed = author.sign_enclave(mre(1), 1, 1, true);
        let decoded = SignedEnclave::decode(&signed.encode()).unwrap();
        assert_eq!(decoded, signed);
        decoded.verify().unwrap();
    }

    #[test]
    fn mrsigner_tracks_author() {
        let a = EnclaveAuthor::from_seed(&[1; 32]);
        let b = EnclaveAuthor::from_seed(&[2; 32]);
        assert_ne!(a.mrsigner(), b.mrsigner());
        // Same enclave, different author => different MRSIGNER, same MRENCLAVE.
        let sa = a.sign_enclave(mre(5), 1, 1, false);
        let sb = b.sign_enclave(mre(5), 1, 1, false);
        assert_eq!(sa.mrenclave, sb.mrenclave);
        assert_ne!(sa.verify().unwrap(), sb.verify().unwrap());
    }
}
