//! Enclave measurement (MRENCLAVE) computation.
//!
//! Real SGX builds MRENCLAVE by hashing a log of `ECREATE`, `EADD` and
//! `EEXTEND` operations. The model reproduces that chaining: the
//! measurement is a running SHA-256 over tagged operation records, so it
//! depends on the enclave's size, every added page's content and
//! permissions, and the order of operations — any single-byte change to the
//! enclave code changes the measurement.

use vnfguard_crypto::sha2::Sha256;

/// Page size used for measurement accounting.
pub const PAGE_SIZE: usize = 4096;

/// Page permissions (subset of SECINFO flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePerm {
    /// Read-only data.
    R,
    /// Read-write data.
    Rw,
    /// Read-execute code.
    Rx,
}

impl PagePerm {
    fn tag(self) -> u8 {
        match self {
            PagePerm::R => 1,
            PagePerm::Rw => 2,
            PagePerm::Rx => 3,
        }
    }
}

/// A 256-bit enclave (or signer) measurement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Measurement({}…)", &self.to_hex()[..16])
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental MRENCLAVE builder mirroring the ECREATE/EADD/EEXTEND log.
pub struct MeasurementBuilder {
    hasher: Sha256,
    pages: usize,
}

impl MeasurementBuilder {
    /// ECREATE: start a measurement for an enclave of `size_bytes`.
    pub fn ecreate(size_bytes: usize) -> MeasurementBuilder {
        let mut hasher = Sha256::new();
        hasher.update(b"ECREATE");
        hasher.update(&(size_bytes as u64).to_le_bytes());
        MeasurementBuilder { hasher, pages: 0 }
    }

    /// EADD + EEXTEND: measure one page of content with its permissions.
    /// Content shorter than a page is zero-padded, as a loader would.
    pub fn add_page(&mut self, offset: usize, perm: PagePerm, content: &[u8]) -> &mut Self {
        assert!(
            content.len() <= PAGE_SIZE,
            "page content exceeds {PAGE_SIZE} bytes"
        );
        self.hasher.update(b"EADD");
        self.hasher.update(&(offset as u64).to_le_bytes());
        self.hasher.update(&[perm.tag()]);
        let mut page = [0u8; PAGE_SIZE];
        page[..content.len()].copy_from_slice(content);
        self.hasher.update(b"EEXTEND");
        self.hasher.update(&page);
        self.pages += 1;
        self
    }

    /// Measure a byte blob as consecutive pages starting at `base_offset`.
    pub fn add_blob(&mut self, base_offset: usize, perm: PagePerm, blob: &[u8]) -> &mut Self {
        if blob.is_empty() {
            self.add_page(base_offset, perm, &[]);
            return self;
        }
        for (i, chunk) in blob.chunks(PAGE_SIZE).enumerate() {
            self.add_page(base_offset + i * PAGE_SIZE, perm, chunk);
        }
        self
    }

    /// Number of pages measured so far.
    pub fn page_count(&self) -> usize {
        self.pages
    }

    /// EINIT: finalize the measurement.
    pub fn einit(self) -> Measurement {
        let mut hasher = self.hasher;
        hasher.update(b"EINIT");
        Measurement(hasher.finalize())
    }
}

/// Compute the MRSIGNER value for an author public key (SGX defines it as
/// the hash of the signer's key modulus; here, of the Ed25519 public key).
pub fn mrsigner(author_public_key: &[u8; 32]) -> Measurement {
    let mut hasher = Sha256::new();
    hasher.update(b"MRSIGNER");
    hasher.update(author_public_key);
    Measurement(hasher.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(code: &[u8], data: &[u8]) -> Measurement {
        let mut b = MeasurementBuilder::ecreate(1 << 20);
        b.add_blob(0, PagePerm::Rx, code);
        b.add_blob(1 << 19, PagePerm::Rw, data);
        b.einit()
    }

    #[test]
    fn deterministic() {
        assert_eq!(measure(b"code", b"data"), measure(b"code", b"data"));
    }

    #[test]
    fn content_sensitivity() {
        let base = measure(b"code", b"data");
        assert_ne!(measure(b"c0de", b"data"), base, "code byte flip");
        assert_ne!(measure(b"code", b"dat4"), base, "data byte flip");
    }

    #[test]
    fn size_sensitivity() {
        let a = MeasurementBuilder::ecreate(1 << 20).einit();
        let b = MeasurementBuilder::ecreate(1 << 21).einit();
        assert_ne!(a, b);
    }

    #[test]
    fn permission_sensitivity() {
        let mut a = MeasurementBuilder::ecreate(4096);
        a.add_page(0, PagePerm::Rx, b"x");
        let mut b = MeasurementBuilder::ecreate(4096);
        b.add_page(0, PagePerm::Rw, b"x");
        assert_ne!(a.einit(), b.einit());
    }

    #[test]
    fn offset_sensitivity() {
        let mut a = MeasurementBuilder::ecreate(8192);
        a.add_page(0, PagePerm::R, b"x");
        let mut b = MeasurementBuilder::ecreate(8192);
        b.add_page(4096, PagePerm::R, b"x");
        assert_ne!(a.einit(), b.einit());
    }

    #[test]
    fn order_sensitivity() {
        let mut a = MeasurementBuilder::ecreate(8192);
        a.add_page(0, PagePerm::R, b"x").add_page(4096, PagePerm::R, b"y");
        let mut b = MeasurementBuilder::ecreate(8192);
        b.add_page(4096, PagePerm::R, b"y").add_page(0, PagePerm::R, b"x");
        assert_ne!(a.einit(), b.einit());
    }

    #[test]
    fn padding_is_explicit() {
        // A short page and the same content explicitly zero-padded measure
        // identically (loader semantics).
        let mut a = MeasurementBuilder::ecreate(4096);
        a.add_page(0, PagePerm::R, b"abc");
        let mut padded = [0u8; PAGE_SIZE];
        padded[..3].copy_from_slice(b"abc");
        let mut b = MeasurementBuilder::ecreate(4096);
        b.add_page(0, PagePerm::R, &padded);
        assert_eq!(a.einit(), b.einit());
    }

    #[test]
    fn blob_pagination() {
        let blob = vec![7u8; PAGE_SIZE * 2 + 100];
        let mut b = MeasurementBuilder::ecreate(1 << 20);
        b.add_blob(0, PagePerm::Rx, &blob);
        assert_eq!(b.page_count(), 3);
        // Empty blob still contributes one (zero) page.
        let mut e = MeasurementBuilder::ecreate(1 << 20);
        e.add_blob(0, PagePerm::Rw, &[]);
        assert_eq!(e.page_count(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_page_panics() {
        let mut b = MeasurementBuilder::ecreate(4096);
        b.add_page(0, PagePerm::R, &vec![0u8; PAGE_SIZE + 1]);
    }

    #[test]
    fn mrsigner_distinct_per_key() {
        assert_ne!(mrsigner(&[1; 32]), mrsigner(&[2; 32]));
        assert_eq!(mrsigner(&[1; 32]), mrsigner(&[1; 32]));
    }

    #[test]
    fn display_and_debug() {
        let m = measure(b"c", b"d");
        assert_eq!(m.to_hex().len(), 64);
        assert!(format!("{m:?}").starts_with("Measurement("));
    }
}
