//! # vnfguard-sgx
//!
//! A software model of Intel SGX sufficient to reproduce the protocols of
//! *Safeguarding VNF Credentials with Intel SGX* without SGX hardware
//! (substitution documented in DESIGN.md §2).
//!
//! The model covers the pieces the paper's architecture exercises:
//!
//! - **Enclave lifecycle and measurement** ([`enclave`], [`measurement`]):
//!   pages are added and extended into an MRENCLAVE digest exactly in the
//!   spirit of `ECREATE`/`EADD`/`EEXTEND`/`EINIT`; after initialization the
//!   enclave is immutable ("after that the enclave becomes immutable",
//!   paper §2).
//! - **SIGSTRUCT and launch control** ([`sigstruct`]): enclaves are signed
//!   by their author; MRSIGNER is the hash of the author's public key.
//! - **Local attestation** ([`report`]): `EREPORT`/`EGETKEY`-style reports
//!   MAC'd with a platform-bound report key that only the target enclave
//!   (on the same platform) can re-derive.
//! - **Remote attestation** ([`quote`]): a quoting enclave converts local
//!   reports into quotes signed with an EPID-style group member key,
//!   carrying the group id that the (simulated) IAS resolves against its
//!   revocation lists.
//! - **Sealed storage** ([`seal`]): AES-GCM blobs under keys derived from
//!   the per-CPU fuse key with MRENCLAVE or MRSIGNER binding policies and
//!   SVN-based anti-rollback.
//! - **Transition cost model** ([`transition`]): a calibrated per-crossing
//!   busy-wait so the enclave-boundary overhead the paper defers to future
//!   work has a measurable, configurable shape (experiments E4/E7).
//!
//! ## What the model enforces
//!
//! The *confidentiality contract* of the paper — "the credentials do not
//! leave at any point the security context of the enclave" — is enforced by
//! construction: enclave-resident state lives behind [`enclave::Enclave`]
//! and is only reachable through `ecall`s dispatched to the enclave's
//! [`enclave::EnclaveCode`]; there is no accessor that returns the private
//! state, and `Debug` output never includes it.

pub mod enclave;
pub mod measurement;
pub mod platform;
pub mod quote;
pub mod report;
pub mod seal;
pub mod sigstruct;
pub mod transition;

pub use enclave::{Enclave, EnclaveCode, EnclaveContext, EnclaveId};
pub use measurement::Measurement;
pub use platform::{PlatformConfig, SgxPlatform};
pub use quote::{Quote, QuotingEnclave};
pub use report::{Report, TargetInfo};
pub use seal::{SealPolicy, SealedBlob};
pub use sigstruct::{EnclaveAuthor, SignedEnclave};

/// Errors from the SGX model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// The SIGSTRUCT signature did not verify or launch control refused it.
    LaunchFailed(String),
    /// The EPC has no room for the requested enclave.
    OutOfEpc { requested: usize, available: usize },
    /// An ecall to an opcode the enclave code does not implement.
    BadCall(u16),
    /// An ecall into a destroyed enclave.
    EnclaveDestroyed,
    /// Report MAC verification failure.
    BadReport,
    /// Sealed blob could not be opened (wrong platform/enclave/policy or
    /// tampered ciphertext).
    UnsealFailed(String),
    /// A key request for a higher SVN than the enclave's own (rollback
    /// protection refuses to derive future keys).
    SvnTooHigh { requested: u16, current: u16 },
    /// Malformed structure.
    Encoding(String),
    /// Code inside the enclave returned an application-level error.
    App(String),
}

impl std::fmt::Display for SgxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgxError::LaunchFailed(msg) => write!(f, "enclave launch failed: {msg}"),
            SgxError::OutOfEpc {
                requested,
                available,
            } => write!(f, "EPC exhausted: requested {requested}, available {available}"),
            SgxError::BadCall(op) => write!(f, "unhandled ecall opcode {op}"),
            SgxError::EnclaveDestroyed => write!(f, "enclave has been destroyed"),
            SgxError::BadReport => write!(f, "report MAC verification failed"),
            SgxError::UnsealFailed(msg) => write!(f, "unseal failed: {msg}"),
            SgxError::SvnTooHigh { requested, current } => {
                write!(f, "key request for SVN {requested} exceeds current {current}")
            }
            SgxError::Encoding(msg) => write!(f, "encoding: {msg}"),
            SgxError::App(msg) => write!(f, "enclave application error: {msg}"),
        }
    }
}

impl std::error::Error for SgxError {}

impl From<vnfguard_encoding::EncodingError> for SgxError {
    fn from(e: vnfguard_encoding::EncodingError) -> SgxError {
        SgxError::Encoding(e.to_string())
    }
}
