//! # vnfguard-ima
//!
//! A model of the Linux Integrity Measurement Architecture (IMA).
//!
//! The paper's container host runs IMA: "The integrity measurement list is
//! produced by the Linux Integrity Measurement subsystem, which allows to
//! collect measurements of certain files (the measurement targets are
//! configured by the administrator in a policy file)" (§2). This crate
//! reproduces the pieces the Verification Manager consumes:
//!
//! - [`policy`] — administrator-configured measurement rules;
//! - [`list`] — the measurement list in `ima-ng` template form, with the
//!   PCR-10-style running aggregate and boot aggregate;
//! - [`appraisal`] — reference-value databases and list appraisal (the
//!   Verification Manager side);
//! - [`tpm`] — the paper's *future work* extension: a simulated TPM that
//!   anchors the aggregate in a hardware root of trust, so an adversary
//!   with root cannot rewrite history undetected.

pub mod appraisal;
pub mod list;
pub mod policy;
pub mod tpm;

pub use appraisal::{AppraisalResult, ReferenceDatabase, Verdict};
pub use list::{ImaEntry, MeasurementList};
pub use policy::{ImaPolicy, MeasureEvent, PolicyRule};
pub use tpm::SimTpm;

/// Errors from IMA structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImaError {
    Encoding(String),
    /// TPM quote verification failed.
    BadTpmQuote,
}

impl std::fmt::Display for ImaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImaError::Encoding(msg) => write!(f, "encoding: {msg}"),
            ImaError::BadTpmQuote => write!(f, "TPM quote verification failed"),
        }
    }
}

impl std::error::Error for ImaError {}

impl From<vnfguard_encoding::EncodingError> for ImaError {
    fn from(e: vnfguard_encoding::EncodingError) -> ImaError {
        ImaError::Encoding(e.to_string())
    }
}
