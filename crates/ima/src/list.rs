//! The IMA measurement list (`ima-ng` template) and its running aggregate.

use crate::ImaError;
use vnfguard_crypto::sha2::{sha256, Sha256};
use vnfguard_encoding::{TlvReader, TlvWriter};

const TAG_ENTRY: u8 = 0x90;
const TAG_PCR: u8 = 0x91;
const TAG_TEMPLATE_HASH: u8 = 0x92;
const TAG_FILEDATA_HASH: u8 = 0x93;
const TAG_PATH: u8 = 0x94;

/// PCR index IMA extends by default.
pub const IMA_PCR: u8 = 10;

/// The digest recorded for a measurement-violation entry (IMA records
/// all-zero digests when a file changes while open, making violations
/// detectable by verifiers).
pub const VIOLATION_DIGEST: [u8; 32] = [0u8; 32];

/// One `ima-ng`-style measurement entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImaEntry {
    pub pcr: u8,
    /// Hash over the template data (what actually extends the PCR).
    pub template_hash: [u8; 32],
    /// Hash of the measured file content.
    pub filedata_hash: [u8; 32],
    /// Hint path ("eventname").
    pub path: String,
}

impl ImaEntry {
    fn template_hash_for(filedata_hash: &[u8; 32], path: &str) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"ima-ng");
        h.update(filedata_hash);
        h.update(path.as_bytes());
        h.finalize()
    }

    /// Is this a measurement-violation entry?
    pub fn is_violation(&self) -> bool {
        self.filedata_hash == VIOLATION_DIGEST
    }

    fn encode_into(&self, w: &mut TlvWriter) {
        w.nested(TAG_ENTRY, |inner| {
            inner
                .u8(TAG_PCR, self.pcr)
                .bytes(TAG_TEMPLATE_HASH, &self.template_hash)
                .bytes(TAG_FILEDATA_HASH, &self.filedata_hash)
                .string(TAG_PATH, &self.path);
        });
    }

    fn decode_from(r: &mut TlvReader) -> Result<ImaEntry, ImaError> {
        let mut er = r.expect_nested(TAG_ENTRY)?;
        let entry = ImaEntry {
            pcr: er.expect_u8(TAG_PCR)?,
            template_hash: er.expect_array::<32>(TAG_TEMPLATE_HASH)?,
            filedata_hash: er.expect_array::<32>(TAG_FILEDATA_HASH)?,
            path: er.expect_string(TAG_PATH)?,
        };
        er.finish()?;
        Ok(entry)
    }
}

/// The kernel's in-memory measurement list plus the running aggregate.
#[derive(Debug, Clone)]
pub struct MeasurementList {
    entries: Vec<ImaEntry>,
    aggregate: [u8; 32],
}

impl MeasurementList {
    /// Start a list with the boot aggregate as entry zero (as IMA does),
    /// computed over a description of the boot state.
    pub fn new(boot_state: &[u8]) -> MeasurementList {
        let mut list = MeasurementList {
            entries: Vec::new(),
            aggregate: [0u8; 32],
        };
        let boot_digest = sha256(boot_state);
        list.push_measurement("boot_aggregate", &boot_digest);
        list
    }

    fn extend_aggregate(&mut self, template_hash: &[u8; 32]) {
        // PCR extend semantics: new = H(old || template_hash).
        let mut h = Sha256::new();
        h.update(&self.aggregate);
        h.update(template_hash);
        self.aggregate = h.finalize();
    }

    fn push_measurement(&mut self, path: &str, filedata_hash: &[u8; 32]) {
        let template_hash = ImaEntry::template_hash_for(filedata_hash, path);
        let entry = ImaEntry {
            pcr: IMA_PCR,
            template_hash,
            filedata_hash: *filedata_hash,
            path: path.to_string(),
        };
        self.extend_aggregate(&entry.template_hash);
        self.entries.push(entry);
    }

    /// Measure a file's content under its path.
    pub fn measure_file(&mut self, path: &str, content: &[u8]) {
        let digest = sha256(content);
        self.push_measurement(path, &digest);
    }

    /// Record a measurement violation for `path`.
    pub fn record_violation(&mut self, path: &str) {
        let digest = VIOLATION_DIGEST;
        self.push_measurement(path, &digest);
    }

    pub fn entries(&self) -> &[ImaEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current aggregate (what PCR-10 would hold).
    pub fn aggregate(&self) -> [u8; 32] {
        self.aggregate
    }

    /// Recompute the aggregate from the entries; used by verifiers to check
    /// list-internal consistency.
    pub fn recompute_aggregate(entries: &[ImaEntry]) -> [u8; 32] {
        let mut aggregate = [0u8; 32];
        for entry in entries {
            let mut h = Sha256::new();
            h.update(&aggregate);
            h.update(&entry.template_hash);
            aggregate = h.finalize();
        }
        aggregate
    }

    /// Validate each entry's template hash and the aggregate chain.
    pub fn verify_consistency(&self) -> bool {
        for entry in &self.entries {
            if entry.template_hash != ImaEntry::template_hash_for(&entry.filedata_hash, &entry.path)
            {
                return false;
            }
        }
        Self::recompute_aggregate(&self.entries) == self.aggregate
    }

    /// A digest over the full encoded list — this is what the integrity
    /// attestation enclave embeds into its quote's report data, binding the
    /// transmitted list to the attestation.
    pub fn digest(&self) -> [u8; 32] {
        sha256(&self.encode())
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        for entry in &self.entries {
            entry.encode_into(&mut w);
        }
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<MeasurementList, ImaError> {
        let mut r = TlvReader::new(bytes);
        let mut entries = Vec::new();
        while !r.is_empty() {
            entries.push(ImaEntry::decode_from(&mut r)?);
        }
        let aggregate = Self::recompute_aggregate(&entries);
        Ok(MeasurementList { entries, aggregate })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MeasurementList {
        let mut list = MeasurementList::new(b"kernel-4.4.0-51-generic");
        list.measure_file("/usr/bin/dockerd", b"dockerd binary v1.12.2");
        list.measure_file("/usr/bin/vnf-firewall", b"firewall code");
        list
    }

    #[test]
    fn boot_aggregate_is_first() {
        let list = MeasurementList::new(b"boot");
        assert_eq!(list.len(), 1);
        assert_eq!(list.entries()[0].path, "boot_aggregate");
    }

    #[test]
    fn aggregate_changes_with_each_measurement() {
        let mut list = MeasurementList::new(b"boot");
        let a0 = list.aggregate();
        list.measure_file("/bin/a", b"x");
        let a1 = list.aggregate();
        list.measure_file("/bin/b", b"y");
        let a2 = list.aggregate();
        assert_ne!(a0, a1);
        assert_ne!(a1, a2);
    }

    #[test]
    fn consistency_verification() {
        let list = sample();
        assert!(list.verify_consistency());
    }

    #[test]
    fn tampered_entry_breaks_consistency() {
        let mut list = sample();
        // Adversary rewrites a recorded digest to hide a malicious binary.
        list.entries[1].filedata_hash = sha256(b"malicious content");
        assert!(!list.verify_consistency());
        // Even fixing the template hash leaves the aggregate broken.
        list.entries[1].template_hash =
            ImaEntry::template_hash_for(&list.entries[1].filedata_hash, &list.entries[1].path);
        assert!(!list.verify_consistency());
    }

    #[test]
    fn order_matters() {
        let mut a = MeasurementList::new(b"boot");
        a.measure_file("/bin/a", b"x");
        a.measure_file("/bin/b", b"y");
        let mut b = MeasurementList::new(b"boot");
        b.measure_file("/bin/b", b"y");
        b.measure_file("/bin/a", b"x");
        assert_ne!(a.aggregate(), b.aggregate());
    }

    #[test]
    fn violations_recorded_and_detectable() {
        let mut list = sample();
        list.record_violation("/usr/bin/dockerd");
        assert!(list.entries().last().unwrap().is_violation());
        assert!(list.verify_consistency());
        assert_eq!(
            list.entries().iter().filter(|e| e.is_violation()).count(),
            1
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let list = sample();
        let decoded = MeasurementList::decode(&list.encode()).unwrap();
        assert_eq!(decoded.entries(), list.entries());
        assert_eq!(decoded.aggregate(), list.aggregate());
        assert!(decoded.verify_consistency());
    }

    #[test]
    fn digest_binds_content() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.digest(), b.digest());
        b.measure_file("/bin/extra", b"z");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn same_path_different_content_gets_two_entries() {
        // An upgraded (or trojaned) binary appears as an additional entry.
        let mut list = MeasurementList::new(b"boot");
        list.measure_file("/usr/bin/tool", b"v1");
        list.measure_file("/usr/bin/tool", b"v2");
        assert_eq!(list.len(), 3);
        assert_ne!(
            list.entries()[1].filedata_hash,
            list.entries()[2].filedata_hash
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MeasurementList::decode(&[1, 2, 3]).is_err());
    }
}
