//! Simulated TPM anchoring of the IMA aggregate (the paper's future work).
//!
//! Paper §4: "The integrity measurements of the container host are not
//! currently protected by a hardware root of trust, such as a Trusted
//! Platform Module (TPM). … In future work we intend to implement a
//! communication protocol to enable the integrity attestation enclave to
//! retrieve authenticated integrity measurements from a TPM deployed on
//! the platform."
//!
//! This module implements that extension: a TPM with PCR banks whose
//! extend operation mirrors the kernel's, and signed PCR quotes under an
//! attestation identity key (AIK). With the TPM in the loop, a root-level
//! adversary can still *rewrite the in-memory list*, but the rewritten
//! list no longer matches the hardware-held PCR value and appraisal fails.

use crate::ImaError;
use vnfguard_crypto::ed25519::{SigningKey, VerifyingKey};
use vnfguard_crypto::sha2::Sha256;
use vnfguard_encoding::{TlvReader, TlvWriter};

const TAG_PCR_INDEX: u8 = 0xa0;
const TAG_PCR_VALUE: u8 = 0xa1;
const TAG_NONCE: u8 = 0xa2;
const TAG_SIGNATURE: u8 = 0xa3;
const TAG_BODY: u8 = 0xa4;

/// Number of PCRs in the bank.
pub const PCR_COUNT: usize = 24;

/// A signed PCR quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcrQuote {
    pub pcr_index: u8,
    pub pcr_value: [u8; 32],
    pub nonce: [u8; 32],
    signature: Vec<u8>,
}

impl PcrQuote {
    fn body_bytes(pcr_index: u8, pcr_value: &[u8; 32], nonce: &[u8; 32]) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.u8(TAG_PCR_INDEX, pcr_index)
            .bytes(TAG_PCR_VALUE, pcr_value)
            .bytes(TAG_NONCE, nonce);
        w.finish()
    }

    /// Verify against the TPM's AIK public key and the expected nonce.
    pub fn verify(&self, aik: &VerifyingKey, nonce: &[u8; 32]) -> Result<(), ImaError> {
        if &self.nonce != nonce {
            return Err(ImaError::BadTpmQuote);
        }
        let body = Self::body_bytes(self.pcr_index, &self.pcr_value, &self.nonce);
        aik.verify(&body, &self.signature)
            .map_err(|_| ImaError::BadTpmQuote)
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(
            TAG_BODY,
            &Self::body_bytes(self.pcr_index, &self.pcr_value, &self.nonce),
        )
        .bytes(TAG_SIGNATURE, &self.signature);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<PcrQuote, ImaError> {
        let mut r = TlvReader::new(bytes);
        let body = r.expect(TAG_BODY)?;
        let signature = r.expect(TAG_SIGNATURE)?.to_vec();
        r.finish()?;
        let mut br = TlvReader::new(body);
        let quote = PcrQuote {
            pcr_index: br.expect_u8(TAG_PCR_INDEX)?,
            pcr_value: br.expect_array::<32>(TAG_PCR_VALUE)?,
            nonce: br.expect_array::<32>(TAG_NONCE)?,
            signature,
        };
        br.finish()?;
        Ok(quote)
    }
}

/// A minimal TPM: PCR bank + AIK-signed quotes.
pub struct SimTpm {
    pcrs: [[u8; 32]; PCR_COUNT],
    aik: SigningKey,
    extend_count: u64,
}

impl SimTpm {
    pub fn new(seed: &[u8; 32]) -> SimTpm {
        SimTpm {
            pcrs: [[0u8; 32]; PCR_COUNT],
            aik: SigningKey::from_seed(seed),
            extend_count: 0,
        }
    }

    /// Public half of the attestation identity key.
    pub fn aik_public(&self) -> VerifyingKey {
        self.aik.public_key()
    }

    /// Extend a PCR with a digest; panics on out-of-range index
    /// (programming error — the kernel uses fixed indices).
    pub fn extend(&mut self, pcr: u8, digest: &[u8; 32]) {
        let slot = &mut self.pcrs[pcr as usize];
        let mut h = Sha256::new();
        h.update(slot);
        h.update(digest);
        *slot = h.finalize();
        self.extend_count += 1;
    }

    /// Read a PCR value (reads are unauthenticated, like real TPMs).
    pub fn read(&self, pcr: u8) -> [u8; 32] {
        self.pcrs[pcr as usize]
    }

    /// Produce a signed quote over one PCR, bound to a verifier nonce.
    pub fn quote(&self, pcr: u8, nonce: [u8; 32]) -> PcrQuote {
        let pcr_value = self.read(pcr);
        let body = PcrQuote::body_bytes(pcr, &pcr_value, &nonce);
        PcrQuote {
            pcr_index: pcr,
            pcr_value,
            nonce,
            signature: self.aik.sign(&body).to_vec(),
        }
    }

    pub fn extend_count(&self) -> u64 {
        self.extend_count
    }
}

impl std::fmt::Debug for SimTpm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimTpm")
            .field("extend_count", &self.extend_count)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{MeasurementList, IMA_PCR};

    #[test]
    fn extend_matches_list_aggregate() {
        // Driving the TPM with the same template hashes as the list yields
        // the same value: the hardware anchor mirrors the software chain.
        let mut tpm = SimTpm::new(&[1; 32]);
        let mut list = MeasurementList::new(b"boot");
        list.measure_file("/bin/a", b"x");
        list.measure_file("/bin/b", b"y");
        for entry in list.entries() {
            tpm.extend(IMA_PCR, &entry.template_hash);
        }
        assert_eq!(tpm.read(IMA_PCR), list.aggregate());
        assert_eq!(tpm.extend_count(), 3);
    }

    #[test]
    fn quote_verification() {
        let mut tpm = SimTpm::new(&[1; 32]);
        tpm.extend(IMA_PCR, &[5; 32]);
        let nonce = [9; 32];
        let quote = tpm.quote(IMA_PCR, nonce);
        quote.verify(&tpm.aik_public(), &nonce).unwrap();
        // Replay with a different nonce fails.
        assert_eq!(
            quote.verify(&tpm.aik_public(), &[8; 32]),
            Err(ImaError::BadTpmQuote)
        );
        // Wrong AIK fails.
        let other = SimTpm::new(&[2; 32]);
        assert!(quote.verify(&other.aik_public(), &nonce).is_err());
    }

    #[test]
    fn quote_tamper_detected() {
        let mut tpm = SimTpm::new(&[1; 32]);
        tpm.extend(IMA_PCR, &[5; 32]);
        let nonce = [0; 32];
        let quote = tpm.quote(IMA_PCR, nonce);
        let mut bad = quote.clone();
        bad.pcr_value = [7; 32];
        assert!(bad.verify(&tpm.aik_public(), &nonce).is_err());
    }

    #[test]
    fn quote_roundtrip() {
        let mut tpm = SimTpm::new(&[3; 32]);
        tpm.extend(2, &[1; 32]);
        let quote = tpm.quote(2, [4; 32]);
        let decoded = PcrQuote::decode(&quote.encode()).unwrap();
        assert_eq!(decoded, quote);
        decoded.verify(&tpm.aik_public(), &[4; 32]).unwrap();
    }

    #[test]
    fn rewritten_list_no_longer_matches_tpm() {
        // The attack from the paper's §4: root rewrites the in-memory list.
        let mut tpm = SimTpm::new(&[1; 32]);
        let mut list = MeasurementList::new(b"boot");
        list.measure_file("/usr/bin/vnf", b"malicious");
        for entry in list.entries() {
            tpm.extend(IMA_PCR, &entry.template_hash);
        }
        // Adversary fabricates a clean-looking list.
        let mut forged = MeasurementList::new(b"boot");
        forged.measure_file("/usr/bin/vnf", b"clean");
        assert!(forged.verify_consistency(), "forgery is self-consistent");
        // ... but the TPM quote exposes it.
        assert_ne!(tpm.read(IMA_PCR), forged.aggregate());
    }

    #[test]
    fn pcrs_are_independent() {
        let mut tpm = SimTpm::new(&[1; 32]);
        tpm.extend(0, &[1; 32]);
        assert_ne!(tpm.read(0), [0u8; 32]);
        assert_eq!(tpm.read(1), [0u8; 32]);
    }
}
