//! IMA measurement policy: which events get measured.
//!
//! Mirrors the shape of `/etc/ima/ima-policy` rules: each rule matches on
//! the hook (function) and optionally a path prefix and UID, with
//! `measure` or `dont_measure` actions evaluated first-match-wins.

/// The kernel hook where a measurement event originates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImaHook {
    /// Binary execution (`bprm_check`).
    BprmCheck,
    /// Executable memory mapping (`file_mmap`).
    FileMmap,
    /// Kernel module load (`module_check`).
    ModuleCheck,
    /// Reads by root-owned daemons (`file_check` approximation).
    FileCheck,
}

/// A measurement-relevant event on the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureEvent {
    pub hook: ImaHook,
    /// Absolute path of the accessed file.
    pub path: String,
    /// Effective UID of the accessing process.
    pub uid: u32,
}

impl MeasureEvent {
    pub fn exec(path: &str) -> MeasureEvent {
        MeasureEvent {
            hook: ImaHook::BprmCheck,
            path: path.to_string(),
            uid: 0,
        }
    }

    pub fn mmap(path: &str) -> MeasureEvent {
        MeasureEvent {
            hook: ImaHook::FileMmap,
            path: path.to_string(),
            uid: 0,
        }
    }
}

/// The action a rule prescribes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleAction {
    Measure,
    DontMeasure,
}

/// One policy rule (first match wins).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRule {
    pub action: RuleAction,
    /// Match only this hook, or any when `None`.
    pub hook: Option<ImaHook>,
    /// Match paths with this prefix, or any when `None`.
    pub path_prefix: Option<String>,
    /// Match only this UID, or any when `None`.
    pub uid: Option<u32>,
}

impl PolicyRule {
    pub fn measure() -> PolicyRule {
        PolicyRule {
            action: RuleAction::Measure,
            hook: None,
            path_prefix: None,
            uid: None,
        }
    }

    pub fn dont_measure() -> PolicyRule {
        PolicyRule {
            action: RuleAction::DontMeasure,
            hook: None,
            path_prefix: None,
            uid: None,
        }
    }

    pub fn on_hook(mut self, hook: ImaHook) -> PolicyRule {
        self.hook = Some(hook);
        self
    }

    pub fn under(mut self, prefix: &str) -> PolicyRule {
        self.path_prefix = Some(prefix.to_string());
        self
    }

    pub fn for_uid(mut self, uid: u32) -> PolicyRule {
        self.uid = Some(uid);
        self
    }

    fn matches(&self, event: &MeasureEvent) -> bool {
        if let Some(hook) = self.hook {
            if hook != event.hook {
                return false;
            }
        }
        if let Some(prefix) = &self.path_prefix {
            if !event.path.starts_with(prefix.as_str()) {
                return false;
            }
        }
        if let Some(uid) = self.uid {
            if uid != event.uid {
                return false;
            }
        }
        true
    }
}

/// An ordered rule list.
#[derive(Debug, Clone, Default)]
pub struct ImaPolicy {
    rules: Vec<PolicyRule>,
}

impl ImaPolicy {
    /// Empty policy: nothing is measured.
    pub fn empty() -> ImaPolicy {
        ImaPolicy::default()
    }

    /// The classic `ima_tcb`-style policy: measure all executions and
    /// executable mappings, skip the pseudo filesystems.
    pub fn tcb() -> ImaPolicy {
        ImaPolicy {
            rules: vec![
                PolicyRule::dont_measure().under("/proc"),
                PolicyRule::dont_measure().under("/sys"),
                PolicyRule::dont_measure().under("/dev"),
                PolicyRule::measure().on_hook(ImaHook::BprmCheck),
                PolicyRule::measure().on_hook(ImaHook::FileMmap),
                PolicyRule::measure().on_hook(ImaHook::ModuleCheck),
                PolicyRule::measure().on_hook(ImaHook::FileCheck).for_uid(0),
            ],
        }
    }

    /// A container-host policy that additionally measures everything under
    /// the container runtime's image store.
    pub fn container_host() -> ImaPolicy {
        let mut policy = ImaPolicy::tcb();
        policy
            .rules
            .insert(3, PolicyRule::measure().under("/var/lib/docker"));
        policy
    }

    pub fn push(&mut self, rule: PolicyRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Should `event` be measured? First matching rule decides; events with
    /// no matching rule are not measured.
    pub fn should_measure(&self, event: &MeasureEvent) -> bool {
        for rule in &self.rules {
            if rule.matches(event) {
                return rule.action == RuleAction::Measure;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_policy_measures_nothing() {
        let policy = ImaPolicy::empty();
        assert!(!policy.should_measure(&MeasureEvent::exec("/usr/bin/vnf")));
    }

    #[test]
    fn tcb_measures_executions() {
        let policy = ImaPolicy::tcb();
        assert!(policy.should_measure(&MeasureEvent::exec("/usr/bin/vnf")));
        assert!(policy.should_measure(&MeasureEvent::mmap("/usr/lib/libssl.so")));
    }

    #[test]
    fn tcb_skips_pseudo_filesystems() {
        let policy = ImaPolicy::tcb();
        assert!(!policy.should_measure(&MeasureEvent::exec("/proc/self/exe")));
        assert!(!policy.should_measure(&MeasureEvent::mmap("/sys/kernel/thing")));
        assert!(!policy.should_measure(&MeasureEvent::exec("/dev/shm/x")));
    }

    #[test]
    fn first_match_wins() {
        let mut policy = ImaPolicy::empty();
        policy
            .push(PolicyRule::dont_measure().under("/opt/skip"))
            .push(PolicyRule::measure().under("/opt"));
        assert!(!policy.should_measure(&MeasureEvent::exec("/opt/skip/tool")));
        assert!(policy.should_measure(&MeasureEvent::exec("/opt/other/tool")));
    }

    #[test]
    fn uid_scoping() {
        let mut policy = ImaPolicy::empty();
        policy.push(
            PolicyRule::measure()
                .on_hook(ImaHook::FileCheck)
                .for_uid(0),
        );
        let mut event = MeasureEvent {
            hook: ImaHook::FileCheck,
            path: "/etc/passwd".into(),
            uid: 0,
        };
        assert!(policy.should_measure(&event));
        event.uid = 1000;
        assert!(!policy.should_measure(&event));
    }

    #[test]
    fn container_host_measures_image_store() {
        let policy = ImaPolicy::container_host();
        let event = MeasureEvent {
            hook: ImaHook::FileCheck,
            path: "/var/lib/docker/overlay2/abc/layer.tar".into(),
            uid: 1000,
        };
        assert!(policy.should_measure(&event));
        assert!(policy.rule_count() > ImaPolicy::tcb().rule_count());
    }
}
