//! Appraisal of measurement lists against reference values.
//!
//! This is the Verification Manager's side of host integrity: it holds a
//! database of known-good file digests and "appraises the trustworthiness
//! of the container host based on the obtained quote" (paper §2).

use crate::list::{ImaEntry, MeasurementList};
use std::collections::{BTreeMap, BTreeSet};

/// The appraisal verdict for a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every entry matches a known-good reference.
    Trusted,
    /// At least one measured file has an unexpected digest.
    Mismatch,
    /// The list contains entries for files outside the reference database.
    UnknownComponents,
    /// The list records measurement violations (files changed while open).
    Violations,
    /// The list's internal hash chain is inconsistent (tampering).
    InconsistentList,
}

impl Verdict {
    /// Only `Trusted` hosts may proceed in the enrollment workflow.
    pub fn is_trusted(self) -> bool {
        self == Verdict::Trusted
    }
}

/// Detailed appraisal output.
#[derive(Debug, Clone)]
pub struct AppraisalResult {
    pub verdict: Verdict,
    /// Paths whose digest did not match any reference value.
    pub mismatched: Vec<String>,
    /// Paths not present in the reference database.
    pub unknown: Vec<String>,
    /// Paths with recorded violations.
    pub violations: Vec<String>,
    /// Total entries appraised.
    pub entries: usize,
}

/// Policy knobs for appraisal.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct AppraisalPolicy {
    /// Whether files absent from the reference database are acceptable
    /// (lenient mode for hosts running unrelated software).
    pub allow_unknown: bool,
}


/// Known-good digests per path. Multiple digests per path support
/// co-existing versions during rollout.
#[derive(Debug, Clone, Default)]
pub struct ReferenceDatabase {
    good: BTreeMap<String, BTreeSet<[u8; 32]>>,
}

impl ReferenceDatabase {
    pub fn new() -> ReferenceDatabase {
        ReferenceDatabase::default()
    }

    /// Record `digest` as a known-good value for `path`.
    pub fn allow(&mut self, path: &str, digest: [u8; 32]) -> &mut Self {
        self.good.entry(path.to_string()).or_default().insert(digest);
        self
    }

    /// Record a file's content as known-good.
    pub fn allow_content(&mut self, path: &str, content: &[u8]) -> &mut Self {
        self.allow(path, vnfguard_crypto::sha2::sha256(content))
    }

    /// Remove all allowed digests for a path (e.g. a recalled release).
    pub fn forbid(&mut self, path: &str) -> &mut Self {
        self.good.remove(path);
        self
    }

    pub fn len(&self) -> usize {
        self.good.len()
    }

    pub fn is_empty(&self) -> bool {
        self.good.is_empty()
    }

    fn check(&self, entry: &ImaEntry) -> EntryStatus {
        match self.good.get(&entry.path) {
            None => EntryStatus::Unknown,
            Some(digests) if digests.contains(&entry.filedata_hash) => EntryStatus::Good,
            Some(_) => EntryStatus::Mismatch,
        }
    }

    /// Appraise a full measurement list.
    pub fn appraise(&self, list: &MeasurementList, policy: &AppraisalPolicy) -> AppraisalResult {
        if !list.verify_consistency() {
            return AppraisalResult {
                verdict: Verdict::InconsistentList,
                mismatched: Vec::new(),
                unknown: Vec::new(),
                violations: Vec::new(),
                entries: list.len(),
            };
        }
        let mut mismatched = Vec::new();
        let mut unknown = Vec::new();
        let mut violations = Vec::new();
        for entry in list.entries() {
            if entry.path == "boot_aggregate" {
                continue; // appraised separately via the TPM extension
            }
            if entry.is_violation() {
                violations.push(entry.path.clone());
                continue;
            }
            match self.check(entry) {
                EntryStatus::Good => {}
                EntryStatus::Mismatch => mismatched.push(entry.path.clone()),
                EntryStatus::Unknown => unknown.push(entry.path.clone()),
            }
        }
        let verdict = if !violations.is_empty() {
            Verdict::Violations
        } else if !mismatched.is_empty() {
            Verdict::Mismatch
        } else if !unknown.is_empty() && !policy.allow_unknown {
            Verdict::UnknownComponents
        } else {
            Verdict::Trusted
        };
        AppraisalResult {
            verdict,
            mismatched,
            unknown,
            violations,
            entries: list.len(),
        }
    }
}

enum EntryStatus {
    Good,
    Mismatch,
    Unknown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::MeasurementList;

    fn reference() -> ReferenceDatabase {
        let mut db = ReferenceDatabase::new();
        db.allow_content("/usr/bin/dockerd", b"dockerd v1.12.2");
        db.allow_content("/usr/bin/vnf", b"vnf v1");
        db
    }

    fn clean_list() -> MeasurementList {
        let mut list = MeasurementList::new(b"boot");
        list.measure_file("/usr/bin/dockerd", b"dockerd v1.12.2");
        list.measure_file("/usr/bin/vnf", b"vnf v1");
        list
    }

    #[test]
    fn clean_host_is_trusted() {
        let result = reference().appraise(&clean_list(), &AppraisalPolicy::default());
        assert_eq!(result.verdict, Verdict::Trusted);
        assert!(result.verdict.is_trusted());
        assert_eq!(result.entries, 3);
    }

    #[test]
    fn tampered_binary_detected() {
        let mut list = MeasurementList::new(b"boot");
        list.measure_file("/usr/bin/dockerd", b"dockerd v1.12.2");
        list.measure_file("/usr/bin/vnf", b"vnf v1 WITH BACKDOOR");
        let result = reference().appraise(&list, &AppraisalPolicy::default());
        assert_eq!(result.verdict, Verdict::Mismatch);
        assert_eq!(result.mismatched, vec!["/usr/bin/vnf".to_string()]);
    }

    #[test]
    fn unknown_component_policy() {
        let mut list = clean_list();
        list.measure_file("/usr/bin/cryptominer", b"???");
        let strict = reference().appraise(&list, &AppraisalPolicy::default());
        assert_eq!(strict.verdict, Verdict::UnknownComponents);
        assert_eq!(strict.unknown, vec!["/usr/bin/cryptominer".to_string()]);
        let lenient = reference().appraise(&list, &AppraisalPolicy { allow_unknown: true });
        assert_eq!(lenient.verdict, Verdict::Trusted);
    }

    #[test]
    fn violations_dominate() {
        let mut list = clean_list();
        list.record_violation("/usr/bin/vnf");
        let result = reference().appraise(&list, &AppraisalPolicy { allow_unknown: true });
        assert_eq!(result.verdict, Verdict::Violations);
        assert_eq!(result.violations, vec!["/usr/bin/vnf".to_string()]);
    }

    #[test]
    fn inconsistent_list_detected_before_content() {
        let list = clean_list();
        let mut bytes = list.encode();
        // Corrupt one byte of a recorded digest region.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        if let Ok(corrupted) = MeasurementList::decode(&bytes) {
            // Decoding recomputes the aggregate, so verify_consistency can
            // only fail via the per-entry template hash check.
            let result = reference().appraise(&corrupted, &AppraisalPolicy::default());
            assert_ne!(result.verdict, Verdict::Trusted);
        }
    }

    #[test]
    fn multiple_versions_allowed() {
        let mut db = reference();
        db.allow_content("/usr/bin/vnf", b"vnf v2");
        let mut list = MeasurementList::new(b"boot");
        list.measure_file("/usr/bin/dockerd", b"dockerd v1.12.2");
        list.measure_file("/usr/bin/vnf", b"vnf v2");
        assert_eq!(
            db.appraise(&list, &AppraisalPolicy::default()).verdict,
            Verdict::Trusted
        );
    }

    #[test]
    fn forbid_removes_trust() {
        let mut db = reference();
        db.forbid("/usr/bin/vnf");
        let result = db.appraise(&clean_list(), &AppraisalPolicy::default());
        assert_eq!(result.verdict, Verdict::UnknownComponents);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn reexecution_of_upgraded_binary() {
        // v1 then v2 measured: only trusted if both digests are referenced.
        let mut list = clean_list();
        list.measure_file("/usr/bin/vnf", b"vnf v2");
        let mut db = reference();
        assert_eq!(
            db.appraise(&list, &AppraisalPolicy::default()).verdict,
            Verdict::Mismatch
        );
        db.allow_content("/usr/bin/vnf", b"vnf v2");
        assert_eq!(
            db.appraise(&list, &AppraisalPolicy::default()).verdict,
            Verdict::Trusted
        );
    }
}
