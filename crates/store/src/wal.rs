//! The durable medium and its checksummed frame format.
//!
//! [`Media`] models the block device (or host file) backing the manager's
//! write-ahead log. It survives a VM crash — clones share the same bytes —
//! but it is *host-visible* storage: everything written to it is a sealed
//! blob produced by the [`vault`](crate::vault), never plaintext state.
//!
//! The log region is a byte stream of frames:
//!
//! ```text
//! ┌──────┬───────────┬───────────────┬────────────┐
//! │ 0xA5 │ len (u32) │ payload bytes │ crc32 (u32)│
//! └──────┴───────────┴───────────────┴────────────┘
//! ```
//!
//! The CRC covers the payload. Replay walks frames front to back and stops
//! at the first frame that is incomplete or fails its checksum — the
//! torn-tail rule: a crash mid-append may leave a partial final frame, and
//! that frame's record simply never happened (its response was never sent,
//! so nothing observable is lost).
//!
//! **Group frames** extend the format for group commit: several payloads
//! coalesced into one device write, framed as
//!
//! ```text
//! ┌──────┬────────────────┬─────────────────────────────┬────────────┐
//! │ 0xA6 │ body len (u32) │ (len | payload) × n         │ crc32 (u32)│
//! └──────┴────────────────┴─────────────────────────────┴────────────┘
//! ```
//!
//! One CRC covers the whole body, so a tear *inside* a group drops the
//! entire group — exactly the atomicity a multi-record workflow wants: the
//! response was only sent after the whole group landed, so either every
//! record of the workflow replays or none does.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Frame marker byte; a cheap misalignment detector.
const FRAME_MAGIC: u8 = 0xA5;
/// Marker for a group-commit frame holding several payloads.
const GROUP_MAGIC: u8 = 0xA6;
/// Magic + length prefix.
const FRAME_HEADER: usize = 5;
/// Trailing checksum.
const FRAME_TRAILER: usize = 4;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[derive(Default)]
struct MediaInner {
    /// The latest compacted snapshot (a sealed blob), if any.
    snapshot: Option<Vec<u8>>,
    /// Frames appended since the snapshot.
    log: Vec<u8>,
    /// Records appended since the snapshot (a group frame counts each of
    /// its payloads; not adjusted by `tear_tail`).
    frames: u64,
    /// Snapshot installations over the media's lifetime.
    compactions: u64,
    /// Simulated device-write latency charged once per flush (per
    /// `append_frame` / `append_group_frame` call). Zero by default.
    write_latency: Duration,
}

/// Durable storage shared across VM incarnations.
///
/// Cloning is shallow: every clone reads and writes the same underlying
/// bytes, which is how a recovered manager finds the log its predecessor
/// wrote. Fault hooks ([`tear_tail`](Media::tear_tail),
/// [`corrupt_byte`](Media::corrupt_byte)) simulate interrupted or bit-rotted
/// writes for the crash matrix.
#[derive(Clone, Default)]
pub struct Media {
    inner: Arc<Mutex<MediaInner>>,
}

impl Media {
    pub fn new() -> Media {
        Media::default()
    }

    /// Model the write latency of the backing device: every flush (one
    /// `append_frame` or `append_group_frame` call) costs `latency` of
    /// wall-clock time. Zero — the default — keeps the media instantaneous.
    /// Saturation benchmarks use this to reproduce cloud block-storage
    /// behavior, where the per-write flush dominates the request path.
    pub fn set_write_latency(&self, latency: Duration) {
        self.inner.lock().write_latency = latency;
    }

    fn charge_flush(&self, latency: Duration) {
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
    }

    /// Append one frame around `payload`.
    pub fn append_frame(&self, payload: &[u8]) {
        let latency = {
            let mut inner = self.inner.lock();
            inner.log.push(FRAME_MAGIC);
            inner
                .log
                .extend_from_slice(&(payload.len() as u32).to_be_bytes());
            inner.log.extend_from_slice(payload);
            inner.log.extend_from_slice(&crc32(payload).to_be_bytes());
            inner.frames += 1;
            inner.write_latency
        };
        self.charge_flush(latency);
    }

    /// Append every payload in one group frame — one device write, one
    /// checksum, one flush charge. Replay yields the payloads individually
    /// and in order, so a group is byte-equivalent (in replayed records) to
    /// the same payloads appended one frame at a time; the difference is
    /// that a tear anywhere inside the group drops the *whole* group.
    pub fn append_group_frame(&self, payloads: &[Vec<u8>]) {
        if payloads.is_empty() {
            return;
        }
        let mut body = Vec::new();
        for payload in payloads {
            body.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            body.extend_from_slice(payload);
        }
        let latency = {
            let mut inner = self.inner.lock();
            inner.log.push(GROUP_MAGIC);
            inner.log.extend_from_slice(&(body.len() as u32).to_be_bytes());
            inner.log.extend_from_slice(&body);
            inner.log.extend_from_slice(&crc32(&body).to_be_bytes());
            inner.frames += payloads.len() as u64;
            inner.write_latency
        };
        self.charge_flush(latency);
    }

    /// Replace the snapshot region and truncate the log (compaction).
    pub fn install_snapshot(&self, sealed: Vec<u8>) {
        let mut inner = self.inner.lock();
        inner.snapshot = Some(sealed);
        inner.log.clear();
        inner.frames = 0;
        inner.compactions += 1;
    }

    /// The current snapshot blob, if one was installed.
    pub fn snapshot(&self) -> Option<Vec<u8>> {
        self.inner.lock().snapshot.clone()
    }

    /// A copy of the raw log bytes.
    pub fn log(&self) -> Vec<u8> {
        self.inner.lock().log.clone()
    }

    /// Frames appended since the last snapshot.
    pub fn frame_count(&self) -> u64 {
        self.inner.lock().frames
    }

    /// Raw size of the log region.
    pub fn log_bytes(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// Snapshot installations so far.
    pub fn compactions(&self) -> u64 {
        self.inner.lock().compactions
    }

    pub fn has_snapshot(&self) -> bool {
        self.inner.lock().snapshot.is_some()
    }

    /// An independent deep copy: identical bytes now, divergent writes
    /// after. Recovery benchmarks fork one pre-built log so repeated
    /// cold starts never see each other's `RecoveryCompleted` appends.
    pub fn fork(&self) -> Media {
        let inner = self.inner.lock();
        Media {
            inner: Arc::new(Mutex::new(MediaInner {
                snapshot: inner.snapshot.clone(),
                log: inner.log.clone(),
                frames: inner.frames,
                compactions: inner.compactions,
                // Forks are for offline oracle replay; they read, not flush.
                write_latency: Duration::ZERO,
            })),
        }
    }

    /// Simulate a torn write: drop the final `bytes` of the log, as if the
    /// crash interrupted the last append mid-flight.
    pub fn tear_tail(&self, bytes: usize) {
        let mut inner = self.inner.lock();
        let len = inner.log.len();
        inner.log.truncate(len.saturating_sub(bytes));
    }

    /// Simulate bit rot: flip one bit of the log at `offset`.
    pub fn corrupt_byte(&self, offset: usize) {
        let mut inner = self.inner.lock();
        if let Some(byte) = inner.log.get_mut(offset) {
            *byte ^= 0x01;
        }
    }
}

impl std::fmt::Debug for Media {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Media")
            .field("log_bytes", &inner.log.len())
            .field("frames", &inner.frames)
            .field("snapshot", &inner.snapshot.as_ref().map(Vec::len))
            .field("compactions", &inner.compactions)
            .finish()
    }
}

/// Result of walking a log region.
pub(crate) struct ParsedLog {
    /// Payloads of every frame with a valid header and checksum, in order.
    pub frames: Vec<Vec<u8>>,
    /// True when trailing bytes were dropped (torn or corrupt tail).
    pub truncated: bool,
    /// How many bytes the truncation discarded.
    pub dropped_bytes: usize,
}

/// Walk `log` front to back, stopping at the first incomplete or
/// checksum-failing frame. Group frames are expanded into their member
/// payloads in order; a torn or corrupt group is dropped whole.
pub(crate) fn parse_log(log: &[u8]) -> ParsedLog {
    let mut frames = Vec::new();
    let mut pos = 0;
    while pos < log.len() {
        let rest = &log[pos..];
        if rest.len() < FRAME_HEADER + FRAME_TRAILER
            || (rest[0] != FRAME_MAGIC && rest[0] != GROUP_MAGIC)
        {
            break;
        }
        let len = u32::from_be_bytes(rest[1..5].try_into().expect("4 bytes")) as usize;
        let total = FRAME_HEADER + len + FRAME_TRAILER;
        if rest.len() < total {
            break;
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        let stored = u32::from_be_bytes(
            rest[FRAME_HEADER + len..total].try_into().expect("4 bytes"),
        );
        if crc32(payload) != stored {
            break;
        }
        if rest[0] == FRAME_MAGIC {
            frames.push(payload.to_vec());
        } else {
            // Group body: (len | payload) repeated. The body passed its
            // checksum, so an ill-formed interior is corruption beyond the
            // tolerated torn tail — stop here like any bad frame.
            let mut at = 0;
            let mut members = Vec::new();
            let mut well_formed = true;
            while at < payload.len() {
                if payload.len() - at < 4 {
                    well_formed = false;
                    break;
                }
                let sub = u32::from_be_bytes(
                    payload[at..at + 4].try_into().expect("4 bytes"),
                ) as usize;
                at += 4;
                if payload.len() - at < sub {
                    well_formed = false;
                    break;
                }
                members.push(payload[at..at + sub].to_vec());
                at += sub;
            }
            if !well_formed {
                break;
            }
            frames.extend(members);
        }
        pos += total;
    }
    ParsedLog {
        frames,
        truncated: pos < log.len(),
        dropped_bytes: log.len() - pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip_in_order() {
        let media = Media::new();
        media.append_frame(b"one");
        media.append_frame(b"two");
        media.append_frame(&[]);
        let parsed = parse_log(&media.log());
        assert_eq!(parsed.frames, vec![b"one".to_vec(), b"two".to_vec(), vec![]]);
        assert!(!parsed.truncated);
        assert_eq!(media.frame_count(), 3);
    }

    #[test]
    fn torn_tail_drops_only_last_frame() {
        let media = Media::new();
        media.append_frame(b"keep me");
        media.append_frame(b"torn away");
        media.tear_tail(3);
        let parsed = parse_log(&media.log());
        assert_eq!(parsed.frames, vec![b"keep me".to_vec()]);
        assert!(parsed.truncated);
        assert!(parsed.dropped_bytes > 0);
    }

    #[test]
    fn checksum_failure_stops_replay() {
        let media = Media::new();
        media.append_frame(b"good");
        media.append_frame(b"flipped");
        // Corrupt a payload byte of the second frame.
        let first_total = FRAME_HEADER + 4 + FRAME_TRAILER;
        media.corrupt_byte(first_total + FRAME_HEADER);
        let parsed = parse_log(&media.log());
        assert_eq!(parsed.frames, vec![b"good".to_vec()]);
        assert!(parsed.truncated);
    }

    #[test]
    fn snapshot_truncates_log() {
        let media = Media::new();
        media.append_frame(b"folded");
        media.install_snapshot(b"sealed snapshot".to_vec());
        assert_eq!(media.frame_count(), 0);
        assert_eq!(media.log_bytes(), 0);
        assert_eq!(media.compactions(), 1);
        assert_eq!(media.snapshot().unwrap(), b"sealed snapshot");
    }

    #[test]
    fn forks_diverge() {
        let a = Media::new();
        a.append_frame(b"shared history");
        let b = a.fork();
        a.append_frame(b"a only");
        assert_eq!(a.frame_count(), 2);
        assert_eq!(b.frame_count(), 1);
        assert_eq!(parse_log(&b.log()).frames, vec![b"shared history".to_vec()]);
    }

    #[test]
    fn group_frame_expands_to_member_payloads() {
        let media = Media::new();
        media.append_frame(b"solo");
        media.append_group_frame(&[b"one".to_vec(), b"two".to_vec(), vec![]]);
        media.append_frame(b"after");
        let parsed = parse_log(&media.log());
        assert_eq!(
            parsed.frames,
            vec![
                b"solo".to_vec(),
                b"one".to_vec(),
                b"two".to_vec(),
                vec![],
                b"after".to_vec()
            ]
        );
        assert!(!parsed.truncated);
        assert_eq!(media.frame_count(), 5, "each group member counts");
    }

    #[test]
    fn torn_group_drops_whole_group() {
        let media = Media::new();
        media.append_frame(b"keep");
        media.append_group_frame(&[b"aaaa".to_vec(), b"bbbb".to_vec()]);
        media.tear_tail(2);
        let parsed = parse_log(&media.log());
        assert_eq!(parsed.frames, vec![b"keep".to_vec()], "no partial group");
        assert!(parsed.truncated);
    }

    #[test]
    fn corrupt_group_member_drops_whole_group() {
        let media = Media::new();
        media.append_group_frame(&[b"first".to_vec(), b"second".to_vec()]);
        // Flip a byte inside the first member's payload.
        media.corrupt_byte(FRAME_HEADER + 4 + 1);
        let parsed = parse_log(&media.log());
        assert!(parsed.frames.is_empty());
        assert!(parsed.truncated);
    }

    #[test]
    fn empty_group_is_a_no_op() {
        let media = Media::new();
        media.append_group_frame(&[]);
        assert_eq!(media.log_bytes(), 0);
        assert_eq!(media.frame_count(), 0);
    }

    #[test]
    fn clones_share_bytes() {
        let a = Media::new();
        let b = a.clone();
        a.append_frame(b"written by a");
        assert_eq!(b.frame_count(), 1);
    }
}
