//! The state-vault enclave: seals WAL frames and snapshots.
//!
//! Everything the manager journals crosses this enclave before touching
//! [`Media`](crate::wal::Media): records and snapshots are sealed with the
//! `MrEnclave` policy, so only the *identical* vault enclave on the *same*
//! platform derives the unsealing key (`EGETKEY` is deterministic per
//! platform × measurement × policy × SVN × key id). That is exactly the
//! recovery trust model the paper implies for manager state: a restarted
//! VM on its own platform reloads the vault image, re-derives the keys and
//! replays; a copied log on another machine — or under a tampered vault
//! build — is so much ciphertext.

use crate::StoreError;
use vnfguard_sgx::enclave::{Enclave, EnclaveCode, EnclaveContext};
use vnfguard_sgx::measurement::Measurement;
use vnfguard_sgx::platform::SgxPlatform;
use vnfguard_sgx::seal::{SealPolicy, SealedBlob};
use vnfguard_sgx::sigstruct::EnclaveAuthor;
use vnfguard_sgx::SgxError;

/// The vault's measured code pages.
const VAULT_IMAGE: &[u8] = b"vnfguard state vault enclave v1";
/// EPC footprint of the vault.
const VAULT_SIZE: usize = 16 * 1024;
const VAULT_PROD_ID: u16 = 7;
const VAULT_SVN: u16 = 1;

const OP_SEAL: u16 = 1;
const OP_UNSEAL: u16 = 2;

/// Payload-kind discriminator, bound into the AAD so a record blob can
/// never be replayed as a snapshot or vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    Record,
    Snapshot,
}

impl PayloadKind {
    fn code(self) -> u8 {
        match self {
            PayloadKind::Record => 1,
            PayloadKind::Snapshot => 2,
        }
    }

    fn aad(self) -> &'static [u8] {
        match self {
            PayloadKind::Record => b"vnfguard-wal-record",
            PayloadKind::Snapshot => b"vnfguard-state-snapshot",
        }
    }

    fn from_code(code: u8) -> Result<PayloadKind, SgxError> {
        match code {
            1 => Ok(PayloadKind::Record),
            2 => Ok(PayloadKind::Snapshot),
            other => Err(SgxError::App(format!("bad vault payload kind {other}"))),
        }
    }
}

/// The enclave code: two ecalls, seal and unseal, both taking a one-byte
/// kind prefix followed by the payload.
struct VaultCode;

impl EnclaveCode for VaultCode {
    fn image(&self) -> Vec<u8> {
        VAULT_IMAGE.to_vec()
    }

    fn on_call(
        &mut self,
        ctx: &mut EnclaveContext,
        opcode: u16,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        let (&kind_byte, payload) = input
            .split_first()
            .ok_or_else(|| SgxError::App("empty vault call".into()))?;
        let kind = PayloadKind::from_code(kind_byte)?;
        match opcode {
            OP_SEAL => {
                let blob = ctx.seal(SealPolicy::MrEnclave, kind.aad(), payload)?;
                Ok(blob.encode())
            }
            OP_UNSEAL => {
                let blob = SealedBlob::decode(payload)?;
                ctx.unseal(&blob, kind.aad())
            }
            other => Err(SgxError::BadCall(other)),
        }
    }
}

/// Handle to a loaded vault enclave.
pub struct StateVault {
    enclave: Enclave,
}

impl StateVault {
    /// Load (or, after a crash, *re*-load) the vault on `platform`. The
    /// same platform and author always yield the same measurement and
    /// therefore the same seal keys.
    pub fn load(platform: &SgxPlatform, author: &EnclaveAuthor) -> Result<StateVault, StoreError> {
        let signed = author.sign_enclave(
            SgxPlatform::measure_image(VAULT_IMAGE, VAULT_SIZE),
            VAULT_PROD_ID,
            VAULT_SVN,
            false,
        );
        let enclave = platform.load_enclave(&signed, VAULT_SIZE, Box::new(VaultCode))?;
        Ok(StateVault { enclave })
    }

    /// The vault's expected measurement (for whitelisting or audit).
    pub fn expected_measurement() -> Measurement {
        SgxPlatform::measure_image(VAULT_IMAGE, VAULT_SIZE)
    }

    fn call(&self, opcode: u16, kind: PayloadKind, payload: &[u8]) -> Result<Vec<u8>, StoreError> {
        let mut input = Vec::with_capacity(payload.len() + 1);
        input.push(kind.code());
        input.extend_from_slice(payload);
        self.enclave.ecall(opcode, &input).map_err(StoreError::from)
    }

    /// Seal `plaintext` as `kind`; returns the encoded blob for the media.
    pub fn seal(&self, kind: PayloadKind, plaintext: &[u8]) -> Result<Vec<u8>, StoreError> {
        self.call(OP_SEAL, kind, plaintext)
    }

    /// Unseal an encoded blob previously sealed as `kind`.
    pub fn unseal(&self, kind: PayloadKind, blob: &[u8]) -> Result<Vec<u8>, StoreError> {
        self.call(OP_UNSEAL, kind, blob)
    }
}

impl std::fmt::Debug for StateVault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateVault")
            .field("mrenclave", &self.enclave.mrenclave())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn author() -> EnclaveAuthor {
        EnclaveAuthor::from_seed(&[3; 32])
    }

    #[test]
    fn reloaded_vault_unseals_predecessor_blobs() {
        let platform = SgxPlatform::new(b"vm platform");
        let vault = StateVault::load(&platform, &author()).unwrap();
        let blob = vault.seal(PayloadKind::Record, b"journal entry").unwrap();
        drop(vault); // the crash
        let revived = StateVault::load(&platform, &author()).unwrap();
        assert_eq!(
            revived.unseal(PayloadKind::Record, &blob).unwrap(),
            b"journal entry"
        );
    }

    #[test]
    fn other_platform_cannot_unseal() {
        let vault = StateVault::load(&SgxPlatform::new(b"vm"), &author()).unwrap();
        let blob = vault.seal(PayloadKind::Snapshot, b"state").unwrap();
        let foreign = StateVault::load(&SgxPlatform::new(b"attacker"), &author()).unwrap();
        assert!(foreign.unseal(PayloadKind::Snapshot, &blob).is_err());
    }

    #[test]
    fn kind_is_bound_into_the_blob() {
        let platform = SgxPlatform::new(b"vm");
        let vault = StateVault::load(&platform, &author()).unwrap();
        let blob = vault.seal(PayloadKind::Record, b"entry").unwrap();
        assert!(
            vault.unseal(PayloadKind::Snapshot, &blob).is_err(),
            "a record blob must not decode as a snapshot"
        );
    }
}
