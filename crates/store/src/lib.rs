//! # vnfguard-store
//!
//! Crash-fault tolerance for the Verification Manager: a sealed,
//! checksummed, append-only write-ahead log of manager state transitions
//! plus periodically compacted snapshots.
//!
//! The paper keeps the manager's authority state — issued serials,
//! enrollments, revocations — implicit and volatile; a VM crash would
//! silently forget certificates it signed and enrollments it half
//! completed. This crate supplies the missing durability layer with the
//! same trust posture the paper applies to VNF credentials: state only
//! ever touches host storage **sealed to the VM's own enclave identity**
//! (see [`vault::StateVault`]), and recovery replays it only where the
//! identical vault enclave can re-derive the seal keys.
//!
//! Layout:
//!
//! - [`wal::Media`] — the durable medium (snapshot slot + framed log) that
//!   survives a crash, with torn-write and bit-rot fault hooks;
//! - [`record::WalRecord`] — one journaled state transition;
//!   [`record::ManagerState`] — the aggregate replay target, which doubles
//!   as the snapshot payload;
//! - [`vault::StateVault`] — the sealing enclave;
//! - [`StateStore`] — the handle the manager journals through:
//!   WAL-before-response appends, threshold-driven compaction, and
//!   [`StateStore::replay`] for recovery.

pub mod record;
pub mod vault;
pub mod wal;

pub use record::{EnrollmentEntry, ManagerState, NoticeEntry, PendingEntry, WalRecord};
pub use vault::{PayloadKind, StateVault};
pub use wal::Media;

use parking_lot::Mutex;
use std::sync::Arc;

/// Errors from the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// Sealing or unsealing failed — wrong platform, wrong vault build, or
    /// a tampered blob. Unlike a torn tail this is not survivable: the
    /// medium's content cannot be trusted.
    Sealing(String),
    /// The medium's structure is invalid beyond the tolerated torn tail.
    Corrupt(String),
    /// An [`AppendObserver`] vetoed the append (e.g. a fenced replication
    /// primary). The frame reached the local medium but the operation must
    /// not be acknowledged: a deposed node's writes are not authoritative.
    Rejected(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Sealing(msg) => write!(f, "sealing: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::Rejected(msg) => write!(f, "append rejected: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<vnfguard_sgx::SgxError> for StoreError {
    fn from(e: vnfguard_sgx::SgxError) -> StoreError {
        StoreError::Sealing(e.to_string())
    }
}

impl From<vnfguard_encoding::EncodingError> for StoreError {
    fn from(e: vnfguard_encoding::EncodingError) -> StoreError {
        StoreError::Corrupt(e.to_string())
    }
}

/// Outcome of a [`StateStore::replay`].
#[derive(Debug, Clone)]
pub struct Replay {
    /// The reconstructed aggregate state.
    pub state: ManagerState,
    /// Log records applied on top of the snapshot (not counting the
    /// snapshot itself).
    pub replayed_records: u64,
    /// Whether a snapshot seeded the replay.
    pub from_snapshot: bool,
    /// Whether a torn or corrupt tail was dropped.
    pub truncated_tail: bool,
    /// Bytes the tail truncation discarded.
    pub dropped_bytes: usize,
}

/// Occupancy counters for operator surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    pub log_frames: u64,
    pub log_bytes: usize,
    pub compactions: u64,
    pub has_snapshot: bool,
}

/// Sees every record the moment it lands on the medium — before the
/// append is acknowledged to the caller. This is the replication tap: a
/// streaming primary forwards each record to its standbys from here, so
/// "WAL-before-response" extends to "WAL-and-stream-before-response".
///
/// Returning `Err` vetoes the append: the caller's operation fails with
/// [`StoreError::Rejected`]. Observers must reserve this for authority
/// failures (a fenced primary), never for mere delivery trouble — an
/// unreachable standby is the observer's problem to buffer and retry.
pub trait AppendObserver: Send + Sync {
    fn appended(&self, record: &WalRecord) -> Result<(), String>;
}

/// The manager's journaling handle: sealed appends, compaction, replay.
///
/// Clones share the media, the vault, and the observer slot, so the
/// manager and the revocation notifier journal into the same log and feed
/// the same replication stream.
#[derive(Clone)]
pub struct StateStore {
    media: Media,
    vault: Arc<StateVault>,
    /// Auto-compact once the log holds this many frames (`None`: manual).
    compact_every: Option<u64>,
    /// Coalesce [`StateStore::append_group`] calls into one group frame.
    group_commit: bool,
    /// Replication tap; shared by all clones of this store.
    observer: Arc<Mutex<Option<Arc<dyn AppendObserver>>>>,
}

impl StateStore {
    pub fn new(media: Media, vault: StateVault) -> StateStore {
        StateStore {
            media,
            vault: Arc::new(vault),
            compact_every: None,
            group_commit: false,
            observer: Arc::new(Mutex::new(None)),
        }
    }

    /// Install (or replace) the append observer. Takes effect for every
    /// clone of this store, including clones taken before this call.
    pub fn set_observer(&self, observer: Arc<dyn AppendObserver>) {
        *self.observer.lock() = Some(observer);
    }

    /// Remove the append observer (e.g. when a deployment is demoted out
    /// of replicated operation).
    pub fn clear_observer(&self) {
        *self.observer.lock() = None;
    }

    /// Enable threshold compaction: after an append brings the log to
    /// `frames` frames, fold it into a fresh sealed snapshot. `0` disables.
    pub fn with_compaction(mut self, frames: u64) -> StateStore {
        self.compact_every = (frames > 0).then_some(frames);
        self
    }

    /// Enable (or disable) group commit: [`StateStore::append_group`]
    /// coalesces its records into one group frame — one device flush —
    /// instead of one frame per record. Off by default; replay is
    /// byte-for-byte the same either way for an untorn log.
    pub fn with_group_commit(mut self, enabled: bool) -> StateStore {
        self.group_commit = enabled;
        self
    }

    /// Whether group commit is enabled on this handle.
    pub fn group_commit(&self) -> bool {
        self.group_commit
    }

    /// Seal `record` and append it to the log — the WAL-before-response
    /// step. Returns only once the frame is on the medium and any
    /// installed [`AppendObserver`] has accepted it.
    pub fn append(&self, record: &WalRecord) -> Result<(), StoreError> {
        let sealed = self.vault.seal(PayloadKind::Record, &record.encode())?;
        self.media.append_frame(&sealed);
        let observer = self.observer.lock().clone();
        if let Some(observer) = observer {
            observer
                .appended(record)
                .map_err(StoreError::Rejected)?;
        }
        if let Some(every) = self.compact_every {
            if self.media.frame_count() >= every {
                self.compact()?;
            }
        }
        Ok(())
    }

    /// Journal a whole workflow's records in one flush. With group commit
    /// enabled the records are sealed individually and coalesced into one
    /// group frame (one device write; a tear drops all or none of them);
    /// with it disabled this degrades to sequential [`StateStore::append`]
    /// calls. Either way the [`AppendObserver`] sees every record in order
    /// before the call returns, preserving WAL-and-stream-before-response.
    pub fn append_group(&self, records: &[WalRecord]) -> Result<(), StoreError> {
        if records.is_empty() {
            return Ok(());
        }
        if !self.group_commit {
            for record in records {
                self.append(record)?;
            }
            return Ok(());
        }
        let mut sealed = Vec::with_capacity(records.len());
        for record in records {
            sealed.push(self.vault.seal(PayloadKind::Record, &record.encode())?);
        }
        self.media.append_group_frame(&sealed);
        let observer = self.observer.lock().clone();
        if let Some(observer) = observer {
            for record in records {
                observer.appended(record).map_err(StoreError::Rejected)?;
            }
        }
        if let Some(every) = self.compact_every {
            if self.media.frame_count() >= every {
                self.compact()?;
            }
        }
        Ok(())
    }

    /// Install `state` as the sealed snapshot and truncate the log —
    /// snapshot-assisted catch-up on a replication standby that fell too
    /// far behind the primary's retained stream. The state is re-sealed
    /// under *this* store's vault, so a standby's medium only ever holds
    /// blobs its own platform can open.
    pub fn install_state(&self, state: &ManagerState) -> Result<(), StoreError> {
        let sealed = self.vault.seal(PayloadKind::Snapshot, &state.encode())?;
        self.media.install_snapshot(sealed);
        Ok(())
    }

    /// Fold snapshot + log into a new sealed snapshot and truncate the
    /// log. Returns the number of log records folded in.
    pub fn compact(&self) -> Result<u64, StoreError> {
        let replay = self.replay()?;
        let sealed = self
            .vault
            .seal(PayloadKind::Snapshot, &replay.state.encode())?;
        self.media.install_snapshot(sealed);
        Ok(replay.replayed_records)
    }

    /// Reconstruct the aggregate state: unseal the snapshot (if present),
    /// then apply every intact log record. A torn or corrupt *tail* is
    /// dropped (those records were never acknowledged); an unsealable
    /// intact frame is a hard error (the media passed its checksums, so
    /// the blob was written by someone else's keys).
    pub fn replay(&self) -> Result<Replay, StoreError> {
        let mut state = ManagerState::default();
        let from_snapshot = match self.media.snapshot() {
            Some(blob) => {
                let plaintext = self.vault.unseal(PayloadKind::Snapshot, &blob)?;
                state = ManagerState::decode(&plaintext)?;
                true
            }
            None => false,
        };
        let log = self.media.log();
        let parsed = wal::parse_log(&log);
        let mut replayed = 0;
        for frame in &parsed.frames {
            let plaintext = self.vault.unseal(PayloadKind::Record, frame)?;
            state.apply(&WalRecord::decode(&plaintext)?);
            replayed += 1;
        }
        Ok(Replay {
            state,
            replayed_records: replayed,
            from_snapshot,
            truncated_tail: parsed.truncated,
            dropped_bytes: parsed.dropped_bytes,
        })
    }

    /// The backing medium (for crash tests and occupancy surfaces).
    pub fn media(&self) -> &Media {
        &self.media
    }

    pub fn stats(&self) -> StoreStats {
        StoreStats {
            log_frames: self.media.frame_count(),
            log_bytes: self.media.log_bytes(),
            compactions: self.media.compactions(),
            has_snapshot: self.media.has_snapshot(),
        }
    }
}

impl std::fmt::Debug for StateStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateStore")
            .field("stats", &self.stats())
            .field("compact_every", &self.compact_every)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_sgx::platform::SgxPlatform;
    use vnfguard_sgx::sigstruct::EnclaveAuthor;

    fn store_on(platform: &SgxPlatform, media: Media) -> StateStore {
        let vault = StateVault::load(platform, &EnclaveAuthor::from_seed(&[9; 32])).unwrap();
        StateStore::new(media, vault)
    }

    fn issue_and_commit(store: &StateStore, serial: u64, at: u64) {
        store
            .append(&WalRecord::CertIssued {
                serial,
                subject: format!("vnf-{serial}"),
                at,
            })
            .unwrap();
        store
            .append(&WalRecord::EnrollmentPrepared {
                serial,
                vnf_name: format!("vnf-{serial}"),
                host_id: "host-0".into(),
                mrenclave: [1; 32],
                provisioning_key_hash: [2; 32],
                backend: 0,
                at,
            })
            .unwrap();
        store
            .append(&WalRecord::EnrollmentCommitted { serial, at: at + 1 })
            .unwrap();
    }

    #[test]
    fn replay_after_simulated_crash() {
        let platform = SgxPlatform::new(b"vm");
        let media = Media::new();
        {
            let store = store_on(&platform, media.clone());
            issue_and_commit(&store, 2, 100);
            issue_and_commit(&store, 3, 200);
        } // crash: the store (and its vault) are gone; the media survives
        let revived = store_on(&platform, media);
        let replay = revived.replay().unwrap();
        assert_eq!(replay.replayed_records, 6);
        assert!(!replay.from_snapshot);
        assert_eq!(replay.state.enrollments.len(), 2);
        assert_eq!(replay.state.max_serial, 3);
        replay.state.check_invariants().unwrap();
    }

    #[test]
    fn compaction_preserves_replay_result() {
        let platform = SgxPlatform::new(b"vm");
        let plain = store_on(&platform, Media::new());
        let compacted = store_on(&platform, Media::new());
        for serial in 2..8 {
            issue_and_commit(&plain, serial, serial * 10);
            issue_and_commit(&compacted, serial, serial * 10);
        }
        compacted.compact().unwrap();
        issue_and_commit(&plain, 8, 80);
        issue_and_commit(&compacted, 8, 80);
        let a = plain.replay().unwrap();
        let b = compacted.replay().unwrap();
        assert_eq!(a.state, b.state, "snapshot+log must equal full replay");
        assert!(b.from_snapshot);
        assert_eq!(b.replayed_records, 3, "only the post-snapshot records");
    }

    #[test]
    fn threshold_compaction_fires_on_append() {
        let platform = SgxPlatform::new(b"vm");
        let store = store_on(&platform, Media::new()).with_compaction(4);
        issue_and_commit(&store, 2, 10); // 3 frames
        assert_eq!(store.stats().compactions, 0);
        issue_and_commit(&store, 3, 20); // crosses 4 → compacts
        assert!(store.stats().compactions >= 1);
        assert!(store.stats().has_snapshot);
        let replay = store.replay().unwrap();
        assert_eq!(replay.state.enrollments.len(), 2);
    }

    #[test]
    fn torn_tail_is_survivable_corrupt_body_is_not_lost() {
        let platform = SgxPlatform::new(b"vm");
        let media = Media::new();
        let store = store_on(&platform, media.clone());
        issue_and_commit(&store, 2, 10);
        store
            .append(&WalRecord::CredentialRevoked {
                serial: 2,
                reason_code: 1,
                at: 20,
            })
            .unwrap();
        media.tear_tail(5);
        let replay = store.replay().unwrap();
        assert!(replay.truncated_tail);
        assert_eq!(replay.replayed_records, 3, "torn revocation dropped");
        assert!(!replay.state.enrollments[&2].revoked);
    }

    #[test]
    fn group_append_replays_like_sequential() {
        let platform = SgxPlatform::new(b"vm");
        let grouped = store_on(&platform, Media::new()).with_group_commit(true);
        let sequential = store_on(&platform, Media::new());
        let records = [
            WalRecord::CertIssued {
                serial: 2,
                subject: "vnf-2".into(),
                at: 10,
            },
            WalRecord::EnrollmentPrepared {
                serial: 2,
                vnf_name: "vnf-2".into(),
                host_id: "host-0".into(),
                mrenclave: [1; 32],
                provisioning_key_hash: [2; 32],
                backend: 0,
                at: 10,
            },
        ];
        grouped.append_group(&records).unwrap();
        sequential.append_group(&records).unwrap(); // degrades to append()
        let a = grouped.replay().unwrap();
        let b = sequential.replay().unwrap();
        assert_eq!(a.state, b.state);
        assert_eq!(a.replayed_records, 2);
        assert_eq!(b.replayed_records, 2);
        assert_eq!(grouped.stats().log_frames, 2, "members counted");
    }

    #[test]
    fn group_observer_sees_each_record_in_order() {
        struct Tape(Mutex<Vec<u64>>);
        impl AppendObserver for Tape {
            fn appended(&self, record: &WalRecord) -> Result<(), String> {
                if let WalRecord::CertIssued { serial, .. } = record {
                    self.0.lock().push(*serial);
                }
                Ok(())
            }
        }
        let platform = SgxPlatform::new(b"vm");
        let store = store_on(&platform, Media::new()).with_group_commit(true);
        let tape = Arc::new(Tape(Mutex::new(Vec::new())));
        store.set_observer(tape.clone());
        let records: Vec<WalRecord> = (2..6)
            .map(|serial| WalRecord::CertIssued {
                serial,
                subject: format!("vnf-{serial}"),
                at: 1,
            })
            .collect();
        store.append_group(&records).unwrap();
        assert_eq!(*tape.0.lock(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn torn_group_loses_the_whole_workflow() {
        let platform = SgxPlatform::new(b"vm");
        let media = Media::new();
        let store = store_on(&platform, media.clone()).with_group_commit(true);
        issue_and_commit(&store, 2, 10);
        store
            .append_group(&[
                WalRecord::CertIssued {
                    serial: 3,
                    subject: "vnf-3".into(),
                    at: 20,
                },
                WalRecord::EnrollmentPrepared {
                    serial: 3,
                    vnf_name: "vnf-3".into(),
                    host_id: "host-0".into(),
                    mrenclave: [1; 32],
                    provisioning_key_hash: [2; 32],
                    backend: 0,
                    at: 20,
                },
            ])
            .unwrap();
        media.tear_tail(7);
        let replay = store.replay().unwrap();
        assert!(replay.truncated_tail);
        assert_eq!(replay.replayed_records, 3, "whole group gone, prefix kept");
        assert_eq!(replay.state.max_serial, 2);
        assert!(replay.state.pending.is_empty());
    }

    #[test]
    fn foreign_platform_cannot_replay() {
        let media = Media::new();
        let store = store_on(&SgxPlatform::new(b"vm"), media.clone());
        issue_and_commit(&store, 2, 10);
        let thief = store_on(&SgxPlatform::new(b"exfil target"), media);
        assert!(matches!(thief.replay(), Err(StoreError::Sealing(_))));
    }
}
