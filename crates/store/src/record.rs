//! Write-ahead-log records and the aggregate state they replay into.
//!
//! Each [`WalRecord`] is one manager state transition, journaled *before*
//! the manager acknowledges the operation (WAL-before-response). Replaying
//! the records in order through [`ManagerState::apply`] reconstructs the
//! manager's authority state: issued serials, committed enrollments,
//! prepared-but-uncommitted enrollments, revocations, and undelivered
//! revocation notices. [`ManagerState`] doubles as the snapshot payload a
//! compaction seals in place of the log prefix it folds.

use crate::StoreError;
use std::collections::BTreeMap;
use vnfguard_encoding::{TlvReader, TlvWriter};

const TAG_KIND: u8 = 0x01;
const TAG_SERIAL: u8 = 0x02;
const TAG_NAME: u8 = 0x03;
const TAG_HOST: u8 = 0x04;
const TAG_MRENCLAVE: u8 = 0x05;
const TAG_AT: u8 = 0x06;
const TAG_REASON_CODE: u8 = 0x07;
const TAG_REASON_TEXT: u8 = 0x08;
const TAG_TAG: u8 = 0x09;
const TAG_GENERATION: u8 = 0x0a;
const TAG_NUMBER: u8 = 0x0b;
const TAG_CROSS_SERIAL: u8 = 0x0c;
const TAG_OLD_SERIAL: u8 = 0x0d;
const TAG_PROV_KEY_HASH: u8 = 0x0e;
const TAG_BACKEND: u8 = 0x0f;

const TAG_ENROLLMENT: u8 = 0x20;
const TAG_PENDING: u8 = 0x21;
const TAG_REVOKED: u8 = 0x22;
const TAG_NOTICE: u8 = 0x23;
const TAG_MAX_SERIAL: u8 = 0x24;
const TAG_ISSUED: u8 = 0x25;
const TAG_DEGRADED: u8 = 0x26;
const TAG_SNAP_GENERATION: u8 = 0x27;
const TAG_REVOKED_FLAG: u8 = 0x28;
const TAG_CRL_NUMBER: u8 = 0x29;
const TAG_CA_EPOCH: u8 = 0x2a;
const TAG_PENDING_ROTATION: u8 = 0x2b;
const TAG_ROTATION: u8 = 0x2c;

const KIND_CERT_ISSUED: u8 = 1;
const KIND_PREPARED: u8 = 2;
const KIND_COMMITTED: u8 = 3;
const KIND_ABORTED: u8 = 4;
const KIND_REVOKED: u8 = 5;
const KIND_NOTICE_QUEUED: u8 = 6;
const KIND_NOTICE_DELIVERED: u8 = 7;
const KIND_DEGRADED: u8 = 8;
const KIND_RECOVERED: u8 = 9;
const KIND_CRL_ISSUED: u8 = 10;
const KIND_ROTATION_PREPARED: u8 = 11;
const KIND_ROTATION_COMMITTED: u8 = 12;
const KIND_RENEWED: u8 = 13;

/// The `RevocationReason` code recorded for an aborted preparation
/// (cessation of operation — mirrors `vnfguard_pki`'s encoding).
pub const REASON_CESSATION: u8 = 3;

/// One journaled manager state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A certificate left the CA (enrollment, operator or server issuance).
    /// Journaled for serial continuity: recovery must never re-mint a
    /// serial its predecessor already signed.
    CertIssued { serial: u64, subject: String, at: u64 },
    /// Phase one of enrollment: credential issued and wrapped, delivery
    /// outcome unknown. `provisioning_key_hash` is the digest of the
    /// enclave's quote-bound provisioning public key — the renewal path
    /// checks new wrap requests against it, so it must survive recovery.
    EnrollmentPrepared {
        serial: u64,
        vnf_name: String,
        host_id: String,
        mrenclave: [u8; 32],
        provisioning_key_hash: [u8; 32],
        /// Attestation backend code (`BackendKind::as_u8`) the enrollment
        /// was appraised under; recovery re-binds to the same backend.
        backend: u8,
        at: u64,
    },
    /// Phase two: the wrapped bundle reached the enclave.
    EnrollmentCommitted { serial: u64, at: u64 },
    /// Rollback of a prepared enrollment; implies revocation of the serial.
    EnrollmentAborted { serial: u64, reason: String, at: u64 },
    /// Explicit revocation of a committed credential.
    CredentialRevoked { serial: u64, reason_code: u8, at: u64 },
    /// A revocation notice could not be delivered and entered the
    /// store-and-forward queue.
    RevocationQueued {
        host_id: String,
        serial: u64,
        tag: [u8; 32],
        at: u64,
    },
    /// A (queued or immediate) revocation notice reached its agent.
    RevocationDelivered { host_id: String, serial: u64, at: u64 },
    /// A degraded (cached) trust verdict was handed out.
    DegradedVerdictGranted { host_id: String, at: u64 },
    /// A recovery pass completed; `generation` counts manager incarnations.
    RecoveryCompleted { generation: u64, at: u64 },
    /// A numbered CRL was published. Journaled *before* the CA bumps its
    /// counter so `crl_number` stays strictly monotonic across recovery.
    CrlIssued { number: u64, at: u64 },
    /// Phase one of a CA rotation: the successor epoch was announced but
    /// its certificates are not durable yet. A crash here rolls back.
    CaRotationPrepared { epoch: u64, at: u64 },
    /// Phase two: the rotation's new self-signed root and cross-signed
    /// handover certificate (identified by their journaled serials) are
    /// authoritative. A crash after this record resumes the rotation.
    CaRotationCommitted {
        epoch: u64,
        root_serial: u64,
        cross_serial: u64,
        at: u64,
    },
    /// A lightweight renewal re-issued a live enrollment under a new
    /// serial without a fresh attestation round (verdict still cached).
    CredentialRenewed {
        old_serial: u64,
        new_serial: u64,
        vnf_name: String,
        host_id: String,
        mrenclave: [u8; 32],
        provisioning_key_hash: [u8; 32],
        /// Attestation backend code the renewed enrollment stays bound to.
        backend: u8,
        at: u64,
    },
}

impl WalRecord {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        match self {
            WalRecord::CertIssued { serial, subject, at } => {
                w.u8(TAG_KIND, KIND_CERT_ISSUED)
                    .u64(TAG_SERIAL, *serial)
                    .string(TAG_NAME, subject)
                    .u64(TAG_AT, *at);
            }
            WalRecord::EnrollmentPrepared {
                serial,
                vnf_name,
                host_id,
                mrenclave,
                provisioning_key_hash,
                backend,
                at,
            } => {
                w.u8(TAG_KIND, KIND_PREPARED)
                    .u64(TAG_SERIAL, *serial)
                    .string(TAG_NAME, vnf_name)
                    .string(TAG_HOST, host_id)
                    .bytes(TAG_MRENCLAVE, mrenclave)
                    .bytes(TAG_PROV_KEY_HASH, provisioning_key_hash)
                    .u8(TAG_BACKEND, *backend)
                    .u64(TAG_AT, *at);
            }
            WalRecord::EnrollmentCommitted { serial, at } => {
                w.u8(TAG_KIND, KIND_COMMITTED)
                    .u64(TAG_SERIAL, *serial)
                    .u64(TAG_AT, *at);
            }
            WalRecord::EnrollmentAborted { serial, reason, at } => {
                w.u8(TAG_KIND, KIND_ABORTED)
                    .u64(TAG_SERIAL, *serial)
                    .string(TAG_REASON_TEXT, reason)
                    .u64(TAG_AT, *at);
            }
            WalRecord::CredentialRevoked {
                serial,
                reason_code,
                at,
            } => {
                w.u8(TAG_KIND, KIND_REVOKED)
                    .u64(TAG_SERIAL, *serial)
                    .u8(TAG_REASON_CODE, *reason_code)
                    .u64(TAG_AT, *at);
            }
            WalRecord::RevocationQueued {
                host_id,
                serial,
                tag,
                at,
            } => {
                w.u8(TAG_KIND, KIND_NOTICE_QUEUED)
                    .string(TAG_HOST, host_id)
                    .u64(TAG_SERIAL, *serial)
                    .bytes(TAG_TAG, tag)
                    .u64(TAG_AT, *at);
            }
            WalRecord::RevocationDelivered { host_id, serial, at } => {
                w.u8(TAG_KIND, KIND_NOTICE_DELIVERED)
                    .string(TAG_HOST, host_id)
                    .u64(TAG_SERIAL, *serial)
                    .u64(TAG_AT, *at);
            }
            WalRecord::DegradedVerdictGranted { host_id, at } => {
                w.u8(TAG_KIND, KIND_DEGRADED)
                    .string(TAG_HOST, host_id)
                    .u64(TAG_AT, *at);
            }
            WalRecord::RecoveryCompleted { generation, at } => {
                w.u8(TAG_KIND, KIND_RECOVERED)
                    .u64(TAG_GENERATION, *generation)
                    .u64(TAG_AT, *at);
            }
            WalRecord::CrlIssued { number, at } => {
                w.u8(TAG_KIND, KIND_CRL_ISSUED)
                    .u64(TAG_NUMBER, *number)
                    .u64(TAG_AT, *at);
            }
            WalRecord::CaRotationPrepared { epoch, at } => {
                w.u8(TAG_KIND, KIND_ROTATION_PREPARED)
                    .u64(TAG_GENERATION, *epoch)
                    .u64(TAG_AT, *at);
            }
            WalRecord::CaRotationCommitted {
                epoch,
                root_serial,
                cross_serial,
                at,
            } => {
                w.u8(TAG_KIND, KIND_ROTATION_COMMITTED)
                    .u64(TAG_GENERATION, *epoch)
                    .u64(TAG_SERIAL, *root_serial)
                    .u64(TAG_CROSS_SERIAL, *cross_serial)
                    .u64(TAG_AT, *at);
            }
            WalRecord::CredentialRenewed {
                old_serial,
                new_serial,
                vnf_name,
                host_id,
                mrenclave,
                provisioning_key_hash,
                backend,
                at,
            } => {
                w.u8(TAG_KIND, KIND_RENEWED)
                    .u64(TAG_OLD_SERIAL, *old_serial)
                    .u64(TAG_SERIAL, *new_serial)
                    .string(TAG_NAME, vnf_name)
                    .string(TAG_HOST, host_id)
                    .bytes(TAG_MRENCLAVE, mrenclave)
                    .bytes(TAG_PROV_KEY_HASH, provisioning_key_hash)
                    .u8(TAG_BACKEND, *backend)
                    .u64(TAG_AT, *at);
            }
        }
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<WalRecord, StoreError> {
        let mut r = TlvReader::new(bytes);
        let kind = r.expect_u8(TAG_KIND)?;
        let record = match kind {
            KIND_CERT_ISSUED => WalRecord::CertIssued {
                serial: r.expect_u64(TAG_SERIAL)?,
                subject: r.expect_string(TAG_NAME)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_PREPARED => WalRecord::EnrollmentPrepared {
                serial: r.expect_u64(TAG_SERIAL)?,
                vnf_name: r.expect_string(TAG_NAME)?,
                host_id: r.expect_string(TAG_HOST)?,
                mrenclave: r.expect_array::<32>(TAG_MRENCLAVE)?,
                provisioning_key_hash: r.expect_array::<32>(TAG_PROV_KEY_HASH)?,
                backend: r.expect_u8(TAG_BACKEND)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_COMMITTED => WalRecord::EnrollmentCommitted {
                serial: r.expect_u64(TAG_SERIAL)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_ABORTED => WalRecord::EnrollmentAborted {
                serial: r.expect_u64(TAG_SERIAL)?,
                reason: r.expect_string(TAG_REASON_TEXT)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_REVOKED => WalRecord::CredentialRevoked {
                serial: r.expect_u64(TAG_SERIAL)?,
                reason_code: r.expect_u8(TAG_REASON_CODE)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_NOTICE_QUEUED => WalRecord::RevocationQueued {
                host_id: r.expect_string(TAG_HOST)?,
                serial: r.expect_u64(TAG_SERIAL)?,
                tag: r.expect_array::<32>(TAG_TAG)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_NOTICE_DELIVERED => WalRecord::RevocationDelivered {
                host_id: r.expect_string(TAG_HOST)?,
                serial: r.expect_u64(TAG_SERIAL)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_DEGRADED => WalRecord::DegradedVerdictGranted {
                host_id: r.expect_string(TAG_HOST)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_RECOVERED => WalRecord::RecoveryCompleted {
                generation: r.expect_u64(TAG_GENERATION)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_CRL_ISSUED => WalRecord::CrlIssued {
                number: r.expect_u64(TAG_NUMBER)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_ROTATION_PREPARED => WalRecord::CaRotationPrepared {
                epoch: r.expect_u64(TAG_GENERATION)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_ROTATION_COMMITTED => WalRecord::CaRotationCommitted {
                epoch: r.expect_u64(TAG_GENERATION)?,
                root_serial: r.expect_u64(TAG_SERIAL)?,
                cross_serial: r.expect_u64(TAG_CROSS_SERIAL)?,
                at: r.expect_u64(TAG_AT)?,
            },
            KIND_RENEWED => WalRecord::CredentialRenewed {
                old_serial: r.expect_u64(TAG_OLD_SERIAL)?,
                new_serial: r.expect_u64(TAG_SERIAL)?,
                vnf_name: r.expect_string(TAG_NAME)?,
                host_id: r.expect_string(TAG_HOST)?,
                mrenclave: r.expect_array::<32>(TAG_MRENCLAVE)?,
                provisioning_key_hash: r.expect_array::<32>(TAG_PROV_KEY_HASH)?,
                backend: r.expect_u8(TAG_BACKEND)?,
                at: r.expect_u64(TAG_AT)?,
            },
            other => {
                return Err(StoreError::Corrupt(format!("unknown record kind {other}")))
            }
        };
        r.finish()?;
        Ok(record)
    }
}

/// A committed enrollment as carried by the WAL/snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnrollmentEntry {
    pub serial: u64,
    pub vnf_name: String,
    pub host_id: String,
    pub mrenclave: [u8; 32],
    /// Digest of the enclave's quote-bound provisioning public key;
    /// renewals must wrap to this key and nothing else.
    pub provisioning_key_hash: [u8; 32],
    /// Attestation backend code (`BackendKind::as_u8`) the enrollment was
    /// appraised under.
    pub backend: u8,
    pub issued_at: u64,
    pub revoked: bool,
}

/// A prepared-but-uncommitted enrollment as carried by the WAL/snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingEntry {
    pub serial: u64,
    pub vnf_name: String,
    pub host_id: String,
    pub mrenclave: [u8; 32],
    /// Digest of the enclave's quote-bound provisioning public key.
    pub provisioning_key_hash: [u8; 32],
    /// Attestation backend code the prepare was appraised under.
    pub backend: u8,
    pub prepared_at: u64,
}

/// An undelivered revocation notice as carried by the WAL/snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoticeEntry {
    pub host_id: String,
    pub serial: u64,
    pub tag: [u8; 32],
    pub queued_at: u64,
}

/// One committed CA rotation as carried by the WAL/snapshot. The signing
/// key itself is never journaled — recovery re-derives it from the sealed
/// deployment seed and the epoch — but the serials and timestamp pin the
/// exact certificates the pre-crash incarnation served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationEntry {
    pub epoch: u64,
    pub root_serial: u64,
    pub cross_serial: u64,
    pub at: u64,
}

/// The manager's authority state as reconstructed from snapshot + log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ManagerState {
    /// Committed enrollments by serial.
    pub enrollments: BTreeMap<u64, EnrollmentEntry>,
    /// Prepared-but-uncommitted enrollments by serial.
    pub pending: BTreeMap<u64, PendingEntry>,
    /// Revoked serials → (reason code, revoked-at).
    pub revoked: BTreeMap<u64, (u8, u64)>,
    /// Revocation notices journaled as queued and never delivered.
    pub notices: Vec<NoticeEntry>,
    /// Highest serial any `CertIssued` record named.
    pub max_serial: u64,
    /// Certificates issued (the CA's `issued_count`).
    pub issued: u64,
    /// Degraded verdicts handed out across all incarnations.
    pub degraded_grants: u64,
    /// Completed recovery passes (manager incarnations − 1).
    pub generation: u64,
    /// Highest CRL number journaled as issued.
    pub crl_number: u64,
    /// Current CA key epoch (0 = the original deployment key).
    pub ca_epoch: u64,
    /// A rotation journaled as prepared but never committed; recovery
    /// rolls it back. `None` when no rotation is in flight.
    pub pending_rotation: Option<u64>,
    /// Committed rotations in epoch order.
    pub rotations: Vec<RotationEntry>,
}

impl ManagerState {
    /// Fold one record into the aggregate. Application is idempotent where
    /// the protocol allows retries (a second commit of the same serial, a
    /// delivery for a notice that was never queued) — replay must not be
    /// stricter than the live manager was.
    pub fn apply(&mut self, record: &WalRecord) {
        match record {
            WalRecord::CertIssued { serial, .. } => {
                self.max_serial = self.max_serial.max(*serial);
                self.issued += 1;
            }
            WalRecord::EnrollmentPrepared {
                serial,
                vnf_name,
                host_id,
                mrenclave,
                provisioning_key_hash,
                backend,
                at,
            } => {
                self.pending.insert(
                    *serial,
                    PendingEntry {
                        serial: *serial,
                        vnf_name: vnf_name.clone(),
                        host_id: host_id.clone(),
                        mrenclave: *mrenclave,
                        provisioning_key_hash: *provisioning_key_hash,
                        backend: *backend,
                        prepared_at: *at,
                    },
                );
            }
            WalRecord::EnrollmentCommitted { serial, at } => {
                if let Some(pending) = self.pending.remove(serial) {
                    self.enrollments.insert(
                        *serial,
                        EnrollmentEntry {
                            serial: *serial,
                            vnf_name: pending.vnf_name,
                            host_id: pending.host_id,
                            mrenclave: pending.mrenclave,
                            provisioning_key_hash: pending.provisioning_key_hash,
                            backend: pending.backend,
                            issued_at: *at,
                            revoked: self.revoked.contains_key(serial),
                        },
                    );
                }
            }
            WalRecord::EnrollmentAborted { serial, at, .. } => {
                self.pending.remove(serial);
                self.revoked
                    .entry(*serial)
                    .or_insert((REASON_CESSATION, *at));
            }
            WalRecord::CredentialRevoked {
                serial,
                reason_code,
                at,
            } => {
                self.revoked.entry(*serial).or_insert((*reason_code, *at));
                if let Some(enrollment) = self.enrollments.get_mut(serial) {
                    enrollment.revoked = true;
                }
            }
            WalRecord::RevocationQueued {
                host_id,
                serial,
                tag,
                at,
            } => {
                if !self
                    .notices
                    .iter()
                    .any(|n| n.host_id == *host_id && n.serial == *serial)
                {
                    self.notices.push(NoticeEntry {
                        host_id: host_id.clone(),
                        serial: *serial,
                        tag: *tag,
                        queued_at: *at,
                    });
                }
            }
            WalRecord::RevocationDelivered { host_id, serial, .. } => {
                self.notices
                    .retain(|n| !(n.host_id == *host_id && n.serial == *serial));
            }
            WalRecord::DegradedVerdictGranted { .. } => {
                self.degraded_grants += 1;
            }
            WalRecord::RecoveryCompleted { generation, .. } => {
                self.generation = self.generation.max(*generation);
            }
            WalRecord::CrlIssued { number, .. } => {
                self.crl_number = self.crl_number.max(*number);
            }
            WalRecord::CaRotationPrepared { epoch, .. } => {
                if *epoch > self.ca_epoch {
                    self.pending_rotation = Some(*epoch);
                }
            }
            WalRecord::CaRotationCommitted {
                epoch,
                root_serial,
                cross_serial,
                at,
            } => {
                if *epoch > self.ca_epoch {
                    self.rotations.push(RotationEntry {
                        epoch: *epoch,
                        root_serial: *root_serial,
                        cross_serial: *cross_serial,
                        at: *at,
                    });
                    self.ca_epoch = *epoch;
                }
                if self.pending_rotation == Some(*epoch) {
                    self.pending_rotation = None;
                }
            }
            WalRecord::CredentialRenewed {
                old_serial: _,
                new_serial,
                vnf_name,
                host_id,
                mrenclave,
                provisioning_key_hash,
                backend,
                at,
            } => {
                // The old enrollment stays live until its certificate
                // expires; renewal only adds the successor credential.
                self.enrollments.insert(
                    *new_serial,
                    EnrollmentEntry {
                        serial: *new_serial,
                        vnf_name: vnf_name.clone(),
                        host_id: host_id.clone(),
                        mrenclave: *mrenclave,
                        provisioning_key_hash: *provisioning_key_hash,
                        backend: *backend,
                        issued_at: *at,
                        revoked: self.revoked.contains_key(new_serial),
                    },
                );
            }
        }
    }

    /// Encode as a snapshot payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.u64(TAG_MAX_SERIAL, self.max_serial)
            .u64(TAG_ISSUED, self.issued)
            .u64(TAG_DEGRADED, self.degraded_grants)
            .u64(TAG_SNAP_GENERATION, self.generation)
            .u64(TAG_CRL_NUMBER, self.crl_number)
            .u64(TAG_CA_EPOCH, self.ca_epoch)
            // Epochs start at 1, so 0 encodes "no rotation in flight".
            .u64(TAG_PENDING_ROTATION, self.pending_rotation.unwrap_or(0));
        for rotation in &self.rotations {
            w.nested(TAG_ROTATION, |inner| {
                inner
                    .u64(TAG_GENERATION, rotation.epoch)
                    .u64(TAG_SERIAL, rotation.root_serial)
                    .u64(TAG_CROSS_SERIAL, rotation.cross_serial)
                    .u64(TAG_AT, rotation.at);
            });
        }
        for e in self.enrollments.values() {
            w.nested(TAG_ENROLLMENT, |inner| {
                inner
                    .u64(TAG_SERIAL, e.serial)
                    .string(TAG_NAME, &e.vnf_name)
                    .string(TAG_HOST, &e.host_id)
                    .bytes(TAG_MRENCLAVE, &e.mrenclave)
                    .bytes(TAG_PROV_KEY_HASH, &e.provisioning_key_hash)
                    .u8(TAG_BACKEND, e.backend)
                    .u64(TAG_AT, e.issued_at)
                    .u8(TAG_REVOKED_FLAG, e.revoked as u8);
            });
        }
        for p in self.pending.values() {
            w.nested(TAG_PENDING, |inner| {
                inner
                    .u64(TAG_SERIAL, p.serial)
                    .string(TAG_NAME, &p.vnf_name)
                    .string(TAG_HOST, &p.host_id)
                    .bytes(TAG_MRENCLAVE, &p.mrenclave)
                    .bytes(TAG_PROV_KEY_HASH, &p.provisioning_key_hash)
                    .u8(TAG_BACKEND, p.backend)
                    .u64(TAG_AT, p.prepared_at);
            });
        }
        for (serial, (reason, at)) in &self.revoked {
            w.nested(TAG_REVOKED, |inner| {
                inner
                    .u64(TAG_SERIAL, *serial)
                    .u8(TAG_REASON_CODE, *reason)
                    .u64(TAG_AT, *at);
            });
        }
        for n in &self.notices {
            w.nested(TAG_NOTICE, |inner| {
                inner
                    .string(TAG_HOST, &n.host_id)
                    .u64(TAG_SERIAL, n.serial)
                    .bytes(TAG_TAG, &n.tag)
                    .u64(TAG_AT, n.queued_at);
            });
        }
        w.finish()
    }

    /// Decode a snapshot payload.
    pub fn decode(bytes: &[u8]) -> Result<ManagerState, StoreError> {
        let mut r = TlvReader::new(bytes);
        let mut state = ManagerState {
            max_serial: r.expect_u64(TAG_MAX_SERIAL)?,
            issued: r.expect_u64(TAG_ISSUED)?,
            degraded_grants: r.expect_u64(TAG_DEGRADED)?,
            generation: r.expect_u64(TAG_SNAP_GENERATION)?,
            crl_number: r.expect_u64(TAG_CRL_NUMBER)?,
            ca_epoch: r.expect_u64(TAG_CA_EPOCH)?,
            ..ManagerState::default()
        };
        state.pending_rotation = match r.expect_u64(TAG_PENDING_ROTATION)? {
            0 => None,
            epoch => Some(epoch),
        };
        while !r.is_empty() {
            let (tag, value) = r.next()?;
            let mut inner = TlvReader::new(value);
            match tag {
                TAG_ENROLLMENT => {
                    let serial = inner.expect_u64(TAG_SERIAL)?;
                    state.enrollments.insert(
                        serial,
                        EnrollmentEntry {
                            serial,
                            vnf_name: inner.expect_string(TAG_NAME)?,
                            host_id: inner.expect_string(TAG_HOST)?,
                            mrenclave: inner.expect_array::<32>(TAG_MRENCLAVE)?,
                            provisioning_key_hash: inner.expect_array::<32>(TAG_PROV_KEY_HASH)?,
                            backend: inner.expect_u8(TAG_BACKEND)?,
                            issued_at: inner.expect_u64(TAG_AT)?,
                            revoked: inner.expect_u8(TAG_REVOKED_FLAG)? != 0,
                        },
                    );
                }
                TAG_PENDING => {
                    let serial = inner.expect_u64(TAG_SERIAL)?;
                    state.pending.insert(
                        serial,
                        PendingEntry {
                            serial,
                            vnf_name: inner.expect_string(TAG_NAME)?,
                            host_id: inner.expect_string(TAG_HOST)?,
                            mrenclave: inner.expect_array::<32>(TAG_MRENCLAVE)?,
                            provisioning_key_hash: inner.expect_array::<32>(TAG_PROV_KEY_HASH)?,
                            backend: inner.expect_u8(TAG_BACKEND)?,
                            prepared_at: inner.expect_u64(TAG_AT)?,
                        },
                    );
                }
                TAG_REVOKED => {
                    let serial = inner.expect_u64(TAG_SERIAL)?;
                    let reason = inner.expect_u8(TAG_REASON_CODE)?;
                    let at = inner.expect_u64(TAG_AT)?;
                    state.revoked.insert(serial, (reason, at));
                }
                TAG_NOTICE => {
                    state.notices.push(NoticeEntry {
                        host_id: inner.expect_string(TAG_HOST)?,
                        serial: inner.expect_u64(TAG_SERIAL)?,
                        tag: inner.expect_array::<32>(TAG_TAG)?,
                        queued_at: inner.expect_u64(TAG_AT)?,
                    });
                }
                TAG_ROTATION => {
                    state.rotations.push(RotationEntry {
                        epoch: inner.expect_u64(TAG_GENERATION)?,
                        root_serial: inner.expect_u64(TAG_SERIAL)?,
                        cross_serial: inner.expect_u64(TAG_CROSS_SERIAL)?,
                        at: inner.expect_u64(TAG_AT)?,
                    });
                }
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "unknown snapshot section 0x{other:02x}"
                    )))
                }
            }
            inner.finish()?;
        }
        Ok(state)
    }

    /// Check the crash-consistency invariants the recovery contract
    /// promises. Returns the first violation as text.
    pub fn check_invariants(&self) -> Result<(), String> {
        for serial in self.pending.keys() {
            if self.enrollments.contains_key(serial) {
                return Err(format!("serial {serial} is both pending and committed"));
            }
            if self.revoked.contains_key(serial) {
                return Err(format!("serial {serial} is both pending and revoked"));
            }
        }
        for (serial, e) in &self.enrollments {
            if e.revoked != self.revoked.contains_key(serial) {
                return Err(format!(
                    "serial {serial}: enrollment revoked flag ({}) disagrees with \
                     the revocation registry ({})",
                    e.revoked,
                    self.revoked.contains_key(serial)
                ));
            }
        }
        for serial in self
            .enrollments
            .keys()
            .chain(self.pending.keys())
            .chain(self.revoked.keys())
        {
            if *serial > self.max_serial {
                return Err(format!(
                    "serial {serial} exceeds recorded max serial {}",
                    self.max_serial
                ));
            }
        }
        let mut expected_epoch = 0;
        for rotation in &self.rotations {
            expected_epoch += 1;
            if rotation.epoch != expected_epoch {
                return Err(format!(
                    "rotation epochs out of order: found {} where {} was expected",
                    rotation.epoch, expected_epoch
                ));
            }
            if rotation.root_serial > self.max_serial || rotation.cross_serial > self.max_serial {
                return Err(format!(
                    "rotation {} names serials ({}, {}) beyond max serial {}",
                    rotation.epoch, rotation.root_serial, rotation.cross_serial, self.max_serial
                ));
            }
        }
        if expected_epoch != self.ca_epoch {
            return Err(format!(
                "CA epoch {} disagrees with {} committed rotations",
                self.ca_epoch, expected_epoch
            ));
        }
        if let Some(pending) = self.pending_rotation {
            if pending != self.ca_epoch + 1 {
                return Err(format!(
                    "pending rotation epoch {pending} is not the successor of CA epoch {}",
                    self.ca_epoch
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CertIssued {
                serial: 2,
                subject: "vnf-a".into(),
                at: 100,
            },
            WalRecord::EnrollmentPrepared {
                serial: 2,
                vnf_name: "vnf-a".into(),
                host_id: "host-0".into(),
                mrenclave: [7; 32],
                provisioning_key_hash: [21; 32],
                backend: 0,
                at: 100,
            },
            WalRecord::EnrollmentCommitted { serial: 2, at: 101 },
            WalRecord::CertIssued {
                serial: 3,
                subject: "vnf-b".into(),
                at: 110,
            },
            WalRecord::EnrollmentPrepared {
                serial: 3,
                vnf_name: "vnf-b".into(),
                host_id: "host-0".into(),
                mrenclave: [8; 32],
                provisioning_key_hash: [22; 32],
                backend: 0,
                at: 110,
            },
            WalRecord::EnrollmentAborted {
                serial: 3,
                reason: "delivery failed".into(),
                at: 111,
            },
            WalRecord::CredentialRevoked {
                serial: 2,
                reason_code: 1,
                at: 120,
            },
            WalRecord::RevocationQueued {
                host_id: "host-0".into(),
                serial: 2,
                tag: [9; 32],
                at: 120,
            },
            WalRecord::DegradedVerdictGranted {
                host_id: "host-0".into(),
                at: 130,
            },
            WalRecord::RecoveryCompleted {
                generation: 1,
                at: 140,
            },
            WalRecord::CrlIssued { number: 1, at: 145 },
            WalRecord::CertIssued {
                serial: 4,
                subject: "vm-ca".into(),
                at: 150,
            },
            WalRecord::CertIssued {
                serial: 5,
                subject: "vm-ca".into(),
                at: 150,
            },
            WalRecord::CaRotationPrepared { epoch: 1, at: 150 },
            WalRecord::CaRotationCommitted {
                epoch: 1,
                root_serial: 4,
                cross_serial: 5,
                at: 150,
            },
            WalRecord::CertIssued {
                serial: 6,
                subject: "vnf-a".into(),
                at: 160,
            },
            WalRecord::CredentialRenewed {
                old_serial: 2,
                new_serial: 6,
                vnf_name: "vnf-a".into(),
                host_id: "host-0".into(),
                mrenclave: [7; 32],
                provisioning_key_hash: [21; 32],
                backend: 1,
                at: 160,
            },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for record in sample_records() {
            let decoded = WalRecord::decode(&record.encode()).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let mut w = TlvWriter::new();
        w.u8(TAG_KIND, 200);
        assert!(WalRecord::decode(&w.finish()).is_err());
    }

    #[test]
    fn replay_builds_consistent_state() {
        let mut state = ManagerState::default();
        for record in sample_records() {
            state.apply(&record);
        }
        assert_eq!(state.max_serial, 6);
        assert_eq!(state.issued, 5);
        assert!(state.enrollments[&2].revoked);
        assert!(state.pending.is_empty());
        assert!(state.revoked.contains_key(&3), "aborted prepare is revoked");
        assert_eq!(state.notices.len(), 1);
        assert_eq!(state.degraded_grants, 1);
        assert_eq!(state.generation, 1);
        assert_eq!(state.crl_number, 1);
        assert_eq!(state.ca_epoch, 1);
        assert_eq!(state.pending_rotation, None);
        assert_eq!(
            state.rotations,
            vec![RotationEntry {
                epoch: 1,
                root_serial: 4,
                cross_serial: 5,
                at: 150,
            }]
        );
        let renewed = &state.enrollments[&6];
        assert_eq!(renewed.vnf_name, "vnf-a");
        assert!(!renewed.revoked);
        assert_eq!(renewed.provisioning_key_hash, [21; 32]);
        assert_eq!(state.enrollments[&2].provisioning_key_hash, [21; 32]);
        state.check_invariants().unwrap();
    }

    #[test]
    fn prepared_rotation_without_commit_stays_pending() {
        let mut state = ManagerState::default();
        state.apply(&WalRecord::CaRotationPrepared { epoch: 1, at: 10 });
        assert_eq!(state.pending_rotation, Some(1));
        assert_eq!(state.ca_epoch, 0);
        state.check_invariants().unwrap();
        // A replayed commit resolves the in-flight rotation.
        state.apply(&WalRecord::CertIssued {
            serial: 2,
            subject: "vm-ca".into(),
            at: 11,
        });
        state.apply(&WalRecord::CertIssued {
            serial: 3,
            subject: "vm-ca".into(),
            at: 11,
        });
        state.apply(&WalRecord::CaRotationCommitted {
            epoch: 1,
            root_serial: 2,
            cross_serial: 3,
            at: 11,
        });
        assert_eq!(state.pending_rotation, None);
        assert_eq!(state.ca_epoch, 1);
        state.check_invariants().unwrap();
    }

    #[test]
    fn crl_number_replay_is_monotonic() {
        let mut state = ManagerState::default();
        state.apply(&WalRecord::CrlIssued { number: 3, at: 1 });
        state.apply(&WalRecord::CrlIssued { number: 2, at: 2 });
        assert_eq!(state.crl_number, 3);
    }

    #[test]
    fn invariants_catch_rotation_epoch_gap() {
        let mut state = ManagerState {
            max_serial: 10,
            ..ManagerState::default()
        };
        state.rotations.push(RotationEntry {
            epoch: 2,
            root_serial: 4,
            cross_serial: 5,
            at: 1,
        });
        state.ca_epoch = 2;
        assert!(state.check_invariants().is_err());
        // A pending rotation must be the successor epoch.
        let state = ManagerState {
            pending_rotation: Some(3),
            ..ManagerState::default()
        };
        assert!(state.check_invariants().is_err());
    }

    #[test]
    fn delivery_clears_queued_notice() {
        let mut state = ManagerState::default();
        state.apply(&WalRecord::RevocationQueued {
            host_id: "h".into(),
            serial: 5,
            tag: [0; 32],
            at: 10,
        });
        state.apply(&WalRecord::RevocationDelivered {
            host_id: "h".into(),
            serial: 5,
            at: 12,
        });
        assert!(state.notices.is_empty());
    }

    #[test]
    fn snapshot_roundtrips() {
        let mut state = ManagerState::default();
        for record in sample_records() {
            state.apply(&record);
        }
        let decoded = ManagerState::decode(&state.encode()).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn invariants_catch_flag_divergence() {
        let mut state = ManagerState::default();
        state.apply(&WalRecord::CertIssued {
            serial: 2,
            subject: "x".into(),
            at: 0,
        });
        state.apply(&WalRecord::EnrollmentPrepared {
            serial: 2,
            vnf_name: "x".into(),
            host_id: "h".into(),
            mrenclave: [0; 32],
            provisioning_key_hash: [0; 32],
            backend: 0,
            at: 0,
        });
        state.apply(&WalRecord::EnrollmentCommitted { serial: 2, at: 1 });
        state.check_invariants().unwrap();
        state.enrollments.get_mut(&2).unwrap().revoked = true;
        assert!(state.check_invariants().is_err());
    }
}
