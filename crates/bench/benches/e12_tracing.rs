//! E12 — distributed-tracing overhead: the full remote enrollment path
//! with every span recorded into the trace collector (sample rate 1.0,
//! operator-rooted trace per enrollment) versus the same path with
//! `Telemetry::disabled()`.
//!
//! This is a custom harness, not a criterion bench: it *enforces* the
//! acceptance bar. Enabled and disabled batches run as adjacent pairs
//! (order alternating pair to pair) so scheduler and thermal drift hit
//! both sides of a pair equally; the reported overhead is the median of
//! the per-pair ratios, which cancels drift a global mean would absorb.
//! Tracing-enabled enrollment must stay within [`MAX_OVERHEAD`] of
//! disabled or the process exits non-zero, failing CI.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vnfguard_core::deployment::{Testbed, TestbedBuilder};
use vnfguard_core::remote::{
    remote_attest_host, remote_enroll_vnf, remote_enroll_vnf_traced, serve_ias, HostAgent,
    HostAgentState, RemoteIas,
};
use vnfguard_telemetry::Telemetry;

/// Tracing-enabled enrollment must finish within 5% of disabled.
const MAX_OVERHEAD: f64 = 0.05;
/// Enabled/disabled batch pairs; the median per-pair ratio is compared.
const BATCHES: usize = 9;
/// Enrollments per batch.
const BATCH_SIZE: u64 = 6;
/// Noisy-machine retries before the bar is declared failed.
const ATTEMPTS: usize = 3;

struct RemoteWorld {
    testbed: Testbed,
    agent: HostAgent,
    remote_ias: RemoteIas,
    telemetry: Telemetry,
    next_vnf: u64,
    _ias_handle: vnfguard_net::ServerHandle,
}

fn remote_world(seed: &[u8], telemetry: Telemetry, traced: bool) -> RemoteWorld {
    let mut builder = TestbedBuilder::new(seed).telemetry(telemetry.clone());
    if traced {
        builder = builder.tracing(1.0);
    }
    let mut testbed = builder.build();
    let ias = std::mem::replace(
        &mut testbed.ias,
        vnfguard_ias::AttestationService::new(b"placeholder"),
    );
    let report_key = ias.report_signing_key();
    let (_ias_handle, _shared) = serve_ias(&testbed.network, "ias:443", ias).unwrap();
    let remote_ias =
        RemoteIas::new(&testbed.network, "ias:443", report_key).with_telemetry(&telemetry);
    let host = testbed.hosts.remove(0);
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(HashMap::new()),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(testbed.vm.share_hmac_key()),
    });
    let agent = HostAgent::serve(&testbed.network, state).unwrap();
    RemoteWorld {
        testbed,
        agent,
        remote_ias,
        telemetry,
        next_vnf: 0,
        _ias_handle,
    }
}

fn deploy_guard(world: &mut RemoteWorld) -> String {
    world.next_vnf += 1;
    let name = format!("vnf-{}", world.next_vnf);
    let guard = vnfguard_vnf::VnfGuard::load(
        &world.agent.state.platform,
        &world.testbed.network,
        &world.testbed.enclave_author,
        &name,
        1,
    )
    .unwrap();
    world.testbed.vm.trust_enclave(guard.mrenclave(), &name);
    world
        .agent
        .state
        .guards
        .write()
        .insert(name.clone(), Arc::new(guard));
    name
}

/// Time one batch of enrollments. Traced batches open an operator root
/// span per enrollment, exactly like the `/vm/...` REST handlers do.
fn batch(world: &mut RemoteWorld, traced: bool) -> Duration {
    let names: Vec<String> = (0..BATCH_SIZE).map(|_| deploy_guard(world)).collect();
    let start = Instant::now();
    for name in &names {
        if traced {
            let now = world.testbed.clock.now();
            let (ctx, _span) = world.telemetry.trace_root("operator", "enrollment", now);
            black_box(
                remote_enroll_vnf_traced(
                    &world.testbed.vm,
                    &mut world.remote_ias,
                    &world.testbed.network,
                    "host-0",
                    name,
                    "controller",
                    Some(&ctx),
                )
                .unwrap(),
            );
        } else {
            black_box(
                remote_enroll_vnf(
                    &world.testbed.vm,
                    &mut world.remote_ias,
                    &world.testbed.network,
                    "host-0",
                    name,
                    "controller",
                )
                .unwrap(),
            );
        }
    }
    start.elapsed()
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

/// One full measurement: fresh worlds, paired batches, median per-pair
/// ratio. Returns `(enabled_us, disabled_us, overhead)` per enrollment.
fn measure(attempt: usize) -> (f64, f64, f64) {
    let seed_on = format!("e12 traced {attempt}");
    let seed_off = format!("e12 disabled {attempt}");
    let mut on = remote_world(seed_on.as_bytes(), Telemetry::new(), true);
    let mut off = remote_world(seed_off.as_bytes(), Telemetry::disabled(), false);
    remote_attest_host(&on.testbed.vm, &mut on.remote_ias, &on.testbed.network, "host-0")
        .unwrap();
    remote_attest_host(&off.testbed.vm, &mut off.remote_ias, &off.testbed.network, "host-0")
        .unwrap();
    // Warm both paths before timing.
    for _ in 0..2 {
        batch(&mut on, true);
        batch(&mut off, false);
    }
    let mut on_us = Vec::with_capacity(BATCHES);
    let mut off_us = Vec::with_capacity(BATCHES);
    for pair in 0..BATCHES {
        // Alternate which side goes first so ordering bias cancels too.
        if pair % 2 == 0 {
            on_us.push(batch(&mut on, true).as_micros() as f64 / BATCH_SIZE as f64);
            off_us.push(batch(&mut off, false).as_micros() as f64 / BATCH_SIZE as f64);
        } else {
            off_us.push(batch(&mut off, false).as_micros() as f64 / BATCH_SIZE as f64);
            on_us.push(batch(&mut on, true).as_micros() as f64 / BATCH_SIZE as f64);
        }
    }
    let ratios: Vec<f64> = on_us.iter().zip(&off_us).map(|(a, b)| a / b).collect();
    (median(on_us), median(off_us), median(ratios) - 1.0)
}

fn main() {
    println!("e12_tracing: enrollment with full trace recording vs Telemetry::disabled()");
    let mut last = (0.0, 0.0, 0.0);
    for attempt in 0..ATTEMPTS {
        let (enabled, disabled, overhead) = measure(attempt);
        println!(
            "e12_tracing/enrollment_traced      {enabled:>10.1} µs/iter (median of {BATCHES} batches)"
        );
        println!(
            "e12_tracing/enrollment_disabled    {disabled:>10.1} µs/iter (median of {BATCHES} batches)"
        );
        println!(
            "e12_tracing/overhead               {:>10.2} % (median pair ratio, bar {:.0} %)",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
        if overhead <= MAX_OVERHEAD {
            println!("e12_tracing: PASS");
            return;
        }
        last = (enabled, disabled, overhead);
        println!("e12_tracing: attempt {} over the bar, retrying", attempt + 1);
    }
    eprintln!(
        "e12_tracing: FAIL — traced {:.1} µs vs disabled {:.1} µs ({:+.2} % > {:.0} %)",
        last.0,
        last.1,
        last.2 * 100.0,
        MAX_OVERHEAD * 100.0
    );
    std::process::exit(1);
}
