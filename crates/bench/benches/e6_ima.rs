//! E6 — IMA costs: measurement, aggregate maintenance, list encoding and
//! appraisal as the measurement list grows; plus the TPM-anchored variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vnfguard_ima::appraisal::{AppraisalPolicy, ReferenceDatabase};
use vnfguard_ima::list::{MeasurementList, IMA_PCR};
use vnfguard_ima::tpm::SimTpm;

fn list_with(entries: usize) -> (MeasurementList, ReferenceDatabase) {
    let mut list = MeasurementList::new(b"bench host");
    let mut db = ReferenceDatabase::new();
    for i in 0..entries {
        let path = format!("/usr/bin/component-{i}");
        let content = format!("component {i} contents");
        list.measure_file(&path, content.as_bytes());
        db.allow_content(&path, content.as_bytes());
    }
    (list, db)
}

fn bench_e6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_ima");

    // Single measurement cost (hash + template + extend).
    group.bench_function("measure_one_file_1kb", |b| {
        let content = vec![0xabu8; 1024];
        let mut list = MeasurementList::new(b"host");
        b.iter(|| list.measure_file("/usr/bin/tool", black_box(&content)));
    });

    for entries in [10usize, 100, 1000, 5000] {
        let (list, db) = list_with(entries);
        group.throughput(Throughput::Elements(entries as u64));

        // Appraisal time against the reference database.
        group.bench_with_input(BenchmarkId::new("appraise", entries), &entries, |b, _| {
            let policy = AppraisalPolicy::default();
            b.iter(|| black_box(db.appraise(&list, &policy).verdict));
        });

        // Encoding (what crosses the network) and its size implication.
        group.bench_with_input(BenchmarkId::new("encode", entries), &entries, |b, _| {
            b.iter(|| black_box(list.encode().len()));
        });

        // Consistency verification (verifier-side chain recomputation).
        group.bench_with_input(
            BenchmarkId::new("verify_chain", entries),
            &entries,
            |b, _| {
                b.iter(|| black_box(list.verify_consistency()));
            },
        );
    }

    // TPM extend (the §4 anchor's per-measurement overhead).
    group.bench_function("tpm_extend", |b| {
        let mut tpm = SimTpm::new(&[1; 32]);
        b.iter(|| tpm.extend(IMA_PCR, black_box(&[7; 32])));
    });

    // TPM quote generation + verification round.
    group.bench_function("tpm_quote_roundtrip", |b| {
        let mut tpm = SimTpm::new(&[1; 32]);
        tpm.extend(IMA_PCR, &[7; 32]);
        let aik = tpm.aik_public();
        b.iter(|| {
            let quote = tpm.quote(IMA_PCR, [3; 32]);
            black_box(quote.verify(&aik, &[3; 32]).is_ok())
        });
    });

    group.finish();

    // Report the list sizes alongside (printed once; shape data for
    // EXPERIMENTS.md).
    println!("\ne6 list sizes:");
    for entries in [10usize, 100, 1000, 5000] {
        let (list, _) = list_with(entries);
        println!("  {} entries → {} bytes encoded", entries, list.encode().len());
    }
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
