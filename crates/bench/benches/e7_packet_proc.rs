//! E7 — packet processing inside vs outside the enclave model
//! (the Trusted Click question from the paper's related work).
//!
//! Expected shape: with calibrated SGX1-like transition costs, per-packet
//! ecalls pay a large fixed overhead; batching amortizes it back toward
//! native throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::net::Ipv4Addr;
use vnfguard_dataplane::wire::{build_udp_frame, MacAddr};
use vnfguard_sgx::platform::{PlatformConfig, SgxPlatform};
use vnfguard_sgx::sigstruct::EnclaveAuthor;
use vnfguard_sgx::transition::TransitionModel;
use vnfguard_vnf::nf::{
    decode_batch, decode_verdict, encode_batch, load_enclave_nf, Firewall, FirewallRule,
    NetworkFunction, OP_PROCESS, OP_PROCESS_BATCH,
};

fn frames(count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            build_udp_frame(
                MacAddr([1; 6]),
                MacAddr([2; 6]),
                Ipv4Addr::new(10, 0, 0, (i % 250) as u8 + 1),
                Ipv4Addr::new(10, 0, 1, 1),
                40000 + (i % 1000) as u16,
                if i % 3 == 0 { 53 } else { 80 },
                b"payload bytes",
            )
        })
        .collect()
}

fn firewall() -> Firewall {
    Firewall::default_deny(vec![FirewallRule::allow().port(53)])
}

fn sgx1_platform(seed: &[u8]) -> SgxPlatform {
    SgxPlatform::with_config(seed, PlatformConfig::default(), TransitionModel::sgx1_like())
}

fn bench_e7(c: &mut Criterion) {
    let packets = frames(256);

    let mut group = c.benchmark_group("e7_packet_processing");
    group.throughput(Throughput::Elements(packets.len() as u64));

    // Native baseline.
    group.bench_function("native", |b| {
        let mut fw = firewall();
        b.iter(|| {
            for frame in &packets {
                black_box(fw.process(frame));
            }
        });
    });

    // Enclave, free transitions (pure dispatch overhead).
    group.bench_function("enclave_free_per_packet", |b| {
        let platform = SgxPlatform::new(b"e7 free");
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let enclave = load_enclave_nf(&platform, &author, firewall()).unwrap();
        b.iter(|| {
            for frame in &packets {
                black_box(decode_verdict(&enclave.ecall(OP_PROCESS, frame).unwrap()).unwrap());
            }
        });
    });

    // Enclave with SGX1-like transition cost, one ecall per packet.
    group.bench_function("enclave_sgx1_per_packet", |b| {
        let platform = sgx1_platform(b"e7 sgx1");
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let enclave = load_enclave_nf(&platform, &author, firewall()).unwrap();
        b.iter(|| {
            for frame in &packets {
                black_box(decode_verdict(&enclave.ecall(OP_PROCESS, frame).unwrap()).unwrap());
            }
        });
    });

    // Enclave with SGX1-like cost, batched (amortized transitions).
    for batch in [16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("enclave_sgx1_batched", batch),
            &batch,
            |b, &batch| {
                let platform = sgx1_platform(b"e7 sgx1 batch");
                let author = EnclaveAuthor::from_seed(&[1; 32]);
                let enclave = load_enclave_nf(&platform, &author, firewall()).unwrap();
                b.iter(|| {
                    for chunk in packets.chunks(batch) {
                        let encoded = encode_batch(chunk.iter().map(|f| f.as_slice()));
                        let reply = enclave.ecall(OP_PROCESS_BATCH, &encoded).unwrap();
                        black_box(decode_batch(&reply).unwrap());
                    }
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
