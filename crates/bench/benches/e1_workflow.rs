//! E1 — Figure 1 workflow: end-to-end enrollment latency and per-step
//! breakdown (steps 1–2 host attestation, 3–5 VNF enrollment, 6 first TLS
//! session).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vnfguard_bench::attested_testbed;
use vnfguard_core::deployment::TestbedBuilder;

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_workflow");
    group.sample_size(20);

    // Steps 1-2: host attestation round (challenge → evidence → IAS →
    // appraisal).
    group.bench_function("step1_2_host_attestation", |b| {
        let mut testbed = attested_testbed(b"e1 host");
        b.iter(|| black_box(testbed.attest_host(0).unwrap()));
    });

    // Steps 3-5: VNF enclave attestation + credential generation +
    // provisioning (a fresh guard per iteration).
    group.bench_function("step3_5_vnf_enrollment", |b| {
        let mut testbed = attested_testbed(b"e1 enroll");
        let mut counter = 0u32;
        b.iter(|| {
            counter += 1;
            let guard = testbed
                .deploy_guard(0, &format!("vnf-{counter}"), 1)
                .unwrap();
            black_box(testbed.enroll(0, &guard).unwrap());
        });
    });

    // Step 6: first mutually-authenticated TLS session from the enclave.
    group.bench_function("step6_first_tls_session", |b| {
        let mut testbed = attested_testbed(b"e1 session");
        let mut guard = vnfguard_bench::enrolled_guard(&mut testbed, "vnf-tls");
        b.iter(|| {
            let session = testbed.open_session(&mut guard).unwrap();
            guard.close_session(session).unwrap();
        });
    });

    // The full pipeline from cold start: setup + steps 1-6.
    group.bench_function("full_workflow_cold", |b| {
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            let seed = counter.to_be_bytes();
            let mut testbed = TestbedBuilder::new(&seed).build();
            testbed.attest_host(0).unwrap();
            let mut guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
            testbed.enroll(0, &guard).unwrap();
            let session = testbed.open_session(&mut guard).unwrap();
            black_box(session);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
