//! E8 — revocation: CRL production and distribution cost as revocations
//! accumulate, per-validation CRL lookup cost, and time to evict a host's
//! worth of credentials.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vnfguard_crypto::drbg::HmacDrbg;
use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_pki::ca::{CertificateAuthority, IssueProfile};
use vnfguard_pki::cert::{DistinguishedName, KeyUsage, Validity};
use vnfguard_pki::crl::RevocationReason;
use vnfguard_pki::TrustStore;

fn ca_with_revocations(revoked: usize) -> CertificateAuthority {
    let mut rng = HmacDrbg::new(b"e8");
    let mut ca = CertificateAuthority::new(
        DistinguishedName::new("vm-ca"),
        Validity::new(0, u64::MAX / 2),
        &mut rng,
    );
    let key = SigningKey::from_seed(&[1; 32]);
    for i in 0..revoked.max(1) {
        let cert = ca.issue(
            DistinguishedName::new(&format!("vnf-{i}")),
            key.public_key(),
            &IssueProfile::vnf_client([0; 32]),
            0,
        );
        if i < revoked {
            ca.revoke(cert.serial(), RevocationReason::KeyCompromise, 1);
        }
    }
    ca
}

fn bench_e8(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_revocation");

    for revoked in [0usize, 10, 100, 1000] {
        let ca = ca_with_revocations(revoked);

        // Producing a signed CRL (the VM's periodic cost).
        group.bench_with_input(
            BenchmarkId::new("build_crl", revoked),
            &revoked,
            |b, _| {
                b.iter(|| black_box(ca.current_crl(10, 300)));
            },
        );

        // Installing the CRL at a relying party (signature + replace).
        group.bench_with_input(
            BenchmarkId::new("install_crl", revoked),
            &revoked,
            |b, _| {
                let crl = ca.current_crl(10, 300);
                let mut store = TrustStore::new();
                store.add_anchor(ca.certificate().clone()).unwrap();
                b.iter(|| {
                    black_box(store.install_crl(crl.clone()).is_ok());
                });
            },
        );

        // Validation of a *good* certificate while the CRL holds `revoked`
        // entries (the steady-state lookup cost).
        group.bench_with_input(
            BenchmarkId::new("validate_with_crl", revoked),
            &revoked,
            |b, _| {
                let mut ca = ca_with_revocations(revoked);
                let key = SigningKey::from_seed(&[2; 32]);
                let good = ca.issue(
                    DistinguishedName::new("vnf-good"),
                    key.public_key(),
                    &IssueProfile::vnf_client([0; 32]),
                    0,
                );
                let mut store = TrustStore::new();
                store.add_anchor(ca.certificate().clone()).unwrap();
                store.install_crl(ca.current_crl(10, 300)).unwrap();
                b.iter(|| {
                    black_box(store.validate(&good, 100, KeyUsage::CLIENT_AUTH).is_ok())
                });
            },
        );
    }

    // Time to evict N credentials (revoke + fresh CRL), the incident
    // response metric.
    for fleet in [10usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::new("evict_fleet", fleet),
            &fleet,
            |b, &fleet| {
                b.iter_with_setup(
                    || ca_with_revocations(0),
                    |mut ca| {
                        for serial in 2..2 + fleet as u64 {
                            ca.revoke(serial, RevocationReason::PlatformCompromise, 5);
                        }
                        black_box(ca.current_crl(5, 300));
                    },
                );
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
