//! E15 — shard saturation: concurrent renewal throughput vs shard count,
//! and a crash-under-load matrix.
//!
//! The testbed models cloud block storage by charging a fixed sleep per
//! WAL flush ([`WRITE_LATENCY`]). On an unsharded manager every client
//! serializes behind one WAL, so throughput is pinned near
//! `1 / flush_latency` regardless of client count. Sharding gives each
//! partition its own sealed WAL: flush sleeps on different shards overlap
//! across client threads, and group commit coalesces each workflow's
//! records into a single flush. The scan enrolls [`CLIENTS`] credentials
//! (one per client thread, pinned to `thread % shards` by VNF-name
//! routing) and measures aggregate renewals/sec at 1, 2, 4 and 8 shards.
//! CI gates on 4-shard throughput ≥ [`MIN_SCALING`]× 1-shard.
//!
//! The crash matrix then re-runs concurrent renewals with a seeded
//! [`CrashPlan`] firing at the renewal and enrollment-commit WAL sites,
//! recovers every shard from its sealed log, and checks the sharded
//! crash-consistency contract for each seed:
//!
//! - **no acknowledged renewal is lost** — a certificate handed to a
//!   client thread survives recovery of its shard;
//! - **zero serial collisions** — every serial ever acknowledged is
//!   unique across shards (disjoint per-shard serial spans);
//! - **zero divergence** — the recovered fleet equals oracle twins
//!   replayed independently from forks of each shard's media;
//! - **every shard recovers** — after recovery each client can renew
//!   again on its own shard.

use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::{Duration, Instant};
use vnfguard_core::crash::CrashPlan;
use vnfguard_core::deployment::{Testbed, TestbedBuilder};
use vnfguard_core::service::{shard_of_vnf, VmService};
use vnfguard_core::CoreError;

/// Simulated device flush latency on every shard WAL.
const WRITE_LATENCY: Duration = Duration::from_micros(1500);
/// Shard counts scanned for the throughput curve.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Concurrent client threads (each owns one credential).
const CLIENTS: usize = 8;
/// Chained renewals per client in a timed run.
const RENEWALS_PER_CLIENT: usize = 15;
/// 4-shard throughput must reach this multiple of 1-shard throughput.
const MIN_SCALING: f64 = 2.0;
/// Noisy-machine retries before the scaling bar is declared failed.
const ATTEMPTS: usize = 3;
/// Seeds in the crash-under-load matrix.
const CRASH_SEEDS: u64 = 10;
/// Shards in every crash scenario.
const CRASH_SHARDS: usize = 4;
/// Renewal attempts per client under crash injection.
const CRASH_RENEWALS: usize = 6;

/// One client thread's credential: the serial it chains renewals on and
/// the provisioning key the renewals stay bound to.
struct Client {
    serial: u64,
    key: [u8; 32],
}

/// A VNF name that routes to `target` under `shards`-way routing, so the
/// bench can pin client `t` to shard `t % shards`.
fn name_on_shard(t: usize, target: usize, shards: usize) -> String {
    (0..)
        .map(|j| format!("vnf-sat-{t}-{j}"))
        .find(|name| shard_of_vnf(name, shards) == target)
        .expect("some candidate name routes to every shard")
}

/// A saturated world: sharded, durable, slow-flush testbed with one
/// enrolled credential per client, client `t` pinned to shard
/// `t % shards`.
fn saturated_world(seed: &[u8], shards: usize, group_commit: bool) -> (Testbed, Vec<Client>) {
    let mut tb = TestbedBuilder::new(seed)
        .durable()
        .shards(shards)
        .group_commit(group_commit)
        .wal_write_latency(WRITE_LATENCY)
        .build();
    tb.attest_host(0).unwrap();
    let mut clients = Vec::with_capacity(CLIENTS);
    for t in 0..CLIENTS {
        let name = name_on_shard(t, t % shards, shards);
        let guard = tb.deploy_guard(0, &name, 1).unwrap();
        let key = guard.provisioning_key().unwrap();
        let certificate = tb.enroll(0, &guard).unwrap();
        clients.push(Client {
            serial: certificate.serial(),
            key,
        });
    }
    (tb, clients)
}

/// Aggregate renewals/sec: [`CLIENTS`] threads chain
/// [`RENEWALS_PER_CLIENT`] renewals each through clones of the service
/// handle; wall-clock covers the whole concurrent burst.
fn renewals_per_sec(shards: usize, attempt: usize, group_commit: bool) -> f64 {
    let seed = format!("e15 saturation s{shards} a{attempt} g{group_commit}");
    let (tb, clients) = saturated_world(seed.as_bytes(), shards, group_commit);
    let vm = tb.vm_service();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in &clients {
            let vm = vm.clone();
            scope.spawn(move || {
                let mut serial = client.serial;
                for _ in 0..RENEWALS_PER_CLIENT {
                    let (_, certificate) = vm
                        .renew_vnf_credential(serial, &client.key, "controller")
                        .unwrap();
                    serial = black_box(certificate.serial());
                }
            });
        }
    });
    (CLIENTS * RENEWALS_PER_CLIENT) as f64 / start.elapsed().as_secs_f64()
}

/// One crash-under-load scenario. Returns the number of crashes injected
/// (so the matrix can prove it was non-vacuous).
fn crash_scenario(seed: u64) -> usize {
    let plan = CrashPlan::seeded(seed);
    plan.crash_with_probability("renewal.issue", 0.10)
        .crash_with_probability("enrollment.commit", 0.10);
    let mut tb = TestbedBuilder::new(format!("e15 crash {seed}").as_bytes())
        .durable()
        .shards(CRASH_SHARDS)
        .group_commit(true)
        .crash_plan(plan.clone())
        .build();
    tb.attest_host(0).unwrap();

    // Every serial ever acknowledged to a caller; must stay collision-free.
    let mut serials = BTreeSet::new();
    let mut acknowledge = |serial: u64| {
        assert!(
            serials.insert(serial),
            "seed {seed}: serial {serial} issued twice across shards"
        );
    };

    // Enroll one credential per client, riding out setup crashes.
    let mut clients = Vec::with_capacity(CLIENTS);
    for t in 0..CLIENTS {
        let name = name_on_shard(t, t % CRASH_SHARDS, CRASH_SHARDS);
        let guard = tb.deploy_guard(0, &name, 1).unwrap();
        let key = guard.provisioning_key().unwrap();
        loop {
            match tb.enroll(0, &guard) {
                Ok(certificate) => {
                    acknowledge(certificate.serial());
                    clients.push(Client {
                        serial: certificate.serial(),
                        key,
                    });
                    break;
                }
                Err(CoreError::VmCrashed(_)) => {
                    tb.recover_vm().unwrap();
                    tb.attest_host(0).unwrap();
                }
                Err(other) => panic!("seed {seed}: enrollment failed: {other}"),
            }
        }
    }

    // Concurrent renewals under fire: each thread chains renewals until
    // its shard dies (a fenced shard fails every call until recovery).
    let vm = tb.vm_service();
    let chains: Vec<Vec<u64>> = std::thread::scope(|scope| {
        clients
            .iter()
            .map(|client| {
                let vm = vm.clone();
                scope.spawn(move || {
                    let mut acknowledged = Vec::new();
                    let mut serial = client.serial;
                    for _ in 0..CRASH_RENEWALS {
                        match vm.renew_vnf_credential(serial, &client.key, "controller") {
                            Ok((_, certificate)) => {
                                serial = certificate.serial();
                                acknowledged.push(serial);
                            }
                            Err(CoreError::VmCrashed(_))
                            | Err(CoreError::ServiceUnavailable(_)) => break,
                            Err(other) => {
                                panic!("seed {seed}: renewal failed non-fatally: {other}")
                            }
                        }
                    }
                    acknowledged
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });
    for chain in &chains {
        for serial in chain {
            acknowledge(*serial);
        }
    }
    let crashes = plan.fired_count();

    // Recover every shard from its sealed WAL.
    tb.recover_vm()
        .unwrap_or_else(|e| panic!("seed {seed}: sharded recovery failed: {e}"));

    // No acknowledged renewal is lost: each client's newest acknowledged
    // credential is an enrollment on the recovered fleet.
    for (t, chain) in chains.iter().enumerate() {
        let newest = chain.last().copied().unwrap_or(clients[t].serial);
        assert!(
            tb.vm.enrollments().any(|e| e.serial == newest),
            "seed {seed}: client {t}'s acknowledged serial {newest} lost in recovery"
        );
    }

    // Zero divergence: the recovered fleet equals oracle twins replayed
    // independently from forks of each shard's media.
    let oracle = VmService::from_shards(tb.oracle_twins().unwrap());
    assert_eq!(
        fleet_view(&oracle),
        fleet_view(&tb.vm),
        "seed {seed}: recovered fleet diverged from the oracle twins"
    );

    // Every shard recovered: with the plan disarmed and the host
    // re-attested (attestations die with the incarnation), each client
    // renews once more on its own shard.
    plan.clear("renewal.issue");
    plan.clear("enrollment.commit");
    tb.attest_host(0).unwrap();
    for (t, chain) in chains.iter().enumerate() {
        let newest = chain.last().copied().unwrap_or(clients[t].serial);
        let (_, certificate) = tb
            .vm
            .renew_vnf_credential(newest, &clients[t].key, "controller")
            .unwrap_or_else(|e| panic!("seed {seed}: shard {} dead after recovery: {e}", t % CRASH_SHARDS));
        acknowledge(certificate.serial());
    }
    crashes
}

/// The divergence-checked view of a fleet: CA material, counters, and
/// every shard's enrollment records in deterministic shard order.
type FleetView = (Vec<u8>, u64, u64, u64, Vec<(u64, String, String, bool)>, Vec<u64>);

fn fleet_view(vm: &VmService) -> FleetView {
    (
        vm.ca_certificate().encode(),
        vm.ca_epoch(),
        vm.issued_count(),
        vm.lifecycle_status().crl_number,
        vm.enrollments()
            .map(|e| (e.serial, e.vnf_name.clone(), e.host_id.clone(), e.revoked))
            .collect(),
        vm.pending_enrollments().map(|p| p.serial).collect(),
    )
}

fn main() {
    println!(
        "e15_saturation: {CLIENTS} clients x {RENEWALS_PER_CLIENT} chained renewals, {:?} flush latency, group commit",
        WRITE_LATENCY
    );
    let mut scaling = 0.0;
    for attempt in 0..ATTEMPTS {
        let mut one_shard = 0.0;
        let mut four_shard = 0.0;
        for shards in SHARD_COUNTS {
            let throughput = renewals_per_sec(shards, attempt, true);
            println!("e15_saturation/renewals_{shards}shard      {throughput:>10.0} renewals/s");
            if shards == 1 {
                one_shard = throughput;
            }
            if shards == 4 {
                four_shard = throughput;
            }
        }
        scaling = four_shard / one_shard;
        println!(
            "e15_saturation/scaling_1_to_4       {scaling:>10.2} x (bar {MIN_SCALING:.1} x)"
        );
        if scaling >= MIN_SCALING {
            break;
        }
        println!("e15_saturation: attempt {} under the bar, retrying", attempt + 1);
    }
    // The group-commit contrast: same 4-shard fabric, one flush per
    // record instead of one per workflow.
    let ungrouped = renewals_per_sec(4, 0, false);
    println!("e15_saturation/renewals_4shard_solo {ungrouped:>10.0} renewals/s (group commit off)");
    if scaling < MIN_SCALING {
        eprintln!(
            "e15_saturation: FAIL — 4-shard throughput only {scaling:.2}x 1-shard (bar {MIN_SCALING:.1}x)"
        );
        std::process::exit(1);
    }

    let mut crashes = 0;
    for seed in 0..CRASH_SEEDS {
        crashes += crash_scenario(seed);
    }
    println!(
        "e15_saturation/crash_matrix         {CRASH_SEEDS:>10} seeds, {crashes} injected crashes, every shard recovered"
    );
    assert!(crashes > 0, "crash matrix was vacuous: no crash ever fired");
    println!("e15_saturation: PASS");
}
