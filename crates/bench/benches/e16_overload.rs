//! E16 — overload: admission control under a renewal stampede, measured
//! open-loop against a 10k-credential fleet.
//!
//! The storm driver schedules renewal arrivals at twice the system's
//! measured capacity and measures each request from its *scheduled*
//! arrival, not from when a worker got around to it — the open-loop view
//! in which queueing collapse is visible as unbounded latency growth.
//! With admission control on, the per-class queues in front of the shard
//! locks shed the excess with `retry-after` hints and the admitted
//! requests keep a bounded p99; with it off, the same offered load piles
//! onto the shard mutexes and p99 grows with the backlog. CI gates:
//!
//! - **bounded admitted p99** — under 2x overload, admitted renewals
//!   finish within [`P99_MULT`]x the unloaded p99;
//! - **goodput floor** — while shedding, completed renewals/sec stay at
//!   or above [`GOODPUT_FLOOR`] of measured capacity;
//! - **the control matters** — the no-admission contrast run's p99 is at
//!   least [`CONTRAST_MULT`]x the admitted p99 (and the storm actually
//!   shed something, so the comparison is non-vacuous).
//!
//! The chaos matrix then runs [`CHAOS_SEEDS`] seeded storms — renewal
//! stampedes, revocation storms and CRL thundering herds in seed-varied
//! mixes, with enrollment floods riding on top — against a durable
//! sharded testbed, and checks that shedding never corrupts state: zero
//! orphaned WAL prepares, and the fleet stays byte-identical to oracle
//! twins replayed from forks of each shard's media.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use vnfguard_core::deployment::{Testbed, TestbedBuilder};
use vnfguard_core::overload::AdmissionConfig;
use vnfguard_core::service::VmService;
use vnfguard_core::CoreError;
use vnfguard_vnf::VnfGuard;

/// Credentials enrolled in the storm world (the ISSUE's 10k fleet).
const STORM_VNFS: usize = 10_000;
/// Credentials per chaos-matrix world.
const CHAOS_VNFS: usize = 1_000;
/// Shards in every world.
const SHARDS: usize = 4;
/// Closed-loop clients used to calibrate capacity and unloaded p99.
const CALIBRATION_CLIENTS: usize = 8;
/// Chained renewals per calibration client.
const CALIBRATION_RENEWALS: usize = 50;
/// Open-loop storm workers (more than the renewal queue bound, so the
/// depth gate has something to shed).
const WORKERS: usize = 24;
/// Scheduled storm arrivals.
const STORM_ARRIVALS: usize = 3_000;
/// Offered load as a multiple of measured capacity.
const OVERLOAD: f64 = 2.0;
/// Admitted p99 must stay within this multiple of the unloaded p99.
const P99_MULT: f64 = 5.0;
/// Goodput while shedding must stay at or above this fraction of capacity.
const GOODPUT_FLOOR: f64 = 0.60;
/// The no-admission contrast p99 must exceed this multiple of admitted p99.
const CONTRAST_MULT: f64 = 3.0;
/// Noisy-machine retries before the latency bars are declared failed.
const ATTEMPTS: usize = 3;
/// Seeds in the chaos matrix.
const CHAOS_SEEDS: u64 = 10;
/// Chaos serials reserved for the revocation storm (never renewed).
const CHAOS_REVOCABLE: usize = 200;

/// Queue bounds small enough that [`WORKERS`] concurrent requests
/// overflow the renewal class (bound = 3/4 x 16 = 12).
fn storm_admission() -> AdmissionConfig {
    AdmissionConfig {
        queue_bound: 16,
        ..AdmissionConfig::default()
    }
}

/// Enroll `count` compact credentials through one guard: every name gets
/// its own challenge and a fresh quote from the shared enclave (the
/// whitelist admits by mrenclave, not by name), and all credentials stay
/// bound to the one provisioning key. This is how the bench affords a
/// 10k-credential fleet without loading 10k enclaves.
fn mass_enroll(tb: &mut Testbed, guard: &VnfGuard, count: usize, prefix: &str) -> Vec<u64> {
    let host_id = tb.hosts[0].id.clone();
    let key = guard.provisioning_key().unwrap();
    let mut serials = Vec::with_capacity(count);
    for i in 0..count {
        let name = format!("{prefix}-{i}");
        let challenge = tb.vm.begin_vnf_attestation(&host_id, &name).unwrap();
        let quote = guard
            .quote(&tb.hosts[0].platform, &challenge.nonce, challenge.nonce)
            .unwrap();
        let (_, certificate) = tb
            .vm
            .complete_vnf_enrollment(&mut tb.ias, challenge.id, &quote.encode(), &key, "controller")
            .unwrap();
        serials.push(certificate.serial());
    }
    serials
}

/// A storm world: sharded fleet of `vnfs` compact credentials, admission
/// on or off. Returns the testbed, the shared provisioning key, and the
/// serial pool.
fn storm_world(seed: &[u8], vnfs: usize, admission: bool) -> (Testbed, [u8; 32], Vec<u64>) {
    let mut builder = TestbedBuilder::new(seed).shards(SHARDS);
    if admission {
        builder = builder.admission_config(storm_admission());
    }
    let mut tb = builder.build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-storm-seed", 1).unwrap();
    let key = guard.provisioning_key().unwrap();
    let serials = mass_enroll(&mut tb, &guard, vnfs, "vnf-storm");
    (tb, key, serials)
}

fn p99(latencies: &mut [f64]) -> f64 {
    assert!(!latencies.is_empty());
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    latencies[((latencies.len() - 1) as f64 * 0.99).round() as usize]
}

/// Closed-loop calibration: [`CALIBRATION_CLIENTS`] threads chain
/// renewals, returning (capacity renewals/sec, unloaded p99 micros).
/// Each client owns one serial off the top of the pool and leaves the
/// pool's tail untouched for the storm.
fn calibrate(vm: &VmService, key: &[u8; 32], serials: &[u64]) -> (f64, f64) {
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        (0..CALIBRATION_CLIENTS)
            .map(|c| {
                let vm = vm.clone();
                let mut serial = serials[c];
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(CALIBRATION_RENEWALS);
                    for _ in 0..CALIBRATION_RENEWALS {
                        let t0 = Instant::now();
                        let (_, certificate) =
                            vm.renew_vnf_credential(serial, key, "controller").unwrap();
                        local.push(t0.elapsed().as_secs_f64() * 1e6);
                        serial = certificate.serial();
                    }
                    local
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let capacity =
        (CALIBRATION_CLIENTS * CALIBRATION_RENEWALS) as f64 / start.elapsed().as_secs_f64();
    (capacity, p99(&mut latencies))
}

struct StormOutcome {
    admitted_p99_micros: f64,
    goodput_per_sec: f64,
    admitted: usize,
    shed: usize,
}

/// The open-loop storm: [`STORM_ARRIVALS`] renewals scheduled at
/// `OVERLOAD x capacity`, spread over [`WORKERS`] workers each owning a
/// disjoint slice of the serial pool. Latency is measured from the
/// scheduled arrival. A shed request is not retried — the fleet's guards
/// honor `retry-after` on their own schedule (E13/guard jitter); here the
/// shed itself is the datum.
fn storm(vm: &VmService, key: &[u8; 32], serials: &[u64], capacity: f64) -> StormOutcome {
    let interarrival = 1.0 / (capacity * OVERLOAD);
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let results: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        (0..WORKERS)
            .map(|w| {
                let vm = vm.clone();
                let next = &next;
                // Storm serials start past the calibration clients' slice.
                let mut owned: Vec<u64> = serials
                    .iter()
                    .copied()
                    .skip(CALIBRATION_CLIENTS + w)
                    .step_by(WORKERS)
                    .collect();
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut shed = 0usize;
                    let mut cursor = 0usize;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= STORM_ARRIVALS {
                            break;
                        }
                        let arrival = i as f64 * interarrival;
                        let since_start = start.elapsed().as_secs_f64();
                        if since_start < arrival {
                            std::thread::sleep(Duration::from_secs_f64(arrival - since_start));
                        }
                        let slot = cursor % owned.len();
                        match vm.renew_vnf_credential(owned[slot], key, "controller") {
                            Ok((_, certificate)) => {
                                owned[slot] = certificate.serial();
                                latencies
                                    .push((start.elapsed().as_secs_f64() - arrival) * 1e6);
                            }
                            Err(CoreError::Overloaded { .. }) => shed += 1,
                            Err(other) => panic!("storm renewal failed: {other}"),
                        }
                        cursor += 1;
                    }
                    (latencies, shed)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = Vec::new();
    let mut shed = 0usize;
    for (mut l, s) in results {
        latencies.append(&mut l);
        shed += s;
    }
    let admitted = latencies.len();
    StormOutcome {
        admitted_p99_micros: p99(&mut latencies),
        goodput_per_sec: admitted as f64 / elapsed,
        admitted,
        shed,
    }
}

/// One chaos-matrix storm: a seed-varied mix of renewal stampede,
/// revocation storm, CRL thundering herd and enrollment flood against a
/// durable sharded world with tight admission. Returns the shed count.
fn chaos_scenario(seed: u64) -> usize {
    let mut tb = TestbedBuilder::new(format!("e16 chaos {seed}").as_bytes())
        .durable()
        .shards(SHARDS)
        .group_commit(true)
        .admission_config(storm_admission())
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-chaos-seed", 1).unwrap();
    let key = guard.provisioning_key().unwrap();
    let serials = mass_enroll(&mut tb, &guard, CHAOS_VNFS, "vnf-chaos");
    let (revocable, renewable) = serials.split_at(CHAOS_REVOCABLE);

    // Seed-varied emphasis: every third seed leans renewal-stampede,
    // revocation-storm or CRL-herd respectively.
    let (renewers, revokers, herd) = match seed % 3 {
        0 => (16usize, 2usize, 2usize),
        1 => (8, 8, 2),
        _ => (8, 2, 8),
    };
    let rounds = 2usize;
    let shed = AtomicUsize::new(0);

    let vm = tb.vm_service();
    std::thread::scope(|scope| {
        for w in 0..renewers {
            let vm = vm.clone();
            let shed = &shed;
            let mut owned: Vec<u64> = renewable
                .iter()
                .copied()
                .skip(w)
                .step_by(renewers)
                .collect();
            scope.spawn(move || {
                for round in 0..rounds {
                    for serial in owned.iter_mut() {
                        match vm.renew_vnf_credential(*serial, &key, "controller") {
                            Ok((_, certificate)) => *serial = certificate.serial(),
                            Err(CoreError::Overloaded { .. }) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => {
                                panic!("seed {seed} round {round}: renewal failed: {other}")
                            }
                        }
                    }
                }
            });
        }
        for w in 0..revokers {
            let vm = vm.clone();
            let shed = &shed;
            let owned: Vec<u64> = revocable
                .iter()
                .copied()
                .skip(w)
                .step_by(revokers)
                .collect();
            scope.spawn(move || {
                for serial in owned {
                    match vm.revoke_credential(
                        serial,
                        vnfguard_pki::crl::RevocationReason::KeyCompromise,
                    ) {
                        Ok(_) => {}
                        Err(CoreError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("seed {seed}: revocation failed: {other}"),
                    }
                }
            });
        }
        for _ in 0..herd {
            let vm = vm.clone();
            let shed = &shed;
            scope.spawn(move || {
                for _ in 0..50 {
                    match vm.latest_crl() {
                        Ok(_) => {}
                        Err(CoreError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("seed {seed}: CRL fetch failed: {other}"),
                    }
                }
            });
        }

        // The enrollment flood rides on the main thread (it needs the IAS
        // exclusively); sheds here are the two-phase requests whose clean
        // refusal the post-conditions check.
        let host_id = tb.hosts[0].id.clone();
        for i in 0..100 {
            let challenge = match tb.vm.begin_vnf_attestation(&host_id, &format!("vnf-flood-{i}"))
            {
                Ok(challenge) => challenge,
                Err(CoreError::Overloaded { .. }) => {
                    shed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Err(other) => panic!("seed {seed}: flood challenge failed: {other}"),
            };
            let quote = guard
                .quote(&tb.hosts[0].platform, &challenge.nonce, challenge.nonce)
                .unwrap();
            match tb.vm.complete_vnf_enrollment(
                &mut tb.ias,
                challenge.id,
                &quote.encode(),
                &key,
                "controller",
            ) {
                Ok(_) => {}
                Err(CoreError::Overloaded { .. }) => {
                    shed.fetch_add(1, Ordering::Relaxed);
                }
                Err(other) => panic!("seed {seed}: flood enrollment failed: {other}"),
            }
        }
    });

    // Post-conditions: a shed is a clean refusal, never partial state.
    assert_eq!(
        tb.vm.pending_enrollments().count(),
        0,
        "seed {seed}: shed left an orphaned WAL prepare"
    );
    let oracle = VmService::from_shards(tb.oracle_twins().unwrap());
    assert_eq!(
        fleet_view(&oracle),
        fleet_view(&tb.vm),
        "seed {seed}: storm state diverged from the WAL-replayed oracle twins"
    );
    shed.into_inner()
}

/// The divergence-checked view of a fleet (same shape as E15's).
type FleetView = (
    Vec<u8>,
    u64,
    u64,
    u64,
    Vec<(u64, String, String, bool)>,
    Vec<u64>,
);

fn fleet_view(vm: &VmService) -> FleetView {
    (
        vm.ca_certificate().encode(),
        vm.ca_epoch(),
        vm.issued_count(),
        vm.lifecycle_status().crl_number,
        vm.enrollments()
            .map(|e| (e.serial, e.vnf_name.clone(), e.host_id.clone(), e.revoked))
            .collect(),
        vm.pending_enrollments().map(|p| p.serial).collect(),
    )
}

fn main() {
    println!(
        "e16_overload: {STORM_VNFS} credentials, {SHARDS} shards, {WORKERS} workers, \
         {STORM_ARRIVALS} arrivals at {OVERLOAD:.0}x capacity"
    );

    let (tb_on, key_on, serials_on) = storm_world(b"e16 storm admitted", STORM_VNFS, true);
    let (tb_off, key_off, serials_off) = storm_world(b"e16 storm contrast", STORM_VNFS, false);
    let vm_on = tb_on.vm_service();
    let vm_off = tb_off.vm_service();

    let mut pass = false;
    for attempt in 0..ATTEMPTS {
        let (capacity, unloaded_p99) = calibrate(&vm_on, &key_on, &serials_on);
        println!(
            "e16_overload/capacity               {capacity:>10.0} renewals/s (unloaded p99 {unloaded_p99:.0} us)"
        );

        let admitted = storm(&vm_on, &key_on, &serials_on, capacity);
        println!(
            "e16_overload/admitted_p99           {:>10.0} us ({} admitted, {} shed)",
            admitted.admitted_p99_micros, admitted.admitted, admitted.shed
        );
        println!(
            "e16_overload/goodput                {:>10.0} renewals/s (floor {:.0}% of capacity)",
            admitted.goodput_per_sec,
            GOODPUT_FLOOR * 100.0
        );

        let contrast = storm(&vm_off, &key_off, &serials_off, capacity);
        println!(
            "e16_overload/no_control_p99         {:>10.0} us ({} completed, {} shed)",
            contrast.admitted_p99_micros, contrast.admitted, contrast.shed
        );

        let p99_ok = admitted.admitted_p99_micros <= P99_MULT * unloaded_p99;
        let goodput_ok = admitted.goodput_per_sec >= GOODPUT_FLOOR * capacity;
        let shed_ok = admitted.shed > 0;
        let contrast_ok =
            contrast.admitted_p99_micros >= CONTRAST_MULT * admitted.admitted_p99_micros;
        println!(
            "e16_overload/bars                   p99<= {P99_MULT:.0}x: {p99_ok}, goodput: {goodput_ok}, \
             shed>0: {shed_ok}, contrast>= {CONTRAST_MULT:.0}x: {contrast_ok}"
        );
        if p99_ok && goodput_ok && shed_ok && contrast_ok {
            pass = true;
            break;
        }
        println!("e16_overload: attempt {} under a bar, retrying", attempt + 1);
    }
    if !pass {
        eprintln!("e16_overload: FAIL — overload bars not met after {ATTEMPTS} attempts");
        std::process::exit(1);
    }

    let mut shed = 0usize;
    for seed in 0..CHAOS_SEEDS {
        shed += chaos_scenario(seed);
    }
    println!(
        "e16_overload/chaos_matrix           {CHAOS_SEEDS:>10} seeds, {shed} sheds, zero orphaned prepares, zero divergence"
    );
    assert!(shed > 0, "chaos matrix was vacuous: nothing was ever shed");
    println!("e16_overload: PASS");
}
