//! E13 — credential lifecycle: the lightweight renewal path against the
//! full six-step enrollment it replaces, CA rotation and handover
//! verification cost, and the controller's per-handshake CRL lookup as
//! revocations accumulate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vnfguard_core::deployment::TestbedBuilder;
use vnfguard_core::lifecycle::verify_handover;
use vnfguard_crypto::drbg::HmacDrbg;
use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_pki::ca::{CertificateAuthority, IssueProfile};
use vnfguard_pki::cert::{DistinguishedName, KeyUsage, Validity};
use vnfguard_pki::crl::RevocationReason;
use vnfguard_pki::TrustStore;

fn bench_e13(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_lifecycle");

    // The paper's enrollment (steps 3-5: challenge, quote, IAS round,
    // issue, wrap) versus the renewal path (verdict check, issue, wrap).
    // The gap is what makes short-lived credentials affordable.
    group.bench_function("full_enrollment", |b| {
        let mut tb = TestbedBuilder::new(b"e13 enrollment").build();
        tb.attest_host(0).unwrap();
        let guard = tb.deploy_guard(0, "vnf-bench", 1).unwrap();
        b.iter(|| black_box(tb.enroll(0, &guard).unwrap()));
    });

    group.bench_function("renewal", |b| {
        let mut tb = TestbedBuilder::new(b"e13 renewal").build();
        tb.attest_host(0).unwrap();
        let guard = tb.deploy_guard(0, "vnf-bench", 1).unwrap();
        let mut serial = tb.enroll(0, &guard).unwrap().serial();
        b.iter(|| {
            let renewed = tb.renew(&guard, serial).unwrap();
            serial = renewed.serial();
            black_box(renewed)
        });
    });

    // Manager-side only (the provisioning ecall into the enclave is the
    // same in both paths): attestation challenge + quote + IAS round +
    // issuance, versus verdict check + issuance.
    group.bench_function("vm_enrollment_path", |b| {
        let mut tb = TestbedBuilder::new(b"e13 vm enrollment").build();
        tb.attest_host(0).unwrap();
        let guard = tb.deploy_guard(0, "vnf-bench", 1).unwrap();
        let host_id = tb.hosts[0].id.clone();
        let key = guard.provisioning_key().unwrap();
        b.iter(|| {
            let challenge = tb.vm.begin_vnf_attestation(&host_id, &guard.name).unwrap();
            let quote = guard
                .quote(&tb.hosts[0].platform, &challenge.nonce, challenge.nonce)
                .unwrap();
            black_box(
                tb.vm
                    .complete_vnf_enrollment(
                        &mut tb.ias,
                        challenge.id,
                        &quote.encode(),
                        &key,
                        "controller",
                    )
                    .unwrap(),
            )
        });
    });

    group.bench_function("vm_renewal_path", |b| {
        let mut tb = TestbedBuilder::new(b"e13 vm renewal").build();
        tb.attest_host(0).unwrap();
        let guard = tb.deploy_guard(0, "vnf-bench", 1).unwrap();
        let key = guard.provisioning_key().unwrap();
        let mut serial = tb.enroll(0, &guard).unwrap().serial();
        b.iter(|| {
            let (wrapped, renewed) = tb
                .vm
                .renew_vnf_credential(serial, &key, "controller")
                .unwrap();
            serial = renewed.serial();
            black_box((wrapped, renewed))
        });
    });

    // One CA rotation: next-epoch keygen, self-signed root, cross-sign,
    // WAL records.
    group.bench_function("rotate_ca", |b| {
        let mut tb = TestbedBuilder::new(b"e13 rotation").build();
        b.iter(|| black_box(tb.rotate_ca().unwrap()));
    });

    // The relying-party side of a rotation: verifying the cross-signed
    // handover against the existing anchors.
    group.bench_function("verify_handover", |b| {
        let mut rng = HmacDrbg::new(b"e13 handover");
        let mut ca = CertificateAuthority::new(
            DistinguishedName::new("vm-ca"),
            Validity::new(0, u64::MAX / 2),
            &mut rng,
        );
        let mut store = TrustStore::new();
        store.add_anchor(ca.certificate().clone()).unwrap();
        let (root, cross) = ca.rotate_to(
            SigningKey::from_seed(&[7; 32]),
            Validity::new(0, u64::MAX / 2),
        );
        b.iter(|| black_box(verify_handover(&store, &root, &cross).is_ok()));
    });

    // Controller-side cost of enforcing a distributed CRL during client
    // validation, as the revocation list grows.
    for revoked in [10usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::new("controller_crl_lookup", revoked),
            &revoked,
            |b, &revoked| {
                let mut rng = HmacDrbg::new(b"e13 crl");
                let mut ca = CertificateAuthority::new(
                    DistinguishedName::new("vm-ca"),
                    Validity::new(0, u64::MAX / 2),
                    &mut rng,
                );
                let key = SigningKey::from_seed(&[1; 32]);
                for i in 0..revoked {
                    let cert = ca.issue(
                        DistinguishedName::new(&format!("vnf-{i}")),
                        key.public_key(),
                        &IssueProfile::vnf_client([0; 32]),
                        0,
                    );
                    ca.revoke(cert.serial(), RevocationReason::KeyCompromise, 1);
                }
                let good = ca.issue(
                    DistinguishedName::new("vnf-good"),
                    key.public_key(),
                    &IssueProfile::vnf_client([0; 32]),
                    0,
                );
                let mut store = TrustStore::new();
                store.add_anchor(ca.certificate().clone()).unwrap();
                store.install_crl(ca.current_crl(10, 300)).unwrap();
                b.iter(|| black_box(store.validate(&good, 100, KeyUsage::CLIENT_AUTH).is_ok()));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_e13);
criterion_main!(benches);
