//! E18 — attestation backends: SEV-SNP offline appraisal against the
//! SGX/EPID → IAS path, plus the forged-evidence refusal matrix.
//!
//! This is a custom harness, not a criterion bench: it *enforces* the
//! acceptance bars.
//!
//! - **Latency bar.** A single SNP appraisal (decode + ARK→ASK→VCEK→report
//!   chain walk, all local) must be at least as fast as one SGX/EPID
//!   appraisal through the attestation service as deployed — a
//!   [`RemoteIas`] round-trip over the fabric, the way every manager
//!   reaches IAS in production. The in-process IAS time is also reported
//!   (informational) to separate crypto cost from transport cost.
//!   Batches run as adjacent pairs with alternating order and the median
//!   per-pair ratio is compared, so scheduler drift hits both sides
//!   equally; [`SLACK`] absorbs measurement noise on a loaded machine.
//! - **Refusal matrix.** Across [`MATRIX_SEEDS`] independent seeds, every
//!   forged / stale / debug / truncated / cross-backend presentation must
//!   be refused — a single acceptance fails the run.

use std::hint::black_box;
use std::time::{Duration, Instant};
use vnfguard_attest::snp::{
    launch_measurement, AmdRoot, SnpFault, SnpPlatform, SnpVerifier,
};
use vnfguard_attest::{
    AppraisalPolicy, AttestationBackend, SgxEpidBackend,
};
use vnfguard_controller::SimClock;
use vnfguard_core::remote::{serve_ias, RemoteIas};
use vnfguard_ias::AttestationService;
use vnfguard_net::Network;
use vnfguard_sgx::enclave::{Enclave, EnclaveCode, EnclaveContext};
use vnfguard_sgx::platform::{PlatformConfig, SgxPlatform};
use vnfguard_sgx::sigstruct::EnclaveAuthor;
use vnfguard_sgx::transition::TransitionModel;
use vnfguard_sgx::SgxError;

/// Appraisals per timed batch.
const BATCH_SIZE: u32 = 200;
/// Paired batches; the median per-pair ratio is compared.
const BATCHES: usize = 9;
/// SNP may be at most this factor of the SGX/IAS time (1.0 = "at least
/// as fast"; the margin absorbs timer noise, not a real regression).
const SLACK: f64 = 1.05;
/// Noisy-machine retries before the latency bar is declared failed.
const ATTEMPTS: usize = 3;
/// Independent seeds for the forged-evidence refusal matrix.
const MATRIX_SEEDS: u64 = 12;

struct Null(Vec<u8>);
impl EnclaveCode for Null {
    fn image(&self) -> Vec<u8> {
        self.0.clone()
    }
    fn on_call(
        &mut self,
        _ctx: &mut EnclaveContext,
        op: u16,
        _input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        Err(SgxError::BadCall(op))
    }
}

struct SgxWorld {
    backend: SgxEpidBackend<AttestationService>,
    platform: SgxPlatform,
    enclave: Enclave,
}

impl SgxWorld {
    fn new(seed: &[u8]) -> SgxWorld {
        let platform =
            SgxPlatform::with_config(seed, PlatformConfig::default(), TransitionModel::free());
        let author = EnclaveAuthor::from_seed(&[2; 32]);
        let image = b"e18 benched app";
        let mrenclave = SgxPlatform::measure_image(image, 4096);
        let signed = author.sign_enclave(mrenclave, 1, 1, false);
        let enclave = platform
            .load_enclave(&signed, 4096, Box::new(Null(image.to_vec())))
            .unwrap();
        let mut ias = AttestationService::new(&[b"e18 ias ", seed].concat());
        ias.register_member(platform.epid_group_id(), platform.attestation_public_key());
        SgxWorld {
            backend: SgxEpidBackend::new(ias),
            platform,
            enclave,
        }
    }

    fn quote(&self) -> Vec<u8> {
        let qe = self.platform.quoting_enclave();
        let report = self.enclave.create_report(&qe.target_info(), [0u8; 64]);
        qe.quote(&report, [1; 32]).unwrap().encode()
    }
}

fn snp_world(seed: &[u8]) -> (SnpPlatform, SnpVerifier) {
    let root = AmdRoot::new(seed);
    let platform = SnpPlatform::provision(
        &root,
        &[seed, b".chip"].concat(),
        launch_measurement(b"e18 cvm image"),
        7,
    );
    let verifier = SnpVerifier::new(root.ark_public(), SimClock::at(1_700_000_000));
    (platform, verifier)
}

fn timed_batch(backend: &mut dyn AttestationBackend, evidence: &[u8], nonce: &[u8]) -> Duration {
    let start = Instant::now();
    for _ in 0..BATCH_SIZE {
        black_box(backend.appraise(black_box(evidence), nonce).unwrap());
    }
    start.elapsed()
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

/// One full latency measurement. Returns
/// `(snp_us, sgx_remote_us, sgx_local_us, ratio)` per appraisal, ratio =
/// median per-pair snp/sgx-remote.
fn measure(attempt: usize) -> (f64, f64, f64, f64) {
    let seed = format!("e18 latency {attempt}");
    let sgx = SgxWorld::new(seed.as_bytes());
    let quote = sgx.quote();
    // Split the world: the service moves behind the fabric (the deployed
    // shape), while a second in-process handle isolates the crypto cost.
    let mut local = sgx.backend;
    let report_key = local.inner().report_signing_key();
    let network = Network::new();
    let ias_for_serving = {
        let mut ias = AttestationService::new(&[b"e18 ias ", seed.as_bytes()].concat());
        ias.register_member(
            sgx.platform.epid_group_id(),
            sgx.platform.attestation_public_key(),
        );
        ias
    };
    let (_handle, _shared) = serve_ias(&network, "ias:443", ias_for_serving).unwrap();
    let mut remote = SgxEpidBackend::new(RemoteIas::new(&network, "ias:443", report_key));
    let (snp_platform, mut snp_verifier) = snp_world(seed.as_bytes());
    let snp_evidence = snp_platform.attest_self([0u8; 64]);
    // Warm all three paths before timing.
    for _ in 0..2 {
        timed_batch(&mut local, &quote, b"n");
        timed_batch(&mut remote, &quote, b"n");
        timed_batch(&mut snp_verifier, &snp_evidence, b"n");
    }
    let per_iter = |d: Duration| d.as_micros() as f64 / BATCH_SIZE as f64;
    let mut snp_us = Vec::with_capacity(BATCHES);
    let mut sgx_us = Vec::with_capacity(BATCHES);
    let mut sgx_local_us = Vec::with_capacity(BATCHES);
    for pair in 0..BATCHES {
        // Alternate which side goes first so ordering bias cancels too.
        if pair % 2 == 0 {
            snp_us.push(per_iter(timed_batch(&mut snp_verifier, &snp_evidence, b"n")));
            sgx_us.push(per_iter(timed_batch(&mut remote, &quote, b"n")));
        } else {
            sgx_us.push(per_iter(timed_batch(&mut remote, &quote, b"n")));
            snp_us.push(per_iter(timed_batch(&mut snp_verifier, &snp_evidence, b"n")));
        }
        sgx_local_us.push(per_iter(timed_batch(&mut local, &quote, b"n")));
    }
    let ratios: Vec<f64> = snp_us.iter().zip(&sgx_us).map(|(a, b)| a / b).collect();
    (
        median(snp_us),
        median(sgx_us),
        median(sgx_local_us),
        median(ratios),
    )
}

/// Count forged-evidence acceptances across the seed matrix. Anything
/// other than zero is a broken refusal path.
fn refusal_matrix() -> (u64, u64) {
    let mut presented = 0u64;
    let mut accepted = 0u64;
    let strict = AppraisalPolicy::strict();
    for seed in 0..MATRIX_SEEDS {
        let seed_bytes = [b"e18 matrix ".as_slice(), &seed.to_be_bytes()].concat();
        let sgx = SgxWorld::new(&seed_bytes);
        let quote = sgx.quote();
        let mut sgx_backend = sgx.backend;
        let root = AmdRoot::new(&seed_bytes);
        let chip_seed = [&seed_bytes[..], b".chip"].concat();
        let provision = || {
            SnpPlatform::provision(
                &root,
                &chip_seed,
                launch_measurement(b"e18 cvm image"),
                7,
            )
        };
        let mut snp_verifier = SnpVerifier::new(root.ark_public(), SimClock::at(1_700_000_000));
        let good = provision().attest_self([0u8; 64]);

        // Control arms: the genuine article must appraise on its own
        // backend, or the matrix is vacuous.
        assert!(snp_verifier.appraise(&good, b"n").is_ok(), "seed {seed}");
        assert!(sgx_backend.appraise(&quote, b"n").is_ok(), "seed {seed}");

        let mut present_snp = |verifier: &mut SnpVerifier, evidence: &[u8]| {
            presented += 1;
            if let Ok(appraisal) = verifier.appraise(evidence, b"n") {
                if strict.check(&appraisal).is_ok() {
                    accepted += 1;
                }
            }
        };
        // Seeded fault hooks: forged report signature, stale VCEK, debug
        // guest policy.
        for fault in [
            SnpFault::ForgedSignature,
            SnpFault::StaleVcek,
            SnpFault::DebugPolicy,
        ] {
            let forged = provision().with_fault(fault).attest_self([0u8; 64]);
            present_snp(&mut snp_verifier, &forged);
        }
        // Truncations sever the VCEK chain / report / signatures.
        for cut in [1usize, good.len() / 4, good.len() / 2, good.len() - 1] {
            present_snp(&mut snp_verifier, &good[..cut]);
        }
        // Cross-backend presentations, both directions.
        present_snp(&mut snp_verifier, &quote);
        presented += 1;
        if let Ok(appraisal) = sgx_backend.appraise(&good, b"n") {
            if strict.check(&appraisal).is_ok() {
                accepted += 1;
            }
        }
    }
    (presented, accepted)
}

fn main() {
    println!("e18_backends: SNP offline appraisal vs SGX/EPID+IAS, plus refusal matrix");

    let (presented, accepted) = refusal_matrix();
    println!(
        "e18_backends/refusal_matrix        {presented:>10} forged/cross presentations over {MATRIX_SEEDS} seeds, {accepted} accepted (bar: 0)"
    );
    if accepted != 0 {
        eprintln!("e18_backends: FAIL — {accepted} forged or cross-backend presentations accepted");
        std::process::exit(1);
    }

    let mut last = (0.0, 0.0, 0.0);
    for attempt in 0..ATTEMPTS {
        let (snp, sgx, sgx_local, ratio) = measure(attempt);
        println!(
            "e18_backends/snp_offline_appraisal {snp:>10.1} µs/iter (median of {BATCHES} batches)"
        );
        println!(
            "e18_backends/sgx_ias_appraisal     {sgx:>10.1} µs/iter (remote IAS, median of {BATCHES} batches)"
        );
        println!(
            "e18_backends/sgx_ias_inprocess     {sgx_local:>10.1} µs/iter (crypto only, informational)"
        );
        println!(
            "e18_backends/ratio                 {ratio:>10.2} x (median pair ratio, bar {SLACK:.2} x)"
        );
        if ratio <= SLACK {
            println!("e18_backends: PASS");
            return;
        }
        last = (snp, sgx, ratio);
        println!("e18_backends: attempt {} over the bar, retrying", attempt + 1);
    }
    eprintln!(
        "e18_backends: FAIL — SNP {:.1} µs vs SGX/IAS {:.1} µs ({:.2} x > {:.2} x)",
        last.0, last.1, last.2, SLACK
    );
    std::process::exit(1);
}
