//! E5 — client validation models: per-client keystore membership vs CA
//! signature validation, as the number of enrolled clients grows.
//!
//! Expected shape: CA validation is flat (one signature verification plus
//! a CRL lookup); the keystore scan grows linearly with enrolled clients,
//! and every enrollment additionally costs a keystore update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vnfguard_crypto::drbg::HmacDrbg;
use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_pki::ca::{CertificateAuthority, IssueProfile};
use vnfguard_pki::cert::{Certificate, DistinguishedName, KeyUsage, Validity};
use vnfguard_pki::{KeyStore, TrustStore};

fn ca_and_certs(count: usize) -> (CertificateAuthority, Vec<Certificate>) {
    let mut rng = HmacDrbg::new(b"e5");
    let mut ca = CertificateAuthority::new(
        DistinguishedName::new("vm-ca"),
        Validity::new(0, u64::MAX / 2),
        &mut rng,
    );
    let key = SigningKey::from_seed(&[1; 32]);
    let certs = (0..count)
        .map(|i| {
            ca.issue(
                DistinguishedName::new(&format!("vnf-{i}")),
                key.public_key(),
                &IssueProfile::vnf_client([i as u8; 32]),
                0,
            )
        })
        .collect();
    (ca, certs)
}

fn bench_e5(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_validation");

    for clients in [10usize, 100, 1000, 5000] {
        let (ca, certs) = ca_and_certs(clients);

        // Keystore model: exact-membership scan over `clients` entries.
        // Validate the *last* enrolled client (worst case for the scan).
        group.bench_with_input(
            BenchmarkId::new("keystore_lookup", clients),
            &clients,
            |b, _| {
                let mut keystore = KeyStore::new();
                for (i, cert) in certs.iter().enumerate() {
                    keystore.set(&format!("vnf-{i}"), cert.clone());
                }
                let target = certs.last().unwrap();
                b.iter(|| black_box(keystore.contains_certificate(target)));
            },
        );

        // CA model: signature + validity + CRL, independent of `clients`.
        group.bench_with_input(
            BenchmarkId::new("ca_validation", clients),
            &clients,
            |b, _| {
                let mut store = TrustStore::new();
                store.add_anchor(ca.certificate().clone()).unwrap();
                store.install_crl(ca.current_crl(0, 1000)).unwrap();
                let target = certs.last().unwrap();
                b.iter(|| {
                    black_box(
                        store
                            .validate(target, 100, KeyUsage::CLIENT_AUTH)
                            .is_ok(),
                    )
                });
            },
        );
    }

    // The maintenance cost the paper highlights: keystore update per
    // enrollment vs nothing at all in the CA model.
    group.bench_function("keystore_update_on_enroll", |b| {
        let (_ca, certs) = ca_and_certs(1000);
        let mut keystore = KeyStore::new();
        for (i, cert) in certs.iter().enumerate() {
            keystore.set(&format!("vnf-{i}"), cert.clone());
        }
        let mut counter = 0usize;
        b.iter(|| {
            counter += 1;
            keystore.set(&format!("new-{counter}"), certs[0].clone());
            keystore.remove(&format!("new-{counter}"));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
