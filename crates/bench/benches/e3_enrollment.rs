//! E3 — enrollment throughput scaling: per-VNF enrollment cost as the
//! deployment grows, and the component costs (key generation, certificate
//! issuance, wrapping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vnfguard_bench::attested_testbed;
use vnfguard_crypto::drbg::{HmacDrbg, SecureRandom};
use vnfguard_crypto::ed25519::SigningKey;
use vnfguard_pki::ca::{CertificateAuthority, IssueProfile};
use vnfguard_pki::cert::{DistinguishedName, Validity};

fn bench_e3(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_enrollment");
    group.sample_size(20);

    // Per-enrollment latency with 0 / 100 / 500 prior enrollments: the
    // paper's CA design keeps this flat (no keystore to grow).
    for pre_enrolled in [0usize, 100, 500] {
        group.bench_with_input(
            BenchmarkId::new("enroll_with_prior", pre_enrolled),
            &pre_enrolled,
            |b, &pre| {
                let mut testbed = attested_testbed(b"e3 scale");
                for i in 0..pre {
                    let guard = testbed.deploy_guard(0, &format!("pre-{i}"), 1).unwrap();
                    testbed.enroll(0, &guard).unwrap();
                }
                let mut counter = 0u32;
                b.iter(|| {
                    counter += 1;
                    let guard = testbed
                        .deploy_guard(0, &format!("vnf-{counter}"), 1)
                        .unwrap();
                    black_box(testbed.enroll(0, &guard).unwrap());
                });
            },
        );
    }

    // Component: VM-side key generation + certificate issuance.
    group.bench_function("keygen_and_issue", |b| {
        let mut rng = HmacDrbg::new(b"e3 ca");
        let mut ca = CertificateAuthority::new(
            DistinguishedName::new("vm"),
            Validity::new(0, u64::MAX / 2),
            &mut rng,
        );
        b.iter(|| {
            let seed = rng.gen_array::<32>();
            let key = SigningKey::from_seed(&seed);
            black_box(ca.issue(
                DistinguishedName::new("vnf"),
                key.public_key(),
                &IssueProfile::vnf_client([0; 32]),
                0,
            ));
        });
    });

    // Component: wrapping the bundle to the enclave provisioning key.
    group.bench_function("wrap_bundle", |b| {
        let mut rng = HmacDrbg::new(b"e3 wrap");
        let mut ca = CertificateAuthority::new(
            DistinguishedName::new("vm"),
            Validity::new(0, u64::MAX / 2),
            &mut rng,
        );
        let key = SigningKey::from_seed(&[1; 32]);
        let cert = ca.issue(
            DistinguishedName::new("vnf"),
            key.public_key(),
            &IssueProfile::vnf_client([0; 32]),
            0,
        );
        let bundle = vnfguard_vnf::credential_enclave::ProvisionBundle {
            key_seed: [1; 32],
            certificate: cert,
            ca_certificate: ca.certificate().clone(),
            server_cn: "controller".into(),
            ca_previous: Vec::new(),
        };
        let enclave_key = vnfguard_crypto::x25519::EphemeralKeyPair::from_seed([9; 32]);
        b.iter(|| {
            black_box(vnfguard_vnf::wrap_credentials(
                &mut rng,
                &enclave_key.public,
                &bundle,
            ));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
