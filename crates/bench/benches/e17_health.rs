//! E17 — health plane: SLO accounting overhead, the burn-rate alert
//! drill, and fleet staleness under partition.
//!
//! Three enforced bars, all gating CI:
//!
//! - **overhead** — chained in-process renewals with the health monitor
//!   attached must stay within [`MAX_OVERHEAD`] of the identical world
//!   without it. Measured with e12's drift-cancelling harness: adjacent
//!   enabled/disabled batch pairs with alternating order, median per-pair
//!   ratio.
//! - **burn drill** — isolating the remote IAS turns every enrollment
//!   bad. The `enrollment-availability` alert must walk
//!   pending→firing within the fast window, the firing snapshot must
//!   carry a bad-event trace exemplar that resolves to a real span tree
//!   via `GET /vm/traces/{id}`, and after the fault heals the alert must
//!   resolve (with `resolved_at` journaled) once the windows age clear.
//! - **fleet partition** — `GET /fleet/status` must mark an unreachable
//!   standby stale without wedging the scrape, keep the primary's data
//!   flowing, and clear the staleness after heal.
//!
//! The drill runs on the simulated clock, so the alert timeline is
//! deterministic: only the overhead bar gets noisy-machine retries.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vnfguard_core::deployment::{Testbed, TestbedBuilder};
use vnfguard_core::fleet::serve_fleet_api;
use vnfguard_core::remote::{
    remote_attest_host, remote_enroll_vnf_traced, serve_ias, serve_vm_api, HostAgent,
    HostAgentState, RemoteIas,
};
use vnfguard_core::resilience::{CircuitBreaker, RetryPolicy};
use vnfguard_core::CoreError;
use vnfguard_encoding::Json;
use vnfguard_ias::{AttestationService, QuoteVerifier};
use vnfguard_net::server::HttpClient;
use vnfguard_net::{FaultPlan, Request, ServerHandle};
use vnfguard_telemetry::{AlertState, Telemetry};
use vnfguard_vnf::VnfGuard;

/// Health-enabled renewal must finish within 5% of health-disabled.
const MAX_OVERHEAD: f64 = 0.05;
/// Enabled/disabled batch pairs; the median per-pair ratio is compared.
const BATCHES: usize = 9;
/// Chained renewals per batch.
const BATCH_SIZE: usize = 200;
/// Noisy-machine retries before the overhead bar is declared failed.
const ATTEMPTS: usize = 3;
/// Good traced enrollments before the fault is injected.
const WARMUP_ENROLLMENTS: usize = 10;
/// The enrollment-availability fast window (must match
/// `SloSpec::availability`): the alert has to fire within one of these.
const FAST_WINDOW_SECS: u64 = 300;

// ---------------------------------------------------------------------------
// Part 1 — overhead: renewals with and without the health monitor
// ---------------------------------------------------------------------------

struct RenewWorld {
    tb: Testbed,
    key: [u8; 32],
    serial: u64,
}

/// Identical single-shard worlds; the only difference is whether the
/// builder attaches the SLO monitor to the service.
fn renew_world(seed: &[u8], health: bool) -> RenewWorld {
    let mut builder = TestbedBuilder::new(seed).telemetry(Telemetry::new());
    if health {
        builder = builder.health();
    }
    let mut tb = builder.build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-e17", 1).unwrap();
    let cert = tb.enroll(0, &guard).unwrap();
    let key = guard.provisioning_key().unwrap();
    RenewWorld {
        serial: cert.serial(),
        tb,
        key,
    }
}

/// Time one batch of chained renewals (each renewal's certificate seeds
/// the next request, like a long-lived VNF refreshing its credential).
fn renew_batch(world: &mut RenewWorld) -> Duration {
    let start = Instant::now();
    for _ in 0..BATCH_SIZE {
        let (_, certificate) = world
            .tb
            .vm
            .renew_vnf_credential(world.serial, &world.key, "controller")
            .unwrap();
        world.serial = black_box(certificate).serial();
    }
    start.elapsed()
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

/// One full overhead measurement: fresh worlds, paired batches, median
/// per-pair ratio. Returns `(enabled_us, disabled_us, overhead)` per
/// renewal.
fn measure_overhead(attempt: usize) -> (f64, f64, f64) {
    let seed_on = format!("e17 health on {attempt}");
    let seed_off = format!("e17 health off {attempt}");
    let mut on = renew_world(seed_on.as_bytes(), true);
    let mut off = renew_world(seed_off.as_bytes(), false);
    // Warm both paths before timing.
    for _ in 0..2 {
        renew_batch(&mut on);
        renew_batch(&mut off);
    }
    let mut on_us = Vec::with_capacity(BATCHES);
    let mut off_us = Vec::with_capacity(BATCHES);
    for pair in 0..BATCHES {
        // Alternate which side goes first so ordering bias cancels too.
        if pair % 2 == 0 {
            on_us.push(renew_batch(&mut on).as_micros() as f64 / BATCH_SIZE as f64);
            off_us.push(renew_batch(&mut off).as_micros() as f64 / BATCH_SIZE as f64);
        } else {
            off_us.push(renew_batch(&mut off).as_micros() as f64 / BATCH_SIZE as f64);
            on_us.push(renew_batch(&mut on).as_micros() as f64 / BATCH_SIZE as f64);
        }
    }
    let ratios: Vec<f64> = on_us.iter().zip(&off_us).map(|(a, b)| a / b).collect();
    (median(on_us), median(off_us), median(ratios) - 1.0)
}

fn overhead_bar() -> bool {
    for attempt in 0..ATTEMPTS {
        let (enabled, disabled, overhead) = measure_overhead(attempt);
        println!(
            "e17_health/renewal_health_on       {enabled:>10.1} µs/iter (median of {BATCHES} batches)"
        );
        println!(
            "e17_health/renewal_health_off      {disabled:>10.1} µs/iter (median of {BATCHES} batches)"
        );
        println!(
            "e17_health/overhead                {:>10.2} % (median pair ratio, bar {:.0} %)",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
        if overhead <= MAX_OVERHEAD {
            return true;
        }
        println!("e17_health: attempt {} over the bar, retrying", attempt + 1);
    }
    false
}

// ---------------------------------------------------------------------------
// Part 2 — burn drill: IAS outage → firing alert → exemplar → resolution
// ---------------------------------------------------------------------------

/// The replicated remote world the drill runs against: IAS served over
/// the fault-injectable fabric, one host agent, the VM REST surface for
/// trace/health reads, and a durable primary with one streaming standby
/// (the fleet part needs the standby).
struct DrillWorld {
    tb: Testbed,
    agent: HostAgent,
    remote_ias: RemoteIas,
    telemetry: Telemetry,
    plan: FaultPlan,
    next_vnf: u64,
    _ias_handle: ServerHandle,
    _api_handle: ServerHandle,
}

fn drill_world() -> DrillWorld {
    let telemetry = Telemetry::new();
    let plan = FaultPlan::seeded(0xe17);
    let mut tb = TestbedBuilder::new(b"e17 burn drill")
        .telemetry(telemetry.clone())
        .tracing(1.0)
        .health()
        .durable()
        .replicas(1)
        .faults(plan.clone())
        .build();
    let ias = std::mem::replace(&mut tb.ias, AttestationService::new(b"placeholder"));
    let report_key = ias.report_signing_key();
    let (_ias_handle, _shared) = serve_ias(&tb.network, "ias:443", ias).unwrap();
    // Resilience rides the deployment clock so the breaker's cooldown
    // participates in the simulated outage-and-recovery timeline.
    let mut remote_ias = RemoteIas::new(&tb.network, "ias:443", report_key)
        .with_telemetry(&telemetry)
        .with_resilience(
            tb.clock.clone(),
            RetryPolicy::new(2, 1, 4),
            CircuitBreaker::new(3, 60),
        );
    let host = tb.hosts.remove(0);
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(HashMap::new()),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(tb.vm.share_hmac_key()),
    });
    let agent = HostAgent::serve(&tb.network, state).unwrap();
    remote_attest_host(&tb.vm, &mut remote_ias, &tb.network, "host-0").unwrap();
    let api_ias: Arc<Mutex<dyn QuoteVerifier + Send>> =
        Arc::new(Mutex::new(AttestationService::new(b"placeholder")));
    let _api_handle =
        serve_vm_api(&tb.network, "vm:8443", tb.vm_service(), api_ias, "controller").unwrap();
    DrillWorld {
        tb,
        agent,
        remote_ias,
        telemetry,
        plan,
        next_vnf: 0,
        _ias_handle,
        _api_handle,
    }
}

/// Whitelist a fresh VNF on the agent (the drill enrolls a new name per
/// attempt, like a rolling deployment).
fn deploy(world: &mut DrillWorld) -> String {
    world.next_vnf += 1;
    let name = format!("vnf-drill-{}", world.next_vnf);
    let guard = VnfGuard::load(
        &world.agent.state.platform,
        &world.tb.network,
        &world.tb.enclave_author,
        &name,
        1,
    )
    .unwrap();
    world.tb.vm.trust_enclave(guard.mrenclave(), &name);
    world
        .agent
        .state
        .guards
        .write()
        .insert(name.clone(), Arc::new(guard));
    name
}

/// One operator-rooted traced enrollment, exactly like the REST path.
fn enroll(world: &mut DrillWorld) -> Result<(), CoreError> {
    let name = deploy(world);
    let host_id = world.agent.state.host_id.clone();
    let now = world.tb.clock.now();
    let (ctx, _span) = world.telemetry.trace_root("operator", "enrollment", now);
    remote_enroll_vnf_traced(
        &world.tb.vm,
        &mut world.remote_ias,
        &world.tb.network,
        &host_id,
        &name,
        "controller",
        Some(&ctx),
    )
    .map(|_| ())
}

/// Drive the outage timeline and return
/// `(time_to_fire, exemplar_span_count, time_to_resolve)`.
fn burn_drill(world: &mut DrillWorld) -> (u64, i64, u64) {
    let health = world.tb.vm.health().expect("health monitor attached").clone();
    let clock = world.tb.clock.clone();

    // Healthy baseline: good traced enrollments, a couple of simulated
    // seconds apart.
    for _ in 0..WARMUP_ENROLLMENTS {
        clock.advance(2);
        enroll(world).expect("warmup enrollment succeeds");
    }
    let baseline = health
        .alert("enrollment-availability", clock.now())
        .expect("enrollment availability SLO configured");
    assert_eq!(
        baseline.state,
        AlertState::Ok,
        "alert must be quiet before the fault: {baseline:?}"
    );

    // Outage: sever the IAS link. Every enrollment attempt now fails at
    // the attestation step and is charged as a bad availability event
    // carrying its trace id.
    let stall_start = clock.now();
    world.plan.isolate("ias:443");
    let mut firing = None;
    for _ in 0..60 {
        clock.advance(5);
        assert!(
            enroll(world).is_err(),
            "enrollment must fail while IAS is unreachable"
        );
        let alert = health
            .alert("enrollment-availability", clock.now())
            .expect("SLO still configured");
        if alert.state == AlertState::Firing {
            firing = Some((alert, clock.now()));
            break;
        }
    }
    let (firing, fired_at) = firing.expect("fast-burn alert never fired during the outage");
    let time_to_fire = fired_at - stall_start;
    assert!(
        time_to_fire <= FAST_WINDOW_SECS,
        "alert took {time_to_fire}s to fire, over the {FAST_WINDOW_SECS}s fast window"
    );
    assert!(
        !firing.exemplar_trace_ids.is_empty(),
        "firing alert carries no trace exemplars: {firing:?}"
    );

    // The exemplar must resolve to a real span tree in the collector.
    let trace_id = firing.exemplar_trace_ids[0];
    let mut client = HttpClient::new(world.tb.network.connect("vm:8443").unwrap());
    let response = client
        .request(&Request::get(&format!("/vm/traces/{trace_id:032x}")))
        .unwrap();
    assert_eq!(
        response.status.code(),
        200,
        "exemplar trace {trace_id:032x} not resolvable"
    );
    let tree = response.parse_json().unwrap();
    let span_count = tree.get("span_count").and_then(Json::as_i64).unwrap_or(0);
    assert!(
        span_count >= 1,
        "exemplar trace resolved to an empty tree: {tree:?}"
    );

    // Recovery: heal the link and keep serving good traffic. The breaker
    // half-opens after its cooldown, the bad buckets age out of the fast
    // window, and the clear hold-down finally resolves the alert.
    world.plan.heal("ias:443");
    let mut resolved = None;
    for _ in 0..80 {
        clock.advance(10);
        let _ = enroll(world);
        let alert = health
            .alert("enrollment-availability", clock.now())
            .expect("SLO still configured");
        if alert.state == AlertState::Ok {
            resolved = Some((alert, clock.now()));
            break;
        }
    }
    let (resolved, resolved_tick) = resolved.expect("alert never resolved after the heal");
    assert!(
        resolved.resolved_at.is_some(),
        "resolution must be journaled with its instant: {resolved:?}"
    );
    (time_to_fire, span_count, resolved_tick - fired_at)
}

// ---------------------------------------------------------------------------
// Part 3 — fleet partition: staleness without wedging
// ---------------------------------------------------------------------------

fn fleet_status<S: std::io::Read + std::io::Write>(client: &mut HttpClient<S>) -> Json {
    let response = client.request(&Request::get("/fleet/status")).unwrap();
    assert_eq!(response.status.code(), 200, "/fleet/status must answer");
    response.parse_json().unwrap()
}

fn node_reachable(status: &Json, name: &str) -> bool {
    status
        .get("nodes")
        .and_then(Json::as_array)
        .and_then(|nodes| {
            nodes
                .iter()
                .find(|n| n.get("name").and_then(Json::as_str) == Some(name))
        })
        .and_then(|n| n.get("reachable").and_then(Json::as_bool))
        .unwrap_or(false)
}

/// Partition the standby's health endpoint and check the cockpit stays
/// live: the stale node is marked, the rest of the fleet keeps
/// reporting, and healing clears the mark. Returns the stale count
/// observed mid-partition.
fn fleet_partition_drill(world: &mut DrillWorld) -> i64 {
    let (monitor, _standby_handles) = world.tb.fleet_monitor("operator", "vm:8443").unwrap();
    let monitor = Arc::new(Mutex::new(monitor));
    let _fleet = serve_fleet_api(&world.tb.network, "fleet:9443", monitor).unwrap();
    let mut client = HttpClient::new(world.tb.network.connect("fleet:9443").unwrap());

    let healthy = fleet_status(&mut client);
    assert_eq!(
        healthy.get("stale_nodes").and_then(Json::as_i64),
        Some(0),
        "fleet must start fully reachable: {healthy:?}"
    );
    assert!(node_reachable(&healthy, "vm-primary"));
    assert!(node_reachable(&healthy, "vm-standby-0"));

    // Partition the standby's health endpoint. The scrape must complete
    // anyway: one failed connect, staleness marked, primary data intact.
    world.plan.isolate("health-vm-standby-0:7600");
    world.tb.clock.advance(5);
    let partitioned = fleet_status(&mut client);
    let stale = partitioned
        .get("stale_nodes")
        .and_then(Json::as_i64)
        .unwrap_or(-1);
    assert_eq!(stale, 1, "partitioned standby must be stale: {partitioned:?}");
    assert!(
        node_reachable(&partitioned, "vm-primary"),
        "primary must stay reachable through the partition"
    );
    assert!(
        !node_reachable(&partitioned, "vm-standby-0"),
        "standby must be marked unreachable"
    );

    // The operator rendering serves from the same route, mid-partition.
    let ascii = client
        .request(&Request::get("/fleet/status?format=ascii"))
        .unwrap();
    assert_eq!(ascii.status.code(), 200);
    let cockpit = String::from_utf8(ascii.body).unwrap();
    assert!(
        cockpit.contains("fleet cockpit"),
        "cockpit header missing:\n{cockpit}"
    );

    world.plan.heal("health-vm-standby-0:7600");
    world.tb.clock.advance(5);
    let healed = fleet_status(&mut client);
    assert_eq!(
        healed.get("stale_nodes").and_then(Json::as_i64),
        Some(0),
        "staleness must clear after heal: {healed:?}"
    );
    assert!(node_reachable(&healed, "vm-standby-0"));
    stale
}

fn main() {
    println!("e17_health: SLO accounting overhead, burn-rate drill, fleet partition");

    if !overhead_bar() {
        eprintln!("e17_health: FAIL — health monitor overhead over {MAX_OVERHEAD:.0?}");
        std::process::exit(1);
    }

    let mut world = drill_world();
    let (time_to_fire, span_count, time_to_resolve) = burn_drill(&mut world);
    println!(
        "e17_health/time_to_fire            {time_to_fire:>10} s (IAS outage → firing, bar {FAST_WINDOW_SECS} s)"
    );
    println!(
        "e17_health/exemplar_spans          {span_count:>10} spans (firing exemplar via /vm/traces/{{id}})"
    );
    println!(
        "e17_health/time_to_resolve         {time_to_resolve:>10} s (heal → resolved, windows aged clear)"
    );

    let stale = fleet_partition_drill(&mut world);
    println!(
        "e17_health/partition_stale_nodes   {stale:>10} node (standby partitioned, scrape never wedged)"
    );

    println!("e17_health: PASS");
}
