//! E10 — observability overhead: what the telemetry bundle (counters,
//! span timings, the ring-buffered journal) costs on the hot enrollment
//! path, plus microbenchmarks of the primitives themselves and of the
//! Prometheus render an operator scrape pays for.
//!
//! The acceptance bar is that `enrollment_telemetry_enabled` stays within
//! a few percent of `enrollment_telemetry_disabled` — the bundle is
//! always-on in the testbed, so its cost must be negligible next to the
//! crypto and fabric round-trips it annotates.

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use vnfguard_core::deployment::{Testbed, TestbedBuilder};
use vnfguard_core::remote::{
    remote_attest_host, remote_enroll_vnf, serve_ias, HostAgent, HostAgentState, RemoteIas,
};
use vnfguard_telemetry::Telemetry;

struct RemoteWorld {
    testbed: Testbed,
    agent: HostAgent,
    remote_ias: RemoteIas,
    _ias_handle: vnfguard_net::ServerHandle,
}

/// The distributed deployment of e9, but with an explicit telemetry
/// bundle threaded through fabric, IAS, manager and IAS client.
fn remote_world(seed: &[u8], telemetry: Telemetry) -> RemoteWorld {
    let mut testbed = TestbedBuilder::new(seed)
        .telemetry(telemetry.clone())
        .build();
    let ias = std::mem::replace(
        &mut testbed.ias,
        vnfguard_ias::AttestationService::new(b"placeholder"),
    );
    let report_key = ias.report_signing_key();
    let (_ias_handle, _shared) = serve_ias(&testbed.network, "ias:443", ias).unwrap();
    let remote_ias =
        RemoteIas::new(&testbed.network, "ias:443", report_key).with_telemetry(&telemetry);
    let host = testbed.hosts.remove(0);
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(HashMap::new()),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(testbed.vm.share_hmac_key()),
    });
    let agent = HostAgent::serve(&testbed.network, state).unwrap();
    RemoteWorld {
        testbed,
        agent,
        remote_ias,
        _ias_handle,
    }
}

/// Deploy and register a fresh guard behind the agent; returns its name.
fn deploy_guard(world: &mut RemoteWorld, n: u64) -> String {
    let name = format!("vnf-{n}");
    let guard = vnfguard_vnf::VnfGuard::load(
        &world.agent.state.platform,
        &world.testbed.network,
        &world.testbed.enclave_author,
        &name,
        1,
    )
    .unwrap();
    world.testbed.vm.trust_enclave(guard.mrenclave(), &name);
    world
        .agent
        .state
        .guards
        .write()
        .insert(name.clone(), Arc::new(guard));
    name
}

/// One full remote enrollment per iteration against the given world.
fn bench_enrollment(b: &mut criterion::Bencher, world: &mut RemoteWorld) {
    remote_attest_host(
        &world.testbed.vm,
        &mut world.remote_ias,
        &world.testbed.network,
        "host-0",
    )
    .unwrap();
    let mut n = 0;
    b.iter(|| {
        n += 1;
        let name = deploy_guard(world, n);
        remote_enroll_vnf(
            &world.testbed.vm,
            &mut world.remote_ias,
            &world.testbed.network,
            "host-0",
            &name,
            "controller",
        )
        .unwrap();
    });
}

fn bench_e10(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_observability");

    // Primitive costs: what one instrumentation touch adds to a hot path.
    group.bench_function("counter_inc", |b| {
        let telemetry = Telemetry::new();
        let counter = telemetry.counter("vnfguard_bench_ticks_total");
        b.iter(|| counter.inc());
    });
    group.bench_function("counter_inc_detached", |b| {
        let telemetry = Telemetry::disabled();
        let counter = telemetry.counter("vnfguard_bench_ticks_total");
        b.iter(|| counter.inc());
    });
    group.bench_function("histogram_record", |b| {
        let telemetry = Telemetry::new();
        let histogram = telemetry.histogram("vnfguard_bench_lat_micros");
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 17) % 10_000;
            histogram.record(black_box(v));
        });
    });
    group.bench_function("span_open_close", |b| {
        let telemetry = Telemetry::new();
        let histogram = telemetry.histogram("vnfguard_bench_span_micros");
        b.iter(|| {
            let _span = telemetry
                .span("bench_span", 0)
                .with_histogram(histogram.clone());
        });
    });
    group.bench_function("journal_record", |b| {
        let telemetry = Telemetry::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(telemetry.event(t, "bench_event", "detail"));
        });
    });

    // What an operator scrape costs once the registry is populated.
    group.bench_function("render_prometheus_populated", |b| {
        let telemetry = Telemetry::new();
        for i in 0..16 {
            telemetry.counter(&format!("vnfguard_bench_c{i}_total")).add(i);
            let h = telemetry.histogram(&format!("vnfguard_bench_h{i}_micros"));
            for v in [3, 40, 500, 6_000] {
                h.record(v * (i + 1));
            }
        }
        b.iter(|| black_box(telemetry.render_prometheus().len()));
    });

    // The headline comparison: the full remote enrollment path with the
    // bundle recording everything vs. fully disabled. These two must stay
    // within a few percent of each other.
    group.sample_size(10);
    group.bench_function("enrollment_telemetry_enabled", |b| {
        let mut world = remote_world(b"e10 enabled", Telemetry::new());
        bench_enrollment(b, &mut world);
    });
    group.bench_function("enrollment_telemetry_disabled", |b| {
        let mut world = remote_world(b"e10 disabled", Telemetry::disabled());
        bench_enrollment(b, &mut world);
    });

    group.finish();
}

criterion_group!(benches, bench_e10);
criterion_main!(benches);
