//! E9 — resilience overhead: what the retry/breaker machinery and the
//! fault-injecting fabric cost on the happy path, and what enrollment
//! latency looks like when the path to IAS is flaky.

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use vnfguard_controller::SimClock;
use vnfguard_core::deployment::{Testbed, TestbedBuilder};
use vnfguard_core::remote::{
    remote_attest_host, remote_enroll_vnf, serve_ias, HostAgent, HostAgentState, RemoteIas,
};
use vnfguard_core::resilience::{CircuitBreaker, RetryPolicy};
use vnfguard_net::{FaultPlan, Network};

struct RemoteWorld {
    testbed: Testbed,
    agent: HostAgent,
    remote_ias: RemoteIas,
    plan: FaultPlan,
    _ias_handle: vnfguard_net::ServerHandle,
}

fn remote_world(seed: &[u8]) -> RemoteWorld {
    let mut testbed = TestbedBuilder::new(seed).build();
    let plan = FaultPlan::seeded(9);
    testbed.network.install_faults(&plan);
    let ias = std::mem::replace(
        &mut testbed.ias,
        vnfguard_ias::AttestationService::new(b"placeholder"),
    );
    let report_key = ias.report_signing_key();
    let (_ias_handle, _shared) = serve_ias(&testbed.network, "ias:443", ias).unwrap();
    let remote_ias = RemoteIas::new(&testbed.network, "ias:443", report_key).with_resilience(
        testbed.clock.clone(),
        RetryPolicy::new(8, 1, 16),
        CircuitBreaker::new(64, 600),
    );
    let host = testbed.hosts.remove(0);
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(HashMap::new()),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(testbed.vm.share_hmac_key()),
    });
    let agent = HostAgent::serve(&testbed.network, state).unwrap();
    RemoteWorld {
        testbed,
        agent,
        remote_ias,
        plan,
        _ias_handle,
    }
}

/// Deploy and register a fresh guard behind the agent; returns its name.
fn deploy_guard(world: &mut RemoteWorld, n: u64) -> String {
    let name = format!("vnf-{n}");
    let guard = vnfguard_vnf::VnfGuard::load(
        &world.agent.state.platform,
        &world.testbed.network,
        &world.testbed.enclave_author,
        &name,
        1,
    )
    .unwrap();
    world.testbed.vm.trust_enclave(guard.mrenclave(), &name);
    world
        .agent
        .state
        .guards
        .write()
        .insert(name.clone(), Arc::new(guard));
    name
}

fn bench_e9(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_resilience");

    // The pure machinery: a retried operation that succeeds immediately.
    group.bench_function("retry_run_success_path", |b| {
        let policy = RetryPolicy::default();
        let clock = SimClock::at(0);
        b.iter(|| black_box(policy.run(&clock, |_| Ok::<_, String>(1)).result.unwrap()));
    });

    // A breaker sample (allow check + success record).
    group.bench_function("breaker_sample", |b| {
        let mut breaker = CircuitBreaker::new(5, 60);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            assert!(breaker.allows(now));
            breaker.record_success(now);
        });
    });

    // Connection admission with no fault plan vs. an installed (but
    // permissive) plan: the per-connect cost of the fault fabric.
    group.bench_function("connect_no_fault_plan", |b| {
        let network = Network::new();
        let listener = network.listen("svc:1").unwrap();
        b.iter(|| {
            black_box(network.connect("svc:1").unwrap());
            listener.try_accept();
        });
    });
    group.bench_function("connect_with_fault_plan", |b| {
        let network = Network::new();
        let plan = FaultPlan::seeded(1);
        plan.add_latency("svc:1", std::time::Duration::ZERO, std::time::Duration::ZERO);
        network.install_faults(&plan);
        let listener = network.listen("svc:1").unwrap();
        b.iter(|| {
            black_box(network.connect("svc:1").unwrap());
            listener.try_accept();
        });
    });

    // Full remote enrollment over a clean fabric vs. one refusing 30% of
    // IAS connections (retries absorb the refusals).
    group.sample_size(10);
    group.bench_function("remote_enrollment_clean", |b| {
        let mut world = remote_world(b"e9 clean");
        remote_attest_host(
            &world.testbed.vm,
            &mut world.remote_ias,
            &world.testbed.network,
            "host-0",
        )
        .unwrap();
        let mut n = 0;
        b.iter(|| {
            n += 1;
            let name = deploy_guard(&mut world, n);
            remote_enroll_vnf(
                &world.testbed.vm,
                &mut world.remote_ias,
                &world.testbed.network,
                "host-0",
                &name,
                "controller",
            )
            .unwrap();
        });
    });
    group.bench_function("remote_enrollment_30pct_ias_refusal", |b| {
        let mut world = remote_world(b"e9 flaky");
        remote_attest_host(
            &world.testbed.vm,
            &mut world.remote_ias,
            &world.testbed.network,
            "host-0",
        )
        .unwrap();
        world.plan.refuse_connections("ias:443", 0.30);
        let mut n = 0;
        b.iter(|| {
            n += 1;
            let name = deploy_guard(&mut world, n);
            remote_enroll_vnf(
                &world.testbed.vm,
                &mut world.remote_ias,
                &world.testbed.network,
                "host-0",
                &name,
                "controller",
            )
            .unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);
