//! E2 — VNF integrity attestation cost: quote generation (enclave + QE
//! side) vs quote verification (IAS side) vs the VM's full check.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vnfguard_bench::attested_testbed;

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_attestation");
    group.sample_size(30);

    // Quote generation: report inside the enclave + QE signature.
    group.bench_function("quote_generation", |b| {
        let mut testbed = attested_testbed(b"e2 gen");
        let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
        let platform = testbed.hosts[0].platform.clone();
        b.iter(|| {
            black_box(guard.quote(&platform, &[7; 32], [1; 32]).unwrap());
        });
    });

    // IAS verification: decode, member lookup, EPID signature check,
    // SigRL scan, signed report production.
    group.bench_function("ias_verification", |b| {
        let mut testbed = attested_testbed(b"e2 ias");
        let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
        let quote = guard
            .quote(&testbed.hosts[0].platform, &[7; 32], [1; 32])
            .unwrap()
            .encode();
        b.iter(|| black_box(testbed.ias.verify_quote(&quote, b"nonce")));
    });

    // The verifier's report-signature check alone (what the VM pays to
    // trust an IAS response).
    group.bench_function("avr_signature_check", |b| {
        let mut testbed = attested_testbed(b"e2 avr");
        let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
        let quote = guard
            .quote(&testbed.hosts[0].platform, &[7; 32], [1; 32])
            .unwrap()
            .encode();
        let report = testbed.ias.verify_quote(&quote, b"nonce");
        let key = testbed.ias.report_signing_key();
        b.iter(|| black_box(report.verify(&key).is_ok()));
    });

    // Full VNF attestation + enrollment decision at the VM (steps 3-5
    // verifier side only, no provisioning transfer).
    group.bench_function("vm_full_vnf_check", |b| {
        let mut testbed = attested_testbed(b"e2 vm");
        let mut counter = 0u32;
        b.iter(|| {
            counter += 1;
            let guard = testbed
                .deploy_guard(0, &format!("vnf-{counter}"), 1)
                .unwrap();
            black_box(testbed.enroll(0, &guard).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
