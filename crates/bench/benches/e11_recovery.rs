//! E11 — recovery latency vs log length: cold-start Verification Manager
//! recovery from a sealed WAL holding 10 / 100 / 1000 committed
//! enrollments, comparing full-log replay against snapshot-seeded replay,
//! plus the raw store-layer replay cost underneath both.
//!
//! Each sample forks the pre-built medium ([`Media::fork`]) so repeated
//! cold starts never observe each other's `RecoveryCompleted` appends.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use vnfguard_controller::SimClock;
use vnfguard_core::manager::{ManagerConfig, VerificationManager};
use vnfguard_sgx::platform::SgxPlatform;
use vnfguard_sgx::sigstruct::EnclaveAuthor;
use vnfguard_store::{Media, StateStore, StateVault, WalRecord};
use vnfguard_telemetry::Telemetry;

const LOG_LENGTHS: [u64; 3] = [10, 100, 1000];

struct Fixture {
    platform: SgxPlatform,
    author: EnclaveAuthor,
    media: Media,
}

/// Build a sealed WAL of `n` committed enrollments (three records each:
/// issue, prepare, commit), optionally folded into a snapshot.
fn logged_media(n: u64, compact: bool) -> Fixture {
    let platform = SgxPlatform::new(b"e11 vm platform");
    let author = EnclaveAuthor::from_seed(&[7; 32]);
    let vault = StateVault::load(&platform, &author).unwrap();
    let media = Media::new();
    let store = StateStore::new(media.clone(), vault);
    for i in 0..n {
        let serial = 2 + i;
        let name = format!("vnf-{i}");
        store
            .append(&WalRecord::CertIssued {
                serial,
                subject: name.clone(),
                at: 100 + i,
            })
            .unwrap();
        store
            .append(&WalRecord::EnrollmentPrepared {
                serial,
                vnf_name: name,
                host_id: format!("host-{}", i % 8),
                mrenclave: [i as u8; 32],
                provisioning_key_hash: [i as u8; 32],
                backend: 0,
                at: 100 + i,
            })
            .unwrap();
        store
            .append(&WalRecord::EnrollmentCommitted { serial, at: 101 + i })
            .unwrap();
    }
    if compact {
        store.compact().unwrap();
    }
    Fixture {
        platform,
        author,
        media,
    }
}

/// A fresh store over a fork of the fixture's medium, as a restarted VM
/// process would open it.
fn reopen(fixture: &Fixture) -> StateStore {
    let vault = StateVault::load(&fixture.platform, &fixture.author).unwrap();
    StateStore::new(fixture.media.fork(), vault)
}

fn bench_e11(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_recovery");
    let config = ManagerConfig::builder().build().unwrap();

    for n in LOG_LENGTHS {
        if n >= 1000 {
            group.sample_size(10);
        }
        for (mode, compact) in [("full_replay", false), ("snapshot", true)] {
            let fixture = logged_media(n, compact);

            // The store layer alone: unseal + decode + fold every record.
            group.bench_with_input(
                BenchmarkId::new(format!("store_replay/{mode}"), n),
                &n,
                |b, _| {
                    let store = reopen(&fixture);
                    b.iter(|| black_box(store.replay().unwrap().state.enrollments.len()));
                },
            );

            // Full cold start: replay plus CA re-derivation, serial
            // restoration, orphan resolution, and the recovery journal.
            group.bench_with_input(
                BenchmarkId::new(format!("vm_recover/{mode}"), n),
                &n,
                |b, _| {
                    b.iter_batched(
                        || reopen(&fixture),
                        |store| {
                            let (vm, report) = VerificationManager::recover(
                                config.clone(),
                                b"e11 recovery bench",
                                SimClock::at(1_600_000_000),
                                Telemetry::disabled(),
                                store,
                                None,
                            )
                            .unwrap();
                            assert_eq!(report.enrollments_restored as u64, n);
                            black_box(vm.issued_count())
                        },
                        BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e11);
criterion_main!(benches);
