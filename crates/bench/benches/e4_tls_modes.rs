//! E4 — north-bound request cost across Floodlight's three security modes,
//! and the enclave-residency overhead the paper defers to future work.
//!
//! Series: plain HTTP, HTTPS (server auth), trusted HTTPS (mutual auth)
//! with a native client, and trusted HTTPS with the credential enclave —
//! with free and SGX1-calibrated transition costs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use vnfguard_bench::{attested_testbed, testbed_with_mode};
use vnfguard_controller::{NorthboundClient, SecurityMode};
use vnfguard_core::deployment::TestbedBuilder;
use vnfguard_net::http::Request;
use vnfguard_pki::TrustStore;

fn request() -> Request {
    Request::get("/wm/core/health/json")
}

fn bench_e4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_request_latency");
    group.sample_size(50);

    // Plain HTTP.
    group.bench_function("http", |b| {
        let testbed = testbed_with_mode(b"e4 http", SecurityMode::Http);
        let mut client =
            NorthboundClient::connect_plain(&testbed.network, &testbed.controller_addr).unwrap();
        b.iter(|| black_box(client.request(&request()).unwrap()));
    });

    // HTTPS (server auth only), persistent session.
    group.bench_function("https", |b| {
        let testbed = testbed_with_mode(b"e4 https", SecurityMode::Https);
        let mut trust = TrustStore::new();
        trust.add_anchor(testbed.vm.ca_certificate().clone()).unwrap();
        let mut client = NorthboundClient::connect_tls(
            &testbed.network,
            &testbed.controller_addr,
            Arc::new(trust),
            None,
            Some("controller"),
            testbed.clock.now(),
        )
        .unwrap();
        b.iter(|| black_box(client.request(&request()).unwrap()));
    });

    // Trusted HTTPS with a native (non-enclave) client: same mutual-auth
    // handshake, key material held in ordinary process memory.
    group.bench_function("trusted_https_native", |b| {
        let testbed = attested_testbed(b"e4 mtls native");
        let client_key = vnfguard_crypto::ed25519::SigningKey::from_seed(&[10; 32]);
        let client_cert = testbed.vm.issue_client_certificate(
            "native-client",
            client_key.public_key(),
        );
        let signer = Arc::new(vnfguard_tls::LocalSigner::new(client_key, client_cert));
        let mut trust = TrustStore::new();
        trust.add_anchor(testbed.vm.ca_certificate().clone()).unwrap();
        let mut client = NorthboundClient::connect_tls(
            &testbed.network,
            &testbed.controller_addr,
            Arc::new(trust),
            Some(signer),
            Some("controller"),
            testbed.clock.now(),
        )
        .unwrap();
        b.iter(|| black_box(client.request(&request()).unwrap()));
    });

    // Trusted HTTPS through the credential enclave (free transitions).
    group.bench_function("trusted_https_enclave_free", |b| {
        let mut testbed = attested_testbed(b"e4 enclave free");
        let mut guard = vnfguard_bench::enrolled_guard(&mut testbed, "vnf-enclave");
        let session = testbed.open_session(&mut guard).unwrap();
        b.iter(|| black_box(guard.request(session, &request()).unwrap()));
    });

    // Trusted HTTPS through the enclave with SGX1-like transition costs.
    group.bench_function("trusted_https_enclave_sgx1", |b| {
        let mut testbed = TestbedBuilder::new(b"e4 enclave sgx1")
            .transition_cost(8_000, 4_000)
            .build();
        testbed.attest_host(0).unwrap();
        let mut guard = vnfguard_bench::enrolled_guard(&mut testbed, "vnf-enclave");
        let session = testbed.open_session(&mut guard).unwrap();
        b.iter(|| black_box(guard.request(session, &request()).unwrap()));
    });

    group.finish();

    // Handshake (connection establishment) comparison.
    let mut group = c.benchmark_group("e4_handshake");
    group.sample_size(30);

    group.bench_function("https_handshake", |b| {
        let testbed = testbed_with_mode(b"e4 hs https", SecurityMode::Https);
        let mut trust = TrustStore::new();
        trust.add_anchor(testbed.vm.ca_certificate().clone()).unwrap();
        let trust = Arc::new(trust);
        b.iter(|| {
            black_box(
                NorthboundClient::connect_tls(
                    &testbed.network,
                    &testbed.controller_addr,
                    trust.clone(),
                    None,
                    Some("controller"),
                    testbed.clock.now(),
                )
                .unwrap(),
            );
        });
    });

    group.bench_function("trusted_https_enclave_handshake", |b| {
        let mut testbed = attested_testbed(b"e4 hs enclave");
        let mut guard = vnfguard_bench::enrolled_guard(&mut testbed, "vnf");
        b.iter(|| {
            let session = testbed.open_session(&mut guard).unwrap();
            guard.close_session(session).unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
