//! E14 — replication overhead and failover time.
//!
//! Two measurements, one bar:
//!
//! - **Steady-state overhead**: enrollment on a WAL-replicated deployment
//!   (two standbys, synchronous stream-on-append) versus the same durable
//!   deployment without standbys. Batches run as adjacent pairs with
//!   alternating order and the reported overhead is the median per-pair
//!   ratio (the e12 drift-cancelling harness). Replication must stay
//!   within [`MAX_OVERHEAD`] of unreplicated or the process exits
//!   non-zero, failing CI.
//! - **Failover time**: wall-clock for [`Testbed::promote`] — standby
//!   selection, epoch fence, recovery replay of the replicated WAL, key
//!   re-derivation, and the queued-notice drain — on a deployment with a
//!   populated log. Reported for the record; the acceptance bound on this
//!   path lives in the chaos matrix (`tests/replication.rs`).

use std::hint::black_box;
use std::time::{Duration, Instant};
use vnfguard_core::deployment::{Testbed, TestbedBuilder};

/// Replicated enrollment must finish within 10% of unreplicated.
const MAX_OVERHEAD: f64 = 0.10;
/// Replicated/unreplicated batch pairs; the median per-pair ratio is compared.
const BATCHES: usize = 9;
/// Enrollments per batch.
const BATCH_SIZE: u64 = 6;
/// Noisy-machine retries before the bar is declared failed.
const ATTEMPTS: usize = 3;
/// Standbys behind the replicated side.
const STANDBYS: usize = 2;
/// Enrollments journaled before each timed promotion.
const FAILOVER_LOAD: u64 = 25;
/// Timed promotions (fresh deployment each).
const FAILOVER_RUNS: usize = 5;

struct World {
    testbed: Testbed,
    next_vnf: u64,
}

fn world(seed: &[u8], replicated: bool) -> World {
    let mut builder = TestbedBuilder::new(seed);
    builder = if replicated {
        builder.replicas(STANDBYS)
    } else {
        builder.durable()
    };
    let mut testbed = builder.build();
    testbed.attest_host(0).unwrap();
    World {
        testbed,
        next_vnf: 0,
    }
}

/// Time one batch of enrollments (guard deployment excluded — only the
/// journaled two-phase enrollment differs between the two sides).
fn batch(world: &mut World) -> Duration {
    let guards: Vec<_> = (0..BATCH_SIZE)
        .map(|_| {
            world.next_vnf += 1;
            world
                .testbed
                .deploy_guard(0, &format!("vnf-{}", world.next_vnf), 1)
                .unwrap()
        })
        .collect();
    let start = Instant::now();
    for guard in &guards {
        black_box(world.testbed.enroll(0, guard).unwrap());
    }
    start.elapsed()
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

/// One full measurement: fresh worlds, paired batches, median per-pair
/// ratio. Returns `(replicated_us, unreplicated_us, overhead)`.
fn measure(attempt: usize) -> (f64, f64, f64) {
    let seed_on = format!("e14 replicated {attempt}");
    let seed_off = format!("e14 unreplicated {attempt}");
    let mut on = world(seed_on.as_bytes(), true);
    let mut off = world(seed_off.as_bytes(), false);
    // Warm both paths before timing.
    for _ in 0..2 {
        batch(&mut on);
        batch(&mut off);
    }
    let mut on_us = Vec::with_capacity(BATCHES);
    let mut off_us = Vec::with_capacity(BATCHES);
    for pair in 0..BATCHES {
        // Alternate which side goes first so ordering bias cancels too.
        if pair % 2 == 0 {
            on_us.push(batch(&mut on).as_micros() as f64 / BATCH_SIZE as f64);
            off_us.push(batch(&mut off).as_micros() as f64 / BATCH_SIZE as f64);
        } else {
            off_us.push(batch(&mut off).as_micros() as f64 / BATCH_SIZE as f64);
            on_us.push(batch(&mut on).as_micros() as f64 / BATCH_SIZE as f64);
        }
    }
    let ratios: Vec<f64> = on_us.iter().zip(&off_us).map(|(a, b)| a / b).collect();
    (median(on_us), median(off_us), median(ratios) - 1.0)
}

/// Median promotion time over fresh deployments with a populated WAL.
fn measure_failover() -> f64 {
    let mut times_ms = Vec::with_capacity(FAILOVER_RUNS);
    for run in 0..FAILOVER_RUNS {
        let seed = format!("e14 failover {run}");
        let mut w = world(seed.as_bytes(), true);
        for _ in 0..FAILOVER_LOAD / BATCH_SIZE + 1 {
            batch(&mut w);
        }
        w.testbed.kill_primary("bench node loss");
        let start = Instant::now();
        let report = w.testbed.promote().unwrap();
        times_ms.push(start.elapsed().as_micros() as f64 / 1_000.0);
        black_box(report);
    }
    median(times_ms)
}

fn main() {
    println!(
        "e14_failover: enrollment with {STANDBYS} WAL-streaming standbys vs unreplicated durable"
    );
    let failover_ms = measure_failover();
    println!(
        "e14_failover/promotion             {failover_ms:>10.2} ms (median of {FAILOVER_RUNS} runs, {FAILOVER_LOAD}+ records)"
    );
    let mut last = (0.0, 0.0, 0.0);
    for attempt in 0..ATTEMPTS {
        let (replicated, unreplicated, overhead) = measure(attempt);
        println!(
            "e14_failover/enroll_replicated     {replicated:>10.1} µs/iter (median of {BATCHES} batches)"
        );
        println!(
            "e14_failover/enroll_unreplicated   {unreplicated:>10.1} µs/iter (median of {BATCHES} batches)"
        );
        println!(
            "e14_failover/overhead              {:>10.2} % (median pair ratio, bar {:.0} %)",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
        if overhead <= MAX_OVERHEAD {
            println!("e14_failover: PASS");
            return;
        }
        last = (replicated, unreplicated, overhead);
        println!("e14_failover: attempt {} over the bar, retrying", attempt + 1);
    }
    eprintln!(
        "e14_failover: FAIL — replicated {:.1} µs vs unreplicated {:.1} µs ({:+.2} % > {:.0} %)",
        last.0,
        last.1,
        last.2 * 100.0,
        MAX_OVERHEAD * 100.0
    );
    std::process::exit(1);
}
