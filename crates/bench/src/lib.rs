//! Shared helpers for the experiment benchmarks (E1–E8).
//!
//! Each bench target regenerates one experiment of EXPERIMENTS.md; the
//! helpers here build the standard deployment the paper's demo describes.

use vnfguard_controller::SecurityMode;
use vnfguard_core::deployment::{Testbed, TestbedBuilder, ValidationModel};
use vnfguard_vnf::VnfGuard;

/// Build the default trusted-HTTPS testbed with an attested host.
pub fn attested_testbed(seed: &[u8]) -> Testbed {
    let mut testbed = TestbedBuilder::new(seed).build();
    testbed.attest_host(0).expect("host attestation");
    testbed
}

/// Build a testbed in the given controller security mode.
pub fn testbed_with_mode(seed: &[u8], mode: SecurityMode) -> Testbed {
    let mut testbed = TestbedBuilder::new(seed).mode(mode).build();
    testbed.attest_host(0).expect("host attestation");
    testbed
}

/// Build a testbed with keystore-based client validation.
pub fn keystore_testbed(seed: &[u8]) -> Testbed {
    let mut testbed = TestbedBuilder::new(seed)
        .validation(ValidationModel::Keystore)
        .build();
    testbed.attest_host(0).expect("host attestation");
    testbed
}

/// Deploy and enroll one guard.
pub fn enrolled_guard(testbed: &mut Testbed, name: &str) -> VnfGuard {
    let guard = testbed.deploy_guard(0, name, 1).expect("deploy");
    testbed.enroll(0, &guard).expect("enroll");
    guard
}
