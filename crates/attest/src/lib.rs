//! # vnfguard-attest
//!
//! Multi-TEE attestation backends behind one appraisal contract.
//!
//! The paper hard-codes SGX EPID attestation: an enclave quote travels to
//! the Intel Attestation Service and comes back as a signed report the
//! Verification Manager appraises. This crate extracts the part of that
//! flow the manager actually depends on — *some* evidence format, *some*
//! measurement register, *some* trust-status vocabulary — into the
//! [`AttestationBackend`] trait, so heterogeneous fleets can mix TEE
//! technologies behind one enrollment protocol:
//!
//! - [`SgxEpidBackend`] wraps any [`QuoteVerifier`](vnfguard_ias::QuoteVerifier)
//!   (the in-process IAS simulation or a remote client handle) and appraises
//!   EPID quotes exactly as before;
//! - [`snp::SnpVerifier`] appraises AMD SEV-SNP attestation reports
//!   **offline**: launch measurement, guest policy, REPORT_DATA binding and
//!   a VCEK-style certificate chain to a model AMD root — no service
//!   round-trip at all.
//!
//! Every backend reduces its native evidence to one normalized
//! [`EvidenceAppraisal`]; the relying party then applies a per-backend
//! [`AppraisalPolicy`] (from a [`PolicyRegistry`]) plus its own whitelist
//! and REPORT_DATA binding checks. Cross-backend confusion fails closed:
//! an SGX quote handed to the SNP appraiser (or vice versa) is a structural
//! decode error, never a `Verified` verdict.

pub mod sgx_epid;
pub mod snp;

pub use sgx_epid::SgxEpidBackend;
// Re-exported so relying parties (vnfguard-core) can speak about backend
// reachability and SGX measurement registers without importing the
// backend-specific crates directly.
pub use vnfguard_ias::Availability;
pub use vnfguard_sgx::measurement::Measurement;

use vnfguard_telemetry::TraceContext;

/// Which TEE technology produced a piece of evidence. Stable `u8` codes
/// are part of the WAL record format — never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendKind {
    /// Intel SGX with EPID group signatures, verified via IAS.
    SgxEpid,
    /// AMD SEV-SNP confidential VMs, verified offline against the VCEK
    /// certificate chain.
    SevSnp,
}

impl BackendKind {
    pub fn as_u8(self) -> u8 {
        match self {
            BackendKind::SgxEpid => 0,
            BackendKind::SevSnp => 1,
        }
    }

    pub fn from_u8(code: u8) -> Option<BackendKind> {
        match code {
            0 => Some(BackendKind::SgxEpid),
            1 => Some(BackendKind::SevSnp),
            _ => None,
        }
    }

    /// Short label used on metrics series and in operator surfaces.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::SgxEpid => "sgx",
            BackendKind::SevSnp => "snp",
        }
    }

    /// Both kinds, for registries and fleet breakdowns.
    pub const ALL: [BackendKind; 2] = [BackendKind::SgxEpid, BackendKind::SevSnp];
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Normalized TCB (trusted computing base) status across backends. SGX
/// report statuses and SNP TCB versions both map into this vocabulary, so
/// one [`AppraisalPolicy`] can govern either.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcbStatus {
    /// Fully patched platform.
    UpToDate,
    /// Valid evidence from a platform running outdated firmware/microcode.
    OutOfDate,
    /// Valid evidence, but the platform configuration needs attention
    /// (e.g. hyperthreading exposure advisories).
    ConfigurationNeeded,
    /// The signing group or key has been revoked.
    Revoked,
    /// The evidence did not verify at all.
    Invalid,
}

impl TcbStatus {
    /// Canonical uppercase names, matching the wire vocabulary relying
    /// parties already grep for in IAS verdicts (`GROUP_OUT_OF_DATE` →
    /// `OUT_OF_DATE`).
    pub fn as_str(self) -> &'static str {
        match self {
            TcbStatus::UpToDate => "UP_TO_DATE",
            TcbStatus::OutOfDate => "OUT_OF_DATE",
            TcbStatus::ConfigurationNeeded => "CONFIGURATION_NEEDED",
            TcbStatus::Revoked => "REVOKED",
            TcbStatus::Invalid => "INVALID",
        }
    }
}

/// What a backend distills out of verified evidence: the facts a relying
/// party appraises, with every backend-specific encoding stripped away.
///
/// `measurement` is the backend's code-identity register normalized to 32
/// bytes: MRENCLAVE for SGX, the domain-separated digest of the 48-byte
/// launch measurement for SNP (see [`snp::normalize_measurement`]).
/// Whitelists key on `(BackendKind, measurement)`, so equal bytes from
/// different TEEs can never satisfy each other's entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceAppraisal {
    pub backend: BackendKind,
    pub measurement: [u8; 32],
    /// The 64-byte user-data register the workload bound into its
    /// evidence (REPORT_DATA on both SGX and SNP). Relying parties check
    /// their nonce/key binding against it.
    pub report_data: [u8; 64],
    /// The workload is debuggable (SGX DEBUG attribute, SNP guest-policy
    /// debug bit) — production policy refuses it.
    pub debug: bool,
    pub tcb: TcbStatus,
    /// Backend-specific advisory identifiers, verbatim.
    pub advisories: Vec<String>,
    /// The backend's native verdict string, verbatim (an IAS quote status
    /// like `SIGRL_VERSION_MISMATCH`, an SNP TCB comparison) — carried so
    /// policy refusals and audit records keep the operator-grade detail
    /// the normalized [`TcbStatus`] abstracts away.
    pub native_status: String,
}

/// Why evidence could not be reduced to an [`EvidenceAppraisal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestError {
    /// The evidence bytes are not this backend's format at all.
    Encoding(String),
    /// The evidence is structurally this backend's format but failed
    /// verification (bad signature, broken cert chain, stale VCEK, …).
    Rejected(String),
}

impl std::fmt::Display for AttestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestError::Encoding(msg) => write!(f, "evidence encoding: {msg}"),
            AttestError::Rejected(msg) => write!(f, "evidence rejected: {msg}"),
        }
    }
}

impl std::error::Error for AttestError {}

/// One TEE technology's verifier, as seen by a relying party.
///
/// Implementations verify evidence *cryptographically* (signatures, cert
/// chains, freshness of verification collateral) and report the distilled
/// facts; they do **not** make trust decisions — whitelisting, REPORT_DATA
/// binding and TCB acceptance belong to the relying party's
/// [`AppraisalPolicy`] so policy stays in one place per deployment.
pub trait AttestationBackend {
    /// Which evidence format this backend appraises.
    fn kind(&self) -> BackendKind;

    /// Verify `evidence` (with the challenge `nonce` available to backends
    /// whose verification protocol consumes it, like IAS) and distill the
    /// appraisal. Fails closed: any structural or cryptographic doubt is an
    /// error, never a degraded appraisal.
    fn appraise(
        &mut self,
        evidence: &[u8],
        nonce: &[u8],
    ) -> Result<EvidenceAppraisal, AttestError>;

    /// Whether the backend is currently worth calling (a remote verifier
    /// may report `Unavailable` while its circuit breaker is open; offline
    /// verifiers are always available).
    fn availability(&self) -> Availability {
        Availability::Available
    }

    /// Scope subsequent appraisals to a distributed-trace context.
    fn set_trace_context(&mut self, _ctx: Option<TraceContext>) {}
}

impl<B: AttestationBackend + ?Sized> AttestationBackend for &mut B {
    fn kind(&self) -> BackendKind {
        (**self).kind()
    }

    fn appraise(
        &mut self,
        evidence: &[u8],
        nonce: &[u8],
    ) -> Result<EvidenceAppraisal, AttestError> {
        (**self).appraise(evidence, nonce)
    }

    fn availability(&self) -> Availability {
        (**self).availability()
    }

    fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        (**self).set_trace_context(ctx)
    }
}

/// A relying party's acceptance rules for one backend's appraisals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppraisalPolicy {
    /// Accept [`TcbStatus::OutOfDate`] evidence (lenient deployments).
    pub allow_outdated_tcb: bool,
    /// Accept [`TcbStatus::ConfigurationNeeded`] evidence.
    pub allow_configuration_needed: bool,
    /// Accept debuggable workloads. Never set in production; exists so
    /// the refusal path is testable.
    pub allow_debug: bool,
}

impl AppraisalPolicy {
    /// Only fully patched, non-debug platforms.
    pub fn strict() -> AppraisalPolicy {
        AppraisalPolicy {
            allow_outdated_tcb: false,
            allow_configuration_needed: false,
            allow_debug: false,
        }
    }

    /// Tolerate outdated-but-valid TCB and configuration advisories
    /// (still refuses revoked, invalid and debug).
    pub fn lenient() -> AppraisalPolicy {
        AppraisalPolicy {
            allow_outdated_tcb: true,
            allow_configuration_needed: true,
            allow_debug: false,
        }
    }

    pub fn accepts_tcb(&self, tcb: TcbStatus) -> bool {
        match tcb {
            TcbStatus::UpToDate => true,
            TcbStatus::OutOfDate => self.allow_outdated_tcb,
            TcbStatus::ConfigurationNeeded => self.allow_configuration_needed,
            TcbStatus::Revoked | TcbStatus::Invalid => false,
        }
    }

    /// Apply the policy to an appraisal; the error text names the first
    /// violated rule.
    pub fn check(&self, appraisal: &EvidenceAppraisal) -> Result<(), String> {
        if !self.accepts_tcb(appraisal.tcb) {
            return Err(format!(
                "{} evidence with TCB status {} ({}) refused by policy",
                appraisal.backend,
                appraisal.tcb.as_str(),
                appraisal.native_status,
            ));
        }
        if appraisal.debug && !self.allow_debug {
            return Err(format!(
                "{} evidence reports a debuggable workload",
                appraisal.backend
            ));
        }
        Ok(())
    }
}

/// Per-backend appraisal policies, looked up by [`BackendKind`]. A mixed
/// SGX+SNP fleet can run strict SNP policy while tolerating out-of-date
/// SGX microcode, or vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyRegistry {
    sgx: AppraisalPolicy,
    snp: AppraisalPolicy,
}

impl PolicyRegistry {
    /// The same policy for every backend.
    pub fn uniform(policy: AppraisalPolicy) -> PolicyRegistry {
        PolicyRegistry {
            sgx: policy,
            snp: policy,
        }
    }

    pub fn policy_for(&self, kind: BackendKind) -> &AppraisalPolicy {
        match kind {
            BackendKind::SgxEpid => &self.sgx,
            BackendKind::SevSnp => &self.snp,
        }
    }

    /// Replace one backend's policy.
    pub fn set(&mut self, kind: BackendKind, policy: AppraisalPolicy) {
        match kind {
            BackendKind::SgxEpid => self.sgx = policy,
            BackendKind::SevSnp => self.snp = policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_codes_roundtrip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(BackendKind::from_u8(7), None);
        assert_eq!(BackendKind::SgxEpid.label(), "sgx");
        assert_eq!(BackendKind::SevSnp.label(), "snp");
    }

    #[test]
    fn strict_policy_rejects_everything_but_up_to_date() {
        let policy = AppraisalPolicy::strict();
        assert!(policy.accepts_tcb(TcbStatus::UpToDate));
        for tcb in [
            TcbStatus::OutOfDate,
            TcbStatus::ConfigurationNeeded,
            TcbStatus::Revoked,
            TcbStatus::Invalid,
        ] {
            assert!(!policy.accepts_tcb(tcb), "{tcb:?}");
        }
    }

    #[test]
    fn lenient_policy_still_refuses_revoked_and_debug() {
        let policy = AppraisalPolicy::lenient();
        assert!(policy.accepts_tcb(TcbStatus::OutOfDate));
        assert!(policy.accepts_tcb(TcbStatus::ConfigurationNeeded));
        assert!(!policy.accepts_tcb(TcbStatus::Revoked));
        assert!(!policy.accepts_tcb(TcbStatus::Invalid));
        let appraisal = EvidenceAppraisal {
            backend: BackendKind::SevSnp,
            measurement: [0; 32],
            report_data: [0; 64],
            debug: true,
            tcb: TcbStatus::UpToDate,
            advisories: Vec::new(),
            native_status: "OK".to_string(),
        };
        assert!(policy.check(&appraisal).is_err());
    }

    #[test]
    fn registry_keeps_per_backend_policies_apart() {
        let mut registry = PolicyRegistry::uniform(AppraisalPolicy::strict());
        registry.set(BackendKind::SgxEpid, AppraisalPolicy::lenient());
        assert!(registry
            .policy_for(BackendKind::SgxEpid)
            .accepts_tcb(TcbStatus::OutOfDate));
        assert!(!registry
            .policy_for(BackendKind::SevSnp)
            .accepts_tcb(TcbStatus::OutOfDate));
    }
}
