//! SGX EPID adapter: the paper's quote → IAS → signed-report path, wrapped
//! behind [`AttestationBackend`].
//!
//! Nothing about the SGX flow changes — the quote bytes travel to whatever
//! [`QuoteVerifier`] the adapter wraps (the in-process IAS simulation or a
//! remote client handle), the returned report's service signature is
//! checked, and the report's verdict is distilled into the normalized
//! [`EvidenceAppraisal`] vocabulary. The adapter fails closed: an
//! unverifiable report signature, a missing quote body, or a nonce echo
//! that does not match the challenge are all rejections.

use crate::{AttestError, AttestationBackend, BackendKind, EvidenceAppraisal, TcbStatus};
use vnfguard_ias::{Availability, QuoteStatus, QuoteVerifier};
use vnfguard_telemetry::TraceContext;

/// [`AttestationBackend`] over any [`QuoteVerifier`]. Generic so it wraps
/// an owned `AttestationService`, a `RemoteIas` client, or a borrowed
/// `&mut dyn QuoteVerifier` equally well.
pub struct SgxEpidBackend<V> {
    inner: V,
}

impl<V> SgxEpidBackend<V> {
    pub fn new(inner: V) -> SgxEpidBackend<V> {
        SgxEpidBackend { inner }
    }

    pub fn inner(&self) -> &V {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut V {
        &mut self.inner
    }

    pub fn into_inner(self) -> V {
        self.inner
    }
}

fn tcb_from_status(status: QuoteStatus) -> TcbStatus {
    match status {
        QuoteStatus::Ok => TcbStatus::UpToDate,
        QuoteStatus::GroupOutOfDate => TcbStatus::OutOfDate,
        QuoteStatus::ConfigurationNeeded => TcbStatus::ConfigurationNeeded,
        QuoteStatus::GroupRevoked | QuoteStatus::SignatureRevoked | QuoteStatus::KeyRevoked => {
            TcbStatus::Revoked
        }
        QuoteStatus::SignatureInvalid
        | QuoteStatus::UnknownGroup
        | QuoteStatus::VersionUnsupported => TcbStatus::Invalid,
    }
}

impl<V: QuoteVerifier> AttestationBackend for SgxEpidBackend<V> {
    fn kind(&self) -> BackendKind {
        BackendKind::SgxEpid
    }

    fn appraise(
        &mut self,
        evidence: &[u8],
        nonce: &[u8],
    ) -> Result<EvidenceAppraisal, AttestError> {
        let report = self.inner.verify_quote(evidence, nonce);
        report
            .verify(&self.inner.report_signing_key())
            .map_err(|e| AttestError::Rejected(e.to_string()))?;
        if report.nonce != nonce {
            return Err(AttestError::Rejected("IAS report nonce mismatch".into()));
        }
        let tcb = tcb_from_status(report.status);
        if tcb == TcbStatus::Invalid {
            // SignatureInvalid / UnknownGroup / VersionUnsupported: the EPID
            // signature over the quote was never verified, so nothing in the
            // body can be trusted — reject instead of appraising.
            return Err(AttestError::Rejected(format!(
                "IAS status {}",
                report.status
            )));
        }
        let body = report
            .quote_body
            .as_ref()
            .ok_or_else(|| AttestError::Rejected(format!("IAS status {}", report.status)))?;
        Ok(EvidenceAppraisal {
            backend: BackendKind::SgxEpid,
            measurement: body.mrenclave.0,
            report_data: body.report_data,
            debug: body.is_debug(),
            tcb,
            advisories: report.advisories.clone(),
            native_status: report.status.to_string(),
        })
    }

    fn availability(&self) -> Availability {
        self.inner.availability()
    }

    fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.inner.set_trace_context(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AppraisalPolicy;
    use vnfguard_ias::AttestationService;
    use vnfguard_sgx::enclave::{EnclaveCode, EnclaveContext};
    use vnfguard_sgx::measurement::Measurement;
    use vnfguard_sgx::platform::{PlatformConfig, SgxPlatform};
    use vnfguard_sgx::sigstruct::EnclaveAuthor;
    use vnfguard_sgx::transition::TransitionModel;
    use vnfguard_sgx::SgxError;

    struct Null(Vec<u8>);
    impl EnclaveCode for Null {
        fn image(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn on_call(
            &mut self,
            _ctx: &mut EnclaveContext,
            op: u16,
            _i: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            Err(SgxError::BadCall(op))
        }
    }

    fn quoted(
        seed: &[u8],
        debug: bool,
        report_data: [u8; 64],
    ) -> (SgxPlatform, Measurement, Vec<u8>) {
        let config = PlatformConfig {
            allow_debug: debug,
            ..PlatformConfig::default()
        };
        let platform = SgxPlatform::with_config(seed, config, TransitionModel::free());
        let author = EnclaveAuthor::from_seed(&[1; 32]);
        let image = b"attested app";
        let mrenclave = SgxPlatform::measure_image(image, 4096);
        let signed = author.sign_enclave(mrenclave, 1, 1, debug);
        let enclave = platform
            .load_enclave(&signed, 4096, Box::new(Null(image.to_vec())))
            .unwrap();
        let qe = platform.quoting_enclave();
        let report = enclave.create_report(&qe.target_info(), report_data);
        let quote = qe.quote(&report, [1; 32]).unwrap();
        (platform, mrenclave, quote.encode())
    }

    fn service_for(platform: &SgxPlatform) -> AttestationService {
        let mut ias = AttestationService::new(b"attest test ias");
        ias.register_member(platform.epid_group_id(), platform.attestation_public_key());
        ias
    }

    #[test]
    fn valid_quote_appraises_up_to_date() {
        let report_data = [7u8; 64];
        let (platform, mrenclave, quote) = quoted(b"sgx-backend", false, report_data);
        let mut backend = SgxEpidBackend::new(service_for(&platform));
        let appraisal = backend.appraise(&quote, b"nonce-1").unwrap();
        assert_eq!(appraisal.backend, BackendKind::SgxEpid);
        assert_eq!(appraisal.tcb, TcbStatus::UpToDate);
        assert_eq!(appraisal.measurement, mrenclave.0);
        assert_eq!(appraisal.report_data, report_data);
        assert!(!appraisal.debug);
        assert!(AppraisalPolicy::strict().check(&appraisal).is_ok());
    }

    #[test]
    fn debug_enclave_surfaces_in_appraisal() {
        let (platform, _mr, quote) = quoted(b"sgx-dbg", true, [0u8; 64]);
        let mut backend = SgxEpidBackend::new(service_for(&platform));
        let appraisal = backend.appraise(&quote, b"n").unwrap();
        assert!(appraisal.debug);
        assert!(AppraisalPolicy::strict().check(&appraisal).is_err());
    }

    #[test]
    fn unknown_group_is_rejected_not_appraised() {
        let (_platform, _mr, quote) = quoted(b"sgx-unknown", false, [0u8; 64]);
        // Fresh service that never registered the platform's EPID group.
        let mut backend = SgxEpidBackend::new(AttestationService::new(b"empty ias"));
        let err = backend.appraise(&quote, b"n").unwrap_err();
        match err {
            AttestError::Rejected(msg) => assert!(msg.contains("EPID_GROUP_UNKNOWN"), "{msg}"),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn garbage_quote_is_rejected_not_appraised() {
        let mut backend = SgxEpidBackend::new(AttestationService::new(b"attest test ias"));
        let err = backend.appraise(b"not a quote", b"n").unwrap_err();
        assert!(matches!(err, AttestError::Rejected(_)), "{err:?}");
    }
}
