//! Software AMD SEV-SNP attestation: confidential VMs as first-class
//! attested platforms, appraised **offline**.
//!
//! The model reproduces the pieces of the SEV-SNP attestation chain a
//! relying party actually verifies (the shape SNPGuard documents):
//!
//! - an [`SnpReport`] carrying the 48-byte launch measurement, the guest
//!   policy word (debug bit and friends), the 64-byte REPORT_DATA register
//!   the workload binds its nonce/key material into, and the platform TCB
//!   version;
//! - a VCEK-style certificate chain: the per-chip [`VcekCert`] (bound to a
//!   TCB version and an expiry) is signed by the AMD SEV signing key
//!   ([`AskCert`]), which is in turn signed by the AMD root key (ARK) —
//!   modeled by [`AmdRoot`];
//! - offline appraisal: [`SnpVerifier`] walks the chain against a pinned
//!   ARK public key and the deployment [`SimClock`] — **no attestation
//!   service round-trip at all**, which is the operational contrast with
//!   the SGX/IAS path the e18 bench measures.
//!
//! Every signature uses a distinct domain-separation prefix, so no
//! certificate can be replayed as a report (or vice versa), and the
//! evidence bundle opens with the [`SNP_EVIDENCE_MAGIC`] bytes so SGX
//! quotes handed to this appraiser die as structural decode errors —
//! cross-backend confusion fails closed.
//!
//! [`SnpPlatform`] carries seeded fault hooks (forged report signature,
//! stale VCEK, debug guest policy) so the refusal paths are drillable
//! end-to-end; the fault machinery draws on its own splitmix64 stream and
//! never touches any relying-party DRBG.

use crate::{AttestError, AttestationBackend, BackendKind, EvidenceAppraisal, TcbStatus};
use vnfguard_controller::clock::SimClock;
use vnfguard_crypto::ed25519::{SigningKey, VerifyingKey};
use vnfguard_crypto::sha2::sha256;
use vnfguard_encoding::{EncodingError, TlvReader, TlvWriter};

/// First bytes of every encoded [`SnpEvidence`] bundle. Anything else is
/// not SNP evidence and is refused before any cryptography runs.
pub const SNP_EVIDENCE_MAGIC: &[u8; 4] = b"SNPE";

/// Guest-policy bit allowing the hypervisor to debug the guest. Production
/// appraisal policy refuses reports with this bit set.
pub const POLICY_DEBUG_BIT: u64 = 1 << 19;

/// Report format version this model speaks (mirrors SNP's version 2
/// attestation report structure).
pub const SNP_REPORT_VERSION: u32 = 2;

const DOMAIN_ASK: &[u8] = b"vnfguard-snp-ask-v1";
const DOMAIN_VCEK: &[u8] = b"vnfguard-snp-vcek-v1";
const DOMAIN_REPORT: &[u8] = b"vnfguard-snp-report-v1";
const DOMAIN_LAUNCH: &[u8] = b"vnfguard-snp-launch-v1";

const TAG_VERSION: u8 = 0x01;
const TAG_POLICY: u8 = 0x02;
const TAG_MEASUREMENT: u8 = 0x03;
const TAG_REPORT_DATA: u8 = 0x04;
const TAG_TCB: u8 = 0x05;
const TAG_PUBLIC_KEY: u8 = 0x06;
const TAG_NOT_AFTER: u8 = 0x07;
const TAG_SIGNATURE: u8 = 0x08;
const TAG_REPORT: u8 = 0x10;
const TAG_REPORT_SIG: u8 = 0x11;
const TAG_VCEK: u8 = 0x12;
const TAG_ASK: u8 = 0x13;

/// Derive a 48-byte launch measurement from a guest image identifier, the
/// CVM analogue of `SgxPlatform::measure_image`.
pub fn launch_measurement(image: &[u8]) -> [u8; 48] {
    let left = sha256(&[DOMAIN_LAUNCH, b".l", image].concat());
    let right = sha256(&[DOMAIN_LAUNCH, b".r", image].concat());
    let mut out = [0u8; 48];
    out[..32].copy_from_slice(&left);
    out[32..].copy_from_slice(&right[..16]);
    out
}

/// Normalize a 48-byte launch measurement into the 32-byte register space
/// whitelists are keyed on. Domain-separated, so an SNP entry can never be
/// satisfied by raw SGX MRENCLAVE bytes even if an attacker controls both.
pub fn normalize_measurement(measurement: &[u8; 48]) -> [u8; 32] {
    sha256(&[DOMAIN_LAUNCH, &measurement[..]].concat())
}

/// The signed body of an SNP attestation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnpReport {
    pub version: u32,
    /// Guest policy word; see [`POLICY_DEBUG_BIT`].
    pub guest_policy: u64,
    /// Launch measurement of the guest image.
    pub measurement: [u8; 48],
    /// Guest-chosen 64-byte binding register (nonce / key hashes).
    pub report_data: [u8; 64],
    /// Platform TCB version the report was produced under.
    pub tcb_version: u64,
}

impl SnpReport {
    fn encode_into(&self, w: &mut TlvWriter) {
        w.u32(TAG_VERSION, self.version)
            .u64(TAG_POLICY, self.guest_policy)
            .bytes(TAG_MEASUREMENT, &self.measurement)
            .bytes(TAG_REPORT_DATA, &self.report_data)
            .u64(TAG_TCB, self.tcb_version);
    }

    fn decode(mut r: TlvReader) -> Result<SnpReport, EncodingError> {
        let report = SnpReport {
            version: r.expect_u32(TAG_VERSION)?,
            guest_policy: r.expect_u64(TAG_POLICY)?,
            measurement: r.expect_array(TAG_MEASUREMENT)?,
            report_data: r.expect_array(TAG_REPORT_DATA)?,
            tcb_version: r.expect_u64(TAG_TCB)?,
        };
        r.finish()?;
        Ok(report)
    }

    /// The domain-separated byte string the VCEK signs.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        self.encode_into(&mut w);
        [DOMAIN_REPORT, &w.finish()].concat()
    }
}

/// Versioned chip endorsement key certificate: binds a VCEK public key to
/// a TCB version and an expiry, under the ASK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcekCert {
    pub public_key: [u8; 32],
    /// TCB version this VCEK endorses.
    pub tcb_version: u64,
    /// Expiry (unix seconds); verifiers must refresh endorsement
    /// collateral, so a stale VCEK fails closed.
    pub not_after: u64,
    pub signature: [u8; 64],
}

impl VcekCert {
    fn signed_bytes(public_key: &[u8; 32], tcb_version: u64, not_after: u64) -> Vec<u8> {
        [
            DOMAIN_VCEK,
            &public_key[..],
            &tcb_version.to_be_bytes(),
            &not_after.to_be_bytes(),
        ]
        .concat()
    }

    /// Check the ASK signature over this certificate.
    pub fn verify(&self, ask_key: &VerifyingKey) -> bool {
        ask_key
            .verify(
                &Self::signed_bytes(&self.public_key, self.tcb_version, self.not_after),
                &self.signature,
            )
            .is_ok()
    }

    fn encode_into(&self, w: &mut TlvWriter) {
        w.bytes(TAG_PUBLIC_KEY, &self.public_key)
            .u64(TAG_TCB, self.tcb_version)
            .u64(TAG_NOT_AFTER, self.not_after)
            .bytes(TAG_SIGNATURE, &self.signature);
    }

    fn decode(mut r: TlvReader) -> Result<VcekCert, EncodingError> {
        let cert = VcekCert {
            public_key: r.expect_array(TAG_PUBLIC_KEY)?,
            tcb_version: r.expect_u64(TAG_TCB)?,
            not_after: r.expect_u64(TAG_NOT_AFTER)?,
            signature: r.expect_array(TAG_SIGNATURE)?,
        };
        r.finish()?;
        Ok(cert)
    }
}

/// AMD SEV signing key certificate, signed by the ARK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AskCert {
    pub public_key: [u8; 32],
    pub signature: [u8; 64],
}

impl AskCert {
    fn signed_bytes(public_key: &[u8; 32]) -> Vec<u8> {
        [DOMAIN_ASK, &public_key[..]].concat()
    }

    /// Check the ARK signature over this certificate.
    pub fn verify(&self, ark_key: &VerifyingKey) -> bool {
        ark_key
            .verify(&Self::signed_bytes(&self.public_key), &self.signature)
            .is_ok()
    }

    fn encode_into(&self, w: &mut TlvWriter) {
        w.bytes(TAG_PUBLIC_KEY, &self.public_key)
            .bytes(TAG_SIGNATURE, &self.signature);
    }

    fn decode(mut r: TlvReader) -> Result<AskCert, EncodingError> {
        let cert = AskCert {
            public_key: r.expect_array(TAG_PUBLIC_KEY)?,
            signature: r.expect_array(TAG_SIGNATURE)?,
        };
        r.finish()?;
        Ok(cert)
    }
}

/// The full evidence bundle a CVM presents: report + signature + the VCEK
/// chain needed to appraise it offline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnpEvidence {
    pub report: SnpReport,
    pub report_signature: [u8; 64],
    pub vcek: VcekCert,
    pub ask: AskCert,
}

impl SnpEvidence {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.nested(TAG_REPORT, |w| self.report.encode_into(w))
            .bytes(TAG_REPORT_SIG, &self.report_signature)
            .nested(TAG_VCEK, |w| self.vcek.encode_into(w))
            .nested(TAG_ASK, |w| self.ask.encode_into(w));
        [&SNP_EVIDENCE_MAGIC[..], &w.finish()].concat()
    }

    pub fn decode(bytes: &[u8]) -> Result<SnpEvidence, EncodingError> {
        let payload = bytes
            .strip_prefix(&SNP_EVIDENCE_MAGIC[..])
            .ok_or_else(|| EncodingError::Malformed("not SNP evidence (bad magic)".into()))?;
        let mut r = TlvReader::new(payload);
        let evidence = SnpEvidence {
            report: SnpReport::decode(r.expect_nested(TAG_REPORT)?)?,
            report_signature: r.expect_array(TAG_REPORT_SIG)?,
            vcek: VcekCert::decode(r.expect_nested(TAG_VCEK)?)?,
            ask: AskCert::decode(r.expect_nested(TAG_ASK)?)?,
        };
        r.finish()?;
        Ok(evidence)
    }
}

/// The model AMD key hierarchy: ARK at the root, ASK below it, issuing
/// per-chip VCEKs. One `AmdRoot` anchors a whole SNP fleet, the way one
/// `AttestationService` anchors the SGX fleet.
pub struct AmdRoot {
    ark: SigningKey,
    ask: SigningKey,
    ask_cert: AskCert,
}

impl AmdRoot {
    pub fn new(seed: &[u8]) -> AmdRoot {
        let ark = SigningKey::from_seed(&sha256(&[b"vnfguard-snp-ark", seed].concat()));
        let ask = SigningKey::from_seed(&sha256(&[b"vnfguard-snp-ask", seed].concat()));
        let ask_public = *ask.public_key().as_bytes();
        let ask_cert = AskCert {
            public_key: ask_public,
            signature: ark.sign(&AskCert::signed_bytes(&ask_public)),
        };
        AmdRoot { ark, ask, ask_cert }
    }

    /// The ARK public key relying parties pin.
    pub fn ark_public(&self) -> VerifyingKey {
        self.ark.public_key()
    }

    /// The ARK-signed ASK certificate distributed with evidence.
    pub fn ask_cert(&self) -> AskCert {
        self.ask_cert.clone()
    }

    /// Endorse a chip key at a TCB version, valid until `not_after`.
    pub fn issue_vcek(&self, public_key: [u8; 32], tcb_version: u64, not_after: u64) -> VcekCert {
        VcekCert {
            public_key,
            tcb_version,
            not_after,
            signature: self
                .ask
                .sign(&VcekCert::signed_bytes(&public_key, tcb_version, not_after)),
        }
    }
}

/// Seeded misbehaviors an [`SnpPlatform`] can be provisioned with, for
/// drilling refusal paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnpFault {
    /// Sign reports with a key the VCEK does not endorse.
    ForgedSignature,
    /// Present a properly signed but long-expired VCEK.
    StaleVcek,
    /// Set the debug bit in the guest policy.
    DebugPolicy,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A (simulated) SEV-SNP machine: holds the chip's VCEK private key, its
/// ASK/VCEK certificates, and the launch measurement of the CVM image it
/// booted. Endorsement collateral (including a deliberately stale VCEK for
/// the fault hook) is captured at provisioning time, so faulted platforms
/// need no later access to the [`AmdRoot`].
pub struct SnpPlatform {
    vcek_key: SigningKey,
    vcek_fresh: VcekCert,
    vcek_stale: VcekCert,
    ask: AskCert,
    measurement: [u8; 48],
    tcb_version: u64,
    fault: Option<SnpFault>,
    forge_key: SigningKey,
}

impl SnpPlatform {
    /// Provision a chip under `root`: derive the VCEK pair from `seed`,
    /// obtain fresh (and, for fault drills, stale) endorsements at
    /// `tcb_version`, and record the booted image's launch measurement.
    pub fn provision(
        root: &AmdRoot,
        seed: &[u8],
        measurement: [u8; 48],
        tcb_version: u64,
    ) -> SnpPlatform {
        let vcek_key = SigningKey::from_seed(&sha256(&[b"vnfguard-snp-vcek", seed].concat()));
        let vcek_public = *vcek_key.public_key().as_bytes();
        // The fault RNG is deliberately local (splitmix64 over a seed
        // digest): relying-party DRBG streams are replayed byte-for-byte
        // by oracle twins and must never observe platform faults.
        let mut fault_rng =
            u64::from_be_bytes(sha256(&[seed, b".fault"].concat())[..8].try_into().expect("8"));
        let forge_seed = sha256(&splitmix(&mut fault_rng).to_be_bytes());
        SnpPlatform {
            vcek_fresh: root.issue_vcek(vcek_public, tcb_version, u64::MAX),
            vcek_stale: root.issue_vcek(vcek_public, tcb_version, 1),
            vcek_key,
            ask: root.ask_cert(),
            measurement,
            tcb_version,
            fault: None,
            forge_key: SigningKey::from_seed(&forge_seed),
        }
    }

    /// Arm one of the seeded fault hooks.
    pub fn with_fault(mut self, fault: SnpFault) -> SnpPlatform {
        self.fault = Some(fault);
        self
    }

    pub fn set_fault(&mut self, fault: Option<SnpFault>) {
        self.fault = fault;
    }

    pub fn fault(&self) -> Option<SnpFault> {
        self.fault
    }

    /// Launch measurement of the CVM image this platform booted.
    pub fn launch_measurement(&self) -> [u8; 48] {
        self.measurement
    }

    pub fn tcb_version(&self) -> u64 {
        self.tcb_version
    }

    /// Produce an evidence bundle for a workload measuring to
    /// `measurement`, binding `report_data`. Fault hooks apply here.
    pub fn attest(&self, measurement: [u8; 48], report_data: [u8; 64]) -> Vec<u8> {
        let mut guest_policy = 0u64;
        if self.fault == Some(SnpFault::DebugPolicy) {
            guest_policy |= POLICY_DEBUG_BIT;
        }
        let report = SnpReport {
            version: SNP_REPORT_VERSION,
            guest_policy,
            measurement,
            report_data,
            tcb_version: self.tcb_version,
        };
        let signer = if self.fault == Some(SnpFault::ForgedSignature) {
            &self.forge_key
        } else {
            &self.vcek_key
        };
        let vcek = if self.fault == Some(SnpFault::StaleVcek) {
            self.vcek_stale.clone()
        } else {
            self.vcek_fresh.clone()
        };
        SnpEvidence {
            report_signature: signer.sign(&report.signing_bytes()),
            report,
            vcek,
            ask: self.ask.clone(),
        }
        .encode()
    }

    /// Evidence for the platform's own CVM (host attestation).
    pub fn attest_self(&self, report_data: [u8; 64]) -> Vec<u8> {
        self.attest(self.measurement, report_data)
    }
}

/// Offline SNP appraiser: pins an ARK public key, walks the
/// ARK → ASK → VCEK → report chain, checks VCEK freshness against the
/// deployment clock, and distills the normalized appraisal. No service
/// round-trip; [`crate::Availability::Available`] always.
#[derive(Clone)]
pub struct SnpVerifier {
    ark: VerifyingKey,
    clock: SimClock,
    min_tcb: u64,
}

impl SnpVerifier {
    pub fn new(ark: VerifyingKey, clock: SimClock) -> SnpVerifier {
        SnpVerifier {
            ark,
            clock,
            min_tcb: 0,
        }
    }

    /// Reports below this TCB version appraise as
    /// [`TcbStatus::OutOfDate`] (policy decides acceptance).
    pub fn with_min_tcb(mut self, min_tcb: u64) -> SnpVerifier {
        self.min_tcb = min_tcb;
        self
    }
}

impl AttestationBackend for SnpVerifier {
    fn kind(&self) -> BackendKind {
        BackendKind::SevSnp
    }

    fn appraise(
        &mut self,
        evidence: &[u8],
        _nonce: &[u8],
    ) -> Result<EvidenceAppraisal, AttestError> {
        let evidence = SnpEvidence::decode(evidence)
            .map_err(|e| AttestError::Encoding(e.to_string()))?;
        if !evidence.ask.verify(&self.ark) {
            return Err(AttestError::Rejected(
                "SNP ASK certificate not signed by the pinned ARK".into(),
            ));
        }
        let ask_key = VerifyingKey::from_bytes(&evidence.ask.public_key);
        if !evidence.vcek.verify(&ask_key) {
            return Err(AttestError::Rejected(
                "SNP VCEK certificate not signed by the ASK".into(),
            ));
        }
        if evidence.vcek.not_after < self.clock.now() {
            return Err(AttestError::Rejected(format!(
                "SNP VCEK endorsement expired at {} (now {})",
                evidence.vcek.not_after,
                self.clock.now()
            )));
        }
        let vcek_key = VerifyingKey::from_bytes(&evidence.vcek.public_key);
        if vcek_key
            .verify(&evidence.report.signing_bytes(), &evidence.report_signature)
            .is_err()
        {
            return Err(AttestError::Rejected(
                "SNP report signature does not verify under the VCEK".into(),
            ));
        }
        if evidence.report.version != SNP_REPORT_VERSION {
            return Err(AttestError::Rejected(format!(
                "SNP report version {} unsupported",
                evidence.report.version
            )));
        }
        if evidence.report.tcb_version > evidence.vcek.tcb_version {
            return Err(AttestError::Rejected(
                "SNP report claims a TCB newer than its VCEK endorsement".into(),
            ));
        }
        let mut advisories = Vec::new();
        let (tcb, native_status) = if evidence.report.tcb_version < self.min_tcb {
            advisories.push(format!(
                "AMD-TCB-BELOW-BASELINE: report {} < baseline {}",
                evidence.report.tcb_version, self.min_tcb
            ));
            (
                TcbStatus::OutOfDate,
                format!(
                    "TCB_BELOW_BASELINE ({} < {})",
                    evidence.report.tcb_version, self.min_tcb
                ),
            )
        } else {
            (TcbStatus::UpToDate, "TCB_CURRENT".to_string())
        };
        Ok(EvidenceAppraisal {
            backend: BackendKind::SevSnp,
            measurement: normalize_measurement(&evidence.report.measurement),
            report_data: evidence.report.report_data,
            debug: evidence.report.guest_policy & POLICY_DEBUG_BIT != 0,
            tcb,
            advisories,
            native_status,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AppraisalPolicy;

    fn fixture() -> (AmdRoot, SnpPlatform, SnpVerifier) {
        let root = AmdRoot::new(b"amd root");
        let platform = SnpPlatform::provision(
            &root,
            b"chip-0",
            launch_measurement(b"cvm image"),
            7,
        );
        let verifier = SnpVerifier::new(root.ark_public(), SimClock::at(1_700_000_000));
        (root, platform, verifier)
    }

    #[test]
    fn valid_evidence_appraises_offline() {
        let (_root, platform, mut verifier) = fixture();
        let report_data = [9u8; 64];
        let evidence = platform.attest_self(report_data);
        let appraisal = verifier.appraise(&evidence, b"unused").unwrap();
        assert_eq!(appraisal.backend, BackendKind::SevSnp);
        assert_eq!(appraisal.tcb, TcbStatus::UpToDate);
        assert_eq!(appraisal.report_data, report_data);
        assert_eq!(
            appraisal.measurement,
            normalize_measurement(&platform.launch_measurement())
        );
        assert!(!appraisal.debug);
        assert!(AppraisalPolicy::strict().check(&appraisal).is_ok());
    }

    #[test]
    fn forged_signature_rejected() {
        let (_root, platform, mut verifier) = fixture();
        let platform = platform.with_fault(SnpFault::ForgedSignature);
        let err = verifier
            .appraise(&platform.attest_self([0; 64]), b"")
            .unwrap_err();
        assert!(matches!(err, AttestError::Rejected(_)), "{err:?}");
    }

    #[test]
    fn stale_vcek_rejected() {
        let (_root, platform, mut verifier) = fixture();
        let platform = platform.with_fault(SnpFault::StaleVcek);
        let err = verifier
            .appraise(&platform.attest_self([0; 64]), b"")
            .unwrap_err();
        match err {
            AttestError::Rejected(msg) => assert!(msg.contains("expired"), "{msg}"),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn debug_policy_surfaces_and_strict_policy_refuses() {
        let (_root, platform, mut verifier) = fixture();
        let platform = platform.with_fault(SnpFault::DebugPolicy);
        let appraisal = verifier
            .appraise(&platform.attest_self([0; 64]), b"")
            .unwrap();
        assert!(appraisal.debug);
        assert!(AppraisalPolicy::strict().check(&appraisal).is_err());
        assert!(AppraisalPolicy::lenient().check(&appraisal).is_err());
    }

    #[test]
    fn non_snp_bytes_are_an_encoding_error() {
        let (_root, _platform, mut verifier) = fixture();
        let err = verifier.appraise(b"clearly not snp evidence", b"").unwrap_err();
        assert!(matches!(err, AttestError::Encoding(_)), "{err:?}");
    }

    #[test]
    fn wrong_root_rejects_chain() {
        let (_root, platform, _verifier) = fixture();
        let other_root = AmdRoot::new(b"some other amd");
        let mut verifier =
            SnpVerifier::new(other_root.ark_public(), SimClock::at(1_700_000_000));
        let err = verifier
            .appraise(&platform.attest_self([0; 64]), b"")
            .unwrap_err();
        match err {
            AttestError::Rejected(msg) => assert!(msg.contains("ARK"), "{msg}"),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn tampered_measurement_breaks_report_signature() {
        let (_root, platform, mut verifier) = fixture();
        let mut evidence = SnpEvidence::decode(&platform.attest_self([0; 64])).unwrap();
        evidence.report.measurement[0] ^= 0xff;
        let err = verifier.appraise(&evidence.encode(), b"").unwrap_err();
        assert!(matches!(err, AttestError::Rejected(_)), "{err:?}");
    }

    #[test]
    fn below_baseline_tcb_is_out_of_date() {
        let root = AmdRoot::new(b"amd root");
        let platform =
            SnpPlatform::provision(&root, b"chip-1", launch_measurement(b"img"), 3);
        let mut verifier =
            SnpVerifier::new(root.ark_public(), SimClock::at(1_700_000_000)).with_min_tcb(5);
        let appraisal = verifier.appraise(&platform.attest_self([0; 64]), b"").unwrap();
        assert_eq!(appraisal.tcb, TcbStatus::OutOfDate);
        assert!(AppraisalPolicy::strict().check(&appraisal).is_err());
        assert!(AppraisalPolicy::lenient().check(&appraisal).is_ok());
    }
}
