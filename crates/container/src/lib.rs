//! # vnfguard-container
//!
//! The container deployment substrate: content-addressed images, a
//! registry, and a container host whose executions feed the Linux IMA
//! model.
//!
//! The paper deploys VNFs with Docker 1.12 inside containers on an
//! IMA-measuring host (§3). This crate reproduces the pieces the
//! verification workflow observes:
//!
//! - **images** are stacks of content-addressed layers plus an entrypoint
//!   binary and (for guarded VNFs) the credential-enclave image whose
//!   MRENCLAVE the Verification Manager expects;
//! - the **registry** serves images and verifies content addresses on
//!   pull, so a tampered registry is detected at deploy time;
//! - the **host** measures every started container's layers and entrypoint
//!   into its IMA measurement list, which is what the integrity attestation
//!   enclave later quotes.

pub mod host;
pub mod image;
pub mod registry;

pub use host::{Container, ContainerHost, ContainerState};
pub use image::{Image, ImageBuilder, Layer};
pub use registry::Registry;

/// Errors from the container substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The requested image (name:tag) is not in the registry.
    ImageNotFound(String),
    /// A pulled layer's content does not match its declared digest.
    DigestMismatch { layer: usize },
    /// Container id not found on this host.
    NoSuchContainer(String),
    /// The container is not in a state permitting the operation.
    InvalidState { container: String, state: String },
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::ImageNotFound(name) => write!(f, "image not found: {name}"),
            ContainerError::DigestMismatch { layer } => {
                write!(f, "layer {layer} content does not match its digest")
            }
            ContainerError::NoSuchContainer(id) => write!(f, "no such container: {id}"),
            ContainerError::InvalidState { container, state } => {
                write!(f, "container {container} is {state}")
            }
        }
    }
}

impl std::error::Error for ContainerError {}
