//! Content-addressed container images.

use vnfguard_crypto::sha2::{sha256, Sha256};

/// One image layer: a content-addressed blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    pub digest: [u8; 32],
    pub content: Vec<u8>,
}

impl Layer {
    pub fn from_content(content: &[u8]) -> Layer {
        Layer {
            digest: sha256(content),
            content: content.to_vec(),
        }
    }

    /// Does the content still match the digest?
    pub fn verify(&self) -> bool {
        sha256(&self.content) == self.digest
    }

    pub fn size(&self) -> usize {
        self.content.len()
    }
}

/// A built image: layers, entrypoint binary, optional enclave image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    pub name: String,
    pub tag: String,
    pub layers: Vec<Layer>,
    /// The VNF application binary executed as pid 1.
    pub entrypoint: Layer,
    /// The credential-enclave image shipped inside the container, if the
    /// VNF is enclave-guarded. Its measurement is what the Verification
    /// Manager expects to see in the TEE quote.
    pub enclave_image: Option<Vec<u8>>,
}

impl Image {
    /// Full image reference `name:tag`.
    pub fn reference(&self) -> String {
        format!("{}:{}", self.name, self.tag)
    }

    /// The image digest: a hash over the manifest (layer digests, the
    /// entrypoint digest and the enclave image).
    pub fn digest(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"manifest");
        h.update(self.name.as_bytes());
        h.update(self.tag.as_bytes());
        for layer in &self.layers {
            h.update(&layer.digest);
        }
        h.update(&self.entrypoint.digest);
        if let Some(enclave) = &self.enclave_image {
            h.update(&sha256(enclave));
        }
        h.finalize()
    }

    /// Verify every layer against its digest.
    pub fn verify(&self) -> bool {
        self.entrypoint.verify() && self.layers.iter().all(Layer::verify)
    }

    pub fn total_size(&self) -> usize {
        self.layers.iter().map(Layer::size).sum::<usize>() + self.entrypoint.size()
    }
}

/// Fluent builder for images.
pub struct ImageBuilder {
    name: String,
    tag: String,
    layers: Vec<Layer>,
    entrypoint: Option<Layer>,
    enclave_image: Option<Vec<u8>>,
}

impl ImageBuilder {
    pub fn new(name: &str, tag: &str) -> ImageBuilder {
        ImageBuilder {
            name: name.to_string(),
            tag: tag.to_string(),
            layers: Vec::new(),
            entrypoint: None,
            enclave_image: None,
        }
    }

    /// Add a filesystem layer.
    pub fn layer(mut self, content: &[u8]) -> ImageBuilder {
        self.layers.push(Layer::from_content(content));
        self
    }

    /// Set the entrypoint binary.
    pub fn entrypoint(mut self, binary: &[u8]) -> ImageBuilder {
        self.entrypoint = Some(Layer::from_content(binary));
        self
    }

    /// Ship a credential-enclave image inside the container.
    pub fn enclave_image(mut self, enclave: &[u8]) -> ImageBuilder {
        self.enclave_image = Some(enclave.to_vec());
        self
    }

    /// Build; an image always has an entrypoint (a base shell by default).
    pub fn build(self) -> Image {
        Image {
            name: self.name,
            tag: self.tag,
            layers: self.layers,
            entrypoint: self
                .entrypoint
                .unwrap_or_else(|| Layer::from_content(b"/bin/sh (base)")),
            enclave_image: self.enclave_image,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        ImageBuilder::new("vnf-firewall", "1.0")
            .layer(b"base os layer")
            .layer(b"libs layer")
            .entrypoint(b"firewall binary v1")
            .enclave_image(b"credential enclave v1")
            .build()
    }

    #[test]
    fn digest_is_stable() {
        assert_eq!(sample().digest(), sample().digest());
    }

    #[test]
    fn digest_covers_every_part() {
        let base = sample().digest();
        let mut image = sample();
        image.layers[0] = Layer::from_content(b"base os layer v2");
        assert_ne!(image.digest(), base, "layer change");

        let mut image = sample();
        image.entrypoint = Layer::from_content(b"firewall binary TROJANED");
        assert_ne!(image.digest(), base, "entrypoint change");

        let mut image = sample();
        image.enclave_image = Some(b"evil enclave".to_vec());
        assert_ne!(image.digest(), base, "enclave change");

        let mut image = sample();
        image.tag = "1.1".into();
        assert_ne!(image.digest(), base, "tag change");
    }

    #[test]
    fn verification_detects_layer_tamper() {
        let mut image = sample();
        assert!(image.verify());
        image.layers[1].content = b"swapped content".to_vec();
        assert!(!image.verify());
    }

    #[test]
    fn reference_format() {
        assert_eq!(sample().reference(), "vnf-firewall:1.0");
    }

    #[test]
    fn default_entrypoint() {
        let image = ImageBuilder::new("minimal", "latest").build();
        assert!(image.verify());
        assert!(image.enclave_image.is_none());
    }

    #[test]
    fn sizes() {
        let image = sample();
        assert_eq!(
            image.total_size(),
            b"base os layer".len() + b"libs layer".len() + b"firewall binary v1".len()
        );
    }
}
