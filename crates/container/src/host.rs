//! The container host: runs containers and feeds the IMA measurement list.

use crate::image::Image;
use crate::ContainerError;
use vnfguard_ima::list::MeasurementList;
use vnfguard_ima::policy::{ImaPolicy, MeasureEvent};

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    Running,
    Stopped,
}

impl ContainerState {
    fn as_str(self) -> &'static str {
        match self {
            ContainerState::Running => "running",
            ContainerState::Stopped => "stopped",
        }
    }
}

/// A deployed container instance.
#[derive(Debug, Clone)]
pub struct Container {
    pub id: String,
    pub image_reference: String,
    pub image_digest: [u8; 32],
    pub state: ContainerState,
    /// The enclave image carried in the container (if enclave-guarded).
    pub enclave_image: Option<Vec<u8>>,
}

/// The measured container host: OS components + container runtime + IMA.
pub struct ContainerHost {
    pub hostname: String,
    policy: ImaPolicy,
    ima: MeasurementList,
    containers: Vec<Container>,
    next_container: u64,
}

impl ContainerHost {
    /// Boot a host. `os_components` are (path, content) pairs measured at
    /// boot per policy — the kernel, the container runtime, system daemons.
    pub fn boot(
        hostname: &str,
        policy: ImaPolicy,
        os_components: &[(&str, &[u8])],
    ) -> ContainerHost {
        let mut host = ContainerHost {
            hostname: hostname.to_string(),
            policy,
            ima: MeasurementList::new(hostname.as_bytes()),
            containers: Vec::new(),
            next_container: 1,
        };
        for (path, content) in os_components {
            host.measure_exec(path, content);
        }
        host
    }

    /// A host with the standard trusted software stack of the paper's demo
    /// (Ubuntu 16.04 + Docker 1.12.2).
    pub fn standard(hostname: &str) -> ContainerHost {
        ContainerHost::boot(
            hostname,
            ImaPolicy::container_host(),
            &[
                ("/boot/vmlinuz-4.4.0-51-generic", b"kernel 4.4.0-51"),
                ("/usr/bin/dockerd", b"docker daemon 1.12.2"),
                ("/usr/bin/containerd", b"containerd 0.2.x"),
                ("/sbin/init", b"systemd 229"),
            ],
        )
    }

    fn measure_exec(&mut self, path: &str, content: &[u8]) {
        if self.policy.should_measure(&MeasureEvent::exec(path)) {
            self.ima.measure_file(path, content);
        }
    }

    /// The host's current measurement list (what the integrity attestation
    /// enclave reads and quotes).
    pub fn measurement_list(&self) -> &MeasurementList {
        &self.ima
    }

    /// Start a container from a pulled image. Every layer and the
    /// entrypoint are measured under the image store path, then the
    /// entrypoint is measured as an execution.
    pub fn run(&mut self, image: &Image) -> Result<&Container, ContainerError> {
        if !image.verify() {
            return Err(ContainerError::DigestMismatch { layer: 0 });
        }
        let id = format!("ct-{:04}", self.next_container);
        self.next_container += 1;
        for (i, layer) in image.layers.iter().enumerate() {
            let path = format!("/var/lib/docker/overlay2/{id}/layer-{i}");
            if self
                .policy
                .should_measure(&MeasureEvent::exec(&path))
            {
                self.ima.measure_file(&path, &layer.content);
            }
        }
        let entry_path = format!("/var/lib/docker/overlay2/{id}/entrypoint");
        self.measure_exec(&entry_path, &image.entrypoint.content);

        self.containers.push(Container {
            id,
            image_reference: image.reference(),
            image_digest: image.digest(),
            state: ContainerState::Running,
            enclave_image: image.enclave_image.clone(),
        });
        Ok(self.containers.last().expect("just pushed"))
    }

    /// Stop a running container.
    pub fn stop(&mut self, id: &str) -> Result<(), ContainerError> {
        let container = self
            .containers
            .iter_mut()
            .find(|c| c.id == id)
            .ok_or_else(|| ContainerError::NoSuchContainer(id.to_string()))?;
        if container.state != ContainerState::Running {
            return Err(ContainerError::InvalidState {
                container: id.to_string(),
                state: container.state.as_str().to_string(),
            });
        }
        container.state = ContainerState::Stopped;
        Ok(())
    }

    pub fn container(&self, id: &str) -> Option<&Container> {
        self.containers.iter().find(|c| c.id == id)
    }

    pub fn containers(&self) -> &[Container] {
        &self.containers
    }

    pub fn running_count(&self) -> usize {
        self.containers
            .iter()
            .filter(|c| c.state == ContainerState::Running)
            .count()
    }

    /// Adversarial helper: the host runtime is replaced by a trojaned
    /// binary (e.g. via a container-escape exploit, paper §1). IMA records
    /// the new execution, making the compromise visible to appraisal.
    pub fn compromise_runtime(&mut self, trojaned_dockerd: &[u8]) {
        self.measure_exec("/usr/bin/dockerd", trojaned_dockerd);
    }

    /// Adversarial helper: run an unmeasured binary by exploiting a policy
    /// gap (executions under /dev are not measured by the tcb policy).
    pub fn stealthy_execution(&mut self, path: &str, content: &[u8]) -> bool {
        let measured = self.policy.should_measure(&MeasureEvent::exec(path));
        if measured {
            self.ima.measure_file(path, content);
        }
        measured
    }
}

impl std::fmt::Debug for ContainerHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContainerHost")
            .field("hostname", &self.hostname)
            .field("containers", &self.containers.len())
            .field("ima_entries", &self.ima.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;
    use vnfguard_ima::appraisal::{AppraisalPolicy, ReferenceDatabase, Verdict};

    fn vnf_image() -> Image {
        ImageBuilder::new("vnf-fw", "1.0")
            .layer(b"rootfs")
            .entrypoint(b"fw binary")
            .enclave_image(b"cred enclave")
            .build()
    }

    #[test]
    fn boot_measures_os_components() {
        let host = ContainerHost::standard("host-1");
        let paths: Vec<&str> = host
            .measurement_list()
            .entries()
            .iter()
            .map(|e| e.path.as_str())
            .collect();
        assert!(paths.contains(&"/usr/bin/dockerd"));
        assert!(paths.contains(&"boot_aggregate"));
    }

    #[test]
    fn running_container_extends_ima() {
        let mut host = ContainerHost::standard("host-1");
        let before = host.measurement_list().len();
        let image = vnf_image();
        let container = host.run(&image).unwrap();
        assert_eq!(container.state, ContainerState::Running);
        assert_eq!(container.enclave_image.as_deref(), Some(&b"cred enclave"[..]));
        // 1 layer + 1 entrypoint measured.
        assert_eq!(host.measurement_list().len(), before + 2);
        assert_eq!(host.running_count(), 1);
    }

    #[test]
    fn corrupted_image_refused() {
        let mut host = ContainerHost::standard("host-1");
        let mut image = vnf_image();
        image.layers[0].content = b"swapped".to_vec();
        assert!(host.run(&image).is_err());
        assert_eq!(host.running_count(), 0);
    }

    #[test]
    fn stop_lifecycle() {
        let mut host = ContainerHost::standard("host-1");
        let id = host.run(&vnf_image()).unwrap().id.clone();
        host.stop(&id).unwrap();
        assert!(matches!(
            host.stop(&id),
            Err(ContainerError::InvalidState { .. })
        ));
        assert!(matches!(
            host.stop("ct-9999"),
            Err(ContainerError::NoSuchContainer(_))
        ));
        assert_eq!(host.running_count(), 0);
    }

    #[test]
    fn appraisal_detects_trojaned_vnf_image() {
        // Reference DB knows the good image content.
        let mut db = ReferenceDatabase::new();
        db.allow_content("/boot/vmlinuz-4.4.0-51-generic", b"kernel 4.4.0-51");
        db.allow_content("/usr/bin/dockerd", b"docker daemon 1.12.2");
        db.allow_content("/usr/bin/containerd", b"containerd 0.2.x");
        db.allow_content("/sbin/init", b"systemd 229");
        db.allow_content("/var/lib/docker/overlay2/ct-0001/layer-0", b"rootfs");
        db.allow_content("/var/lib/docker/overlay2/ct-0001/entrypoint", b"fw binary");

        let mut clean = ContainerHost::standard("clean");
        clean.run(&vnf_image()).unwrap();
        let verdict = db
            .appraise(clean.measurement_list(), &AppraisalPolicy::default())
            .verdict;
        assert_eq!(verdict, Verdict::Trusted);

        // Same flow with a trojaned entrypoint: appraisal flags it.
        let mut dirty = ContainerHost::standard("dirty");
        let bad = ImageBuilder::new("vnf-fw", "1.0")
            .layer(b"rootfs")
            .entrypoint(b"fw binary WITH IMPLANT")
            .enclave_image(b"cred enclave")
            .build();
        dirty.run(&bad).unwrap();
        let result = db.appraise(dirty.measurement_list(), &AppraisalPolicy::default());
        assert_eq!(result.verdict, Verdict::Mismatch);
        assert!(result.mismatched[0].contains("entrypoint"));
    }

    #[test]
    fn runtime_compromise_is_recorded() {
        let mut host = ContainerHost::standard("host-1");
        let before = host.measurement_list().len();
        host.compromise_runtime(b"docker daemon 1.12.2 + rootkit");
        assert_eq!(host.measurement_list().len(), before + 1);
    }

    #[test]
    fn policy_gap_exists_for_dev_paths() {
        // Documents the limitation the TPM extension (and policy review)
        // addresses: /dev executions are invisible to the tcb policy.
        let mut host = ContainerHost::standard("host-1");
        let before = host.measurement_list().len();
        let measured = host.stealthy_execution("/dev/shm/implant", b"evil");
        assert!(!measured);
        assert_eq!(host.measurement_list().len(), before);
        // Normal paths are measured.
        assert!(host.stealthy_execution("/usr/local/bin/tool", b"x"));
    }

    #[test]
    fn container_ids_unique() {
        let mut host = ContainerHost::standard("host-1");
        let a = host.run(&vnf_image()).unwrap().id.clone();
        let b = host.run(&vnf_image()).unwrap().id.clone();
        assert_ne!(a, b);
        assert_eq!(host.containers().len(), 2);
    }
}
