//! The image registry.

use crate::image::Image;
use crate::ContainerError;
use std::collections::HashMap;

/// A content-addressed image registry.
///
/// Pulls verify layer digests, so tampering *in* the registry (or on the
/// path from it) is detected at deployment time — one of the integrity
/// properties the paper's workflow depends on before attestation even
/// begins.
#[derive(Debug, Default)]
pub struct Registry {
    images: HashMap<String, Image>,
    pulls: u64,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Push an image under its `name:tag` reference.
    pub fn push(&mut self, image: Image) {
        self.images.insert(image.reference(), image);
    }

    /// Pull an image, verifying all content digests.
    pub fn pull(&mut self, reference: &str) -> Result<Image, ContainerError> {
        self.pulls += 1;
        let image = self
            .images
            .get(reference)
            .ok_or_else(|| ContainerError::ImageNotFound(reference.to_string()))?;
        for (i, layer) in image.layers.iter().enumerate() {
            if !layer.verify() {
                return Err(ContainerError::DigestMismatch { layer: i });
            }
        }
        if !image.entrypoint.verify() {
            return Err(ContainerError::DigestMismatch {
                layer: image.layers.len(),
            });
        }
        Ok(image.clone())
    }

    /// Adversarial helper for tests: corrupt a stored layer's content
    /// without updating its digest (a compromised registry).
    pub fn tamper_layer(&mut self, reference: &str, layer: usize, content: &[u8]) -> bool {
        match self.images.get_mut(reference) {
            Some(image) if layer < image.layers.len() => {
                image.layers[layer].content = content.to_vec();
                true
            }
            _ => false,
        }
    }

    pub fn image_count(&self) -> usize {
        self.images.len()
    }

    pub fn pull_count(&self) -> u64 {
        self.pulls
    }

    pub fn references(&self) -> impl Iterator<Item = &str> {
        self.images.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;

    fn sample() -> Image {
        ImageBuilder::new("vnf", "1")
            .layer(b"layer-a")
            .entrypoint(b"bin")
            .build()
    }

    #[test]
    fn push_pull_roundtrip() {
        let mut registry = Registry::new();
        registry.push(sample());
        let pulled = registry.pull("vnf:1").unwrap();
        assert_eq!(pulled, sample());
        assert_eq!(registry.pull_count(), 1);
    }

    #[test]
    fn missing_image() {
        let mut registry = Registry::new();
        assert_eq!(
            registry.pull("ghost:1"),
            Err(ContainerError::ImageNotFound("ghost:1".into()))
        );
    }

    #[test]
    fn tampered_layer_detected_on_pull() {
        let mut registry = Registry::new();
        registry.push(sample());
        assert!(registry.tamper_layer("vnf:1", 0, b"evil content"));
        assert_eq!(
            registry.pull("vnf:1"),
            Err(ContainerError::DigestMismatch { layer: 0 })
        );
    }

    #[test]
    fn push_replaces_same_reference() {
        let mut registry = Registry::new();
        registry.push(sample());
        let v2 = ImageBuilder::new("vnf", "1")
            .layer(b"layer-b")
            .entrypoint(b"bin2")
            .build();
        registry.push(v2.clone());
        assert_eq!(registry.image_count(), 1);
        assert_eq!(registry.pull("vnf:1").unwrap(), v2);
    }

    #[test]
    fn tamper_out_of_range() {
        let mut registry = Registry::new();
        registry.push(sample());
        assert!(!registry.tamper_layer("vnf:1", 99, b"x"));
        assert!(!registry.tamper_layer("ghost:1", 0, b"x"));
    }
}
