//! Property tests: FlowSpec ↔ static-flow-pusher JSON is a faithful
//! round trip for every representable flow.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use vnfguard_controller::flowspec::FlowSpec;
use vnfguard_dataplane::flow::{FlowAction, FlowMatch};
use vnfguard_dataplane::wire::Protocol;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(any::<u16>()),
        proptest::option::of(arb_ip()),
        proptest::option::of(arb_ip()),
        proptest::option::of(any::<u8>().prop_map(Protocol::from_number)),
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(|(in_port, ip_src, ip_dst, protocol, tp_src, tp_dst)| FlowMatch {
            in_port,
            eth_src: None,
            eth_dst: None,
            ip_src,
            ip_dst,
            protocol,
            tp_src,
            tp_dst,
        })
}

fn arb_action() -> impl Strategy<Value = FlowAction> {
    prop_oneof![
        any::<u16>().prop_map(FlowAction::Output),
        Just(FlowAction::Drop),
        Just(FlowAction::Controller),
        arb_ip().prop_map(FlowAction::SetIpDst),
        arb_ip().prop_map(FlowAction::SetIpSrc),
        any::<u16>().prop_map(FlowAction::SetTpDst),
    ]
}

fn arb_spec() -> impl Strategy<Value = FlowSpec> {
    (
        "[a-z][a-z0-9-]{0,20}",
        any::<u64>(),
        any::<u16>(),
        arb_match(),
        proptest::collection::vec(arb_action(), 1..5),
    )
        .prop_map(|(name, dpid, priority, matcher, actions)| FlowSpec {
            name,
            dpid,
            priority,
            matcher,
            actions,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_roundtrip(spec in arb_spec()) {
        let doc = spec.to_json();
        let decoded = FlowSpec::from_json(&doc)
            .unwrap_or_else(|e| panic!("failed to reparse {doc}: {e}"));
        prop_assert_eq!(decoded, spec);
    }

    #[test]
    fn to_entry_is_lossless_for_table_semantics(spec in arb_spec()) {
        let entry = spec.to_entry();
        prop_assert_eq!(&entry.name, &spec.name);
        prop_assert_eq!(entry.priority, spec.priority);
        prop_assert_eq!(&entry.matcher, &spec.matcher);
        prop_assert_eq!(&entry.actions, &spec.actions);
    }

    #[test]
    fn from_json_never_panics_on_arbitrary_objects(
        fields in proptest::collection::vec(("[a-z_]{1,10}", "[ -~]{0,20}"), 0..8)
    ) {
        let mut doc = vnfguard_encoding::Json::object();
        for (k, v) in fields {
            doc.set(&k, v.as_str());
        }
        let _ = FlowSpec::from_json(&doc);
    }
}
