//! The north-bound REST client used by the Verification Manager, operator
//! tooling and (non-enclave) VNFs.
//!
//! Enclave-guarded VNFs do *not* use this client directly: their TLS
//! session lives inside the credential enclave (`vnfguard-vnf`). This
//! client exists for the plain/HTTPS modes and as the baseline in E4.

use crate::clock::SimClock;
use crate::flowspec::FlowSpec;
use crate::ControllerError;
use std::sync::Arc;
use vnfguard_crypto::drbg::SystemEntropy;
use vnfguard_encoding::Json;
use vnfguard_net::fabric::Network;
use vnfguard_net::http::{roundtrip, Request, Response, Status};
use vnfguard_net::stream::Duplex;
use vnfguard_pki::TrustStore;
use vnfguard_tls::handshake::{client_handshake, ClientConfig};
use vnfguard_telemetry::TraceContext;
use vnfguard_tls::signer::IdentitySigner;
use vnfguard_tls::stream::TlsStream;

enum Transport {
    Plain(Duplex),
    Tls(Box<TlsStream<Duplex>>),
}

// Both transports satisfy Read + Write; dispatch happens per-request.

/// A connected north-bound API client (persistent connection).
pub struct NorthboundClient {
    transport: Transport,
    /// Trace context injected into every request as a `traceparent` header.
    trace: Option<TraceContext>,
}

impl NorthboundClient {
    /// Connect without any transport security (controller HTTP mode).
    pub fn connect_plain(network: &Network, address: &str) -> Result<NorthboundClient, ControllerError> {
        let stream = network.connect(address)?;
        Ok(NorthboundClient {
            transport: Transport::Plain(stream),
            trace: None,
        })
    }

    /// Connect over TLS (controller HTTPS / trusted HTTPS modes).
    ///
    /// `identity` provides the client certificate under trusted HTTPS; pass
    /// `None` against plain-HTTPS controllers.
    pub fn connect_tls(
        network: &Network,
        address: &str,
        trust: Arc<TrustStore>,
        identity: Option<Arc<dyn IdentitySigner>>,
        expected_server_cn: Option<&str>,
        now: u64,
    ) -> Result<NorthboundClient, ControllerError> {
        let raw = network.connect(address)?;
        let mut config = ClientConfig::new(trust, now);
        if let Some(identity) = identity {
            config = config.with_identity(identity);
        }
        if let Some(cn) = expected_server_cn {
            config = config.expecting_server(cn);
        }
        let mut rng = SystemEntropy;
        let (stream, _info) = client_handshake(raw, &config, &mut rng)?;
        Ok(NorthboundClient {
            transport: Transport::Tls(Box::new(stream)),
            trace: None,
        })
    }

    /// Propagate `ctx` as the `traceparent` header on subsequent requests
    /// (pass `None` to stop propagating).
    pub fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.trace = ctx;
    }

    /// Raw request/response exchange.
    pub fn request(&mut self, request: &Request) -> Result<Response, ControllerError> {
        let traced;
        let request = match &self.trace {
            Some(ctx) if ctx.is_valid() && !request.headers.contains_key("traceparent") => {
                traced = request.clone().with_trace(ctx);
                &traced
            }
            _ => request,
        };
        match &mut self.transport {
            Transport::Plain(stream) => Ok(roundtrip(stream, request)?),
            Transport::Tls(stream) => Ok(roundtrip(stream.as_mut(), request)?),
        }
    }

    /// Like [`request`](Self::request), but honors overload backpressure: a
    /// 503 carrying a `retry-after` hint waits the hinted seconds out on the
    /// sim clock and retries, up to `max_attempts` total tries. The last
    /// shed response is returned if every attempt was refused; responses
    /// without a retry hint (including other errors) return immediately.
    pub fn request_with_backpressure(
        &mut self,
        request: &Request,
        clock: &SimClock,
        max_attempts: u32,
    ) -> Result<Response, ControllerError> {
        let attempts = max_attempts.max(1);
        let mut last = None;
        for _ in 0..attempts {
            let response = self.request(request)?;
            if response.status == Status::ServiceUnavailable {
                if let Some(hint) = response.retry_after_secs() {
                    clock.advance(hint.max(1));
                    last = Some(response);
                    continue;
                }
            }
            return Ok(response);
        }
        Ok(last.expect("at least one attempt ran"))
    }

    fn expect_success(response: Response) -> Result<Json, ControllerError> {
        if !response.status.is_success() {
            let message = response
                .parse_json()
                .ok()
                .and_then(|d| d.get("error").and_then(Json::as_str).map(String::from))
                .unwrap_or_default();
            return Err(ControllerError::Api {
                status: response.status.code(),
                message,
            });
        }
        Ok(response.parse_json().unwrap_or(Json::Null))
    }

    /// GET the controller summary.
    pub fn summary(&mut self) -> Result<Json, ControllerError> {
        let response = self.request(&Request::get("/wm/core/controller/summary/json"))?;
        Self::expect_success(response)
    }

    /// Register a switch (simulation southbound stand-in).
    pub fn register_switch(&mut self, dpid: u64, ports: &[u16]) -> Result<(), ControllerError> {
        let body = Json::object()
            .with("dpid", format!("{dpid:016x}"))
            .with("ports", ports.iter().map(|&p| p as i64).collect::<Json>());
        let response =
            self.request(&Request::post("/wm/core/switch/register").with_json(&body))?;
        Self::expect_success(response).map(|_| ())
    }

    /// Push a static flow.
    pub fn push_flow(&mut self, spec: &FlowSpec) -> Result<(), ControllerError> {
        let response = self
            .request(&Request::post("/wm/staticflowpusher/json").with_json(&spec.to_json()))?;
        Self::expect_success(response).map(|_| ())
    }

    /// Delete a static flow by name.
    pub fn delete_flow(&mut self, name: &str) -> Result<(), ControllerError> {
        let response = self.request(
            &Request::delete("/wm/staticflowpusher/json")
                .with_json(&Json::object().with("name", name)),
        )?;
        Self::expect_success(response).map(|_| ())
    }

    /// List flows installed on a switch.
    pub fn list_flows(&mut self, dpid: u64) -> Result<Vec<FlowSpec>, ControllerError> {
        let response = self.request(&Request::get(&format!(
            "/wm/staticflowpusher/list/{dpid:016x}/json"
        )))?;
        let doc = Self::expect_success(response)?;
        let mut flows = Vec::new();
        if let Some(items) = doc.as_array() {
            for item in items {
                flows.push(FlowSpec::from_json(item).map_err(|msg| ControllerError::Api {
                    status: 200,
                    message: msg,
                })?);
            }
        }
        Ok(flows)
    }

    /// Fetch the audit log.
    pub fn audit(&mut self) -> Result<Json, ControllerError> {
        let response = self.request(&Request::get("/wm/core/audit/json"))?;
        Self::expect_success(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Controller, ControllerConfig};
    use crate::security::SecurityMode;
    use crate::SimClock;
    use vnfguard_crypto::drbg::HmacDrbg;
    use vnfguard_crypto::ed25519::SigningKey;
    use vnfguard_dataplane::flow::{FlowAction, FlowMatch};
    use vnfguard_pki::ca::{CertificateAuthority, IssueProfile};
    use vnfguard_pki::cert::{DistinguishedName, Validity};
    use vnfguard_tls::signer::LocalSigner;
    use vnfguard_tls::validate::ClientValidator;

    struct Setup {
        network: Network,
        controller: Controller,
        trust: Arc<TrustStore>,
        client_identity: Arc<LocalSigner>,
    }

    fn flow(name: &str, dpid: u64) -> FlowSpec {
        FlowSpec {
            name: name.into(),
            dpid,
            priority: 5,
            matcher: FlowMatch::any(),
            actions: vec![FlowAction::Output(1)],
        }
    }

    fn setup(mode: SecurityMode) -> Setup {
        let mut rng = HmacDrbg::new(b"client tests");
        let mut ca = CertificateAuthority::new(
            DistinguishedName::new("vm-ca"),
            Validity::new(0, u64::MAX / 2),
            &mut rng,
        );
        let clock = SimClock::at(1000);
        let server_key = SigningKey::from_seed(&[20; 32]);
        let server_cert = ca.issue(
            DistinguishedName::new("controller"),
            server_key.public_key(),
            &IssueProfile::server(),
            0,
        );
        let server_identity = Arc::new(LocalSigner::new(server_key, server_cert));
        let client_key = SigningKey::from_seed(&[21; 32]);
        let client_cert = ca.issue(
            DistinguishedName::new("vnf-1"),
            client_key.public_key(),
            &IssueProfile::vnf_client([0; 32]),
            0,
        );
        let client_identity = Arc::new(LocalSigner::new(client_key, client_cert));

        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone()).unwrap();
        let mut validator_store = TrustStore::new();
        validator_store.add_anchor(ca.certificate().clone()).unwrap();

        let network = Network::new();
        let config = match mode {
            SecurityMode::Http => ControllerConfig::http("controller:8080"),
            SecurityMode::Https => {
                ControllerConfig::https("controller:8080", server_identity.clone())
            }
            SecurityMode::TrustedHttps => ControllerConfig::trusted_https(
                "controller:8080",
                server_identity.clone(),
                ClientValidator::ca(validator_store),
            ),
        }
        .with_clock(clock);
        let controller = Controller::start(&network, config).unwrap();
        Setup {
            network,
            controller,
            trust: Arc::new(trust),
            client_identity,
        }
    }

    #[test]
    fn plain_http_flow_management() {
        let s = setup(SecurityMode::Http);
        let mut client = NorthboundClient::connect_plain(&s.network, "controller:8080").unwrap();
        client.register_switch(0xab, &[1, 2]).unwrap();
        client.push_flow(&flow("f1", 0xab)).unwrap();
        let flows = client.list_flows(0xab).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].name, "f1");
        client.delete_flow("f1").unwrap();
        assert!(client.list_flows(0xab).unwrap().is_empty());
        let summary = client.summary().unwrap();
        assert_eq!(summary.get("# Switches").and_then(Json::as_i64), Some(1));
        s.controller.stop();
    }

    #[test]
    fn https_mode_works_and_verifies_server() {
        let s = setup(SecurityMode::Https);
        let mut client = NorthboundClient::connect_tls(
            &s.network,
            "controller:8080",
            s.trust.clone(),
            None,
            Some("controller"),
            1000,
        )
        .unwrap();
        client.register_switch(1, &[1]).unwrap();
        // Wrong expected CN is refused during the handshake.
        let err = NorthboundClient::connect_tls(
            &s.network,
            "controller:8080",
            s.trust.clone(),
            None,
            Some("evil-controller"),
            1000,
        );
        assert!(err.is_err());
        s.controller.stop();
    }

    #[test]
    fn trusted_https_requires_client_certificate() {
        let s = setup(SecurityMode::TrustedHttps);
        // Without a client identity the handshake fails.
        let err = NorthboundClient::connect_tls(
            &s.network,
            "controller:8080",
            s.trust.clone(),
            None,
            Some("controller"),
            1000,
        );
        assert!(err.is_err());
        // With the CA-issued identity it succeeds, and the audit log shows
        // the authenticated CN.
        let mut client = NorthboundClient::connect_tls(
            &s.network,
            "controller:8080",
            s.trust.clone(),
            Some(s.client_identity.clone()),
            Some("controller"),
            1000,
        )
        .unwrap();
        client.register_switch(2, &[1]).unwrap();
        client.push_flow(&flow("f2", 2)).unwrap();
        let audit = client.audit().unwrap();
        let entries = audit.as_array().unwrap();
        assert!(entries
            .iter()
            .any(|e| e.get("peer").and_then(Json::as_str) == Some("vnf-1")
                && e.get("action").and_then(Json::as_str) == Some("push_flow")));
        assert!(s.controller.handshake_failures() >= 1);
        s.controller.stop();
    }

    #[test]
    fn backpressure_waits_out_the_retry_hint() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use vnfguard_net::rest::{ApiError, Router};
        use vnfguard_net::server::{serve, PlainUpgrade};

        let network = Network::new();
        let clock = SimClock::at(5000);
        let sheds = Arc::new(AtomicU32::new(2));
        let mut router = Router::new();
        {
            let sheds = sheds.clone();
            router.get_api("/busy", move |_, _| {
                if sheds.fetch_sub(1, Ordering::SeqCst) > 0 {
                    return Err(ApiError::overloaded("queue full", 3));
                }
                Ok(Response::json(Status::Ok, &Json::object().with("ok", true)))
            });
        }
        let listener = network.listen("svc:80").unwrap();
        let handle = serve(listener, PlainUpgrade, router);

        let mut client = NorthboundClient::connect_plain(&network, "svc:80").unwrap();
        let response = client
            .request_with_backpressure(&Request::get("/busy"), &clock, 5)
            .unwrap();
        assert_eq!(response.status, Status::Ok);
        // Two sheds, each advancing the hinted 3 seconds before retrying.
        assert_eq!(clock.now(), 5006);

        // With the budget exhausted, the shed response itself comes back.
        sheds.store(10, Ordering::SeqCst);
        let mut client = NorthboundClient::connect_plain(&network, "svc:80").unwrap();
        let refused = client
            .request_with_backpressure(&Request::get("/busy"), &clock, 2)
            .unwrap();
        assert_eq!(refused.status, Status::ServiceUnavailable);
        assert_eq!(refused.retry_after_secs(), Some(3));
        handle.stop();
    }

    #[test]
    fn api_errors_are_typed() {
        let s = setup(SecurityMode::Http);
        let mut client = NorthboundClient::connect_plain(&s.network, "controller:8080").unwrap();
        let err = client.push_flow(&flow("f", 0x99)).unwrap_err();
        match err {
            ControllerError::Api { status, .. } => assert_eq!(status, 404),
            other => panic!("expected Api error, got {other}"),
        }
        s.controller.stop();
    }
}
