//! Controller state: switch inventory, devices, links, flows, audit log.

use crate::flowspec::FlowSpec;
use std::collections::BTreeMap;
use vnfguard_dataplane::switch::Switch;

/// A switch known to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchInfo {
    pub dpid: u64,
    pub ports: Vec<u16>,
}

/// A host/device attachment observed by the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceInfo {
    pub mac: String,
    pub ipv4: Option<String>,
    pub attached_dpid: u64,
    pub attached_port: u16,
}

/// A unidirectional inter-switch link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkInfo {
    pub src_dpid: u64,
    pub src_port: u16,
    pub dst_dpid: u64,
    pub dst_port: u16,
}

/// One audit-log entry for a north-bound API action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    pub time: u64,
    /// Authenticated peer CN, or "anonymous".
    pub peer: String,
    pub action: String,
    pub detail: String,
}

/// The mutable controller state behind the REST API.
#[derive(Debug, Default)]
pub struct ControllerState {
    switches: BTreeMap<u64, SwitchInfo>,
    devices: Vec<DeviceInfo>,
    links: Vec<LinkInfo>,
    /// Static flows, keyed by flow name (Floodlight semantics: names are
    /// global and re-pushing a name replaces the flow).
    flows: BTreeMap<String, FlowSpec>,
    audit: Vec<AuditEvent>,
}

impl ControllerState {
    pub fn new() -> ControllerState {
        ControllerState::default()
    }

    pub fn register_switch(&mut self, dpid: u64, ports: Vec<u16>) {
        self.switches.insert(dpid, SwitchInfo { dpid, ports });
    }

    pub fn switches(&self) -> impl Iterator<Item = &SwitchInfo> {
        self.switches.values()
    }

    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    pub fn has_switch(&self, dpid: u64) -> bool {
        self.switches.contains_key(&dpid)
    }

    pub fn add_device(&mut self, device: DeviceInfo) {
        self.devices.retain(|d| d.mac != device.mac);
        self.devices.push(device);
    }

    pub fn devices(&self) -> &[DeviceInfo] {
        &self.devices
    }

    pub fn add_link(&mut self, link: LinkInfo) {
        if !self.links.contains(&link) {
            self.links.push(link);
        }
    }

    pub fn links(&self) -> &[LinkInfo] {
        &self.links
    }

    /// Install or replace a static flow. Fails if the switch is unknown.
    pub fn push_flow(&mut self, spec: FlowSpec) -> Result<(), String> {
        if !self.switches.contains_key(&spec.dpid) {
            return Err(format!("unknown switch {:016x}", spec.dpid));
        }
        self.flows.insert(spec.name.clone(), spec);
        Ok(())
    }

    pub fn delete_flow(&mut self, name: &str) -> bool {
        self.flows.remove(name).is_some()
    }

    pub fn flows_for(&self, dpid: u64) -> Vec<&FlowSpec> {
        self.flows.values().filter(|f| f.dpid == dpid).collect()
    }

    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Program a dataplane switch with this controller's flows for its dpid
    /// (the southbound push, abstracted).
    pub fn sync_switch(&self, switch: &mut Switch) {
        for spec in self.flows_for(switch.dpid) {
            switch.install_flow(spec.to_entry());
        }
    }

    pub fn record_audit(&mut self, time: u64, peer: &str, action: &str, detail: &str) {
        self.audit.push(AuditEvent {
            time,
            peer: peer.to_string(),
            action: action.to_string(),
            detail: detail.to_string(),
        });
    }

    pub fn audit(&self) -> &[AuditEvent] {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_dataplane::flow::{FlowAction, FlowMatch};

    fn spec(name: &str, dpid: u64) -> FlowSpec {
        FlowSpec {
            name: name.into(),
            dpid,
            priority: 10,
            matcher: FlowMatch::any(),
            actions: vec![FlowAction::Drop],
        }
    }

    #[test]
    fn switch_registration() {
        let mut state = ControllerState::new();
        state.register_switch(1, vec![1, 2]);
        state.register_switch(2, vec![1]);
        assert_eq!(state.switch_count(), 2);
        assert!(state.has_switch(1));
        assert!(!state.has_switch(3));
    }

    #[test]
    fn flows_require_known_switch() {
        let mut state = ControllerState::new();
        assert!(state.push_flow(spec("f", 1)).is_err());
        state.register_switch(1, vec![1]);
        state.push_flow(spec("f", 1)).unwrap();
        assert_eq!(state.flow_count(), 1);
    }

    #[test]
    fn flow_names_replace() {
        let mut state = ControllerState::new();
        state.register_switch(1, vec![1]);
        state.register_switch(2, vec![1]);
        state.push_flow(spec("f", 1)).unwrap();
        state.push_flow(spec("f", 2)).unwrap();
        assert_eq!(state.flow_count(), 1);
        assert_eq!(state.flows_for(2).len(), 1);
        assert!(state.flows_for(1).is_empty());
    }

    #[test]
    fn delete_flow() {
        let mut state = ControllerState::new();
        state.register_switch(1, vec![1]);
        state.push_flow(spec("f", 1)).unwrap();
        assert!(state.delete_flow("f"));
        assert!(!state.delete_flow("f"));
    }

    #[test]
    fn device_deduplication_by_mac() {
        let mut state = ControllerState::new();
        state.add_device(DeviceInfo {
            mac: "aa:aa".into(),
            ipv4: None,
            attached_dpid: 1,
            attached_port: 1,
        });
        state.add_device(DeviceInfo {
            mac: "aa:aa".into(),
            ipv4: Some("10.0.0.1".into()),
            attached_dpid: 1,
            attached_port: 2,
        });
        assert_eq!(state.devices().len(), 1);
        assert_eq!(state.devices()[0].attached_port, 2);
    }

    #[test]
    fn sync_programs_dataplane_switch() {
        let mut state = ControllerState::new();
        state.register_switch(7, vec![1, 2]);
        state.push_flow(spec("block-all", 7)).unwrap();
        let mut switch = Switch::new(7, vec![1, 2]);
        state.sync_switch(&mut switch);
        assert_eq!(switch.flow_table().len(), 1);
        assert!(switch.flow_table().get("block-all").is_some());
    }

    #[test]
    fn audit_accumulates() {
        let mut state = ControllerState::new();
        state.record_audit(1, "vnf-1", "push_flow", "f1");
        state.record_audit(2, "anonymous", "list", "");
        assert_eq!(state.audit().len(), 2);
        assert_eq!(state.audit()[0].peer, "vnf-1");
    }

    #[test]
    fn links_deduplicate() {
        let mut state = ControllerState::new();
        let link = LinkInfo {
            src_dpid: 1,
            src_port: 1,
            dst_dpid: 2,
            dst_port: 2,
        };
        state.add_link(link);
        state.add_link(link);
        assert_eq!(state.links().len(), 1);
    }
}
