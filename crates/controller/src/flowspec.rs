//! Flow specifications in the static-flow-pusher JSON dialect.

use std::net::Ipv4Addr;
use vnfguard_dataplane::flow::{FlowAction, FlowEntry, FlowMatch};
use vnfguard_dataplane::wire::Protocol;
use vnfguard_encoding::Json;

/// A named flow bound to a switch, convertible to/from the REST JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    pub name: String,
    pub dpid: u64,
    pub priority: u16,
    pub matcher: FlowMatch,
    pub actions: Vec<FlowAction>,
}

impl FlowSpec {
    /// Convert to a dataplane flow entry (for installation on a switch).
    pub fn to_entry(&self) -> FlowEntry {
        FlowEntry::new(&self.name, self.priority, self.matcher.clone(), self.actions.clone())
    }

    /// Encode as the static-flow-pusher JSON body.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object()
            .with("switch", format!("{:016x}", self.dpid))
            .with("name", self.name.as_str())
            .with("priority", self.priority as i64);
        if let Some(port) = self.matcher.in_port {
            doc.set("in_port", port as i64);
        }
        if let Some(ip) = self.matcher.ip_src {
            doc.set("ipv4_src", ip.to_string());
        }
        if let Some(ip) = self.matcher.ip_dst {
            doc.set("ipv4_dst", ip.to_string());
        }
        if let Some(protocol) = self.matcher.protocol {
            doc.set("ip_proto", protocol.number() as i64);
        }
        if let Some(port) = self.matcher.tp_src {
            doc.set("tp_src", port as i64);
        }
        if let Some(port) = self.matcher.tp_dst {
            doc.set("tp_dst", port as i64);
        }
        let actions: Vec<String> = self
            .actions
            .iter()
            .map(|action| match action {
                FlowAction::Output(port) => format!("output={port}"),
                FlowAction::Drop => "drop".to_string(),
                FlowAction::Controller => "controller".to_string(),
                FlowAction::SetIpDst(ip) => format!("set_ipv4_dst={ip}"),
                FlowAction::SetIpSrc(ip) => format!("set_ipv4_src={ip}"),
                FlowAction::SetTpDst(port) => format!("set_tp_dst={port}"),
            })
            .collect();
        doc.set("actions", actions.join(","));
        doc
    }

    /// Parse from the static-flow-pusher JSON body.
    pub fn from_json(doc: &Json) -> Result<FlowSpec, String> {
        let dpid_str = doc
            .get("switch")
            .and_then(Json::as_str)
            .ok_or("missing 'switch'")?;
        let dpid = u64::from_str_radix(&dpid_str.replace(':', ""), 16)
            .map_err(|_| format!("bad switch dpid {dpid_str:?}"))?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing 'name'")?
            .to_string();
        let priority = doc
            .get("priority")
            .and_then(Json::as_i64)
            .unwrap_or(100)
            .clamp(0, u16::MAX as i64) as u16;

        let mut matcher = FlowMatch::any();
        if let Some(port) = doc.get("in_port").and_then(Json::as_i64) {
            matcher.in_port = Some(port as u16);
        }
        if let Some(ip) = doc.get("ipv4_src").and_then(Json::as_str) {
            matcher.ip_src = Some(parse_ip(ip)?);
        }
        if let Some(ip) = doc.get("ipv4_dst").and_then(Json::as_str) {
            matcher.ip_dst = Some(parse_ip(ip)?);
        }
        if let Some(protocol) = doc.get("ip_proto").and_then(Json::as_i64) {
            matcher.protocol = Some(Protocol::from_number(protocol as u8));
        }
        if let Some(port) = doc.get("tp_src").and_then(Json::as_i64) {
            matcher.tp_src = Some(port as u16);
        }
        if let Some(port) = doc.get("tp_dst").and_then(Json::as_i64) {
            matcher.tp_dst = Some(port as u16);
        }

        let actions_str = doc
            .get("actions")
            .and_then(Json::as_str)
            .ok_or("missing 'actions'")?;
        let mut actions = Vec::new();
        for part in actions_str.split(',').filter(|s| !s.is_empty()) {
            actions.push(parse_action(part.trim())?);
        }
        Ok(FlowSpec {
            name,
            dpid,
            priority,
            matcher,
            actions,
        })
    }
}

fn parse_ip(s: &str) -> Result<Ipv4Addr, String> {
    s.parse().map_err(|_| format!("bad IPv4 address {s:?}"))
}

fn parse_action(s: &str) -> Result<FlowAction, String> {
    if s == "drop" {
        return Ok(FlowAction::Drop);
    }
    if s == "controller" {
        return Ok(FlowAction::Controller);
    }
    let (kind, value) = s.split_once('=').ok_or(format!("bad action {s:?}"))?;
    match kind {
        "output" => value
            .parse()
            .map(FlowAction::Output)
            .map_err(|_| format!("bad port {value:?}")),
        "set_ipv4_dst" => parse_ip(value).map(FlowAction::SetIpDst),
        "set_ipv4_src" => parse_ip(value).map(FlowAction::SetIpSrc),
        "set_tp_dst" => value
            .parse()
            .map(FlowAction::SetTpDst)
            .map_err(|_| format!("bad port {value:?}")),
        other => Err(format!("unknown action {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlowSpec {
        FlowSpec {
            name: "fw-allow-dns".into(),
            dpid: 0x00aa,
            priority: 150,
            matcher: FlowMatch::any()
                .on_port(1)
                .from_ip(Ipv4Addr::new(10, 0, 0, 5))
                .with_protocol(Protocol::Udp)
                .to_tp_port(53),
            actions: vec![FlowAction::Output(2)],
        }
    }

    #[test]
    fn json_roundtrip() {
        let spec = sample();
        let doc = spec.to_json();
        assert_eq!(FlowSpec::from_json(&doc).unwrap(), spec);
    }

    #[test]
    fn roundtrip_all_actions() {
        let spec = FlowSpec {
            name: "nat".into(),
            dpid: 1,
            priority: 10,
            matcher: FlowMatch::any(),
            actions: vec![
                FlowAction::SetIpDst(Ipv4Addr::new(192, 168, 0, 1)),
                FlowAction::SetIpSrc(Ipv4Addr::new(172, 16, 0, 1)),
                FlowAction::SetTpDst(8080),
                FlowAction::Output(4),
            ],
        };
        assert_eq!(FlowSpec::from_json(&spec.to_json()).unwrap(), spec);
        let drop = FlowSpec {
            actions: vec![FlowAction::Drop],
            ..spec.clone()
        };
        assert_eq!(FlowSpec::from_json(&drop.to_json()).unwrap(), drop);
        let punt = FlowSpec {
            actions: vec![FlowAction::Controller],
            ..spec
        };
        assert_eq!(FlowSpec::from_json(&punt.to_json()).unwrap(), punt);
    }

    #[test]
    fn accepts_colon_separated_dpid() {
        let mut doc = sample().to_json();
        doc.set("switch", "00:00:00:00:00:00:00:aa");
        assert_eq!(FlowSpec::from_json(&doc).unwrap().dpid, 0xaa);
    }

    #[test]
    fn missing_fields_rejected() {
        for field in ["switch", "name", "actions"] {
            let doc = sample().to_json();
            let filtered = Json::Object(
                doc.as_object()
                    .unwrap()
                    .iter()
                    .filter(|(k, _)| k != field)
                    .cloned()
                    .collect(),
            );
            assert!(FlowSpec::from_json(&filtered).is_err(), "without {field}");
        }
    }

    #[test]
    fn bad_values_rejected() {
        let mut doc = sample().to_json();
        doc.set("ipv4_src", "not-an-ip");
        assert!(FlowSpec::from_json(&doc).is_err());
        let mut doc = sample().to_json();
        doc.set("actions", "teleport=3");
        assert!(FlowSpec::from_json(&doc).is_err());
        let mut doc = sample().to_json();
        doc.set("actions", "output=notaport");
        assert!(FlowSpec::from_json(&doc).is_err());
    }

    #[test]
    fn default_priority() {
        let doc = Json::object()
            .with("switch", "01")
            .with("name", "f")
            .with("actions", "drop");
        assert_eq!(FlowSpec::from_json(&doc).unwrap().priority, 100);
    }

    #[test]
    fn to_entry_preserves_fields() {
        let entry = sample().to_entry();
        assert_eq!(entry.name, "fw-allow-dns");
        assert_eq!(entry.priority, 150);
        assert_eq!(entry.actions, vec![FlowAction::Output(2)]);
    }
}
