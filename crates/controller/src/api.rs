//! The north-bound REST API (Floodlight-style endpoints).

use crate::clock::SimClock;
use crate::flowspec::FlowSpec;
use crate::state::ControllerState;
use parking_lot::RwLock;
use std::sync::Arc;
use vnfguard_encoding::Json;
use vnfguard_net::http::{Request, Response, Status};
use vnfguard_net::rest::Router;
use vnfguard_telemetry::Telemetry;

fn peer_of(request: &Request) -> String {
    request
        .header("x-peer-cn")
        .unwrap_or("anonymous")
        .to_string()
}

/// Build the REST router over shared controller state.
pub fn build_router(state: Arc<RwLock<ControllerState>>, clock: SimClock) -> Router {
    build_router_traced(state, clock, None)
}

/// [`build_router`] with optional distributed tracing: requests carrying a
/// `traceparent` header are recorded as server spans attributed to the
/// `controller` service, timestamped from the controller's clock.
pub fn build_router_traced(
    state: Arc<RwLock<ControllerState>>,
    clock: SimClock,
    telemetry: Option<&Telemetry>,
) -> Router {
    let mut router = Router::new();
    if let Some(telemetry) = telemetry {
        let trace_clock = clock.clone();
        router.instrument_traces(telemetry, "controller", move || trace_clock.now());
    }

    // GET /wm/core/controller/summary/json
    {
        let state = state.clone();
        router.get("/wm/core/controller/summary/json", move |_, _| {
            let s = state.read();
            Response::json(
                Status::Ok,
                &Json::object()
                    .with("# Switches", s.switch_count() as i64)
                    .with("# hosts", s.devices().len() as i64)
                    .with("# inter-switch links", s.links().len() as i64)
                    .with("# static flows", s.flow_count() as i64),
            )
        });
    }

    // GET /wm/core/controller/switches/json
    {
        let state = state.clone();
        router.get("/wm/core/controller/switches/json", move |_, _| {
            let s = state.read();
            let switches: Json = s
                .switches()
                .map(|sw| {
                    Json::object()
                        .with("switchDPID", format!("{:016x}", sw.dpid))
                        .with("ports", sw.ports.iter().map(|&p| p as i64).collect::<Json>())
                })
                .collect();
            Response::json(Status::Ok, &switches)
        });
    }

    // POST /wm/core/switch/register (simulation-side southbound stand-in)
    {
        let state = state.clone();
        let clock_for_switch = clock.clone();
        router.post("/wm/core/switch/register", move |request, _| {
            let Ok(body) = request.json() else {
                return Response::error(Status::BadRequest, "invalid JSON");
            };
            let Some(dpid) = body
                .get("dpid")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(&s.replace(':', ""), 16).ok())
            else {
                return Response::error(Status::BadRequest, "missing or bad 'dpid'");
            };
            let ports: Vec<u16> = body
                .get("ports")
                .and_then(Json::as_array)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(Json::as_i64)
                        .map(|p| p as u16)
                        .collect()
                })
                .unwrap_or_default();
            let mut s = state.write();
            s.register_switch(dpid, ports);
            s.record_audit(
                clock_for_switch.now(),
                &peer_of(request),
                "register_switch",
                &format!("{dpid:016x}"),
            );
            Response::json(Status::Created, &Json::object().with("registered", true))
        });
    }

    // GET /wm/device/
    {
        let state = state.clone();
        router.get("/wm/device/", move |_, _| {
            let s = state.read();
            let devices: Json = s
                .devices()
                .iter()
                .map(|d| {
                    let mut doc = Json::object()
                        .with("mac", d.mac.as_str())
                        .with("switchDPID", format!("{:016x}", d.attached_dpid))
                        .with("port", d.attached_port as i64);
                    if let Some(ip) = &d.ipv4 {
                        doc.set("ipv4", ip.as_str());
                    }
                    doc
                })
                .collect();
            Response::json(Status::Ok, &devices)
        });
    }

    // GET /wm/topology/links/json
    {
        let state = state.clone();
        router.get("/wm/topology/links/json", move |_, _| {
            let s = state.read();
            let links: Json = s
                .links()
                .iter()
                .map(|l| {
                    Json::object()
                        .with("src-switch", format!("{:016x}", l.src_dpid))
                        .with("src-port", l.src_port as i64)
                        .with("dst-switch", format!("{:016x}", l.dst_dpid))
                        .with("dst-port", l.dst_port as i64)
                })
                .collect();
            Response::json(Status::Ok, &links)
        });
    }

    // POST /wm/staticflowpusher/json — the write operation the paper's
    // attack scenarios target: only authenticated clients should reach it
    // in trusted-HTTPS mode (enforced by the handshake).
    {
        let state = state.clone();
        let clock_for_push = clock.clone();
        router.post("/wm/staticflowpusher/json", move |request, _| {
            let Ok(body) = request.json() else {
                return Response::error(Status::BadRequest, "invalid JSON");
            };
            let spec = match FlowSpec::from_json(&body) {
                Ok(spec) => spec,
                Err(msg) => return Response::error(Status::BadRequest, &msg),
            };
            let mut s = state.write();
            match s.push_flow(spec.clone()) {
                Ok(()) => {
                    s.record_audit(
                        clock_for_push.now(),
                        &peer_of(request),
                        "push_flow",
                        &spec.name,
                    );
                    Response::json(
                        Status::Ok,
                        &Json::object().with("status", "Entry pushed"),
                    )
                }
                Err(msg) => Response::error(Status::NotFound, &msg),
            }
        });
    }

    // DELETE /wm/staticflowpusher/json
    {
        let state = state.clone();
        let clock_for_delete = clock.clone();
        router.delete("/wm/staticflowpusher/json", move |request, _| {
            let name = request
                .json()
                .ok()
                .and_then(|b| b.get("name").and_then(Json::as_str).map(String::from));
            let Some(name) = name else {
                return Response::error(Status::BadRequest, "missing 'name'");
            };
            let mut s = state.write();
            if s.delete_flow(&name) {
                s.record_audit(
                    clock_for_delete.now(),
                    &peer_of(request),
                    "delete_flow",
                    &name,
                );
                Response::json(Status::Ok, &Json::object().with("status", "Entry deleted"))
            } else {
                Response::error(Status::NotFound, &format!("no flow named {name:?}"))
            }
        });
    }

    // GET /wm/staticflowpusher/list/:dpid/json
    {
        let state = state.clone();
        router.get("/wm/staticflowpusher/list/:dpid/json", move |_, params| {
            let Some(dpid) = params
                .get("dpid")
                .and_then(|s| u64::from_str_radix(&s.replace(':', ""), 16).ok())
            else {
                return Response::error(Status::BadRequest, "bad dpid");
            };
            let s = state.read();
            let flows: Json = s.flows_for(dpid).iter().map(|f| f.to_json()).collect();
            Response::json(Status::Ok, &flows)
        });
    }

    // GET /wm/core/audit/json
    {
        let state = state.clone();
        router.get("/wm/core/audit/json", move |_, _| {
            let s = state.read();
            let events: Json = s
                .audit()
                .iter()
                .map(|e| {
                    Json::object()
                        .with("time", e.time as i64)
                        .with("peer", e.peer.as_str())
                        .with("action", e.action.as_str())
                        .with("detail", e.detail.as_str())
                })
                .collect();
            Response::json(Status::Ok, &events)
        });
    }

    // GET /wm/core/health/json
    router.get("/wm/core/health/json", move |_, _| {
        Response::json(Status::Ok, &Json::object().with("healthy", true))
    });

    router
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfguard_net::http::Method;

    fn setup() -> (Arc<RwLock<ControllerState>>, Router) {
        let state = Arc::new(RwLock::new(ControllerState::new()));
        let router = build_router(state.clone(), SimClock::at(1000));
        (state, router)
    }

    fn register(router: &Router, dpid: &str) {
        let response = router.dispatch(
            &Request::post("/wm/core/switch/register").with_json(
                &Json::object()
                    .with("dpid", dpid)
                    .with("ports", vec![Json::from(1i64), Json::from(2i64)]),
            ),
        );
        assert_eq!(response.status, Status::Created);
    }

    #[test]
    fn summary_reflects_state() {
        let (_state, router) = setup();
        register(&router, "01");
        let response = router.dispatch(&Request::get("/wm/core/controller/summary/json"));
        let doc = response.parse_json().unwrap();
        assert_eq!(doc.get("# Switches").and_then(Json::as_i64), Some(1));
        assert_eq!(doc.get("# static flows").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn flow_push_list_delete_cycle() {
        let (_state, router) = setup();
        register(&router, "0a");
        let flow = Json::object()
            .with("switch", "0a")
            .with("name", "f1")
            .with("priority", 10i64)
            .with("actions", "output=2");
        let response =
            router.dispatch(&Request::post("/wm/staticflowpusher/json").with_json(&flow));
        assert_eq!(response.status, Status::Ok);

        let response = router.dispatch(&Request::get("/wm/staticflowpusher/list/0a/json"));
        let list = response.parse_json().unwrap();
        assert_eq!(list.as_array().unwrap().len(), 1);

        let response = router.dispatch(
            &Request::delete("/wm/staticflowpusher/json")
                .with_json(&Json::object().with("name", "f1")),
        );
        assert_eq!(response.status, Status::Ok);
        let response = router.dispatch(&Request::get("/wm/staticflowpusher/list/0a/json"));
        assert!(response.parse_json().unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn flow_to_unknown_switch_404() {
        let (_state, router) = setup();
        let flow = Json::object()
            .with("switch", "ff")
            .with("name", "f1")
            .with("actions", "drop");
        let response =
            router.dispatch(&Request::post("/wm/staticflowpusher/json").with_json(&flow));
        assert_eq!(response.status, Status::NotFound);
    }

    #[test]
    fn malformed_bodies_rejected() {
        let (_state, router) = setup();
        let mut request = Request::post("/wm/staticflowpusher/json");
        request.body = b"{broken".to_vec();
        assert_eq!(router.dispatch(&request).status, Status::BadRequest);
        let response = router.dispatch(
            &Request::post("/wm/staticflowpusher/json").with_json(&Json::object()),
        );
        assert_eq!(response.status, Status::BadRequest);
        let response = router
            .dispatch(&Request::delete("/wm/staticflowpusher/json").with_json(&Json::object()));
        assert_eq!(response.status, Status::BadRequest);
    }

    #[test]
    fn audit_records_peer_identity() {
        let (state, router) = setup();
        register(&router, "01");
        let flow = Json::object()
            .with("switch", "01")
            .with("name", "f1")
            .with("actions", "drop");
        // Request as seen after a mutual-TLS upgrade (identity header).
        let request = Request::post("/wm/staticflowpusher/json")
            .with_json(&flow)
            .with_header("x-peer-cn", "vnf-7");
        router.dispatch(&request);
        let audit = state.read().audit().to_vec();
        let push = audit.iter().find(|e| e.action == "push_flow").unwrap();
        assert_eq!(push.peer, "vnf-7");
        assert_eq!(push.time, 1000);
    }

    #[test]
    fn device_and_link_endpoints() {
        let (state, router) = setup();
        state.write().add_device(crate::state::DeviceInfo {
            mac: "aa:bb".into(),
            ipv4: Some("10.0.0.9".into()),
            attached_dpid: 1,
            attached_port: 4,
        });
        state.write().add_link(crate::state::LinkInfo {
            src_dpid: 1,
            src_port: 2,
            dst_dpid: 2,
            dst_port: 1,
        });
        let devices = router
            .dispatch(&Request::get("/wm/device/"))
            .parse_json()
            .unwrap();
        assert_eq!(
            devices.at(0).unwrap().get("ipv4").and_then(Json::as_str),
            Some("10.0.0.9")
        );
        let links = router
            .dispatch(&Request::get("/wm/topology/links/json"))
            .parse_json()
            .unwrap();
        assert_eq!(links.as_array().unwrap().len(), 1);
    }

    #[test]
    fn health_endpoint() {
        let (_state, router) = setup();
        let response = router.dispatch(&Request::new(Method::Get, "/wm/core/health/json"));
        assert_eq!(response.status, Status::Ok);
    }
}
