//! A settable clock shared across the deployment.
//!
//! Certificate validation and CRL staleness are time-dependent; tests and
//! benchmarks drive this clock explicitly instead of reading wall time, so
//! expiry and revocation scenarios are deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared unix-seconds clock.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at the given time.
    pub fn at(unix_secs: u64) -> SimClock {
        SimClock {
            now: Arc::new(AtomicU64::new(unix_secs)),
        }
    }

    /// A clock starting at the current wall time.
    pub fn wall() -> SimClock {
        SimClock::at(vnfguard_pki::wall_now())
    }

    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    pub fn set(&self, unix_secs: u64) {
        self.now.store(unix_secs, Ordering::SeqCst);
    }

    pub fn advance(&self, secs: u64) {
        self.now.fetch_add(secs, Ordering::SeqCst);
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_advance() {
        let clock = SimClock::at(1000);
        assert_eq!(clock.now(), 1000);
        clock.advance(500);
        assert_eq!(clock.now(), 1500);
        clock.set(99);
        assert_eq!(clock.now(), 99);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::at(1);
        let b = a.clone();
        a.advance(9);
        assert_eq!(b.now(), 10);
    }
}
