//! The controller process: binds the REST API on the fabric under one of
//! the three security modes.

use crate::api::build_router_traced;
use crate::clock::SimClock;
use crate::security::{SecurityMode, TlsUpgrade};
use crate::state::ControllerState;
use crate::ControllerError;
use parking_lot::RwLock;
use std::sync::Arc;
use vnfguard_net::fabric::Network;
use vnfguard_net::server::{serve_with_identity, PlainUpgrade, ServerHandle};
use vnfguard_tls::signer::IdentitySigner;
use vnfguard_tls::validate::ClientValidator;

/// Configuration for starting a controller.
pub struct ControllerConfig {
    /// Fabric address to bind, e.g. `"controller:8080"`.
    pub address: String,
    pub mode: SecurityMode,
    /// Server TLS identity (required for HTTPS / trusted HTTPS).
    pub identity: Option<Arc<dyn IdentitySigner>>,
    /// Client validation (required for trusted HTTPS).
    pub client_validator: Option<ClientValidator>,
    pub clock: SimClock,
    /// Telemetry bundle for distributed tracing of north-bound requests;
    /// `None` serves untraced.
    pub telemetry: Option<vnfguard_telemetry::Telemetry>,
}

impl ControllerConfig {
    pub fn http(address: &str) -> ControllerConfig {
        ControllerConfig {
            address: address.to_string(),
            mode: SecurityMode::Http,
            identity: None,
            client_validator: None,
            clock: SimClock::wall(),
            telemetry: None,
        }
    }

    pub fn https(address: &str, identity: Arc<dyn IdentitySigner>) -> ControllerConfig {
        ControllerConfig {
            address: address.to_string(),
            mode: SecurityMode::Https,
            identity: Some(identity),
            client_validator: None,
            clock: SimClock::wall(),
            telemetry: None,
        }
    }

    pub fn trusted_https(
        address: &str,
        identity: Arc<dyn IdentitySigner>,
        validator: ClientValidator,
    ) -> ControllerConfig {
        ControllerConfig {
            address: address.to_string(),
            mode: SecurityMode::TrustedHttps,
            identity: Some(identity),
            client_validator: Some(validator),
            clock: SimClock::wall(),
            telemetry: None,
        }
    }

    pub fn with_clock(mut self, clock: SimClock) -> ControllerConfig {
        self.clock = clock;
        self
    }

    /// Record north-bound requests as distributed-trace server spans in
    /// `telemetry`.
    pub fn with_telemetry(mut self, telemetry: &vnfguard_telemetry::Telemetry) -> ControllerConfig {
        self.telemetry = Some(telemetry.clone());
        self
    }
}

/// A running controller.
pub struct Controller {
    state: Arc<RwLock<ControllerState>>,
    handle: ServerHandle,
    mode: SecurityMode,
    address: String,
    /// Handle to the client validator, for live CRL/keystore updates.
    validator: Option<ClientValidator>,
}

impl Controller {
    /// Start serving the REST API on `network`.
    pub fn start(network: &Network, config: ControllerConfig) -> Result<Controller, ControllerError> {
        let state = Arc::new(RwLock::new(ControllerState::new()));
        let router =
            build_router_traced(state.clone(), config.clock.clone(), config.telemetry.as_ref());
        let listener = network.listen(&config.address)?;

        let handle = match config.mode {
            SecurityMode::Http => serve_with_identity(listener, PlainUpgrade, router),
            SecurityMode::Https => {
                let identity = config.identity.clone().ok_or_else(|| {
                    ControllerError::Misconfigured("HTTPS mode requires a server identity".into())
                })?;
                serve_with_identity(
                    listener,
                    TlsUpgrade {
                        identity,
                        client_validator: None,
                        clock: config.clock.clone(),
                    },
                    router,
                )
            }
            SecurityMode::TrustedHttps => {
                let identity = config.identity.clone().ok_or_else(|| {
                    ControllerError::Misconfigured(
                        "trusted HTTPS mode requires a server identity".into(),
                    )
                })?;
                let validator = config.client_validator.clone().ok_or_else(|| {
                    ControllerError::Misconfigured(
                        "trusted HTTPS mode requires a client validator".into(),
                    )
                })?;
                serve_with_identity(
                    listener,
                    TlsUpgrade {
                        identity,
                        client_validator: Some(validator),
                        clock: config.clock.clone(),
                    },
                    router,
                )
            }
        };
        Ok(Controller {
            state,
            handle,
            mode: config.mode,
            address: config.address,
            validator: config.client_validator,
        })
    }

    pub fn mode(&self) -> SecurityMode {
        self.mode
    }

    pub fn address(&self) -> &str {
        &self.address
    }

    /// Shared state handle (e.g. to sync dataplane switches or inspect the
    /// audit log from tests).
    pub fn state(&self) -> Arc<RwLock<ControllerState>> {
        self.state.clone()
    }

    /// The client validator, if running in trusted-HTTPS mode.
    pub fn client_validator(&self) -> Option<&ClientValidator> {
        self.validator.as_ref()
    }

    pub fn requests_served(&self) -> u64 {
        self.handle.requests()
    }

    pub fn handshake_failures(&self) -> u64 {
        self.handle.upgrade_failures()
    }

    /// Stop serving.
    pub fn stop(self) {
        self.handle.stop();
    }
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("address", &self.address)
            .field("mode", &self.mode.as_str())
            .field("requests", &self.requests_served())
            .finish()
    }
}
