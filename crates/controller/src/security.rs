//! The controller's three REST security modes and the TLS stream upgrade.

use crate::clock::SimClock;
use std::sync::Arc;
use vnfguard_crypto::drbg::SystemEntropy;
use vnfguard_net::server::{PeerIdentity, StreamUpgrade};
use vnfguard_net::stream::Duplex;
use vnfguard_net::NetError;
use vnfguard_tls::handshake::{server_handshake, ServerConfig};
use vnfguard_tls::signer::IdentitySigner;
use vnfguard_tls::stream::TlsStream;
use vnfguard_tls::validate::ClientValidator;

/// Floodlight's REST API security modes (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityMode {
    /// Plain HTTP: no confidentiality, no authentication.
    Http,
    /// HTTPS: server-authenticated TLS.
    Https,
    /// Trusted HTTPS: mutually-authenticated TLS with client validation.
    TrustedHttps,
}

impl SecurityMode {
    pub fn as_str(self) -> &'static str {
        match self {
            SecurityMode::Http => "HTTP",
            SecurityMode::Https => "HTTPS",
            SecurityMode::TrustedHttps => "TRUSTED_HTTPS",
        }
    }
}

/// Stream upgrade performing the server-side TLS handshake.
pub struct TlsUpgrade {
    pub identity: Arc<dyn IdentitySigner>,
    /// Some → mutual auth (trusted HTTPS); None → server-auth only.
    pub client_validator: Option<ClientValidator>,
    pub clock: SimClock,
}

impl StreamUpgrade for TlsUpgrade {
    type Upgraded = TlsStream<Duplex>;

    fn upgrade(&self, raw: Duplex) -> Result<(Self::Upgraded, PeerIdentity), NetError> {
        let mut config = ServerConfig::new(self.identity.clone(), self.clock.now());
        if let Some(validator) = &self.client_validator {
            config = config.require_client_auth(validator.clone());
        }
        let mut rng = SystemEntropy;
        let (stream, info) = server_handshake(raw, &config, &mut rng)
            .map_err(|e| NetError::Protocol(format!("TLS handshake: {e}")))?;
        let identity = PeerIdentity {
            common_name: info
                .peer_certificate
                .as_ref()
                .map(|c| c.subject_cn().to_string()),
            cert_serial: info.peer_certificate.as_ref().map(|c| c.serial()),
        };
        Ok((stream, identity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_match_floodlight_vocabulary() {
        assert_eq!(SecurityMode::Http.as_str(), "HTTP");
        assert_eq!(SecurityMode::Https.as_str(), "HTTPS");
        assert_eq!(SecurityMode::TrustedHttps.as_str(), "TRUSTED_HTTPS");
    }
}
