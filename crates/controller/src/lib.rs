//! # vnfguard-controller
//!
//! A network controller modeled on Floodlight v1.2, the controller of the
//! paper's prototype (§3): an SDN control plane with a REST north-bound
//! API offering **three security modes** —
//!
//! 1. [`SecurityMode::Http`] — plain HTTP (no protection);
//! 2. [`SecurityMode::Https`] — TLS with server authentication;
//! 3. [`SecurityMode::TrustedHttps`] — TLS with mutual authentication,
//!    validating clients either against a per-client keystore (Floodlight's
//!    native model) or against the Verification Manager's CA certificate
//!    (the paper's improvement).
//!
//! The API surface mirrors the Floodlight endpoints the demo exercises:
//! controller summary, switch inventory, device list, topology links and
//! the static flow pusher.

pub mod api;
pub mod client;
pub mod clock;
pub mod controller;
pub mod flowspec;
pub mod security;
pub mod state;

pub use client::NorthboundClient;
pub use clock::SimClock;
pub use controller::{Controller, ControllerConfig};
pub use flowspec::FlowSpec;
pub use security::SecurityMode;

/// Errors surfaced by controller operations and the north-bound client.
#[derive(Debug)]
pub enum ControllerError {
    Net(vnfguard_net::NetError),
    Tls(vnfguard_tls::TlsError),
    /// The API returned a non-success status.
    Api { status: u16, message: String },
    /// Required configuration is missing for the selected security mode.
    Misconfigured(String),
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::Net(e) => write!(f, "network: {e}"),
            ControllerError::Tls(e) => write!(f, "tls: {e}"),
            ControllerError::Api { status, message } => {
                write!(f, "API error {status}: {message}")
            }
            ControllerError::Misconfigured(msg) => write!(f, "misconfigured: {msg}"),
        }
    }
}

impl std::error::Error for ControllerError {}

impl From<vnfguard_net::NetError> for ControllerError {
    fn from(e: vnfguard_net::NetError) -> ControllerError {
        ControllerError::Net(e)
    }
}

impl From<vnfguard_tls::TlsError> for ControllerError {
    fn from(e: vnfguard_tls::TlsError) -> ControllerError {
        ControllerError::Tls(e)
    }
}
