//! # vnfguard-dataplane
//!
//! The forwarding plane of the simulated SDN deployment: packet wire
//! formats (Ethernet / IPv4 / UDP / TCP), OpenFlow-style match/action flow
//! tables, and a learning/flow-driven switch.
//!
//! The VNFs of `vnfguard-vnf` process these packets (firewall, NAT, load
//! balancer); the controller of `vnfguard-controller` programs the flow
//! tables over its north-bound REST API — the interface whose credentials
//! the paper protects. Experiment **E7** runs packet processing inside and
//! outside the enclave model to reproduce the overhead question raised by
//! the paper's discussion of Coughlin et al.
//!
//! Wire formats follow the smoltcp philosophy: explicit parsing with
//! validation, no panics on untrusted input, emission via builders.

pub mod flow;
pub mod switch;
pub mod wire;

pub use flow::{FlowAction, FlowEntry, FlowKey, FlowMatch, FlowTable};
pub use switch::Switch;
pub use wire::{EthernetFrame, Ipv4Packet, MacAddr, Protocol, TcpSegment, UdpDatagram};

/// Errors from packet parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the header requires.
    Truncated { needed: usize, got: usize },
    /// A field held an unsupported value.
    Unsupported(&'static str),
    /// Header checksum did not verify.
    BadChecksum,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            ParseError::Unsupported(what) => write!(f, "unsupported {what}"),
            ParseError::BadChecksum => write!(f, "bad header checksum"),
        }
    }
}

impl std::error::Error for ParseError {}
