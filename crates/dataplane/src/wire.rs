//! Packet wire formats: Ethernet II, IPv4, UDP and TCP.
//!
//! Parsing is zero-allocation over byte slices with strict validation;
//! emission allocates the exact frame. The IPv4 header checksum is computed
//! and verified; UDP/TCP checksums use the IPv4 pseudo-header.

use crate::ParseError;
use std::net::Ipv4Addr;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// IP protocol numbers carried in this model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    Udp,
    Tcp,
    Other(u8),
}

impl Protocol {
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    pub fn from_number(n: u8) -> Protocol {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Ethernet header length.
pub const ETH_HEADER_LEN: usize = 14;
/// IPv4 header length (no options in this model).
pub const IPV4_HEADER_LEN: usize = 20;
/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;
/// TCP header length (no options).
pub const TCP_HEADER_LEN: usize = 20;

/// An owned Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: u16,
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    pub fn parse(bytes: &[u8]) -> Result<EthernetFrame, ParseError> {
        if bytes.len() < ETH_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: ETH_HEADER_LEN,
                got: bytes.len(),
            });
        }
        Ok(EthernetFrame {
            dst: MacAddr(bytes[0..6].try_into().expect("6")),
            src: MacAddr(bytes[6..12].try_into().expect("6")),
            ethertype: u16::from_be_bytes([bytes[12], bytes[13]]),
            payload: bytes[14..].to_vec(),
        })
    }

    pub fn emit(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETH_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

fn ones_complement_sum(data: &[u8], initial: u32) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u16) -> u32 {
    let s = src.octets();
    let d = dst.octets();
    let mut sum = 0u32;
    sum += u16::from_be_bytes([s[0], s[1]]) as u32;
    sum += u16::from_be_bytes([s[2], s[3]]) as u32;
    sum += u16::from_be_bytes([d[0], d[1]]) as u32;
    sum += u16::from_be_bytes([d[2], d[3]]) as u32;
    sum += protocol as u32;
    sum += length as u32;
    sum
}

/// An owned IPv4 packet (options are unsupported, as in most NFV fast paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: Protocol,
    pub ttl: u8,
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    pub fn parse(bytes: &[u8]) -> Result<Ipv4Packet, ParseError> {
        if bytes.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: IPV4_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let version = bytes[0] >> 4;
        if version != 4 {
            return Err(ParseError::Unsupported("IP version"));
        }
        let ihl = (bytes[0] & 0x0f) as usize * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(ParseError::Unsupported("IPv4 options"));
        }
        let total_len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if total_len < IPV4_HEADER_LEN || total_len > bytes.len() {
            return Err(ParseError::Truncated {
                needed: total_len,
                got: bytes.len(),
            });
        }
        if ones_complement_sum(&bytes[..IPV4_HEADER_LEN], 0) != 0 {
            return Err(ParseError::BadChecksum);
        }
        Ok(Ipv4Packet {
            src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
            dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
            protocol: Protocol::from_number(bytes[9]),
            ttl: bytes[8],
            payload: bytes[IPV4_HEADER_LEN..total_len].to_vec(),
        })
    }

    pub fn emit(&self) -> Vec<u8> {
        let total_len = IPV4_HEADER_LEN + self.payload.len();
        let mut out = vec![0u8; total_len];
        out[0] = 0x45; // version 4, IHL 5
        out[2..4].copy_from_slice(&(total_len as u16).to_be_bytes());
        out[8] = self.ttl;
        out[9] = self.protocol.number();
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
        let checksum = ones_complement_sum(&out[..IPV4_HEADER_LEN], 0);
        out[10..12].copy_from_slice(&checksum.to_be_bytes());
        out[IPV4_HEADER_LEN..].copy_from_slice(&self.payload);
        out
    }
}

/// An owned UDP datagram (relative to an enclosing IPv4 packet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    pub fn parse(bytes: &[u8]) -> Result<UdpDatagram, ParseError> {
        if bytes.len() < UDP_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: UDP_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let length = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        if length < UDP_HEADER_LEN || length > bytes.len() {
            return Err(ParseError::Truncated {
                needed: length,
                got: bytes.len(),
            });
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            payload: bytes[UDP_HEADER_LEN..length].to_vec(),
        })
    }

    /// Emit with a checksum over the IPv4 pseudo-header.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let length = UDP_HEADER_LEN + self.payload.len();
        let mut out = vec![0u8; length];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&(length as u16).to_be_bytes());
        out[UDP_HEADER_LEN..].copy_from_slice(&self.payload);
        let pseudo = pseudo_header_sum(src, dst, 17, length as u16);
        let mut checksum = ones_complement_sum(&out, pseudo);
        if checksum == 0 {
            checksum = 0xffff;
        }
        out[6..8].copy_from_slice(&checksum.to_be_bytes());
        out
    }

    /// Verify the checksum against the pseudo-header.
    pub fn verify_checksum(bytes: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if bytes.len() < UDP_HEADER_LEN {
            return false;
        }
        let pseudo = pseudo_header_sum(src, dst, 17, bytes.len() as u16);
        ones_complement_sum(bytes, pseudo) == 0
    }
}

/// TCP flag bits.
pub mod tcp_flags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const ACK: u8 = 0x10;
}

/// An owned TCP segment (no options).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: u8,
    pub window: u16,
    pub payload: Vec<u8>,
}

impl TcpSegment {
    pub fn parse(bytes: &[u8]) -> Result<TcpSegment, ParseError> {
        if bytes.len() < TCP_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: TCP_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let data_offset = (bytes[12] >> 4) as usize * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > bytes.len() {
            return Err(ParseError::Unsupported("TCP data offset"));
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes(bytes[4..8].try_into().expect("4")),
            ack: u32::from_be_bytes(bytes[8..12].try_into().expect("4")),
            flags: bytes[13],
            window: u16::from_be_bytes([bytes[14], bytes[15]]),
            payload: bytes[data_offset..].to_vec(),
        })
    }

    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let length = TCP_HEADER_LEN + self.payload.len();
        let mut out = vec![0u8; length];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = (TCP_HEADER_LEN as u8 / 4) << 4;
        out[13] = self.flags;
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[TCP_HEADER_LEN..].copy_from_slice(&self.payload);
        let pseudo = pseudo_header_sum(src, dst, 6, length as u16);
        let checksum = ones_complement_sum(&out, pseudo);
        out[16..18].copy_from_slice(&checksum.to_be_bytes());
        out
    }
}

/// Convenience builder: a full Ethernet/IPv4/UDP frame.
pub fn build_udp_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let udp = UdpDatagram {
        src_port,
        dst_port,
        payload: payload.to_vec(),
    };
    let ip = Ipv4Packet {
        src,
        dst,
        protocol: Protocol::Udp,
        ttl: 64,
        payload: udp.emit(src, dst),
    };
    EthernetFrame {
        dst: dst_mac,
        src: src_mac,
        ethertype: ETHERTYPE_IPV4,
        payload: ip.emit(),
    }
    .emit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    #[test]
    fn ethernet_roundtrip() {
        let frame = EthernetFrame {
            dst: MacAddr([1; 6]),
            src: MacAddr([2; 6]),
            ethertype: ETHERTYPE_IPV4,
            payload: vec![9, 9, 9],
        };
        assert_eq!(EthernetFrame::parse(&frame.emit()).unwrap(), frame);
    }

    #[test]
    fn ethernet_truncated() {
        assert!(matches!(
            EthernetFrame::parse(&[0; 13]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn ipv4_roundtrip_and_checksum() {
        let packet = Ipv4Packet {
            src: ip(1),
            dst: ip(2),
            protocol: Protocol::Udp,
            ttl: 64,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = packet.emit();
        assert_eq!(Ipv4Packet::parse(&bytes).unwrap(), packet);
        // Header corruption is detected by the checksum.
        let mut bad = bytes.clone();
        bad[8] ^= 0xff; // TTL
        assert_eq!(Ipv4Packet::parse(&bad), Err(ParseError::BadChecksum));
    }

    #[test]
    fn ipv4_rejects_v6_and_options() {
        let packet = Ipv4Packet {
            src: ip(1),
            dst: ip(2),
            protocol: Protocol::Tcp,
            ttl: 1,
            payload: vec![],
        };
        let mut bytes = packet.emit();
        bytes[0] = 0x60; // version 6
        assert!(matches!(
            Ipv4Packet::parse(&bytes),
            Err(ParseError::Unsupported(_))
        ));
        let mut bytes = packet.emit();
        bytes[0] = 0x46; // IHL 6 (options)
        assert!(matches!(
            Ipv4Packet::parse(&bytes),
            Err(ParseError::Unsupported(_))
        ));
    }

    #[test]
    fn ipv4_trailing_bytes_ignored_via_total_length() {
        let packet = Ipv4Packet {
            src: ip(1),
            dst: ip(2),
            protocol: Protocol::Udp,
            ttl: 64,
            payload: vec![7; 10],
        };
        let mut bytes = packet.emit();
        bytes.extend_from_slice(&[0xee; 6]); // ethernet padding
        let parsed = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(parsed.payload, vec![7; 10]);
    }

    #[test]
    fn udp_roundtrip_and_checksum() {
        let udp = UdpDatagram {
            src_port: 5000,
            dst_port: 6653,
            payload: b"flow stats".to_vec(),
        };
        let bytes = udp.emit(ip(1), ip(2));
        assert_eq!(UdpDatagram::parse(&bytes).unwrap(), udp);
        assert!(UdpDatagram::verify_checksum(&bytes, ip(1), ip(2)));
        // Wrong pseudo-header (spoofed source) breaks the checksum.
        assert!(!UdpDatagram::verify_checksum(&bytes, ip(9), ip(2)));
        // Payload corruption breaks it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(!UdpDatagram::verify_checksum(&bad, ip(1), ip(2)));
    }

    #[test]
    fn tcp_roundtrip() {
        let segment = TcpSegment {
            src_port: 443,
            dst_port: 50000,
            seq: 0x01020304,
            ack: 0x0a0b0c0d,
            flags: tcp_flags::SYN | tcp_flags::ACK,
            window: 65535,
            payload: b"hello".to_vec(),
        };
        let bytes = segment.emit(ip(1), ip(2));
        assert_eq!(TcpSegment::parse(&bytes).unwrap(), segment);
    }

    #[test]
    fn full_frame_construction() {
        let frame_bytes = build_udp_frame(
            MacAddr([1; 6]),
            MacAddr([2; 6]),
            ip(1),
            ip(2),
            1234,
            5678,
            b"payload",
        );
        let eth = EthernetFrame::parse(&frame_bytes).unwrap();
        assert_eq!(eth.ethertype, ETHERTYPE_IPV4);
        let ipv4 = Ipv4Packet::parse(&eth.payload).unwrap();
        assert_eq!(ipv4.protocol, Protocol::Udp);
        let udp = UdpDatagram::parse(&ipv4.payload).unwrap();
        assert_eq!(udp.dst_port, 5678);
        assert_eq!(udp.payload, b"payload");
    }

    #[test]
    fn mac_display_and_broadcast() {
        assert_eq!(MacAddr([0xde, 0xad, 0, 1, 2, 3]).to_string(), "de:ad:00:01:02:03");
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr([0; 6]).is_broadcast());
    }

    proptest! {
        #[test]
        fn prop_ipv4_roundtrip(
            src in any::<u32>(),
            dst in any::<u32>(),
            ttl in any::<u8>(),
            proto in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..200)
        ) {
            let packet = Ipv4Packet {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                protocol: Protocol::from_number(proto),
                ttl,
                payload,
            };
            prop_assert_eq!(Ipv4Packet::parse(&packet.emit()).unwrap(), packet);
        }

        #[test]
        fn prop_udp_checksum_detects_any_single_bitflip(
            payload in proptest::collection::vec(any::<u8>(), 1..64),
            flip_bit in 0usize..64
        ) {
            let udp = UdpDatagram { src_port: 1, dst_port: 2, payload };
            let mut bytes = udp.emit(Ipv4Addr::new(1,2,3,4), Ipv4Addr::new(5,6,7,8));
            let bit = flip_bit % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(!UdpDatagram::verify_checksum(
                &bytes,
                Ipv4Addr::new(1,2,3,4),
                Ipv4Addr::new(5,6,7,8)
            ));
        }

        #[test]
        fn prop_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
            let _ = EthernetFrame::parse(&bytes);
            let _ = Ipv4Packet::parse(&bytes);
            let _ = UdpDatagram::parse(&bytes);
            let _ = TcpSegment::parse(&bytes);
        }
    }
}
