//! A flow-table-driven switch with MAC learning fallback.

use crate::flow::{apply_actions, Disposition, FlowEntry, FlowKey, FlowTable};
use crate::wire::{EthernetFrame, MacAddr};
use std::collections::HashMap;

/// A packet punted to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketIn {
    pub in_port: u16,
    pub frame: Vec<u8>,
}

/// Forwarding decision produced by the switch for one input frame.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct SwitchOutput {
    /// (out_port, frame) pairs to transmit.
    pub transmit: Vec<(u16, Vec<u8>)>,
    /// Packet-in event for the controller, if punted.
    pub packet_in: Option<PacketIn>,
}

/// A simulated switch: datapath id, port set, flow table, MAC learning.
#[derive(Debug)]
pub struct Switch {
    pub dpid: u64,
    ports: Vec<u16>,
    table: FlowTable,
    mac_table: HashMap<MacAddr, u16>,
    packets_switched: u64,
    packets_dropped: u64,
}

impl Switch {
    pub fn new(dpid: u64, ports: Vec<u16>) -> Switch {
        Switch {
            dpid,
            ports,
            table: FlowTable::new(),
            mac_table: HashMap::new(),
            packets_switched: 0,
            packets_dropped: 0,
        }
    }

    pub fn ports(&self) -> &[u16] {
        &self.ports
    }

    pub fn flow_table(&self) -> &FlowTable {
        &self.table
    }

    /// Install a flow (from the controller).
    pub fn install_flow(&mut self, entry: FlowEntry) {
        self.table.install(entry);
    }

    pub fn remove_flow(&mut self, name: &str) -> bool {
        self.table.remove(name)
    }

    pub fn stats(&self) -> (u64, u64) {
        (self.packets_switched, self.packets_dropped)
    }

    /// Process one frame received on `in_port`.
    ///
    /// Matching flow entries decide; otherwise the switch falls back to
    /// MAC-learning forwarding (flood unknown destinations).
    pub fn receive(&mut self, in_port: u16, frame_bytes: &[u8]) -> SwitchOutput {
        let mut output = SwitchOutput::default();
        let Ok(eth) = EthernetFrame::parse(frame_bytes) else {
            self.packets_dropped += 1;
            return output;
        };
        // Learn the source MAC.
        self.mac_table.insert(eth.src, in_port);

        if let Some(key) = FlowKey::extract(frame_bytes, in_port) {
            if let Some(entry) = self.table.lookup(&key, frame_bytes.len()) {
                let actions = entry.actions.clone();
                match apply_actions(&actions, frame_bytes) {
                    Disposition::Forward { port, frame } => {
                        self.packets_switched += 1;
                        output.transmit.push((port, frame));
                    }
                    Disposition::Drop => {
                        self.packets_dropped += 1;
                    }
                    Disposition::ToController => {
                        output.packet_in = Some(PacketIn {
                            in_port,
                            frame: frame_bytes.to_vec(),
                        });
                    }
                }
                return output;
            }
        }

        // Table miss: MAC learning datapath.
        match self.mac_table.get(&eth.dst) {
            Some(&port) if port != in_port => {
                self.packets_switched += 1;
                output.transmit.push((port, frame_bytes.to_vec()));
            }
            Some(_) => {
                // Destination is on the ingress port: drop (hairpin).
                self.packets_dropped += 1;
            }
            None => {
                // Flood to all other ports.
                self.packets_switched += 1;
                for &port in &self.ports {
                    if port != in_port {
                        output.transmit.push((port, frame_bytes.to_vec()));
                    }
                }
            }
        }
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowAction, FlowMatch};
    use crate::wire::build_udp_frame;
    use std::net::Ipv4Addr;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    fn mac(a: u8) -> MacAddr {
        MacAddr([a; 6])
    }

    fn frame(src: u8, dst: u8) -> Vec<u8> {
        build_udp_frame(mac(src), mac(dst), ip(src), ip(dst), 1, 2, b"x")
    }

    #[test]
    fn floods_unknown_then_learns() {
        let mut sw = Switch::new(1, vec![1, 2, 3]);
        // Host A (port 1) talks to unknown B: flood to 2 and 3.
        let out = sw.receive(1, &frame(0xa, 0xb));
        assert_eq!(out.transmit.len(), 2);
        // B replies from port 2: now A is known, unicast to port 1.
        let out = sw.receive(2, &frame(0xb, 0xa));
        assert_eq!(out.transmit.len(), 1);
        assert_eq!(out.transmit[0].0, 1);
        // A to B again: unicast to 2.
        let out = sw.receive(1, &frame(0xa, 0xb));
        assert_eq!(out.transmit.len(), 1);
        assert_eq!(out.transmit[0].0, 2);
    }

    #[test]
    fn flow_entries_override_learning() {
        let mut sw = Switch::new(1, vec![1, 2]);
        sw.install_flow(FlowEntry::new(
            "block-a",
            10,
            FlowMatch::any().from_ip(ip(0xa)),
            vec![FlowAction::Drop],
        ));
        let out = sw.receive(1, &frame(0xa, 0xb));
        assert!(out.transmit.is_empty());
        assert_eq!(sw.stats().1, 1);
        // Other traffic still floods.
        let out = sw.receive(1, &frame(0xc, 0xb));
        assert_eq!(out.transmit.len(), 1);
    }

    #[test]
    fn punt_to_controller() {
        let mut sw = Switch::new(1, vec![1, 2]);
        sw.install_flow(FlowEntry::new(
            "punt",
            5,
            FlowMatch::any(),
            vec![FlowAction::Controller],
        ));
        let out = sw.receive(2, &frame(1, 2));
        assert!(out.transmit.is_empty());
        let packet_in = out.packet_in.unwrap();
        assert_eq!(packet_in.in_port, 2);
    }

    #[test]
    fn hairpin_dropped() {
        let mut sw = Switch::new(1, vec![1, 2]);
        // Learn A on port 1, then send traffic to A arriving on port 1.
        sw.receive(1, &frame(0xa, 0xff));
        let out = sw.receive(1, &frame(0xb, 0xa));
        // B is learned, A is on the same port => drop.
        assert!(out.transmit.is_empty());
    }

    #[test]
    fn malformed_frame_dropped() {
        let mut sw = Switch::new(1, vec![1]);
        let out = sw.receive(1, &[0u8; 5]);
        assert!(out.transmit.is_empty());
        assert_eq!(sw.stats().1, 1);
    }

    #[test]
    fn flow_rewrite_path() {
        let mut sw = Switch::new(1, vec![1, 2]);
        sw.install_flow(FlowEntry::new(
            "dnat",
            10,
            FlowMatch::any().to_ip(ip(2)),
            vec![FlowAction::SetIpDst(ip(9)), FlowAction::Output(2)],
        ));
        let out = sw.receive(1, &frame(1, 2));
        assert_eq!(out.transmit.len(), 1);
        let eth = EthernetFrame::parse(&out.transmit[0].1).unwrap();
        let packet = crate::wire::Ipv4Packet::parse(&eth.payload).unwrap();
        assert_eq!(packet.dst, ip(9));
    }
}
