//! OpenFlow-style flow matching and actions.

use crate::wire::{EthernetFrame, Ipv4Packet, MacAddr, Protocol, TcpSegment, UdpDatagram,
    ETHERTYPE_IPV4};
use std::net::Ipv4Addr;

/// The fields a flow entry can match on, extracted from a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    pub in_port: u16,
    pub eth_src: MacAddr,
    pub eth_dst: MacAddr,
    pub ethertype: u16,
    pub ip_src: Option<Ipv4Addr>,
    pub ip_dst: Option<Ipv4Addr>,
    pub protocol: Option<Protocol>,
    pub tp_src: Option<u16>,
    pub tp_dst: Option<u16>,
}

impl FlowKey {
    /// Extract the key from a raw frame arriving on `in_port`.
    pub fn extract(frame_bytes: &[u8], in_port: u16) -> Option<FlowKey> {
        let eth = EthernetFrame::parse(frame_bytes).ok()?;
        let mut key = FlowKey {
            in_port,
            eth_src: eth.src,
            eth_dst: eth.dst,
            ethertype: eth.ethertype,
            ip_src: None,
            ip_dst: None,
            protocol: None,
            tp_src: None,
            tp_dst: None,
        };
        if eth.ethertype == ETHERTYPE_IPV4 {
            if let Ok(ip) = Ipv4Packet::parse(&eth.payload) {
                key.ip_src = Some(ip.src);
                key.ip_dst = Some(ip.dst);
                key.protocol = Some(ip.protocol);
                match ip.protocol {
                    Protocol::Udp => {
                        if let Ok(udp) = UdpDatagram::parse(&ip.payload) {
                            key.tp_src = Some(udp.src_port);
                            key.tp_dst = Some(udp.dst_port);
                        }
                    }
                    Protocol::Tcp => {
                        if let Ok(tcp) = TcpSegment::parse(&ip.payload) {
                            key.tp_src = Some(tcp.src_port);
                            key.tp_dst = Some(tcp.dst_port);
                        }
                    }
                    Protocol::Other(_) => {}
                }
            }
        }
        Some(key)
    }
}

/// A wildcard-able match over [`FlowKey`] fields (None = any).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowMatch {
    pub in_port: Option<u16>,
    pub eth_src: Option<MacAddr>,
    pub eth_dst: Option<MacAddr>,
    pub ip_src: Option<Ipv4Addr>,
    pub ip_dst: Option<Ipv4Addr>,
    pub protocol: Option<Protocol>,
    pub tp_src: Option<u16>,
    pub tp_dst: Option<u16>,
}

impl FlowMatch {
    /// Match anything.
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    pub fn on_port(mut self, port: u16) -> FlowMatch {
        self.in_port = Some(port);
        self
    }

    pub fn from_ip(mut self, ip: Ipv4Addr) -> FlowMatch {
        self.ip_src = Some(ip);
        self
    }

    pub fn to_ip(mut self, ip: Ipv4Addr) -> FlowMatch {
        self.ip_dst = Some(ip);
        self
    }

    pub fn with_protocol(mut self, protocol: Protocol) -> FlowMatch {
        self.protocol = Some(protocol);
        self
    }

    pub fn to_tp_port(mut self, port: u16) -> FlowMatch {
        self.tp_dst = Some(port);
        self
    }

    pub fn matches(&self, key: &FlowKey) -> bool {
        fn field<T: PartialEq>(rule: &Option<T>, actual: &T) -> bool {
            rule.as_ref().is_none_or(|want| want == actual)
        }
        fn opt_field<T: PartialEq>(rule: &Option<T>, actual: &Option<T>) -> bool {
            match rule {
                None => true,
                Some(want) => actual.as_ref() == Some(want),
            }
        }
        field(&self.in_port, &key.in_port)
            && field(&self.eth_src, &key.eth_src)
            && field(&self.eth_dst, &key.eth_dst)
            && opt_field(&self.ip_src, &key.ip_src)
            && opt_field(&self.ip_dst, &key.ip_dst)
            && opt_field(&self.protocol, &key.protocol)
            && opt_field(&self.tp_src, &key.tp_src)
            && opt_field(&self.tp_dst, &key.tp_dst)
    }
}

/// Actions applied to matching packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowAction {
    /// Forward out a port.
    Output(u16),
    /// Drop the packet.
    Drop,
    /// Punt to the controller (packet-in).
    Controller,
    /// Rewrite the IPv4 destination (DNAT-style).
    SetIpDst(Ipv4Addr),
    /// Rewrite the IPv4 source (SNAT-style).
    SetIpSrc(Ipv4Addr),
    /// Rewrite the transport destination port.
    SetTpDst(u16),
}

/// One installed flow entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEntry {
    pub name: String,
    pub priority: u16,
    pub matcher: FlowMatch,
    pub actions: Vec<FlowAction>,
    pub packets: u64,
    pub bytes: u64,
}

impl FlowEntry {
    pub fn new(name: &str, priority: u16, matcher: FlowMatch, actions: Vec<FlowAction>) -> FlowEntry {
        FlowEntry {
            name: name.to_string(),
            priority,
            matcher,
            actions,
            packets: 0,
            bytes: 0,
        }
    }
}

/// A priority-ordered flow table.
#[derive(Debug, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    lookups: u64,
    misses: u64,
}

impl FlowTable {
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Install (or replace, by name) an entry, keeping priority order.
    pub fn install(&mut self, entry: FlowEntry) {
        self.entries.retain(|e| e.name != entry.name);
        let position = self
            .entries
            .partition_point(|e| e.priority >= entry.priority);
        self.entries.insert(position, entry);
    }

    /// Remove an entry by name; returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.name != name);
        self.entries.len() != before
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    pub fn get(&self, name: &str) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Look up the highest-priority match, updating counters.
    pub fn lookup(&mut self, key: &FlowKey, frame_len: usize) -> Option<&FlowEntry> {
        self.lookups += 1;
        let index = self.entries.iter().position(|e| e.matcher.matches(key));
        match index {
            Some(i) => {
                self.entries[i].packets += 1;
                self.entries[i].bytes += frame_len as u64;
                Some(&self.entries[i])
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.misses)
    }
}

/// Apply rewrite actions to a frame, returning the output decision.
///
/// Returns `(forward_port, rewritten_frame)`; `None` means dropped or
/// punted (indicated by the boolean `to_controller`).
#[derive(Debug, PartialEq, Eq)]
pub enum Disposition {
    Forward { port: u16, frame: Vec<u8> },
    Drop,
    ToController,
}

pub fn apply_actions(actions: &[FlowAction], frame_bytes: &[u8]) -> Disposition {
    let mut frame = match EthernetFrame::parse(frame_bytes) {
        Ok(f) => f,
        Err(_) => return Disposition::Drop,
    };
    let mut output: Option<u16> = None;
    for action in actions {
        match action {
            FlowAction::Drop => return Disposition::Drop,
            FlowAction::Controller => return Disposition::ToController,
            FlowAction::Output(port) => output = Some(*port),
            FlowAction::SetIpDst(ip) | FlowAction::SetIpSrc(ip) => {
                if let Ok(mut packet) = Ipv4Packet::parse(&frame.payload) {
                    let set_dst = matches!(action, FlowAction::SetIpDst(_));
                    // Transport checksums cover the pseudo-header: rebuild it.
                    let payload = rebuild_transport(&packet, |p| {
                        if set_dst {
                            p.dst = *ip;
                        } else {
                            p.src = *ip;
                        }
                    });
                    if set_dst {
                        packet.dst = *ip;
                    } else {
                        packet.src = *ip;
                    }
                    packet.payload = payload.unwrap_or(packet.payload);
                    frame.payload = packet.emit();
                }
            }
            FlowAction::SetTpDst(port) => {
                if let Ok(mut packet) = Ipv4Packet::parse(&frame.payload) {
                    match packet.protocol {
                        Protocol::Udp => {
                            if let Ok(mut udp) = UdpDatagram::parse(&packet.payload) {
                                udp.dst_port = *port;
                                packet.payload = udp.emit(packet.src, packet.dst);
                            }
                        }
                        Protocol::Tcp => {
                            if let Ok(mut tcp) = TcpSegment::parse(&packet.payload) {
                                tcp.dst_port = *port;
                                packet.payload = tcp.emit(packet.src, packet.dst);
                            }
                        }
                        Protocol::Other(_) => {}
                    }
                    frame.payload = packet.emit();
                }
            }
        }
    }
    match output {
        Some(port) => Disposition::Forward {
            port,
            frame: frame.emit(),
        },
        None => Disposition::Drop,
    }
}

/// Re-emit the transport payload under new IP addresses (checksum refresh).
fn rebuild_transport(
    packet: &Ipv4Packet,
    mutate: impl FnOnce(&mut Ipv4Packet),
) -> Option<Vec<u8>> {
    let mut updated = packet.clone();
    mutate(&mut updated);
    match packet.protocol {
        Protocol::Udp => UdpDatagram::parse(&packet.payload)
            .ok()
            .map(|udp| udp.emit(updated.src, updated.dst)),
        Protocol::Tcp => TcpSegment::parse(&packet.payload)
            .ok()
            .map(|tcp| tcp.emit(updated.src, updated.dst)),
        Protocol::Other(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::build_udp_frame;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    fn frame(src: u8, dst: u8, dst_port: u16) -> Vec<u8> {
        build_udp_frame(
            MacAddr([src; 6]),
            MacAddr([dst; 6]),
            ip(src),
            ip(dst),
            40_000,
            dst_port,
            b"data",
        )
    }

    #[test]
    fn key_extraction() {
        let key = FlowKey::extract(&frame(1, 2, 6653), 3).unwrap();
        assert_eq!(key.in_port, 3);
        assert_eq!(key.ip_src, Some(ip(1)));
        assert_eq!(key.ip_dst, Some(ip(2)));
        assert_eq!(key.protocol, Some(Protocol::Udp));
        assert_eq!(key.tp_dst, Some(6653));
    }

    #[test]
    fn key_extraction_non_ip() {
        let eth = EthernetFrame {
            dst: MacAddr([1; 6]),
            src: MacAddr([2; 6]),
            ethertype: 0x0806, // ARP
            payload: vec![0; 28],
        };
        let key = FlowKey::extract(&eth.emit(), 1).unwrap();
        assert_eq!(key.ip_src, None);
        assert_eq!(key.tp_dst, None);
    }

    #[test]
    fn wildcard_matching() {
        let key = FlowKey::extract(&frame(1, 2, 80), 5).unwrap();
        assert!(FlowMatch::any().matches(&key));
        assert!(FlowMatch::any().on_port(5).matches(&key));
        assert!(!FlowMatch::any().on_port(6).matches(&key));
        assert!(FlowMatch::any().from_ip(ip(1)).to_ip(ip(2)).matches(&key));
        assert!(!FlowMatch::any().from_ip(ip(9)).matches(&key));
        assert!(FlowMatch::any()
            .with_protocol(Protocol::Udp)
            .to_tp_port(80)
            .matches(&key));
        assert!(!FlowMatch::any().to_tp_port(81).matches(&key));
    }

    #[test]
    fn specified_field_on_non_ip_never_matches() {
        let eth = EthernetFrame {
            dst: MacAddr([1; 6]),
            src: MacAddr([2; 6]),
            ethertype: 0x0806,
            payload: vec![],
        };
        let key = FlowKey::extract(&eth.emit(), 1).unwrap();
        assert!(!FlowMatch::any().from_ip(ip(1)).matches(&key));
    }

    #[test]
    fn priority_ordering_and_counters() {
        let mut table = FlowTable::new();
        table.install(FlowEntry::new(
            "default-drop",
            0,
            FlowMatch::any(),
            vec![FlowAction::Drop],
        ));
        table.install(FlowEntry::new(
            "allow-controller",
            100,
            FlowMatch::any().to_tp_port(6653),
            vec![FlowAction::Output(2)],
        ));
        let controller_key = FlowKey::extract(&frame(1, 2, 6653), 1).unwrap();
        let other_key = FlowKey::extract(&frame(1, 2, 80), 1).unwrap();

        assert_eq!(
            table.lookup(&controller_key, 100).unwrap().name,
            "allow-controller"
        );
        assert_eq!(table.lookup(&other_key, 60).unwrap().name, "default-drop");
        assert_eq!(table.get("allow-controller").unwrap().packets, 1);
        assert_eq!(table.get("allow-controller").unwrap().bytes, 100);
        assert_eq!(table.stats(), (2, 0));
    }

    #[test]
    fn miss_counted() {
        let mut table = FlowTable::new();
        table.install(FlowEntry::new(
            "only-port-9",
            1,
            FlowMatch::any().on_port(9),
            vec![FlowAction::Output(1)],
        ));
        let key = FlowKey::extract(&frame(1, 2, 80), 1).unwrap();
        assert!(table.lookup(&key, 10).is_none());
        assert_eq!(table.stats(), (1, 1));
    }

    #[test]
    fn replace_by_name() {
        let mut table = FlowTable::new();
        table.install(FlowEntry::new("f", 1, FlowMatch::any(), vec![FlowAction::Drop]));
        table.install(FlowEntry::new(
            "f",
            5,
            FlowMatch::any(),
            vec![FlowAction::Output(1)],
        ));
        assert_eq!(table.len(), 1);
        assert_eq!(table.get("f").unwrap().priority, 5);
        assert!(table.remove("f"));
        assert!(!table.remove("f"));
    }

    #[test]
    fn forward_action() {
        let bytes = frame(1, 2, 80);
        match apply_actions(&[FlowAction::Output(7)], &bytes) {
            Disposition::Forward { port, frame } => {
                assert_eq!(port, 7);
                assert_eq!(frame, bytes);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn drop_and_controller() {
        let bytes = frame(1, 2, 80);
        assert_eq!(apply_actions(&[FlowAction::Drop], &bytes), Disposition::Drop);
        assert_eq!(
            apply_actions(&[FlowAction::Controller], &bytes),
            Disposition::ToController
        );
        // No output action at all behaves as drop.
        assert_eq!(apply_actions(&[], &bytes), Disposition::Drop);
    }

    #[test]
    fn dnat_rewrite_keeps_checksums_valid() {
        let bytes = frame(1, 2, 80);
        let actions = [
            FlowAction::SetIpDst(ip(99)),
            FlowAction::SetTpDst(8080),
            FlowAction::Output(3),
        ];
        match apply_actions(&actions, &bytes) {
            Disposition::Forward { frame, .. } => {
                let eth = EthernetFrame::parse(&frame).unwrap();
                let packet = Ipv4Packet::parse(&eth.payload).unwrap();
                assert_eq!(packet.dst, ip(99));
                let udp = UdpDatagram::parse(&packet.payload).unwrap();
                assert_eq!(udp.dst_port, 8080);
                assert!(UdpDatagram::verify_checksum(
                    &packet.payload,
                    packet.src,
                    packet.dst
                ));
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }
}
