//! Constant-time helpers.
//!
//! Comparison of MACs, session keys and credential material must not leak
//! the position of the first mismatching byte through timing. These helpers
//! aggregate differences with bitwise OR before the final comparison.

/// Constant-time equality of two byte slices.
///
/// Returns `false` immediately for length mismatch (lengths are public for
/// all uses in this workspace: tags, digests and keys have fixed sizes).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Constant-time conditional select: returns `a` when `choice` is true.
pub fn ct_select_u64(choice: bool, a: u64, b: u64) -> u64 {
    let mask = (choice as u64).wrapping_neg();
    (a & mask) | (b & !mask)
}

/// Zero a buffer. Uses a volatile write loop so the compiler cannot elide
/// the wipe of credential material going out of scope.
pub fn wipe(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        // SAFETY: `b` is a valid, aligned, exclusive reference.
        unsafe { std::ptr::write_volatile(b, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"x"));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select_u64(true, 1, 2), 1);
        assert_eq!(ct_select_u64(false, 1, 2), 2);
    }

    #[test]
    fn wipe_zeroes() {
        let mut buf = [1u8, 2, 3];
        wipe(&mut buf);
        assert_eq!(buf, [0, 0, 0]);
    }
}
