//! SHA-256 and SHA-512 (FIPS 180-4).
//!
//! The round constants and initial hash values are *derived at first use*
//! from their definition — the fractional parts of the square and cube roots
//! of the first primes — using exact integer arithmetic ([`crate::mpint`]),
//! instead of being transcribed from the standard. The published test
//! vectors in the test module pin the derivation to the real constants.

use crate::mpint::MpInt;
use std::sync::OnceLock;

/// Digest size of SHA-256 in bytes.
pub const SHA256_LEN: usize = 32;
/// Digest size of SHA-512 in bytes.
pub const SHA512_LEN: usize = 64;
/// Block (chunk) size of SHA-256 in bytes.
pub const SHA256_BLOCK: usize = 64;
/// Block (chunk) size of SHA-512 in bytes.
pub const SHA512_BLOCK: usize = 128;

fn primes(n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut candidate = 2u64;
    while out.len() < n {
        if out.iter().all(|&p| !candidate.is_multiple_of(p)) {
            out.push(candidate);
        }
        candidate += 1;
    }
    out
}

/// First `frac_bits` bits of the fractional part of sqrt(p).
fn sqrt_frac(p: u64, frac_bits: usize) -> u64 {
    // floor(sqrt(p * 2^(2*frac_bits))) = floor(sqrt(p) * 2^frac_bits);
    // the low `frac_bits` bits are the fractional part.
    let scaled = MpInt::from_u64(p).shl(2 * frac_bits);
    let root = scaled.isqrt();
    let mask_bits = root.rem(&MpInt::from_u64(1).shl(frac_bits).clone());
    mask_bits.low_u64()
}

/// First `frac_bits` bits of the fractional part of cbrt(p).
fn cbrt_frac(p: u64, frac_bits: usize) -> u64 {
    let scaled = MpInt::from_u64(p).shl(3 * frac_bits);
    let root = scaled.icbrt();
    let mask_bits = root.rem(&MpInt::from_u64(1).shl(frac_bits).clone());
    mask_bits.low_u64()
}

struct Consts256 {
    h: [u32; 8],
    k: [u32; 64],
}

struct Consts512 {
    h: [u64; 8],
    k: [u64; 80],
}

fn consts256() -> &'static Consts256 {
    static CONSTS: OnceLock<Consts256> = OnceLock::new();
    CONSTS.get_or_init(|| {
        let ps = primes(64);
        let mut h = [0u32; 8];
        for i in 0..8 {
            h[i] = sqrt_frac(ps[i], 32) as u32;
        }
        let mut k = [0u32; 64];
        for i in 0..64 {
            k[i] = cbrt_frac(ps[i], 32) as u32;
        }
        Consts256 { h, k }
    })
}

fn consts512() -> &'static Consts512 {
    static CONSTS: OnceLock<Consts512> = OnceLock::new();
    CONSTS.get_or_init(|| {
        let ps = primes(80);
        let mut h = [0u64; 8];
        for i in 0..8 {
            h[i] = sqrt_frac(ps[i], 64);
        }
        let mut k = [0u64; 80];
        for i in 0..80 {
            k[i] = cbrt_frac(ps[i], 64);
        }
        Consts512 { h, k }
    })
}

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; SHA256_BLOCK],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Sha256 {
        Sha256 {
            state: consts256().h,
            buffer: [0; SHA256_BLOCK],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Absorb more input.
    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (SHA256_BLOCK - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == SHA256_BLOCK {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= SHA256_BLOCK {
            let block: [u8; SHA256_BLOCK] = data[..SHA256_BLOCK].try_into().expect("block");
            self.compress(&block);
            data = &data[SHA256_BLOCK..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
        self
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> [u8; SHA256_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit length.
        self.update(&[0x80]);
        while self.buffered != SHA256_BLOCK - 8 {
            self.update(&[0]);
        }
        // Manual write of the length (update would count it).
        self.buffer[SHA256_BLOCK - 8..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; SHA256_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; SHA256_BLOCK]) {
        let k = &consts256().k;
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("word"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; SHA256_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Incremental SHA-512 hasher.
#[derive(Clone)]
pub struct Sha512 {
    state: [u64; 8],
    buffer: [u8; SHA512_BLOCK],
    buffered: usize,
    total_len: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    pub fn new() -> Sha512 {
        Sha512 {
            state: consts512().h,
            buffer: [0; SHA512_BLOCK],
            buffered: 0,
            total_len: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u128);
        if self.buffered > 0 {
            let take = (SHA512_BLOCK - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == SHA512_BLOCK {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= SHA512_BLOCK {
            let block: [u8; SHA512_BLOCK] = data[..SHA512_BLOCK].try_into().expect("block");
            self.compress(&block);
            data = &data[SHA512_BLOCK..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
        self
    }

    pub fn finalize(mut self) -> [u8; SHA512_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != SHA512_BLOCK - 16 {
            self.update(&[0]);
        }
        self.buffer[SHA512_BLOCK - 16..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; SHA512_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; SHA512_BLOCK]) {
        let k = &consts512().k;
        let mut w = [0u64; 80];
        for i in 0..16 {
            w[i] = u64::from_be_bytes(block[i * 8..i * 8 + 8].try_into().expect("word"));
        }
        for i in 16..80 {
            let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
            let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..80 {
            let s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-512.
pub fn sha512(data: &[u8]) -> [u8; SHA512_LEN] {
    let mut h = Sha512::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP published vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha512_empty() {
        assert_eq!(
            hex(&sha512(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
                .replace(char::is_whitespace, "")
                .as_str()
        );
    }

    #[test]
    fn sha512_abc() {
        assert_eq!(
            hex(&sha512(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
                .replace(char::is_whitespace, "")
                .as_str()
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 127, 128, 129, 500] {
            let mut h = Sha256::new();
            for part in data.chunks(chunk) {
                h.update(part);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk}");

            let mut h = Sha512::new();
            for part in data.chunks(chunk) {
                h.update(part);
            }
            assert_eq!(h.finalize(), sha512(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn length_padding_boundaries() {
        // Hash inputs around the padding boundary (55/56/64 bytes for SHA-256).
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            h.update(&data);
            // Just ensure distinct lengths give distinct digests and one-shot
            // matches incremental; the KATs above pin correctness.
            assert_eq!(h.finalize(), sha256(&data));
        }
    }

    #[test]
    fn derived_constants_match_fips() {
        // Spot-check the first derived constants against FIPS 180-4 values.
        let c = consts256();
        assert_eq!(c.h[0], 0x6a09e667);
        assert_eq!(c.h[7], 0x5be0cd19);
        assert_eq!(c.k[0], 0x428a2f98);
        assert_eq!(c.k[63], 0xc67178f2);
        let c = consts512();
        assert_eq!(c.h[0], 0x6a09e667f3bcc908);
        assert_eq!(c.k[0], 0x428a2f98d728ae22);
        assert_eq!(c.k[79], 0x6c44198c4a475817);
    }
}
