//! X25519 Diffie–Hellman (RFC 7748).
//!
//! The ECDHE key exchange of the TLS channel and the SGX local-attestation
//! key agreement both run on this function.

use crate::field25519::Fe;

/// Length of scalars, coordinates and shared secrets.
pub const KEY_LEN: usize = 32;

/// Clamp a 32-byte scalar per RFC 7748 §5.
pub fn clamp(scalar: &mut [u8; KEY_LEN]) {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
}

/// The X25519 function: multiply the point with u-coordinate `u` by the
/// (clamped) `scalar`, returning the resulting u-coordinate.
pub fn x25519(scalar: &[u8; KEY_LEN], u: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let mut k = *scalar;
    clamp(&mut k);
    let x1 = Fe::from_bytes(u);

    // Montgomery ladder.
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = false;
    let a24 = Fe::from_u64(121_665);

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1 == 1;
        if swap != k_t {
            std::mem::swap(&mut x2, &mut x3);
            std::mem::swap(&mut z2, &mut z3);
        }
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&a24.mul(&e)));
    }
    if swap {
        std::mem::swap(&mut x2, &mut x3);
        std::mem::swap(&mut z2, &mut z3);
    }
    x2.mul(&z2.invert()).to_bytes()
}

/// The canonical base point (u = 9).
pub fn base_point() -> [u8; KEY_LEN] {
    let mut bp = [0u8; KEY_LEN];
    bp[0] = 9;
    bp
}

/// Derive the public key for a secret scalar.
pub fn public_key(secret: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    x25519(secret, &base_point())
}

/// An ephemeral X25519 key pair.
#[derive(Clone)]
pub struct EphemeralKeyPair {
    pub secret: [u8; KEY_LEN],
    pub public: [u8; KEY_LEN],
}

impl EphemeralKeyPair {
    /// Generate from caller-provided randomness.
    pub fn from_seed(seed: [u8; KEY_LEN]) -> EphemeralKeyPair {
        let mut secret = seed;
        clamp(&mut secret);
        let public = public_key(&secret);
        EphemeralKeyPair { secret, public }
    }

    /// Complete the key agreement with a peer's public key.
    pub fn agree(&self, peer_public: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
        x25519(&self.secret, peer_public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    fn to_hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = hex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = hex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            to_hex(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §6.1 Diffie-Hellman test.
    #[test]
    fn rfc7748_diffie_hellman() {
        let alice_priv =
            hex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv = hex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = public_key(&alice_priv);
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            to_hex(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            to_hex(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared_a = x25519(&alice_priv, &bob_pub);
        let shared_b = x25519(&bob_priv, &alice_pub);
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            to_hex(&shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn keypair_agreement_symmetry() {
        let a = EphemeralKeyPair::from_seed([1u8; 32]);
        let b = EphemeralKeyPair::from_seed([2u8; 32]);
        assert_eq!(a.agree(&b.public), b.agree(&a.public));
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn clamping_is_idempotent_and_applied() {
        let mut s = [0xffu8; 32];
        clamp(&mut s);
        let once = s;
        clamp(&mut s);
        assert_eq!(s, once);
        assert_eq!(s[0] & 7, 0);
        assert_eq!(s[31] & 0x80, 0);
        assert_eq!(s[31] & 0x40, 0x40);
        // Unclamped vs clamped scalars give the same result (x25519 clamps).
        let u = base_point();
        assert_eq!(x25519(&[0xff; 32], &u), x25519(&once, &u));
    }

    #[test]
    fn zero_point_yields_zero_shared_secret() {
        // The all-zero u-coordinate is a low-order point: output is zero.
        // Callers must reject this (the TLS layer does).
        let out = x25519(&[5u8; 32], &[0u8; 32]);
        assert_eq!(out, [0u8; 32]);
    }

    #[test]
    fn iterated_x25519_one_round() {
        // RFC 7748 §5.2: after 1 iteration of k = X25519(k, u), with
        // k = u = base point, the expected value is published.
        let mut k = base_point();
        let mut u = base_point();
        let result = x25519(&k, &u);
        u = k;
        k = result;
        let _ = (k, u);
        assert_eq!(
            to_hex(&result),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }
}
