//! Random generation: an HMAC-DRBG (NIST SP 800-90A) and entropy sources.
//!
//! Components that need reproducible randomness (the SGX model's per-CPU
//! fuse keys, deterministic tests, benchmarks) instantiate [`HmacDrbg`] from
//! a seed; production-path callers use [`SystemEntropy`], which draws from
//! the OS via the `rand` crate.

use crate::hmac::hmac_sha256;
use rand::RngCore;

/// A source of cryptographically secure random bytes.
pub trait SecureRandom: Send {
    fn fill(&mut self, out: &mut [u8]);

    fn gen_array<const N: usize>(&mut self) -> [u8; N]
    where
        Self: Sized,
    {
        let mut out = [0u8; N];
        self.fill(&mut out);
        out
    }
}

/// OS-backed entropy.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemEntropy;

impl SecureRandom for SystemEntropy {
    fn fill(&mut self, out: &mut [u8]) {
        rand::rngs::OsRng.fill_bytes(out);
    }
}

/// Deterministic HMAC-DRBG over SHA-256.
///
/// Reseeding is the caller's responsibility; the generate limit of SP
/// 800-90A (2⁴⁸ requests) is far beyond anything this workspace produces.
#[derive(Clone)]
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
}

impl HmacDrbg {
    /// Instantiate from seed material (entropy || nonce || personalization).
    pub fn new(seed: &[u8]) -> HmacDrbg {
        let mut drbg = HmacDrbg {
            key: [0u8; 32],
            value: [1u8; 32],
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Mix additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut data = self.value.to_vec();
        data.push(0x00);
        if let Some(p) = provided {
            data.extend_from_slice(p);
        }
        self.key = hmac_sha256(&self.key, &data);
        self.value = hmac_sha256(&self.key, &self.value);
        if let Some(p) = provided {
            let mut data = self.value.to_vec();
            data.push(0x01);
            data.extend_from_slice(p);
            self.key = hmac_sha256(&self.key, &data);
            self.value = hmac_sha256(&self.key, &self.value);
        }
    }
}

impl SecureRandom for HmacDrbg {
    fn fill(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() {
            self.value = hmac_sha256(&self.key, &self.value);
            let take = (out.len() - filled).min(32);
            out[filled..filled + take].copy_from_slice(&self.value[..take]);
            filled += take;
        }
        self.update(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = HmacDrbg::new(b"seed material");
        let mut b = HmacDrbg::new(b"seed material");
        assert_eq!(a.gen_array::<64>(), b.gen_array::<64>());
        // Streams stay in lockstep.
        assert_eq!(a.gen_array::<16>(), b.gen_array::<16>());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed 1");
        let mut b = HmacDrbg::new(b"seed 2");
        assert_ne!(a.gen_array::<32>(), b.gen_array::<32>());
    }

    #[test]
    fn sequential_outputs_differ() {
        let mut drbg = HmacDrbg::new(b"x");
        let first = drbg.gen_array::<32>();
        let second = drbg.gen_array::<32>();
        assert_ne!(first, second);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"s");
        let mut b = HmacDrbg::new(b"s");
        b.reseed(b"extra entropy");
        assert_ne!(a.gen_array::<32>(), b.gen_array::<32>());
    }

    #[test]
    fn fill_spans_block_boundaries() {
        let mut drbg = HmacDrbg::new(b"s");
        let mut buf = vec![0u8; 100];
        drbg.fill(&mut buf);
        // Not all zero (probability ~2^-800 if working).
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn system_entropy_produces_output() {
        let mut sys = SystemEntropy;
        let a = sys.gen_array::<32>();
        let b = sys.gen_array::<32>();
        assert_ne!(a, b, "OS entropy returned identical blocks");
    }
}
