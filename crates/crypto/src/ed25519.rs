//! Ed25519 signatures (RFC 8032).
//!
//! Every signature in the workspace — certificate signatures from the
//! Verification Manager's CA, SGX quote signatures from the quoting enclave,
//! IAS report signatures, TLS CertificateVerify — is Ed25519.
//!
//! Point arithmetic uses extended twisted-Edwards coordinates with the
//! unified addition law (complete for a = −1), so a single formula covers
//! addition and doubling with no exceptional cases. Scalar arithmetic modulo
//! the group order runs on the [`crate::mpint`] reference integers: correct
//! and simple; signing performance is dominated by the curve ops anyway.

use crate::field25519::Fe;
use crate::mpint::MpInt;
use crate::sha2::{sha512, Sha512};
use std::sync::OnceLock;

/// Length of public keys and seeds.
pub const KEY_LEN: usize = 32;
/// Length of signatures.
pub const SIG_LEN: usize = 64;

/// Signature verification failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ed25519 signature verification failed")
    }
}

impl std::error::Error for SignatureError {}

/// A point on edwards25519 in extended homogeneous coordinates
/// (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

struct Curve {
    d: Fe,
    d2: Fe,
    base: Point,
    order: MpInt,
}

fn curve() -> &'static Curve {
    static CURVE: OnceLock<Curve> = OnceLock::new();
    CURVE.get_or_init(|| {
        // d = -121665/121666 mod p.
        let d = Fe::from_u64(121_665)
            .neg()
            .mul(&Fe::from_u64(121_666).invert());
        let d2 = d.add(&d);
        // Group order L = 2^252 + 27742317777372353535851937790883648493.
        let order = MpInt::from_u64(1).shl(252).add(&MpInt::from_be_bytes(&[
            0x14, 0xde, 0xf9, 0xde, 0xa2, 0xf7, 0x9c, 0xd6, 0x58, 0x12, 0x63, 0x1a, 0x5c, 0xf5,
            0xd3, 0xed,
        ]));
        // Base point: y = 4/5, x chosen non-negative (sign bit 0).
        let y = Fe::from_u64(4).mul(&Fe::from_u64(5).invert());
        let mut enc = y.to_bytes();
        enc[31] &= 0x7f; // sign bit 0
        let base = decompress_with_d(&enc, &d).expect("base point decompression");
        Curve {
            d,
            d2,
            base,
            order,
        }
    })
}

impl Point {
    /// The neutral element (0, 1).
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point B.
    pub fn base() -> Point {
        curve().base
    }

    /// Unified point addition (complete for a = −1 twisted Edwards curves,
    /// so it also serves as doubling).
    pub fn add(&self, other: &Point) -> Point {
        let c2d = curve().d2;
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(&c2d).mul(&other.t);
        let d = self.z.add(&self.z).mul(&other.z);
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    /// Scalar multiplication by a 32-byte little-endian scalar
    /// (double-and-add over the unified law; not constant-time, see crate docs).
    pub fn scalar_mul(&self, scalar_le: &[u8; 32]) -> Point {
        let mut acc = Point::identity();
        for bit in (0..256).rev() {
            acc = acc.add(&acc);
            if (scalar_le[bit / 8] >> (bit % 8)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Compress to the 32-byte encoding: y with the sign of x in bit 255.
    pub fn compress(&self) -> [u8; 32] {
        let z_inv = self.z.invert();
        let x = self.x.mul(&z_inv);
        let y = self.y.mul(&z_inv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompress a 32-byte encoding; `None` if it is not a curve point.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        decompress_with_d(bytes, &curve().d)
    }

    /// Point equality in the projective sense (x1 z2 == x2 z1 etc.).
    pub fn equals(&self, other: &Point) -> bool {
        self.x.mul(&other.z) == other.x.mul(&self.z)
            && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}

fn decompress_with_d(bytes: &[u8; 32], d: &Fe) -> Option<Point> {
    let sign = bytes[31] >> 7;
    let y = Fe::from_bytes(bytes); // from_bytes masks bit 255
    // Reject non-canonical y (>= p) to keep encodings unique.
    let mut canonical = y.to_bytes();
    canonical[31] |= sign << 7;
    if &canonical != bytes {
        return None;
    }
    // x^2 = (y^2 - 1) / (d y^2 + 1)
    let y2 = y.square();
    let u = y2.sub(&Fe::ONE);
    let v = d.mul(&y2).add(&Fe::ONE);
    let x = Fe::sqrt_ratio(&u, &v)?;
    // sqrt_ratio returns the non-negative root; apply the sign bit.
    if x.is_zero() && sign == 1 {
        return None; // -0 is not a valid encoding
    }
    let x = if (x.is_negative() as u8) != sign {
        x.neg()
    } else {
        x
    };
    Some(Point {
        x,
        y,
        z: Fe::ONE,
        t: x.mul(&y),
    })
}

/// Reduce a 64-byte hash output modulo the group order L.
fn reduce_wide(bytes: &[u8; 64]) -> [u8; 32] {
    MpInt::from_le_bytes(bytes)
        .rem(&curve().order)
        .to_le_bytes(32)
        .try_into()
        .expect("32 bytes")
}

/// (a*b + c) mod L over little-endian 32-byte scalars.
fn mul_add(a: &[u8; 32], b: &[u8; 32], c: &[u8; 32]) -> [u8; 32] {
    let order = &curve().order;
    MpInt::from_le_bytes(a)
        .mul(&MpInt::from_le_bytes(b))
        .add(&MpInt::from_le_bytes(c))
        .rem(order)
        .to_le_bytes(32)
        .try_into()
        .expect("32 bytes")
}

fn clamp_scalar(mut a: [u8; 32]) -> [u8; 32] {
    a[0] &= 248;
    a[31] &= 127;
    a[31] |= 64;
    a
}

/// An Ed25519 signing key (the 32-byte RFC 8032 seed plus caches).
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; KEY_LEN],
    scalar: [u8; 32],
    prefix: [u8; 32],
    public: [u8; KEY_LEN],
}

impl SigningKey {
    /// Derive the key pair from a 32-byte seed.
    pub fn from_seed(seed: &[u8; KEY_LEN]) -> SigningKey {
        let h = sha512(seed);
        let scalar = clamp_scalar(h[..32].try_into().expect("32"));
        let prefix: [u8; 32] = h[32..].try_into().expect("32");
        let public = Point::base().scalar_mul(&scalar).compress();
        SigningKey {
            seed: *seed,
            scalar,
            prefix,
            public,
        }
    }

    pub fn seed(&self) -> &[u8; KEY_LEN] {
        &self.seed
    }

    pub fn public_key(&self) -> VerifyingKey {
        VerifyingKey { bytes: self.public }
    }

    /// Produce a deterministic RFC 8032 signature over `message`.
    pub fn sign(&self, message: &[u8]) -> [u8; SIG_LEN] {
        let mut h = Sha512::new();
        h.update(&self.prefix).update(message);
        let r_scalar = reduce_wide(&h.finalize());
        let r_point = Point::base().scalar_mul(&r_scalar).compress();

        let mut h = Sha512::new();
        h.update(&r_point).update(&self.public).update(message);
        let k = reduce_wide(&h.finalize());
        let s = mul_add(&k, &self.scalar, &r_scalar);

        let mut sig = [0u8; SIG_LEN];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s);
        sig
    }
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the seed.
        f.debug_struct("SigningKey")
            .field("public", &crate::util::fingerprint_hex(&self.public))
            .finish_non_exhaustive()
    }
}

/// An Ed25519 public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey {
    bytes: [u8; KEY_LEN],
}

impl VerifyingKey {
    pub fn from_bytes(bytes: &[u8; KEY_LEN]) -> VerifyingKey {
        VerifyingKey { bytes: *bytes }
    }

    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.bytes
    }

    /// Verify a signature over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), SignatureError> {
        if signature.len() != SIG_LEN {
            return Err(SignatureError);
        }
        let r_bytes: [u8; 32] = signature[..32].try_into().expect("32");
        let s_bytes: [u8; 32] = signature[32..].try_into().expect("32");
        // Reject S >= L (signature malleability).
        if MpInt::from_le_bytes(&s_bytes).cmp_to(&curve().order) != std::cmp::Ordering::Less {
            return Err(SignatureError);
        }
        let a = Point::decompress(&self.bytes).ok_or(SignatureError)?;
        let r = Point::decompress(&r_bytes).ok_or(SignatureError)?;

        let mut h = Sha512::new();
        h.update(&r_bytes).update(&self.bytes).update(message);
        let k = reduce_wide(&h.finalize());

        // Check [S]B == R + [k]A.
        let lhs = Point::base().scalar_mul(&s_bytes);
        let rhs = r.add(&a.scalar_mul(&k));
        if lhs.equals(&rhs) {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    fn to_hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 8032 §7.1 TEST 1: verify the published signature over the empty
    // message under the published public key (external interoperability KAT
    // for the verification path; TEST 2 below covers the signing path).
    #[test]
    fn rfc8032_test1_verify() {
        let public = hex32("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
        let mut sig = [0u8; 64];
        let sig_hex = "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b";
        for i in 0..64 {
            sig[i] = u8::from_str_radix(&sig_hex[i * 2..i * 2 + 2], 16).unwrap();
        }
        let key = VerifyingKey::from_bytes(&public);
        key.verify(b"", &sig).unwrap();
        // Same signature over a different message must fail.
        assert!(key.verify(b"x", &sig).is_err());
    }

    // RFC 8032 §7.1 TEST 2 (one-byte message 0x72).
    #[test]
    fn rfc8032_test2() {
        let seed = hex32("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            to_hex(key.public_key().as_bytes()),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let sig = key.sign(&[0x72]);
        assert_eq!(
            to_hex(&sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
        );
        key.public_key().verify(&[0x72], &sig).unwrap();
    }

    #[test]
    fn sign_verify_roundtrip_various_messages() {
        let key = SigningKey::from_seed(&[42u8; 32]);
        for len in [0usize, 1, 32, 100, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
            let sig = key.sign(&msg);
            key.public_key().verify(&msg, &sig).unwrap();
        }
    }

    #[test]
    fn verification_rejects_tampering() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let sig = key.sign(b"authentic message");
        // Wrong message.
        assert!(key.public_key().verify(b"forged message", &sig).is_err());
        // Flipped signature bytes.
        for i in [0usize, 31, 32, 63] {
            let mut bad = sig;
            bad[i] ^= 1;
            assert!(key.public_key().verify(b"authentic message", &bad).is_err());
        }
        // Wrong key.
        let other = SigningKey::from_seed(&[8u8; 32]);
        assert!(other.public_key().verify(b"authentic message", &sig).is_err());
        // Truncated signature.
        assert!(key.public_key().verify(b"authentic message", &sig[..63]).is_err());
    }

    #[test]
    fn rejects_high_s_malleability() {
        let key = SigningKey::from_seed(&[9u8; 32]);
        let mut sig = key.sign(b"msg");
        // Add L to S: produces an equivalent-but-non-canonical signature.
        let order = curve().order.clone();
        let s = MpInt::from_le_bytes(&sig[32..]);
        let high_s = s.add(&order);
        if high_s.bit_length() <= 256 {
            sig[32..].copy_from_slice(&high_s.to_le_bytes(32));
            assert!(key.public_key().verify(b"msg", &sig).is_err());
        }
    }

    #[test]
    fn point_algebra() {
        let b = Point::base();
        // B + identity = B.
        assert!(b.add(&Point::identity()).equals(&b));
        // 2B + B == 3B via scalar mul.
        let two_b = b.add(&b);
        let three_b = two_b.add(&b);
        let mut three = [0u8; 32];
        three[0] = 3;
        assert!(b.scalar_mul(&three).equals(&three_b));
        // Compression roundtrip.
        let enc = three_b.compress();
        let dec = Point::decompress(&enc).unwrap();
        assert!(dec.equals(&three_b));
    }

    #[test]
    fn order_times_base_is_identity() {
        let l: [u8; 32] = curve().order.to_le_bytes(32).try_into().unwrap();
        let lb = Point::base().scalar_mul(&l);
        assert!(lb.equals(&Point::identity()));
    }

    #[test]
    fn decompress_rejects_invalid() {
        // y = 2 gives x^2 = 3/(4d+1): test whether decompression is total.
        // All-0xff is >= p (non-canonical) and must be rejected.
        assert!(Point::decompress(&[0xffu8; 32]).is_none());
        // -0: y=0 encoding with sign bit 1... y=0 -> x^2 = -1/(0+1) = -1,
        // which has a root i; so craft a y that yields no root instead.
        let mut count_invalid = 0;
        for y in 0u8..16 {
            let mut enc = [0u8; 32];
            enc[0] = y;
            if Point::decompress(&enc).is_none() {
                count_invalid += 1;
            }
        }
        assert!(count_invalid > 0, "some small y must be off-curve");
    }

    #[test]
    fn deterministic_signatures() {
        let key = SigningKey::from_seed(&[1u8; 32]);
        assert_eq!(key.sign(b"m"), key.sign(b"m"));
        assert_ne!(key.sign(b"m"), key.sign(b"n"));
    }

    #[test]
    fn debug_does_not_leak_seed() {
        let key = SigningKey::from_seed(&[0xaa; 32]);
        let dbg = format!("{key:?}");
        assert!(!dbg.contains("aaaaaaaa"), "seed leaked in Debug: {dbg}");
    }
}
