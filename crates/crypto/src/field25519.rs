//! Arithmetic in GF(2²⁵⁵ − 19), the base field of Curve25519 / edwards25519.
//!
//! Elements are held in radix-2⁵¹ with five `u64` limbs (the classic
//! "donna" representation): products fit in `u128` and carries are cheap.
//! The test module cross-checks every operation against the slow-but-obvious
//! [`crate::mpint`] reference with property tests, so the limb tricks cannot
//! silently diverge from the mathematics.

use crate::mpint::MpInt;

const MASK: u64 = (1 << 51) - 1;
/// 2p in radix-2⁵¹, used as a bias so subtraction never underflows.
const TWO_P: [u64; 5] = [
    0x000f_ffff_ffff_ffda,
    0x000f_ffff_ffff_fffe,
    0x000f_ffff_ffff_fffe,
    0x000f_ffff_ffff_fffe,
    0x000f_ffff_ffff_fffe,
];

/// A field element of GF(2²⁵⁵ − 19).
#[derive(Debug, Clone, Copy)]
pub struct Fe(pub(crate) [u64; 5]);

// Equality must compare the *value*, not the limb representation: the same
// element can be held with different (still reduced-enough) limb splits.
impl PartialEq for Fe {
    fn eq(&self, other: &Fe) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}
impl Eq for Fe {}

impl Fe {
    pub const ZERO: Fe = Fe([0; 5]);
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Build from a small integer.
    pub fn from_u64(v: u64) -> Fe {
        let mut fe = Fe([v & MASK, v >> 51, 0, 0, 0]);
        fe.carry();
        fe
    }

    /// Load 32 little-endian bytes; bit 255 is ignored (per the curve25519
    /// convention). Non-canonical values (≥ p) are accepted and reduced.
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |range: std::ops::Range<usize>| -> u64 {
            let mut limb = 0u64;
            for (i, &b) in bytes[range].iter().enumerate() {
                limb |= (b as u64) << (8 * i);
            }
            limb
        };
        let f0 = load(0..7) & MASK; // bits 0..51 (needs 51 of 56 bits)
        let f1 = (load(6..13) >> 3) & MASK; // bits 51..102
        let f2 = (load(12..20) >> 6) & MASK; // bits 102..153
        let f3 = (load(19..26) >> 1) & MASK; // bits 153..204
        let f4 = (load(25..32) >> 4) & MASK & ((1 << 51) - 1); // bits 204..255
        Fe([f0, f1, f2, f3, f4])
    }

    /// Serialize to the canonical (fully reduced) 32-byte little-endian form.
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut t = *self;
        t.carry();
        t.carry();
        // Determine whether t >= p by propagating the carry of t + 19.
        let mut q = (t.0[0].wrapping_add(19)) >> 51;
        q = (t.0[1].wrapping_add(q)) >> 51;
        q = (t.0[2].wrapping_add(q)) >> 51;
        q = (t.0[3].wrapping_add(q)) >> 51;
        q = (t.0[4].wrapping_add(q)) >> 51;
        // Add 19·q then drop bit 255, i.e. subtract q·p.
        t.0[0] += 19 * q;
        t.0[1] += t.0[0] >> 51;
        t.0[0] &= MASK;
        t.0[2] += t.0[1] >> 51;
        t.0[1] &= MASK;
        t.0[3] += t.0[2] >> 51;
        t.0[2] &= MASK;
        t.0[4] += t.0[3] >> 51;
        t.0[3] &= MASK;
        t.0[4] &= MASK;

        let mut out = [0u8; 32];
        let limbs = t.0;
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0;
        for &limb in &limbs {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = acc as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        if idx < 32 {
            out[idx] = acc as u8;
        }
        out
    }

    fn carry(&mut self) {
        let f = &mut self.0;
        for i in 0..4 {
            let c = f[i] >> 51;
            f[i] &= MASK;
            f[i + 1] += c;
        }
        let c = f[4] >> 51;
        f[4] &= MASK;
        f[0] += 19 * c;
        let c = f[0] >> 51;
        f[0] &= MASK;
        f[1] += c;
    }

    pub fn add(&self, other: &Fe) -> Fe {
        let mut r = Fe([
            self.0[0] + other.0[0],
            self.0[1] + other.0[1],
            self.0[2] + other.0[2],
            self.0[3] + other.0[3],
            self.0[4] + other.0[4],
        ]);
        r.carry();
        r
    }

    pub fn sub(&self, other: &Fe) -> Fe {
        let mut r = Fe([
            self.0[0] + TWO_P[0] - other.0[0],
            self.0[1] + TWO_P[1] - other.0[1],
            self.0[2] + TWO_P[2] - other.0[2],
            self.0[3] + TWO_P[3] - other.0[3],
            self.0[4] + TWO_P[4] - other.0[4],
        ]);
        r.carry();
        r
    }

    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    pub fn mul(&self, other: &Fe) -> Fe {
        let a = &self.0;
        let b = &other.0;
        let m = |x: u64, y: u64| x as u128 * y as u128;
        let r0 = m(a[0], b[0])
            + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        let r1 = m(a[0], b[1])
            + m(a[1], b[0])
            + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        let r2 = m(a[0], b[2])
            + m(a[1], b[1])
            + m(a[2], b[0])
            + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        let r3 =
            m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        let r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        // Carry the 128-bit accumulators down to 51-bit limbs.
        let mut out = [0u64; 5];
        let mut c: u128;
        c = r0 >> 51;
        out[0] = (r0 as u64) & MASK;
        let r1 = r1 + c;
        c = r1 >> 51;
        out[1] = (r1 as u64) & MASK;
        let r2 = r2 + c;
        c = r2 >> 51;
        out[2] = (r2 as u64) & MASK;
        let r3 = r3 + c;
        c = r3 >> 51;
        out[3] = (r3 as u64) & MASK;
        let r4 = r4 + c;
        c = r4 >> 51;
        out[4] = (r4 as u64) & MASK;
        out[0] += 19 * c as u64;
        let c2 = out[0] >> 51;
        out[0] &= MASK;
        out[1] += c2;
        Fe(out)
    }

    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// Exponentiation by a little-endian byte exponent (not constant-time;
    /// see the crate documentation for the simulation threat model).
    pub fn pow(&self, exponent_le: &[u8]) -> Fe {
        let mut result = Fe::ONE;
        for i in (0..exponent_le.len() * 8).rev() {
            result = result.square();
            if (exponent_le[i / 8] >> (i % 8)) & 1 == 1 {
                result = result.mul(self);
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat: a^(p−2). Inverse of zero is zero.
    pub fn invert(&self) -> Fe {
        // p - 2 = 2^255 - 21, little-endian bytes: eb ff .. ff 7f
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow(&exp)
    }

    /// a^((p−5)/8), the core of the square-root-of-ratio computation.
    pub fn pow_p58(&self) -> Fe {
        // (p - 5) / 8 = 2^252 - 3, little-endian bytes: fd ff .. ff 0f
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        self.pow(&exp)
    }

    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Parity of the canonical representation (bit 0), used as the x-coordinate
    /// sign in point compression.
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// √−1 mod p (one of the two roots).
    pub fn sqrt_m1() -> Fe {
        // 2^((p-1)/4): (p-1)/4 = (2^255 - 20)/4 = 2^253 - 5,
        // little-endian bytes: fb ff .. ff 1f
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfb;
        exp[31] = 0x1f;
        Fe::from_u64(2).pow(&exp)
    }

    /// Compute √(u/v) if it exists.
    ///
    /// Returns `Some(r)` with `v·r² = u`, choosing the non-negative root.
    pub fn sqrt_ratio(u: &Fe, v: &Fe) -> Option<Fe> {
        // Candidate root r = u·v³·(u·v⁷)^((p−5)/8).
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let r = u.mul(&v3).mul(&u.mul(&v7).pow_p58());
        let check = v.mul(&r.square());
        let r = if check == *u {
            r
        } else if check == u.neg() {
            r.mul(&Fe::sqrt_m1())
        } else {
            return None;
        };
        // Normalize to the non-negative root.
        if r.is_negative() {
            Some(r.neg())
        } else {
            Some(r)
        }
    }

    /// Convert to the reference bignum representation (tests, encoding).
    pub fn to_mpint(&self) -> MpInt {
        MpInt::from_le_bytes(&self.to_bytes())
    }
}

/// The field prime p = 2²⁵⁵ − 19 as a bignum (for tests and scalar code).
pub fn prime() -> MpInt {
    MpInt::from_u64(1).shl(255).sub(&MpInt::from_u64(19))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fe_from_mpint(n: &MpInt) -> Fe {
        let reduced = n.rem(&prime());
        let bytes: [u8; 32] = reduced.to_le_bytes(32).try_into().unwrap();
        Fe::from_bytes(&bytes)
    }

    fn random_fe_strategy() -> impl Strategy<Value = [u8; 32]> {
        proptest::array::uniform32(any::<u8>())
    }

    #[test]
    fn zero_one_roundtrip() {
        assert_eq!(Fe::ZERO.to_bytes(), [0u8; 32]);
        let mut one = [0u8; 32];
        one[0] = 1;
        assert_eq!(Fe::ONE.to_bytes(), one);
        assert_eq!(Fe::from_bytes(&one), Fe::ONE);
    }

    #[test]
    fn canonicalizes_p_to_zero() {
        // p itself must encode as zero.
        let p_bytes: [u8; 32] = prime().to_le_bytes(32).try_into().unwrap();
        assert_eq!(Fe::from_bytes(&p_bytes).to_bytes(), [0u8; 32]);
        // p + 1 encodes as one.
        let p1: [u8; 32] = prime()
            .add(&MpInt::from_u64(1))
            .to_le_bytes(32)
            .try_into()
            .unwrap();
        assert_eq!(Fe::from_bytes(&p1), Fe::ONE);
    }

    #[test]
    fn bit_255_is_ignored() {
        let mut bytes = [0u8; 32];
        bytes[0] = 7;
        let plain = Fe::from_bytes(&bytes);
        bytes[31] |= 0x80;
        assert_eq!(Fe::from_bytes(&bytes), plain);
    }

    #[test]
    fn small_arithmetic() {
        let a = Fe::from_u64(1000);
        let b = Fe::from_u64(77);
        assert_eq!(a.add(&b), Fe::from_u64(1077));
        assert_eq!(a.sub(&b), Fe::from_u64(923));
        assert_eq!(a.mul(&b), Fe::from_u64(77000));
        assert_eq!(a.square(), Fe::from_u64(1_000_000));
    }

    #[test]
    fn negation() {
        let a = Fe::from_u64(5);
        assert_eq!(a.add(&a.neg()).to_bytes(), [0u8; 32]);
        assert_eq!(Fe::ZERO.neg().to_bytes(), [0u8; 32]);
    }

    #[test]
    fn inversion() {
        for v in [1u64, 2, 5, 121665, 121666] {
            let a = Fe::from_u64(v);
            assert_eq!(a.mul(&a.invert()), Fe::ONE, "inverse of {v}");
        }
        // Inverse of zero is defined as zero (standard convention).
        assert!(Fe::ZERO.invert().is_zero());
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = Fe::sqrt_m1();
        assert_eq!(i.square().to_bytes(), Fe::ONE.neg().to_bytes());
    }

    #[test]
    fn sqrt_ratio_perfect_squares() {
        // 4/1 -> 2 (non-negative root).
        let r = Fe::sqrt_ratio(&Fe::from_u64(4), &Fe::ONE).unwrap();
        assert_eq!(r.square(), Fe::from_u64(4));
        assert!(!r.is_negative());
        // 9/4 -> r with 4 r^2 = 9.
        let r = Fe::sqrt_ratio(&Fe::from_u64(9), &Fe::from_u64(4)).unwrap();
        assert_eq!(Fe::from_u64(4).mul(&r.square()), Fe::from_u64(9));
    }

    #[test]
    fn sqrt_ratio_non_square_fails() {
        // 2 is a non-residue mod p (p ≡ 5 mod 8). 2/1 has no square root.
        assert!(Fe::sqrt_ratio(&Fe::from_u64(2), &Fe::ONE).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_add_matches_reference(a in random_fe_strategy(), b in random_fe_strategy()) {
            let (fa, fb) = (Fe::from_bytes(&a), Fe::from_bytes(&b));
            let expected = fa.to_mpint().add(&fb.to_mpint()).rem(&prime());
            prop_assert_eq!(fa.add(&fb).to_mpint(), expected);
        }

        #[test]
        fn prop_sub_matches_reference(a in random_fe_strategy(), b in random_fe_strategy()) {
            let (fa, fb) = (Fe::from_bytes(&a), Fe::from_bytes(&b));
            let expected = fa.to_mpint().add(&prime()).sub(&fb.to_mpint()).rem(&prime());
            prop_assert_eq!(fa.sub(&fb).to_mpint(), expected);
        }

        #[test]
        fn prop_mul_matches_reference(a in random_fe_strategy(), b in random_fe_strategy()) {
            let (fa, fb) = (Fe::from_bytes(&a), Fe::from_bytes(&b));
            let expected = fa.to_mpint().mul(&fb.to_mpint()).rem(&prime());
            prop_assert_eq!(fa.mul(&fb).to_mpint(), expected);
        }

        #[test]
        fn prop_invert_is_inverse(a in random_fe_strategy()) {
            let fa = Fe::from_bytes(&a);
            prop_assume!(!fa.is_zero());
            prop_assert_eq!(fa.mul(&fa.invert()), Fe::ONE);
        }

        #[test]
        fn prop_roundtrip_canonical(a in random_fe_strategy()) {
            let fa = Fe::from_bytes(&a);
            let bytes = fa.to_bytes();
            prop_assert_eq!(Fe::from_bytes(&bytes).to_bytes(), bytes);
            // Canonical: value < p.
            prop_assert!(MpInt::from_le_bytes(&bytes).cmp_to(&prime()) == std::cmp::Ordering::Less);
        }

        #[test]
        fn prop_sqrt_of_square_exists(a in random_fe_strategy()) {
            let fa = Fe::from_bytes(&a);
            let sq = fa.square();
            let r = Fe::sqrt_ratio(&sq, &Fe::ONE).expect("square must have a root");
            prop_assert_eq!(r.square(), sq);
        }

        #[test]
        fn prop_from_mpint_consistent(a in random_fe_strategy()) {
            let fa = Fe::from_bytes(&a);
            prop_assert_eq!(fe_from_mpint(&fa.to_mpint()), Fe::from_bytes(&fa.to_bytes()));
        }
    }
}
