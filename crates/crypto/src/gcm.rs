//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! This is the record-protection AEAD for the TLS channel and for sealed
//! SGX blobs. GHASH is implemented over GF(2¹²⁸) with the standard
//! bit-reflected reduction polynomial.

use crate::aes::{ctr_apply, Aes, BLOCK};
use crate::ct::ct_eq;

/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 16;
/// Nonce length in bytes (the 96-bit fast path of GCM).
pub const NONCE_LEN: usize = 12;

/// Failure to authenticate during [`AesGcm::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEAD authentication failed")
    }
}

impl std::error::Error for AeadError {}

/// GF(2^128) multiplication, treating blocks as bit-reflected polynomials
/// per the GCM specification.
fn ghash_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = y;
    // Process x from the most significant bit (bit 0 of the GCM ordering).
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            // R = 11100001 || 0^120
            v ^= 0xe1u128 << 120;
        }
    }
    z
}

fn block_to_u128(block: &[u8]) -> u128 {
    let mut padded = [0u8; BLOCK];
    padded[..block.len()].copy_from_slice(block);
    u128::from_be_bytes(padded)
}

/// GHASH over `aad` then `ciphertext`, with the standard length block.
fn ghash(h: u128, aad: &[u8], ciphertext: &[u8]) -> u128 {
    let mut y = 0u128;
    for chunk in aad.chunks(BLOCK) {
        y = ghash_mul(y ^ block_to_u128(chunk), h);
    }
    for chunk in ciphertext.chunks(BLOCK) {
        y = ghash_mul(y ^ block_to_u128(chunk), h);
    }
    let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
    ghash_mul(y ^ lengths, h)
}

/// An AES-GCM key (AES-128 or AES-256 depending on key length).
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes,
    h: u128,
}

impl AesGcm {
    /// Create from a 16- or 32-byte key.
    pub fn new(key: &[u8]) -> AesGcm {
        let aes = Aes::new(key);
        let h = u128::from_be_bytes(aes.encrypt(&[0u8; BLOCK]));
        AesGcm { aes, h }
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut j0 = [0u8; BLOCK];
        j0[..NONCE_LEN].copy_from_slice(nonce);
        j0[BLOCK - 1] = 1;
        let e_j0 = self.aes.encrypt(&j0);
        let s = ghash(self.h, aad, ciphertext);
        let tag = s ^ u128::from_be_bytes(e_j0);
        tag.to_be_bytes()
    }

    /// Encrypt `plaintext` in place and return the authentication tag.
    pub fn seal_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        data: &mut [u8],
    ) -> [u8; TAG_LEN] {
        ctr_apply(&self.aes, nonce, 2, data);
        self.tag(nonce, aad, data)
    }

    /// Encrypt, returning `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        let tag = self.seal_in_place(nonce, aad, &mut out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verify the tag and decrypt in place. On failure the data is left
    /// encrypted and an error is returned.
    pub fn open_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8],
    ) -> Result<(), AeadError> {
        let expected = self.tag(nonce, aad, data);
        if !ct_eq(&expected, tag) {
            return Err(AeadError);
        }
        ctr_apply(&self.aes, nonce, 2, data);
        Ok(())
    }

    /// Decrypt `ciphertext || tag` produced by [`AesGcm::seal`].
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        if sealed.len() < TAG_LEN {
            return Err(AeadError);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let mut out = ciphertext.to_vec();
        self.open_in_place(nonce, aad, &mut out, tag)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST GCM test case 1: zero key, zero nonce, empty everything.
    #[test]
    fn nist_case1_empty() {
        let gcm = AesGcm::new(&[0u8; 16]);
        let sealed = gcm.seal(&[0u8; 12], &[], &[]);
        assert_eq!(hex(&sealed), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    // NIST GCM test case 2: zero key/nonce, 16 zero bytes of plaintext.
    #[test]
    fn nist_case2_one_block() {
        let gcm = AesGcm::new(&[0u8; 16]);
        let sealed = gcm.seal(&[0u8; 12], &[], &[0u8; 16]);
        assert_eq!(
            hex(&sealed),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
        );
    }

    #[test]
    fn roundtrip_various_sizes() {
        let gcm = AesGcm::new(&[3u8; 32]);
        let nonce = [5u8; 12];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let sealed = gcm.seal(&nonce, b"aad", &pt);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(gcm.open(&nonce, b"aad", &sealed).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn tamper_detection() {
        let gcm = AesGcm::new(&[1u8; 16]);
        let nonce = [0u8; 12];
        let sealed = gcm.seal(&nonce, b"header", b"secret credential");
        // Flip each byte in turn: every position must break authentication.
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x80;
            assert!(gcm.open(&nonce, b"header", &bad).is_err(), "byte {i}");
        }
        // Wrong AAD.
        assert!(gcm.open(&nonce, b"Header", &sealed).is_err());
        // Wrong nonce.
        assert!(gcm.open(&[1u8; 12], b"header", &sealed).is_err());
        // Truncated.
        assert!(gcm.open(&nonce, b"header", &sealed[..TAG_LEN - 1]).is_err());
    }

    #[test]
    fn open_in_place_leaves_data_on_failure() {
        let gcm = AesGcm::new(&[1u8; 16]);
        let nonce = [0u8; 12];
        let mut data = b"some plaintext bytes".to_vec();
        let tag = gcm.seal_in_place(&nonce, &[], &mut data);
        let ciphertext_copy = data.clone();
        let mut bad_tag = tag;
        bad_tag[0] ^= 1;
        assert!(gcm.open_in_place(&nonce, &[], &mut data, &bad_tag).is_err());
        assert_eq!(data, ciphertext_copy, "failed open must not decrypt");
        gcm.open_in_place(&nonce, &[], &mut data, &tag).unwrap();
        assert_eq!(data, b"some plaintext bytes");
    }

    #[test]
    fn ghash_mul_algebra() {
        // Commutativity and the identity element (x^0 reflected = MSB-first 1).
        let one = 1u128 << 127;
        for (a, b) in [(3u128, 7u128), (u128::MAX, 12345), (1 << 127, 1)] {
            assert_eq!(ghash_mul(a, b), ghash_mul(b, a));
            assert_eq!(ghash_mul(a, one), a);
        }
        assert_eq!(ghash_mul(0, 12345), 0);
    }

    #[test]
    fn aes256_gcm_roundtrip() {
        let gcm = AesGcm::new(&[9u8; 32]);
        let sealed = gcm.seal(&[1u8; 12], &[], b"top secret");
        assert_eq!(gcm.open(&[1u8; 12], &[], &sealed).unwrap(), b"top secret");
    }
}
