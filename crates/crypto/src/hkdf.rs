//! HKDF (RFC 5869) over HMAC-SHA-256.
//!
//! The TLS key schedule (`crates/tls`), SGX sealing-key derivation
//! (`crates/sgx`) and credential provisioning all derive their keys here.

use crate::hmac::{hmac_sha256, HmacSha256};
use crate::sha2::SHA256_LEN;

/// HKDF-Extract: compress input keying material into a pseudorandom key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; SHA256_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: stretch a pseudorandom key into `len` bytes of output
/// keying material bound to `info`.
///
/// Panics if `len > 255 * 32` (RFC 5869 limit) — a programming error, since
/// all callers request fixed small lengths.
pub fn expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * SHA256_LEN, "HKDF-Expand length limit exceeded");
    let mut okm = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&previous).update(info).update(&[counter]);
        let block = mac.finalize();
        let take = (len - okm.len()).min(SHA256_LEN);
        okm.extend_from_slice(&block[..take]);
        previous = block.to_vec();
        counter = counter.saturating_add(1);
    }
    okm
}

/// Extract-then-expand convenience.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

/// TLS-1.3-style labeled expansion: binds a protocol label and transcript
/// hash into the derivation info, preventing cross-protocol key reuse.
pub fn expand_label(prk: &[u8], label: &str, context: &[u8], len: usize) -> Vec<u8> {
    let mut info = Vec::with_capacity(16 + label.len() + context.len());
    info.extend_from_slice(&(len as u16).to_be_bytes());
    let full_label = format!("vnfguard tls {label}");
    info.push(full_label.len() as u8);
    info.extend_from_slice(full_label.as_bytes());
    info.push(context.len() as u8);
    info.extend_from_slice(context);
    expand(prk, &info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
                .replace(char::is_whitespace, "")
                .as_str()
        );
    }

    // RFC 5869 test case 3: zero-length salt and info.
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let okm = derive(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
                .replace(char::is_whitespace, "")
                .as_str()
        );
    }

    #[test]
    fn expand_lengths() {
        let prk = extract(b"salt", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100, 255 * 32] {
            assert_eq!(expand(&prk, b"info", len).len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "length limit")]
    fn expand_rejects_oversize() {
        let _ = expand(&[0u8; 32], b"", 255 * 32 + 1);
    }

    #[test]
    fn labels_separate_keys() {
        let prk = extract(b"salt", b"ikm");
        let a = expand_label(&prk, "client key", b"ctx", 32);
        let b = expand_label(&prk, "server key", b"ctx", 32);
        let c = expand_label(&prk, "client key", b"other", 32);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, expand_label(&prk, "client key", b"ctx", 32));
    }

    #[test]
    fn expand_prefix_property() {
        // The first N bytes of a longer expansion equal a shorter expansion.
        let prk = extract(b"s", b"i");
        let long = expand(&prk, b"x", 64);
        let short = expand(&prk, b"x", 40);
        assert_eq!(&long[..40], &short[..]);
    }
}
