//! Minimal arbitrary-precision unsigned integers.
//!
//! Two consumers in this crate need more than `u128`:
//!
//! 1. deriving the SHA-2 round constants (cube/square roots of primes at
//!    192-bit precision), so that no constant table is transcribed by hand;
//! 2. Ed25519 scalar arithmetic modulo the group order `L` (reduction of
//!    512-bit hash outputs, and `S = r + k*a mod L`).
//!
//! The representation is a little-endian `Vec<u64>` with no trailing zero
//! limbs. Operations are schoolbook (O(n²)); all operands in this crate are
//! at most 8 limbs, so this is never a bottleneck. None of these operations
//! are constant-time; see the crate docs for the threat model of the
//! simulation.

use std::cmp::Ordering;

/// Arbitrary-precision unsigned integer (little-endian u64 limbs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MpInt {
    limbs: Vec<u64>,
}

impl MpInt {
    pub fn zero() -> MpInt {
        MpInt { limbs: Vec::new() }
    }

    pub fn from_u64(v: u64) -> MpInt {
        if v == 0 {
            MpInt::zero()
        } else {
            MpInt { limbs: vec![v] }
        }
    }

    pub fn from_u128(v: u128) -> MpInt {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = MpInt {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Parse big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> MpInt {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = MpInt { limbs };
        n.normalize();
        n
    }

    /// Parse little-endian bytes.
    pub fn from_le_bytes(bytes: &[u8]) -> MpInt {
        let mut rev = bytes.to_vec();
        rev.reverse();
        MpInt::from_be_bytes(&rev)
    }

    /// Serialize to exactly `len` little-endian bytes; panics if the value
    /// does not fit (programming error).
    pub fn to_le_bytes(&self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        for (i, &limb) in self.limbs.iter().enumerate() {
            for j in 0..8 {
                let idx = i * 8 + j;
                let byte = (limb >> (8 * j)) as u8;
                if idx < len {
                    out[idx] = byte;
                } else {
                    assert_eq!(byte, 0, "MpInt does not fit in {len} bytes");
                }
            }
        }
        out
    }

    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    pub fn cmp_to(&self, other: &MpInt) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    pub fn add(&self, other: &MpInt) -> MpInt {
        let mut limbs = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = *self.limbs.get(i).unwrap_or(&0) as u128;
            let b = *other.limbs.get(i).unwrap_or(&0) as u128;
            let sum = a + b + carry as u128;
            limbs.push(sum as u64);
            carry = (sum >> 64) as u64;
        }
        if carry != 0 {
            limbs.push(carry);
        }
        let mut n = MpInt { limbs };
        n.normalize();
        n
    }

    /// Subtraction; panics if `other > self` (callers guarantee ordering).
    pub fn sub(&self, other: &MpInt) -> MpInt {
        assert!(
            self.cmp_to(other) != Ordering::Less,
            "MpInt::sub underflow"
        );
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i128;
            let b = *other.limbs.get(i).unwrap_or(&0) as i128;
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(diff as u64);
        }
        assert_eq!(borrow, 0);
        let mut n = MpInt { limbs };
        n.normalize();
        n
    }

    pub fn mul(&self, other: &MpInt) -> MpInt {
        if self.is_zero() || other.is_zero() {
            return MpInt::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = limbs[i + j] as u128 + a as u128 * b as u128 + carry;
                limbs[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = limbs[k] as u128 + carry;
                limbs[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = MpInt { limbs };
        n.normalize();
        n
    }

    pub fn shl(&self, bits: usize) -> MpInt {
        if self.is_zero() {
            return MpInt::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                limbs.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut n = MpInt { limbs };
        n.normalize();
        n
    }

    pub fn shr(&self, bits: usize) -> MpInt {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return MpInt::zero();
        }
        let bit_shift = bits % 64;
        let mut limbs: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            for i in 0..limbs.len() {
                let hi = if i + 1 < limbs.len() {
                    limbs[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                limbs[i] = (limbs[i] >> bit_shift) | hi;
            }
        }
        let mut n = MpInt { limbs };
        n.normalize();
        n
    }

    /// Binary long division: returns `(quotient, remainder)`.
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &MpInt) -> (MpInt, MpInt) {
        assert!(!divisor.is_zero(), "MpInt division by zero");
        if self.cmp_to(divisor) == Ordering::Less {
            return (MpInt::zero(), self.clone());
        }
        let shift = self.bit_length() - divisor.bit_length();
        let mut remainder = self.clone();
        let mut quotient = MpInt::zero();
        for i in (0..=shift).rev() {
            let shifted = divisor.shl(i);
            if remainder.cmp_to(&shifted) != Ordering::Less {
                remainder = remainder.sub(&shifted);
                quotient = quotient.add(&MpInt::from_u64(1).shl(i));
            }
        }
        (quotient, remainder)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &MpInt) -> MpInt {
        self.div_rem(m).1
    }

    /// Floor of the integer square root, via Newton's method on bit-halved
    /// initial estimate.
    pub fn isqrt(&self) -> MpInt {
        if self.is_zero() {
            return MpInt::zero();
        }
        // Initial estimate: 2^(ceil(bits/2)) >= sqrt(self).
        let mut x = MpInt::from_u64(1).shl(self.bit_length().div_ceil(2));
        loop {
            // x_{k+1} = (x_k + self / x_k) / 2
            let (q, _) = self.div_rem(&x);
            let next = x.add(&q).shr(1);
            if next.cmp_to(&x) != Ordering::Less {
                break;
            }
            x = next;
        }
        // x is now floor(sqrt(self)) (Newton for isqrt converges from above).
        debug_assert!(x.mul(&x).cmp_to(self) != Ordering::Greater);
        x
    }

    /// Floor of the integer cube root, via binary search.
    pub fn icbrt(&self) -> MpInt {
        if self.is_zero() {
            return MpInt::zero();
        }
        let mut lo = MpInt::zero();
        // hi = 2^(ceil(bits/3)+1) > cbrt(self)
        let mut hi = MpInt::from_u64(1).shl(self.bit_length() / 3 + 2);
        // Invariant: lo^3 <= self < hi^3.
        while hi.sub(&lo).cmp_to(&MpInt::from_u64(1)) == Ordering::Greater {
            let mid = lo.add(&hi).shr(1);
            let cube = mid.mul(&mid).mul(&mid);
            if cube.cmp_to(self) == Ordering::Greater {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo
    }

    /// Low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        *self.limbs.first().unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mp(v: u128) -> MpInt {
        MpInt::from_u128(v)
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(mp(5).add(&mp(7)), mp(12));
        assert_eq!(mp(12).sub(&mp(7)), mp(5));
        assert_eq!(mp(0).add(&mp(0)), MpInt::zero());
    }

    #[test]
    fn carries_across_limbs() {
        let a = mp(u64::MAX as u128);
        assert_eq!(a.add(&mp(1)), mp(1u128 << 64));
        assert_eq!(mp(1u128 << 64).sub(&mp(1)), a);
    }

    #[test]
    fn mul_small() {
        assert_eq!(mp(6).mul(&mp(7)), mp(42));
        assert_eq!(
            mp(u64::MAX as u128).mul(&mp(u64::MAX as u128)),
            mp((u64::MAX as u128) * (u64::MAX as u128))
        );
        assert_eq!(mp(123).mul(&MpInt::zero()), MpInt::zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(mp(1).shl(100).shr(100), mp(1));
        assert_eq!(mp(0b1011).shl(3), mp(0b1011000));
        assert_eq!(mp(0b1011000).shr(3), mp(0b1011));
        assert_eq!(mp(1).shr(1), MpInt::zero());
    }

    #[test]
    fn division_small() {
        let (q, r) = mp(100).div_rem(&mp(7));
        assert_eq!((q, r), (mp(14), mp(2)));
        let (q, r) = mp(5).div_rem(&mp(10));
        assert_eq!((q, r), (MpInt::zero(), mp(5)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = mp(1).div_rem(&MpInt::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = mp(1).sub(&mp(2));
    }

    #[test]
    fn byte_roundtrips() {
        let n = MpInt::from_be_bytes(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(n, mp(0x010203040506070809));
        let le = n.to_le_bytes(9);
        assert_eq!(MpInt::from_le_bytes(&le), n);
        // Leading zeros are normalized away.
        assert_eq!(MpInt::from_be_bytes(&[0, 0, 0, 5]), mp(5));
        assert_eq!(MpInt::from_be_bytes(&[]), MpInt::zero());
    }

    #[test]
    fn isqrt_exact_and_floor() {
        assert_eq!(mp(0).isqrt(), mp(0));
        assert_eq!(mp(1).isqrt(), mp(1));
        assert_eq!(mp(144).isqrt(), mp(12));
        assert_eq!(mp(145).isqrt(), mp(12));
        assert_eq!(mp(168).isqrt(), mp(12));
        assert_eq!(mp(169).isqrt(), mp(13));
        let big = mp(u128::MAX);
        let r = big.isqrt();
        assert!(r.mul(&r).cmp_to(&big) != Ordering::Greater);
        let r1 = r.add(&mp(1));
        assert!(r1.mul(&r1).cmp_to(&big) == Ordering::Greater);
    }

    #[test]
    fn icbrt_exact_and_floor() {
        assert_eq!(mp(0).icbrt(), mp(0));
        assert_eq!(mp(1).icbrt(), mp(1));
        assert_eq!(mp(27).icbrt(), mp(3));
        assert_eq!(mp(26).icbrt(), mp(2));
        assert_eq!(mp(63).icbrt(), mp(3));
        assert_eq!(mp(64).icbrt(), mp(4));
    }

    #[test]
    fn bit_accessors() {
        let n = mp(0b101);
        assert!(n.bit(0));
        assert!(!n.bit(1));
        assert!(n.bit(2));
        assert!(!n.bit(200));
        assert_eq!(n.bit_length(), 3);
        assert_eq!(MpInt::zero().bit_length(), 0);
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
            let sum = mp(a).add(&mp(b));
            prop_assert_eq!(sum.sub(&mp(b)), mp(a));
        }

        #[test]
        fn prop_div_rem_identity(a in any::<u128>(), b in 1..=u128::MAX) {
            let (q, r) = mp(a).div_rem(&mp(b));
            prop_assert!(r.cmp_to(&mp(b)) == Ordering::Less);
            prop_assert_eq!(q.mul(&mp(b)).add(&r), mp(a));
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(
                mp(a as u128).mul(&mp(b as u128)),
                mp(a as u128 * b as u128)
            );
        }

        #[test]
        fn prop_shl_is_mul_by_power(a in any::<u64>(), s in 0usize..40) {
            prop_assert_eq!(
                mp(a as u128).shl(s),
                mp(a as u128).mul(&mp(1u128 << s))
            );
        }

        #[test]
        fn prop_isqrt_bounds(a in any::<u128>()) {
            let n = mp(a);
            let r = n.isqrt();
            prop_assert!(r.mul(&r).cmp_to(&n) != Ordering::Greater);
            let r1 = r.add(&mp(1));
            prop_assert!(r1.mul(&r1).cmp_to(&n) == Ordering::Greater);
        }

        #[test]
        fn prop_icbrt_bounds(a in any::<u128>()) {
            let n = mp(a);
            let r = n.icbrt();
            prop_assert!(r.mul(&r).mul(&r).cmp_to(&n) != Ordering::Greater);
            let r1 = r.add(&mp(1));
            prop_assert!(r1.mul(&r1).mul(&r1).cmp_to(&n) == Ordering::Greater);
        }

        #[test]
        fn prop_be_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
            let n = MpInt::from_be_bytes(&bytes);
            let le = n.to_le_bytes(bytes.len().max(1));
            prop_assert_eq!(MpInt::from_le_bytes(&le), n);
        }
    }
}
