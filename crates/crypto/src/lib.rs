//! # vnfguard-crypto
//!
//! From-scratch cryptographic primitives for the vnfguard workspace:
//!
//! - [`sha2`] — SHA-256 / SHA-512 (constants derived, not transcribed)
//! - [`hmac`] — HMAC over both hashes
//! - [`hkdf`] — HKDF and the TLS-style labeled expansion
//! - [`aes`] / [`gcm`] — AES-128/256 in CTR and GCM modes
//! - [`chacha`] — ChaCha20-Poly1305
//! - [`x25519`] — Diffie–Hellman key agreement
//! - [`ed25519`] — signatures
//! - [`drbg`] — HMAC-DRBG and OS entropy
//! - [`ct`] — constant-time comparison and wiping
//! - [`mpint`] — the bignum helper backing scalar arithmetic and constant
//!   derivation
//!
//! Every primitive is pinned by the published test vectors of its RFC/NIST
//! specification, and the Curve25519 field arithmetic is additionally
//! cross-checked against the bignum reference by property tests.
//!
//! ## Threat model of the simulation
//!
//! This crate exists so the reproduction of *Safeguarding VNF Credentials
//! with Intel SGX* is fully self-contained. It provides **functional**
//! correctness (interoperable algorithms, correct rejection of invalid
//! inputs, constant-time tag/key comparison) but does **not** claim
//! side-channel resistance: table-based AES and variable-time scalar
//! multiplication are acceptable in a simulator whose adversary is modeled
//! at the protocol layer, not the microarchitectural layer. A production
//! deployment would swap this crate for a vetted implementation behind the
//! same API.

pub mod aes;
pub mod chacha;
pub mod ct;
pub mod drbg;
pub mod ed25519;
pub mod field25519;
pub mod gcm;
pub mod hkdf;
pub mod hmac;
pub mod mpint;
pub mod sha2;
pub mod util;
pub mod x25519;

pub use ct::ct_eq;
pub use drbg::{HmacDrbg, SecureRandom, SystemEntropy};
pub use ed25519::{SigningKey, VerifyingKey};
pub use gcm::{AeadError, AesGcm};
pub use sha2::{sha256, sha512, Sha256, Sha512};
