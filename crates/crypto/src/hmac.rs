//! HMAC (RFC 2104) over SHA-256 and SHA-512.
//!
//! Used for the Verification Manager's HMAC keys (the paper's §2: the VM
//! "generates the HMAC key and nonces"), for HKDF, and for the HMAC-DRBG.

use crate::ct::ct_eq;
use crate::sha2::{sha256, sha512, Sha256, Sha512, SHA256_BLOCK, SHA256_LEN, SHA512_BLOCK, SHA512_LEN};

/// Incremental HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; SHA256_BLOCK],
}

impl HmacSha256 {
    pub fn new(key: &[u8]) -> HmacSha256 {
        let mut block_key = [0u8; SHA256_BLOCK];
        if key.len() > SHA256_BLOCK {
            block_key[..SHA256_LEN].copy_from_slice(&sha256(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; SHA256_BLOCK];
        let mut opad = [0x5cu8; SHA256_BLOCK];
        for i in 0..SHA256_BLOCK {
            ipad[i] ^= block_key[i];
            opad[i] ^= block_key[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.inner.update(data);
        self
    }

    pub fn finalize(self) -> [u8; SHA256_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; SHA256_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// Constant-time verification of an HMAC-SHA-256 tag.
pub fn verify_hmac_sha256(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
    ct_eq(&hmac_sha256(key, data), tag)
}

/// Incremental HMAC-SHA-512.
#[derive(Clone)]
pub struct HmacSha512 {
    inner: Sha512,
    opad_key: [u8; SHA512_BLOCK],
}

impl HmacSha512 {
    pub fn new(key: &[u8]) -> HmacSha512 {
        let mut block_key = [0u8; SHA512_BLOCK];
        if key.len() > SHA512_BLOCK {
            block_key[..SHA512_LEN].copy_from_slice(&sha512(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; SHA512_BLOCK];
        let mut opad = [0x5cu8; SHA512_BLOCK];
        for i in 0..SHA512_BLOCK {
            ipad[i] ^= block_key[i];
            opad[i] ^= block_key[i];
        }
        let mut inner = Sha512::new();
        inner.update(&ipad);
        HmacSha512 {
            inner,
            opad_key: opad,
        }
    }

    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.inner.update(data);
        self
    }

    pub fn finalize(self) -> [u8; SHA512_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha512::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-512.
pub fn hmac_sha512(key: &[u8], data: &[u8]) -> [u8; SHA512_LEN] {
    let mut mac = HmacSha512::new(key);
    mac.update(data);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&hmac_sha512(&key, data)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
                .replace(char::is_whitespace, "")
                .as_str()
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let key = b"secret key";
        let data: Vec<u8> = (0..500u16).map(|i| i as u8).collect();
        let mut mac = HmacSha256::new(key);
        for part in data.chunks(7) {
            mac.update(part);
        }
        assert_eq!(mac.finalize(), hmac_sha256(key, &data));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"msg");
        assert!(verify_hmac_sha256(b"k", b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"msg", &bad));
        assert!(!verify_hmac_sha256(b"k", b"msg", &tag[..31]));
        assert!(!verify_hmac_sha256(b"k2", b"msg", &tag));
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
