//! Small shared helpers.

use crate::sha2::sha256;

/// Short hex fingerprint (first 8 bytes of SHA-256) for log/debug output.
/// Never used for security decisions — full digests are compared there.
pub fn fingerprint_hex(data: &[u8]) -> String {
    sha256(data)[..8]
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

/// Hex-encode arbitrary bytes (lowercase).
pub fn to_hex(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_short() {
        let a = fingerprint_hex(b"hello");
        assert_eq!(a.len(), 16);
        assert_eq!(a, fingerprint_hex(b"hello"));
        assert_ne!(a, fingerprint_hex(b"world"));
    }

    #[test]
    fn hex_encoding() {
        assert_eq!(to_hex(&[0xde, 0xad]), "dead");
    }
}
