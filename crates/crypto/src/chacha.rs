//! ChaCha20-Poly1305 AEAD (RFC 8439).
//!
//! Provided as the second cipher suite of the TLS channel, so the handshake
//! has a real negotiation to perform (and so E4 can compare suite costs).

use crate::ct::ct_eq;
use crate::gcm::AeadError;

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha20 block function: 64 bytes of keystream for (key, counter, nonce).
fn chacha20_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("word"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("word"));
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Apply the ChaCha20 keystream (encrypt == decrypt).
pub fn chacha20_apply(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let keystream = chacha20_block(key, initial_counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
    }
}

/// Poly1305 one-time authenticator over `msg` with a 32-byte key.
pub fn poly1305(key: &[u8; 32], msg: &[u8]) -> [u8; TAG_LEN] {
    // r is clamped; arithmetic is done in radix-2^26 on u64 limbs with u128
    // accumulation, modulo 2^130 - 5.
    let mut r_bytes = [0u8; 16];
    r_bytes.copy_from_slice(&key[..16]);
    r_bytes[3] &= 15;
    r_bytes[7] &= 15;
    r_bytes[11] &= 15;
    r_bytes[15] &= 15;
    r_bytes[4] &= 252;
    r_bytes[8] &= 252;
    r_bytes[12] &= 252;

    let r = u128::from_le_bytes(r_bytes);
    let r0 = (r & 0x3ffffff) as u64;
    let r1 = ((r >> 26) & 0x3ffffff) as u64;
    let r2 = ((r >> 52) & 0x3ffffff) as u64;
    let r3 = ((r >> 78) & 0x3ffffff) as u64;
    let r4 = ((r >> 104) & 0x3ffffff) as u64;
    // Precomputed 5*r for the reduction.
    let s1 = r1 * 5;
    let s2 = r2 * 5;
    let s3 = r3 * 5;
    let s4 = r4 * 5;

    let mut h = [0u64; 5];
    for chunk in msg.chunks(16) {
        let mut block = [0u8; 17];
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()] = 1; // The "high bit" pad.
        let lo = u128::from_le_bytes(block[..16].try_into().expect("16"));
        let hi = block[16] as u64;
        // h += block
        h[0] += (lo & 0x3ffffff) as u64;
        h[1] += ((lo >> 26) & 0x3ffffff) as u64;
        h[2] += ((lo >> 52) & 0x3ffffff) as u64;
        h[3] += ((lo >> 78) & 0x3ffffff) as u64;
        h[4] += ((lo >> 104) & 0x3ffffff) as u64 + (hi << 24);

        // h *= r (mod 2^130 - 5)
        let d0 = h[0] as u128 * r0 as u128
            + h[1] as u128 * s4 as u128
            + h[2] as u128 * s3 as u128
            + h[3] as u128 * s2 as u128
            + h[4] as u128 * s1 as u128;
        let d1 = h[0] as u128 * r1 as u128
            + h[1] as u128 * r0 as u128
            + h[2] as u128 * s4 as u128
            + h[3] as u128 * s3 as u128
            + h[4] as u128 * s2 as u128;
        let d2 = h[0] as u128 * r2 as u128
            + h[1] as u128 * r1 as u128
            + h[2] as u128 * r0 as u128
            + h[3] as u128 * s4 as u128
            + h[4] as u128 * s3 as u128;
        let d3 = h[0] as u128 * r3 as u128
            + h[1] as u128 * r2 as u128
            + h[2] as u128 * r1 as u128
            + h[3] as u128 * r0 as u128
            + h[4] as u128 * s4 as u128;
        let d4 = h[0] as u128 * r4 as u128
            + h[1] as u128 * r3 as u128
            + h[2] as u128 * r2 as u128
            + h[3] as u128 * r1 as u128
            + h[4] as u128 * r0 as u128;

        // Carry propagation.
        let mut c;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = (d0 >> 26) as u64;
        h[0] = (d0 & 0x3ffffff) as u64;
        d1 += c as u128;
        c = (d1 >> 26) as u64;
        h[1] = (d1 & 0x3ffffff) as u64;
        d2 += c as u128;
        c = (d2 >> 26) as u64;
        h[2] = (d2 & 0x3ffffff) as u64;
        d3 += c as u128;
        c = (d3 >> 26) as u64;
        h[3] = (d3 & 0x3ffffff) as u64;
        d4 += c as u128;
        c = (d4 >> 26) as u64;
        h[4] = (d4 & 0x3ffffff) as u64;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x3ffffff;
        h[1] += c;
    }

    // Full reduction: h mod 2^130 - 5.
    let mut c = h[1] >> 26;
    h[1] &= 0x3ffffff;
    h[2] += c;
    c = h[2] >> 26;
    h[2] &= 0x3ffffff;
    h[3] += c;
    c = h[3] >> 26;
    h[3] &= 0x3ffffff;
    h[4] += c;
    c = h[4] >> 26;
    h[4] &= 0x3ffffff;
    h[0] += c * 5;
    c = h[0] >> 26;
    h[0] &= 0x3ffffff;
    h[1] += c;

    // Compute h + -p = h - (2^130 - 5); select it if non-negative.
    let mut g = [0u64; 5];
    g[0] = h[0].wrapping_add(5);
    c = g[0] >> 26;
    g[0] &= 0x3ffffff;
    g[1] = h[1].wrapping_add(c);
    c = g[1] >> 26;
    g[1] &= 0x3ffffff;
    g[2] = h[2].wrapping_add(c);
    c = g[2] >> 26;
    g[2] &= 0x3ffffff;
    g[3] = h[3].wrapping_add(c);
    c = g[3] >> 26;
    g[3] &= 0x3ffffff;
    g[4] = h[4].wrapping_add(c).wrapping_sub(1 << 26);
    let use_g = (g[4] >> 63) == 0; // No borrow => h >= p.
    let mask = if use_g { u64::MAX } else { 0 };
    for i in 0..5 {
        h[i] = (g[i] & mask) | (h[i] & !mask);
    }
    h[4] &= 0x3ffffff;

    let h_full = h[0] as u128
        | (h[1] as u128) << 26
        | (h[2] as u128) << 52
        | (h[3] as u128) << 78
        | (h[4] as u128) << 104;
    let s = u128::from_le_bytes(key[16..32].try_into().expect("16"));
    let tag = h_full.wrapping_add(s);
    tag.to_le_bytes()
}

/// ChaCha20-Poly1305 AEAD key.
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

impl ChaCha20Poly1305 {
    pub fn new(key: &[u8; KEY_LEN]) -> ChaCha20Poly1305 {
        ChaCha20Poly1305 { key: *key }
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let block = chacha20_block(&self.key, 0, nonce);
        let otk: [u8; 32] = block[..32].try_into().expect("32");
        let mut mac_data = Vec::with_capacity(aad.len() + ciphertext.len() + 32);
        mac_data.extend_from_slice(aad);
        mac_data.resize(aad.len().div_ceil(16) * 16, 0);
        mac_data.extend_from_slice(ciphertext);
        mac_data.resize(mac_data.len().div_ceil(16) * 16, 0);
        mac_data.extend_from_slice(&(aad.len() as u64).to_le_bytes());
        mac_data.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
        poly1305(&otk, &mac_data)
    }

    /// Encrypt, returning `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        chacha20_apply(&self.key, nonce, 1, &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypt `ciphertext || tag`.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        if sealed.len() < TAG_LEN {
            return Err(AeadError);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.tag(nonce, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(AeadError);
        }
        let mut out = ciphertext.to_vec();
        chacha20_apply(&self.key, nonce, 1, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = (0..32u8).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        assert_eq!(hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&block[48..64]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    // RFC 8439 §2.5.2 Poly1305 test vector.
    #[test]
    fn rfc8439_poly1305_vector() {
        let key: [u8; 32] = <[u8; 32]>::try_from(
            &[
                0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42,
                0xd5, 0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf,
                0xf6, 0xaf, 0x41, 0x49, 0xf5, 0x1b,
            ][..],
        )
        .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        assert_eq!(
            hex(&poly1305(&key, msg)),
            "a8061dc1305136c6c22b8baf0c0127a9"
        );
    }

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key: [u8; 32] = (0x80..0xa0u8).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [0x07, 0, 0, 0, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47];
        let aad: Vec<u8> = vec![
            0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
                          only one tip for the future, sunscreen would be it.";
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &aad, plaintext);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(hex(&ct[..16]), "d31a8d34648e60db7b86afbc53ef7ec2");
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), plaintext);
    }

    #[test]
    fn roundtrip_various_sizes() {
        let aead = ChaCha20Poly1305::new(&[7u8; 32]);
        let nonce = [1u8; 12];
        for len in [0usize, 1, 63, 64, 65, 130, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let sealed = aead.seal(&nonce, b"ad", &pt);
            assert_eq!(aead.open(&nonce, b"ad", &sealed).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn tamper_detection() {
        let aead = ChaCha20Poly1305::new(&[2u8; 32]);
        let nonce = [3u8; 12];
        let sealed = aead.seal(&nonce, b"a", b"message");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 1;
            assert!(aead.open(&nonce, b"a", &bad).is_err(), "byte {i}");
        }
        assert!(aead.open(&nonce, b"b", &sealed).is_err());
        assert!(aead.open(&[4u8; 12], b"a", &sealed).is_err());
    }

    #[test]
    fn keystream_position_independence() {
        let key = [9u8; 32];
        let nonce = [8u8; 12];
        let mut long = vec![0u8; 128];
        chacha20_apply(&key, &nonce, 1, &mut long);
        let mut second = vec![0u8; 64];
        chacha20_apply(&key, &nonce, 2, &mut second);
        assert_eq!(&long[64..], &second[..]);
    }
}
