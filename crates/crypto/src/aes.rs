//! AES-128 / AES-256 block encryption and CTR mode (FIPS 197, SP 800-38A).
//!
//! Only the *encryption* direction of the block cipher is implemented: both
//! CTR and GCM use the forward permutation exclusively. The S-box is derived
//! from its algebraic definition (multiplicative inverse in GF(2⁸) followed
//! by the affine transform) rather than transcribed, and pinned by the FIPS
//! 197 known-answer vectors in the tests.
//!
//! This is a table-based implementation; it is not hardened against cache
//! timing side channels (out of scope for the simulation — see crate docs).

use std::sync::OnceLock;

/// AES block size in bytes.
pub const BLOCK: usize = 16;

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b; // x^8 = x^4 + x^3 + x + 1 (mod the AES polynomial)
        }
        b >>= 1;
    }
    acc
}

fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^(2^8 - 2) = a^254 in GF(2^8).
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn sbox() -> &'static [u8; 256] {
    static SBOX: OnceLock<[u8; 256]> = OnceLock::new();
    SBOX.get_or_init(|| {
        let mut table = [0u8; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let b = gf_inv(i as u8);
            *slot = b
                ^ b.rotate_left(1)
                ^ b.rotate_left(2)
                ^ b.rotate_left(3)
                ^ b.rotate_left(4)
                ^ 0x63;
        }
        table
    })
}

/// Key size variants supported by [`Aes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesKeySize {
    Aes128,
    Aes256,
}

/// An expanded AES encryption key.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; BLOCK]>,
}

impl Aes {
    /// Expand a 16-byte key (AES-128).
    pub fn new_128(key: &[u8; 16]) -> Aes {
        Aes::expand(key, 4, 10)
    }

    /// Expand a 32-byte key (AES-256).
    pub fn new_256(key: &[u8; 32]) -> Aes {
        Aes::expand(key, 8, 14)
    }

    /// Expand a key of either supported length; panics on other lengths
    /// (callers own key sizing).
    pub fn new(key: &[u8]) -> Aes {
        match key.len() {
            16 => Aes::new_128(key.try_into().expect("16-byte key")),
            32 => Aes::new_256(key.try_into().expect("32-byte key")),
            n => panic!("unsupported AES key length {n}"),
        }
    }

    fn expand(key: &[u8], nk: usize, nr: usize) -> Aes {
        let s = sbox();
        let total_words = 4 * (nr + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push(key[i * 4..i * 4 + 4].try_into().expect("word"));
        }
        let mut rcon = 1u8;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = [s[temp[1] as usize], s[temp[2] as usize], s[temp[3] as usize], s[temp[0] as usize]];
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                temp = [s[temp[0] as usize], s[temp[1] as usize], s[temp[2] as usize], s[temp[3] as usize]];
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|chunk| {
                let mut rk = [0u8; BLOCK];
                for (i, word) in chunk.iter().enumerate() {
                    rk[i * 4..i * 4 + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Aes { round_keys }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK]) {
        let s = sbox();
        let rounds = self.round_keys.len() - 1;
        xor_block(block, &self.round_keys[0]);
        for round in 1..rounds {
            sub_bytes(block, s);
            shift_rows(block);
            mix_columns(block);
            xor_block(block, &self.round_keys[round]);
        }
        sub_bytes(block, s);
        shift_rows(block);
        xor_block(block, &self.round_keys[rounds]);
    }

    /// Encrypt and return a copy of the block.
    pub fn encrypt(&self, block: &[u8; BLOCK]) -> [u8; BLOCK] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

fn xor_block(block: &mut [u8; BLOCK], key: &[u8; BLOCK]) {
    for i in 0..BLOCK {
        block[i] ^= key[i];
    }
}

fn sub_bytes(block: &mut [u8; BLOCK], s: &[u8; 256]) {
    for b in block.iter_mut() {
        *b = s[*b as usize];
    }
}

// State is column-major: byte index = 4*col + row.
fn shift_rows(block: &mut [u8; BLOCK]) {
    let orig = *block;
    for row in 1..4 {
        for col in 0..4 {
            block[4 * col + row] = orig[4 * ((col + row) % 4) + row];
        }
    }
}

fn mix_columns(block: &mut [u8; BLOCK]) {
    for col in 0..4 {
        let c = &mut block[4 * col..4 * col + 4];
        let [a0, a1, a2, a3] = [c[0], c[1], c[2], c[3]];
        c[0] = gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
        c[1] = a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
        c[2] = a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
        c[3] = gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
    }
}

/// AES-CTR keystream application (encrypt == decrypt).
///
/// The 16-byte initial counter block is split as 12-byte nonce + 4-byte
/// big-endian counter, matching the GCM convention.
pub fn ctr_apply(aes: &Aes, nonce: &[u8; 12], initial_counter: u32, data: &mut [u8]) {
    let mut counter_block = [0u8; BLOCK];
    counter_block[..12].copy_from_slice(nonce);
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(BLOCK) {
        counter_block[12..].copy_from_slice(&counter.to_be_bytes());
        let keystream = aes.encrypt(&counter_block);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sbox_known_entries() {
        let s = sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7c);
        assert_eq!(s[0x53], 0xed);
        assert_eq!(s[0xff], 0x16);
    }

    #[test]
    fn sbox_is_permutation() {
        let s = sbox();
        let mut seen = [false; 256];
        for &v in s.iter() {
            assert!(!seen[v as usize], "duplicate s-box value {v:#x}");
            seen[v as usize] = true;
        }
    }

    // FIPS 197 Appendix C.1.
    #[test]
    fn fips197_aes128_vector() {
        let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes::new_128(&key);
        assert_eq!(hex(&aes.encrypt(&pt)), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    // FIPS 197 Appendix C.3.
    #[test]
    fn fips197_aes256_vector() {
        let key: [u8; 32] = (0..32u8).collect::<Vec<_>>().try_into().unwrap();
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes::new_256(&key);
        assert_eq!(hex(&aes.encrypt(&pt)), "8ea2b7ca516745bfeafc49904b496089");
    }

    #[test]
    fn ctr_roundtrip_and_offsets() {
        let aes = Aes::new_128(&[7u8; 16]);
        let nonce = [9u8; 12];
        let original: Vec<u8> = (0..100u8).collect();
        let mut data = original.clone();
        ctr_apply(&aes, &nonce, 1, &mut data);
        assert_ne!(data, original);
        ctr_apply(&aes, &nonce, 1, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn ctr_counter_independence() {
        // Encrypting block N alone must match block N of a longer stream.
        let aes = Aes::new_128(&[1u8; 16]);
        let nonce = [2u8; 12];
        let mut long = vec![0u8; 48];
        ctr_apply(&aes, &nonce, 1, &mut long);
        let mut third = vec![0u8; 16];
        ctr_apply(&aes, &nonce, 3, &mut third);
        assert_eq!(&long[32..48], &third[..]);
    }

    #[test]
    fn distinct_keys_distinct_ciphertexts() {
        let pt = [0u8; 16];
        let a = Aes::new_128(&[1u8; 16]).encrypt(&pt);
        let b = Aes::new_128(&[2u8; 16]).encrypt(&pt);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "unsupported AES key length")]
    fn rejects_bad_key_length() {
        let _ = Aes::new(&[0u8; 24]);
    }

    #[test]
    fn gf_mul_properties() {
        // x * 1 = x; distributivity spot checks.
        for x in 0..=255u8 {
            assert_eq!(gf_mul(x, 1), x);
            assert_eq!(gf_mul(x, 0), 0);
        }
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
    }

    #[test]
    fn gf_inv_is_inverse() {
        for x in 1..=255u8 {
            assert_eq!(gf_mul(x, gf_inv(x)), 1, "inverse of {x:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }
}
