//! The distributed deployment: every box of Figure 1 as its own network
//! service, driven through the Verification Manager's operator API.
//!
//! - the IAS serves `POST /attestation/v4/report` on `ias:443`;
//! - each container host runs an agent answering attestation and
//!   provisioning requests on `agent:host-0`;
//! - the VM exposes its operator API on `vm:8443`;
//! - the controller serves trusted HTTPS on `controller:8443`.
//!
//! Run with: `cargo run --example distributed_deployment`

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::core::remote::{serve_ias, serve_vm_api, HostAgent, HostAgentState, RemoteIas};
use vnfguard::encoding::Json;
use vnfguard::ias::QuoteVerifier;
use vnfguard::net::http::Request;
use vnfguard::net::server::HttpClient;

fn main() {
    println!("=== distributed deployment: one service per Figure-1 box ===\n");
    let mut testbed = TestbedBuilder::new(b"distributed").build();
    let network = testbed.network.clone();

    // Detach the IAS onto the fabric.
    let ias = std::mem::replace(
        &mut testbed.ias,
        vnfguard::ias::AttestationService::new(b"unused"),
    );
    let report_key = ias.report_signing_key();
    let (_ias_server, _shared) = serve_ias(&network, "ias:443", ias).unwrap();
    println!("[svc] IAS serving at ias:443");

    // Host 0 becomes an agent-fronted host with one guarded VNF.
    let host = testbed.hosts.remove(0);
    let guard = vnfguard::vnf::VnfGuard::load(
        &host.platform,
        &network,
        &testbed.enclave_author,
        "vnf-edge-fw",
        1,
    )
    .unwrap();
    testbed.vm.trust_enclave(guard.mrenclave(), "vnf-edge-fw-v1");
    let mut guards = HashMap::new();
    guards.insert("vnf-edge-fw".to_string(), Arc::new(guard));
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(guards),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: None,
    });
    let agent = HostAgent::serve(&network, state).unwrap();
    println!("[svc] host agent serving at {}", agent.address);

    // The VM's operator API: the service handle clones into the server,
    // so per-connection threads route to the shards concurrently.
    let remote_ias: Arc<Mutex<dyn QuoteVerifier + Send>> =
        Arc::new(Mutex::new(RemoteIas::new(&network, "ias:443", report_key)));
    let _vm_api =
        serve_vm_api(&network, "vm:8443", testbed.vm_service(), remote_ias, "controller")
            .unwrap();
    println!("[svc] Verification Manager API serving at vm:8443");
    println!("[svc] controller serving at {} (trusted HTTPS)\n", testbed.controller_addr);

    // Operate the deployment purely through the VM's REST API.
    let mut operator = HttpClient::new(network.connect("vm:8443").unwrap());

    let verdict = operator
        .request(&Request::post("/vm/hosts/host-0/attest"))
        .unwrap()
        .parse_json()
        .unwrap();
    println!(
        "[op ] POST /vm/hosts/host-0/attest → verdict {}",
        verdict.get("verdict").and_then(Json::as_str).unwrap_or("?")
    );

    let enrolled = operator
        .request(&Request::post("/vm/hosts/host-0/vnfs/vnf-edge-fw/enroll"))
        .unwrap()
        .parse_json()
        .unwrap();
    println!(
        "[op ] POST …/vnfs/vnf-edge-fw/enroll → subject {} serial {}",
        enrolled.get("subject").and_then(Json::as_str).unwrap_or("?"),
        enrolled.get("serial").and_then(Json::as_i64).unwrap_or(-1),
    );

    let status = operator
        .request(&Request::get("/vm/status"))
        .unwrap()
        .parse_json()
        .unwrap();
    println!(
        "[op ] GET /vm/status → issued={} enrollments={} events={}",
        status.get("issued").and_then(Json::as_i64).unwrap_or(0),
        status.get("enrollments").and_then(Json::as_i64).unwrap_or(0),
        status.get("events").and_then(Json::as_i64).unwrap_or(0),
    );

    // Step 6 still happens at the VNF: its enclave now holds credentials
    // (provisioned across the fabric) and talks to the controller directly.
    let guards = agent.state.guards.read();
    let enclave_status = guards["vnf-edge-fw"].status().unwrap();
    println!(
        "\n[vnf] enclave status after remote provisioning: provisioned={} subject={}",
        enclave_status.provisioned, enclave_status.subject
    );
    println!(
        "[net] fabric carried {} connections; agent answered {} requests",
        network.connection_count(),
        agent.requests_served()
    );

    // The observability surface: scrape the Prometheus exposition and tail
    // the audit journal, both over the same operator API.
    let metrics = operator.request(&Request::get("/vm/metrics")).unwrap();
    let exposition = String::from_utf8_lossy(&metrics.body).into_owned();
    let interesting = exposition
        .lines()
        .filter(|l| l.contains("enrollments_total") || l.contains("host_attestations_total"))
        .map(str::to_string)
        .collect::<Vec<_>>();
    println!("\n[obs] GET /vm/metrics (excerpt):");
    for line in interesting {
        println!("      {line}");
    }
    let events = operator
        .request(&Request::get("/vm/events?since=0"))
        .unwrap()
        .parse_json()
        .unwrap();
    println!(
        "[obs] GET /vm/events?since=0 → {} events, next_seq={}",
        events.get("events").and_then(Json::as_array).map(|a| a.len()).unwrap_or(0),
        events.get("next_seq").and_then(Json::as_i64).unwrap_or(0),
    );
    println!("\nEvery workflow interaction crossed the network, none carried key material in clear.");
}
