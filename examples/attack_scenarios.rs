//! The threat-model matrix (paper §1 / Scott-Hayward et al.), executed.
//!
//! Each scenario mounts one of the attacks the architecture is designed to
//! stop — plus the two it deliberately demonstrates as *possible* without
//! the respective defense (plain-HTTP eavesdropping; IML rewrite without a
//! TPM) — and reports DETECTED / BLOCKED / SUCCEEDED.
//!
//! Run with: `cargo run --example attack_scenarios`

use vnfguard::container::host::ContainerHost;
use vnfguard::container::image::ImageBuilder;
use vnfguard::controller::{NorthboundClient, SecurityMode};
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::core::CoreError;
use vnfguard::encoding::Json;
use vnfguard::ima::appraisal::Verdict;
use vnfguard::net::http::Request;
use vnfguard::pki::crl::RevocationReason;

struct Outcome {
    scenario: &'static str,
    result: &'static str,
    detail: String,
}

fn main() {
    let outcomes = vec![
        trojaned_vnf_image(),
        backdoored_credential_enclave(),
        compromised_container_runtime(),
        revoked_platform(),
        stolen_certificate_replay(),
        eavesdropping_plain_http(),
        eavesdropping_trusted_https(),
        unauthenticated_flow_injection(),
        credential_revocation_race(),
        iml_rewrite_without_tpm(),
        iml_rewrite_with_tpm(),
    ];

    println!("\n=== attack matrix summary ===");
    println!("{:<42} {:>10}  detail", "scenario", "result");
    for outcome in &outcomes {
        println!(
            "{:<42} {:>10}  {}",
            outcome.scenario, outcome.result, outcome.detail
        );
    }
}

/// A trojaned VNF image is deployed; IMA appraisal flags the host.
fn trojaned_vnf_image() -> Outcome {
    let mut testbed = TestbedBuilder::new(b"attack: image").build();
    testbed.attest_host(0).unwrap();
    let clean = ImageBuilder::new("vnf", "1.0")
        .layer(b"rootfs")
        .entrypoint(b"vnf v1")
        .build();
    let trojaned = ImageBuilder::new("vnf", "1.0")
        .layer(b"rootfs")
        .entrypoint(b"vnf v1 + c2 implant")
        .build();
    testbed.deploy_container(0, &clean, &trojaned).unwrap();
    let verdict = testbed.attest_host(0).unwrap();
    Outcome {
        scenario: "trojaned VNF image",
        result: if verdict == Verdict::Mismatch { "DETECTED" } else { "MISSED" },
        detail: format!("appraisal verdict {verdict:?}"),
    }
}

/// A modified credential enclave attests with the wrong MRENCLAVE.
fn backdoored_credential_enclave() -> Outcome {
    let mut testbed = TestbedBuilder::new(b"attack: enclave").build();
    testbed.attest_host(0).unwrap();
    let guard = testbed
        .deploy_guard_unlisted(0, "vnf", b"credential enclave with key-export backdoor")
        .unwrap();
    match testbed.enroll(0, &guard) {
        Err(CoreError::AttestationFailed(msg)) => Outcome {
            scenario: "backdoored credential enclave",
            result: "BLOCKED",
            detail: msg,
        },
        other => Outcome {
            scenario: "backdoored credential enclave",
            result: "MISSED",
            detail: format!("{other:?}"),
        },
    }
}

/// Container escape replaces dockerd; next attestation catches it.
fn compromised_container_runtime() -> Outcome {
    let mut testbed = TestbedBuilder::new(b"attack: runtime").build();
    testbed.attest_host(0).unwrap();
    testbed.hosts[0]
        .container_host
        .compromise_runtime(b"docker daemon 1.12.2 + rootkit");
    let verdict = testbed.attest_host(0).unwrap();
    let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    let enroll_refused = testbed.enroll(0, &guard).is_err();
    Outcome {
        scenario: "compromised container runtime",
        result: if verdict == Verdict::Mismatch && enroll_refused { "DETECTED" } else { "MISSED" },
        detail: format!("verdict {verdict:?}, enrollment refused: {enroll_refused}"),
    }
}

/// Platform attestation key on the SigRL: the whole host is refused.
fn revoked_platform() -> Outcome {
    let mut testbed = TestbedBuilder::new(b"attack: sigrl").build();
    let gid = testbed.hosts[0].platform.epid_group_id();
    let member = testbed.hosts[0].platform.quoting_enclave().member_id();
    testbed.ias.revoke_member(gid, member);
    let refused = testbed.attest_host(0).is_err();
    Outcome {
        scenario: "revoked platform attestation key",
        result: if refused { "BLOCKED" } else { "MISSED" },
        detail: "IAS returned SIGRL revocation status".into(),
    }
}

/// An attacker exfiltrates the *certificate* (public) but cannot use it:
/// the private key is enclave-resident, so they cannot complete the TLS
/// client-auth handshake.
fn stolen_certificate_replay() -> Outcome {
    let mut testbed = TestbedBuilder::new(b"attack: replay").build();
    testbed.attest_host(0).unwrap();
    let guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    let certificate = testbed.enroll(0, &guard).unwrap();

    // The attacker holds the certificate and a key of their own choosing.
    let attacker_key = vnfguard::crypto::ed25519::SigningKey::from_seed(&[66; 32]);
    // They cannot build a LocalSigner(cert, their key) — the pairing check
    // panics — so they must forge the CertificateVerify, which fails at the
    // server. Emulate by connecting with their own self-issued identity.
    let mut trust = vnfguard::pki::TrustStore::new();
    trust.add_anchor(testbed.vm.ca_certificate().clone()).unwrap();
    let forged_cert = vnfguard::pki::cert::Certificate::sign(
        vnfguard::pki::cert::TbsCertificate {
            serial: certificate.serial(),
            subject: certificate.tbs.subject.clone(),
            issuer: certificate.tbs.issuer.clone(),
            validity: certificate.tbs.validity,
            public_key: attacker_key.public_key(),
            key_usage: certificate.tbs.key_usage,
            is_ca: false,
            enclave_binding: certificate.tbs.enclave_binding,
        },
        &attacker_key, // not the CA key: signature check must fail
    );
    let signer = std::sync::Arc::new(vnfguard::tls::LocalSigner::new(attacker_key, forged_cert));
    let refused = NorthboundClient::connect_tls(
        &testbed.network,
        &testbed.controller_addr,
        std::sync::Arc::new(trust),
        Some(signer),
        None,
        testbed.clock.now(),
    )
    .is_err();
    Outcome {
        scenario: "stolen certificate without enclave key",
        result: if refused { "BLOCKED" } else { "MISSED" },
        detail: "forged client credential rejected in handshake".into(),
    }
}

/// Plain HTTP: the §1 eavesdropping threat succeeds (the baseline the
/// paper's TLS design eliminates).
fn eavesdropping_plain_http() -> Outcome {
    let testbed = TestbedBuilder::new(b"attack: http tap")
        .mode(SecurityMode::Http)
        .build();
    let tap = testbed.network.tap(&testbed.controller_addr);
    let mut client =
        NorthboundClient::connect_plain(&testbed.network, &testbed.controller_addr).unwrap();
    client
        .request(
            &Request::post("/wm/core/switch/register").with_json(
                &Json::object()
                    .with("dpid", "00000000deadbeef")
                    .with("ports", vec![Json::from(1i64)]),
            ),
        )
        .unwrap();
    let leaked = tap.contains(b"deadbeef");
    Outcome {
        scenario: "eavesdropping on plain HTTP",
        result: if leaked { "SUCCEEDED" } else { "unexpected" },
        detail: "API payload readable on the wire (the gap TLS closes)".into(),
    }
}

/// The same tap against the enclave-TLS path sees only ciphertext.
fn eavesdropping_trusted_https() -> Outcome {
    let mut testbed = TestbedBuilder::new(b"attack: tls tap").build();
    let tap = testbed.network.tap(&testbed.controller_addr);
    testbed.attest_host(0).unwrap();
    let mut guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    testbed.enroll(0, &guard).unwrap();
    let session = testbed.open_session(&mut guard).unwrap();
    guard
        .request(
            session,
            &Request::post("/wm/core/switch/register").with_json(
                &Json::object()
                    .with("dpid", "00000000deadbeef")
                    .with("ports", vec![Json::from(1i64)]),
            ),
        )
        .unwrap();
    let leaked = tap.contains(b"deadbeef");
    Outcome {
        scenario: "eavesdropping on trusted HTTPS",
        result: if leaked { "MISSED" } else { "BLOCKED" },
        detail: format!("{} tapped frames, all ciphertext", tap.frame_count()),
    }
}

/// An unauthenticated client tries to inject flows into the trusted-HTTPS
/// controller (topology spoofing prerequisite).
fn unauthenticated_flow_injection() -> Outcome {
    let testbed = TestbedBuilder::new(b"attack: inject").build();
    let mut trust = vnfguard::pki::TrustStore::new();
    trust.add_anchor(testbed.vm.ca_certificate().clone()).unwrap();
    let refused = NorthboundClient::connect_tls(
        &testbed.network,
        &testbed.controller_addr,
        std::sync::Arc::new(trust),
        None, // no client identity
        None,
        testbed.clock.now(),
    )
    .is_err();
    Outcome {
        scenario: "unauthenticated flow injection",
        result: if refused { "BLOCKED" } else { "MISSED" },
        detail: "handshake requires a CA-signed client certificate".into(),
    }
}

/// Compromise detected → credentials revoked → sessions refused.
fn credential_revocation_race() -> Outcome {
    let mut testbed = TestbedBuilder::new(b"attack: revoke").build();
    testbed.attest_host(0).unwrap();
    let mut guard = testbed.deploy_guard(0, "vnf", 1).unwrap();
    let certificate = testbed.enroll(0, &guard).unwrap();
    testbed
        .vm
        .revoke_credential(certificate.serial(), RevocationReason::KeyCompromise)
        .unwrap();
    testbed.push_crl().unwrap();
    testbed.clock.advance(1);
    let refused = testbed.open_session(&mut guard).is_err();
    Outcome {
        scenario: "revoked credential reuse",
        result: if refused { "BLOCKED" } else { "MISSED" },
        detail: "CRL propagated to the controller's trust store".into(),
    }
}

/// Without the §4 TPM anchor, a root adversary rewrites the IML history.
fn iml_rewrite_without_tpm() -> Outcome {
    let mut testbed = TestbedBuilder::new(b"attack: iml no tpm").build();
    testbed.attest_host(0).unwrap();
    testbed.hosts[0]
        .container_host
        .compromise_runtime(b"docker daemon 1.12.2 + rootkit");
    testbed.hosts[0].container_host = ContainerHost::standard("host-0");
    let verdict = testbed.attest_host(0).unwrap();
    Outcome {
        scenario: "IML rewrite (no TPM, paper §4 gap)",
        result: if verdict == Verdict::Trusted { "SUCCEEDED" } else { "unexpected" },
        detail: "fabricated list passes appraisal — the documented limitation".into(),
    }
}

/// With the TPM extension the same rewrite is caught.
fn iml_rewrite_with_tpm() -> Outcome {
    let mut testbed = TestbedBuilder::new(b"attack: iml tpm").with_tpm().build();
    testbed.attest_host(0).unwrap();
    testbed.hosts[0]
        .container_host
        .compromise_runtime(b"docker daemon 1.12.2 + rootkit");
    testbed.hosts[0].sync_tpm();
    testbed.hosts[0].container_host = ContainerHost::standard("host-0");
    let refused = testbed.attest_host(0).is_err();
    Outcome {
        scenario: "IML rewrite (with TPM extension)",
        result: if refused { "DETECTED" } else { "MISSED" },
        detail: "PCR-anchored aggregate diverges from the fabricated list".into(),
    }
}
