//! Quickstart: the complete Figure-1 workflow in one run.
//!
//! Boots a deployment (network controller in trusted-HTTPS mode, one SGX
//! container host, the Verification Manager and the simulated Intel
//! Attestation Service), then walks the six workflow steps of the paper:
//!
//! 1. the VM initiates remote attestation of the container host;
//! 2. the quote is verified with the IAS and the IMA list appraised;
//! 3. the VM attests the VNF's credential enclave;
//! 4. the enclave quote is verified with the IAS;
//! 5. the VM generates, certifies and provisions the client credentials;
//! 6. the VNF opens a mutually-authenticated TLS session to the controller
//!    from *inside* the enclave and programs a flow.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Instant;
use vnfguard::container::image::ImageBuilder;
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::encoding::Json;
use vnfguard::net::http::Request;
use vnfguard::vnf::credential_enclave::CredentialEnclave;

fn main() {
    println!("=== vnfguard quickstart: Safeguarding VNF Credentials with (simulated) Intel SGX ===\n");

    let t0 = Instant::now();
    let mut testbed = TestbedBuilder::new(b"quickstart").build();
    println!(
        "[setup]   controller up at {} in {} mode; 1 SGX host; VM CA fingerprint {} ({:?})",
        testbed.controller_addr,
        testbed.mode.as_str(),
        testbed.vm.fingerprint(),
        t0.elapsed()
    );

    // Steps 1-2: host attestation.
    let t = Instant::now();
    let verdict = testbed.attest_host(0).expect("host attestation");
    println!(
        "[step 1-2] host-0 attested via IAS: verdict {:?}, {} IML entries, {:?}",
        verdict,
        testbed.vm.host_record("host-0").unwrap().iml_entries,
        t.elapsed()
    );

    // Deploy the VNF container (image carries the credential enclave).
    let image = ImageBuilder::new("vnf-firewall", "1.0")
        .layer(b"alpine rootfs")
        .layer(b"firewall libs")
        .entrypoint(b"vnf-firewall binary v1.0")
        .enclave_image(&CredentialEnclave::image_for("vnf-firewall", 1))
        .build();
    testbed.registry.push(image.clone());
    let pulled = testbed.registry.pull("vnf-firewall:1.0").expect("pull");
    let container_id = testbed.deploy_container(0, &pulled, &pulled).expect("deploy");
    testbed.attest_host(0).expect("re-attestation after deploy");
    println!("[deploy]  container {container_id} running vnf-firewall:1.0 (host re-attested)");

    let guard = testbed.deploy_guard(0, "vnf-firewall", 1).expect("enclave load");
    println!(
        "[deploy]  credential enclave loaded, MRENCLAVE {}",
        guard.mrenclave()
    );

    // Steps 3-5: VNF attestation and enrollment.
    let t = Instant::now();
    let certificate = testbed.enroll(0, &guard).expect("enrollment");
    println!(
        "[step 3-5] enclave attested and provisioned: certificate CN={} serial={} bound to MRENCLAVE ({:?})",
        certificate.subject_cn(),
        certificate.serial(),
        t.elapsed()
    );
    let status = guard.status().expect("status");
    println!(
        "[step 5]  enclave status: provisioned={} subject={}",
        status.provisioned, status.subject
    );

    // Step 6: in-enclave TLS session to the controller.
    let mut guard = guard;
    let t = Instant::now();
    let session = testbed.open_session(&mut guard).expect("TLS handshake");
    println!(
        "[step 6]  mutually-authenticated TLS session #{session} established inside the enclave ({:?})",
        t.elapsed()
    );

    guard
        .request(
            session,
            &Request::post("/wm/core/switch/register").with_json(
                &Json::object()
                    .with("dpid", "0000000000000001")
                    .with("ports", vec![Json::from(1i64), Json::from(2i64)]),
            ),
        )
        .expect("switch registration");
    let response = guard
        .request(
            session,
            &Request::post("/wm/staticflowpusher/json").with_json(
                &Json::object()
                    .with("switch", "0000000000000001")
                    .with("name", "allow-dns")
                    .with("priority", 100i64)
                    .with("ip_proto", 17i64)
                    .with("tp_dst", 53i64)
                    .with("actions", "output=2"),
            ),
        )
        .expect("flow push");
    println!(
        "[step 6]  flow pushed over the north-bound API: HTTP {}",
        response.status.code()
    );

    // Show the controller's view: the authenticated identity in the audit.
    let audit = guard
        .request(session, &Request::get("/wm/core/audit/json"))
        .expect("audit fetch")
        .parse_json()
        .expect("audit json");
    println!("\n[controller audit]");
    for event in audit.as_array().unwrap_or(&[]) {
        println!(
            "  t={} peer={} action={} detail={}",
            event.get("time").and_then(Json::as_i64).unwrap_or(0),
            event.get("peer").and_then(Json::as_str).unwrap_or("?"),
            event.get("action").and_then(Json::as_str).unwrap_or("?"),
            event.get("detail").and_then(Json::as_str).unwrap_or(""),
        );
    }

    println!("\n[vm audit]");
    for event in testbed.vm.events() {
        println!("  t={} {}: {}", event.time, event.kind, event.detail);
    }

    // Scale-out coda: the same manager partitioned into four shards
    // behind one service handle. Each client thread clones the handle and
    // drives its own VNF; the service routes by VNF identity, so the four
    // enrollments issue from four independent shards with disjoint serial
    // spans — no cross-thread lock contention on a single manager.
    let t = Instant::now();
    let mut scaled = TestbedBuilder::new(b"quickstart-scale").shards(4).build();
    scaled.attest_host(0).expect("host attestation");
    let mut guards = Vec::new();
    for i in 0..4 {
        guards.push(scaled.deploy_guard(0, &format!("vnf-scale-{i}"), 1).expect("guard"));
    }
    let vm = scaled.vm_service();
    let ias = std::sync::Arc::new(parking_lot::Mutex::new(std::mem::replace(
        &mut scaled.ias,
        vnfguard::ias::AttestationService::new(b"placeholder"),
    )));
    let platform = &scaled.hosts[0].platform;
    let serials: Vec<u64> = std::thread::scope(|scope| {
        guards
            .iter()
            .map(|guard| {
                let vm = vm.clone();
                let ias = ias.clone();
                scope.spawn(move || {
                    let challenge = vm.begin_vnf_attestation("host-0", &guard.name).unwrap();
                    let key = guard.provisioning_key().unwrap();
                    let quote = guard
                        .quote(platform, &challenge.nonce, challenge.nonce)
                        .unwrap();
                    let (_, certificate) = vm
                        .complete_vnf_enrollment(
                            &mut *ias.lock(),
                            challenge.id,
                            &quote.encode(),
                            &key,
                            "controller",
                        )
                        .unwrap();
                    certificate.serial()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    println!(
        "\n[scale]   4 shards enrolled 4 VNFs from 4 threads in {:?}; serials {:?} (disjoint per-shard spans)",
        t.elapsed(),
        serials
    );

    println!("\nDone in {:?}. The private key never left the enclave.", t0.elapsed());
}
