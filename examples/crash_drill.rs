//! Crash drill: the Verification Manager killed at WAL injection sites and
//! restarted from its sealed write-ahead log, narrated.
//!
//! ```text
//! cargo run --example crash_drill
//! ```

use vnfguard::core::crash::CrashPlan;
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::core::CoreError;
use vnfguard::pki::crl::RevocationReason;

fn main() {
    println!("== drill 1: crash between WAL append and commit, then recover ==");
    let plan = CrashPlan::seeded(7);
    plan.crash_once("enrollment.commit");
    let mut tb = TestbedBuilder::new(b"crash drill")
        .durable()
        .wal_compaction(32)
        .pending_enrollment_ttl(600)
        .crash_plan(plan.clone())
        .build();
    tb.attest_host(0).unwrap();

    let guard_a = tb.deploy_guard(0, "vnf-a", 1).unwrap();
    let err = tb.enroll(0, &guard_a).unwrap_err();
    println!("  enrolling vnf-a: {err}");
    match tb.vm.sweep_pending_enrollments() {
        Err(CoreError::VmCrashed(site)) => {
            println!("  manager is dead — every call fails until recovery (site: {site})")
        }
        other => panic!("expected a dead manager, got {other:?}"),
    }

    let report = tb.recover_vm().unwrap();
    println!(
        "  recovered: generation {}, {} records replayed (snapshot: {}), \
         {} enrollments restored, {} orphans aborted",
        report.generation,
        report.replayed_records,
        report.from_snapshot,
        report.enrollments_restored,
        report.orphans_aborted
    );
    // The commit hit the WAL before the crash, so vnf-a's enrollment
    // survived even though the caller only saw VmCrashed.
    assert!(tb.vm.enrollments().next().is_some());
    println!("  vnf-a's commit was journaled before the crash — it survived");

    tb.attest_host(0).unwrap(); // attestations are deliberately NOT restored
    let guard_b = tb.deploy_guard(0, "vnf-b", 1).unwrap();
    let cert_b = tb.enroll(0, &guard_b).unwrap();
    println!(
        "  after re-attesting, vnf-b enrolled normally (serial {})",
        cert_b.serial()
    );

    println!("== drill 2: orphaned prepare aborted by recovery after the grace TTL ==");
    let plan = CrashPlan::seeded(11);
    plan.crash_once("enrollment.prepare");
    let mut tb = TestbedBuilder::new(b"crash drill orphan")
        .durable()
        .pending_enrollment_ttl(120)
        .crash_plan(plan)
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-orphan", 1).unwrap();
    let err = tb.enroll(0, &guard).unwrap_err();
    println!("  enrolling vnf-orphan: {err}");
    tb.clock.advance(600); // the manager stays down past the grace window
    let report = tb.recover_vm().unwrap();
    println!(
        "  recovered after 600 s: {} orphan(s) aborted, serial 3 revoked: {}, \
         notice queued for host-0: {}",
        report.orphans_aborted,
        tb.vm.credential_is_revoked(3),
        tb.notifier.pending().iter().any(|n| n.serial == 3)
    );
    tb.attest_host(0).unwrap();
    let cert = tb.enroll(0, &guard).unwrap();
    println!("  re-enrolled cleanly with fresh serial {}", cert.serial());

    println!("== drill 3: torn WAL tail rolls back to the last intact record ==");
    let mut tb = TestbedBuilder::new(b"crash drill torn")
        .durable()
        .pending_enrollment_ttl(600)
        .build();
    tb.attest_host(0).unwrap();
    let guard = tb.deploy_guard(0, "vnf-torn", 1).unwrap();
    let cert = tb.enroll(0, &guard).unwrap();
    tb.vm
        .revoke_credential(cert.serial(), RevocationReason::KeyCompromise)
        .unwrap();
    tb.store_media().unwrap().tear_tail(3); // the crash clipped the last append
    let report = tb.recover_vm().unwrap();
    println!(
        "  torn tail detected: {}; the clipped revocation simply never \
         happened (revoked: {})",
        report.truncated_tail,
        tb.vm.credential_is_revoked(cert.serial())
    );
    assert!(tb.vm.enrollments().any(|e| e.serial == cert.serial()));
    println!("  the enrollment underneath the torn record is intact");

    println!("Every crash was journaled-before-response, recovered, and audited.");
}
