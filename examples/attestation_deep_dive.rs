//! Attestation deep dive: every artifact of steps 1–4, printed.
//!
//! Shows the actual structures the protocol exchanges — the IMA measurement
//! list, the enclave report, the EPID-style quote, the IAS verification
//! report — and how each binds to the next, including what changes when the
//! evidence is tampered with.
//!
//! Run with: `cargo run --example attestation_deep_dive`

use vnfguard::core::attestation::{host_evidence, host_report_data};
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::crypto::util::to_hex;
use vnfguard::sgx::quote::Quote;

fn main() {
    let mut testbed = TestbedBuilder::new(b"deep dive").build();
    let host_id = testbed.hosts[0].id.clone();

    // --- The measurement list -------------------------------------------
    println!("=== 1. the host's IMA measurement list ===");
    {
        let list = testbed.hosts[0].container_host.measurement_list();
        for entry in list.entries() {
            println!(
                "  pcr={:2}  {}  {}",
                entry.pcr,
                to_hex(&entry.filedata_hash[..8]),
                entry.path
            );
        }
        println!("  aggregate (PCR-10 shadow): {}", to_hex(&list.aggregate()));
        println!("  list digest (quoted):      {}", to_hex(&list.digest()));
    }

    // --- The challenge and the quote --------------------------------------
    println!("\n=== 2. challenge, report and quote ===");
    let challenge = testbed
        .vm
        .begin_host_attestation(&host_id);
    println!("  VM nonce: {}", to_hex(&challenge.nonce));
    let iml = testbed.hosts[0].container_host.measurement_list().encode();
    let evidence = host_evidence(
        &testbed.hosts[0].platform,
        &testbed.hosts[0].integrity_enclave,
        &iml,
        &challenge.nonce,
        None,
    )
    .unwrap();
    let quote = Quote::decode(&evidence.quote).unwrap();
    println!("  quote version:        {}", quote.version);
    println!("  EPID group id:        {:#06x}", quote.epid_group_id);
    println!("  QE SVN:               {}", quote.qe_svn);
    println!("  member pseudonym:     {}", to_hex(&quote.member_id[..12]));
    println!("  MRENCLAVE:            {}", quote.report_body.mrenclave);
    println!("  MRSIGNER:             {}", quote.report_body.mrsigner);
    println!(
        "  ISV prod/svn:         {}/{}",
        quote.report_body.isv_prod_id, quote.report_body.isv_svn
    );
    println!(
        "  report_data[0..32]:   {}  (= sha256(IML))",
        to_hex(&quote.report_body.report_data[..32])
    );
    println!(
        "  report_data[32..64]:  {}  (= VM nonce)",
        to_hex(&quote.report_body.report_data[32..])
    );
    assert_eq!(
        quote.report_body.report_data,
        host_report_data(&iml, &challenge.nonce)
    );

    // --- The IAS verification report ---------------------------------------
    println!("\n=== 3. IAS verification report ===");
    let report = testbed.ias.verify_quote(&evidence.quote, &challenge.nonce);
    println!("  id:        {}", report.id);
    println!("  timestamp: {}", report.timestamp);
    println!("  status:    {}", report.status);
    println!("  nonce ok:  {}", report.nonce == challenge.nonce);
    println!(
        "  signature: verifies under the IAS report key: {}",
        report.verify(&testbed.ias.report_signing_key()).is_ok()
    );

    // --- Appraisal ----------------------------------------------------------
    println!("\n=== 4. appraisal ===");
    let verdict = testbed
        .vm
        .complete_host_attestation(&mut testbed.ias, challenge.id, &evidence)
        .unwrap();
    println!("  verdict: {verdict:?} → workflow may continue");

    // --- Tampering demonstration -------------------------------------------
    println!("\n=== 5. what tampering does ===");
    let challenge = testbed
        .vm
        .begin_host_attestation(&host_id);
    let mut tampered = host_evidence(
        &testbed.hosts[0].platform,
        &testbed.hosts[0].integrity_enclave,
        &iml,
        &challenge.nonce,
        None,
    )
    .unwrap();
    // Swap in a different measurement list after quoting.
    let mut other_list = vnfguard::ima::list::MeasurementList::new(b"host-0");
    other_list.measure_file("/usr/bin/dockerd", b"docker daemon 1.12.2");
    tampered.iml = other_list.encode();
    let err = testbed
        .vm
        .complete_host_attestation(&mut testbed.ias, challenge.id, &tampered)
        .unwrap_err();
    println!("  substituted IML  → {err}");

    let challenge = testbed
        .vm
        .begin_host_attestation(&host_id);
    let mut forged = host_evidence(
        &testbed.hosts[0].platform,
        &testbed.hosts[0].integrity_enclave,
        &iml,
        &challenge.nonce,
        None,
    )
    .unwrap();
    let last = forged.quote.len() - 1;
    forged.quote[last] ^= 1; // one bit in the EPID signature
    let err = testbed
        .vm
        .complete_host_attestation(&mut testbed.ias, challenge.id, &forged)
        .unwrap_err();
    println!("  forged quote bit → {err}");

    println!("\nIAS requests served in this run: {}", testbed.ias.requests_served());
}
