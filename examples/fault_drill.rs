//! Fault drill: the attestation/enrollment pipeline driven through every
//! injected-failure mode, narrated.
//!
//! ```text
//! cargo run --example fault_drill
//! ```

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use vnfguard::core::deployment::{Testbed, TestbedBuilder};
use vnfguard::core::remote::{
    remote_attest_host, remote_enroll_vnf, serve_ias, HostAgent, HostAgentState, RemoteIas,
};
use vnfguard::core::resilience::{CircuitBreaker, RetryPolicy};
use vnfguard::core::revocation::{revocation_message, RevocationNotifier};
use vnfguard::core::CoreError;
use vnfguard::net::{FaultEvent, FaultPlan};

struct World {
    testbed: Testbed,
    agent: HostAgent,
    remote_ias: RemoteIas,
    plan: FaultPlan,
    _ias_handle: vnfguard::net::ServerHandle,
}

fn world(seed: &[u8], plan_seed: u64, retry: RetryPolicy, breaker: CircuitBreaker) -> World {
    world_with(seed, plan_seed, retry, breaker, |b| b)
}

fn world_with(
    seed: &[u8],
    plan_seed: u64,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
    configure: impl FnOnce(TestbedBuilder) -> TestbedBuilder,
) -> World {
    let mut testbed = configure(TestbedBuilder::new(seed)).build();
    let plan = FaultPlan::seeded(plan_seed);
    testbed.network.install_faults(&plan);
    let ias = std::mem::replace(
        &mut testbed.ias,
        vnfguard::ias::AttestationService::new(b"placeholder"),
    );
    let report_key = ias.report_signing_key();
    let (_ias_handle, _shared) = serve_ias(&testbed.network, "ias:443", ias).unwrap();
    let remote_ias = RemoteIas::new(&testbed.network, "ias:443", report_key)
        .with_resilience(testbed.clock.clone(), retry, breaker);
    let host = testbed.hosts.remove(0);
    let guard = vnfguard::vnf::VnfGuard::load(
        &host.platform,
        &testbed.network,
        &testbed.enclave_author,
        "vnf-drill",
        1,
    )
    .unwrap();
    testbed.vm.trust_enclave(guard.mrenclave(), "vnf-drill-v1");
    let mut guards = HashMap::new();
    guards.insert("vnf-drill".to_string(), Arc::new(guard));
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(guards),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(testbed.vm.share_hmac_key()),
    });
    let agent = HostAgent::serve(&testbed.network, state).unwrap();
    World {
        testbed,
        agent,
        remote_ias,
        plan,
        _ias_handle,
    }
}

fn attest(w: &mut World) -> Result<vnfguard::ima::appraisal::Verdict, CoreError> {
    remote_attest_host(
        &w.testbed.vm,
        &mut w.remote_ias,
        &w.testbed.network,
        "host-0",
    )
}

fn enroll(w: &mut World) -> Result<vnfguard::pki::Certificate, CoreError> {
    remote_enroll_vnf(
        &w.testbed.vm,
        &mut w.remote_ias,
        &w.testbed.network,
        "host-0",
        "vnf-drill",
        "controller",
    )
}

fn main() {
    // ---- 1: flaky IAS, retries absorb ----------------------------------
    println!("== drill 1: 30% IAS connection refusals ==");
    let mut w = world(
        b"drill flaky",
        7,
        RetryPolicy::new(8, 1, 16).with_seed(7),
        CircuitBreaker::new(32, 600),
    );
    w.plan.refuse_connections("ias:443", 0.30);
    for round in 0..3 {
        let verdict = attest(&mut w).unwrap();
        println!(
            "  attest round {round}: {verdict:?} after {} attempt(s)",
            w.remote_ias.last_attempts().len()
        );
    }
    let cert = enroll(&mut w).unwrap();
    let refused = w
        .plan
        .events()
        .iter()
        .filter(|e| matches!(e, FaultEvent::Refused { .. }))
        .count();
    println!(
        "  enrolled {} (serial {}); plan refused {} connection(s); breaker {:?}",
        cert.subject_cn(),
        cert.serial(),
        refused,
        w.remote_ias.breaker_state()
    );

    // ---- 2: hard partition, breaker + degraded verdicts ----------------
    println!("== drill 2: VM partitioned from IAS ==");
    let mut w = world(
        b"drill partition",
        11,
        RetryPolicy::new(2, 1, 4).with_seed(11),
        CircuitBreaker::new(2, 3600),
    );
    attest(&mut w).unwrap();
    w.plan.partition(&["vm"], &["ias:443"]);
    println!("  degraded policy OFF (default): attest → {}", attest(&mut w).unwrap_err());
    println!("                        2nd try → {}", attest(&mut w).unwrap_err());
    println!("  breaker is now {:?}", w.remote_ias.breaker_state());
    println!("  open circuit, policy OFF: {}", attest(&mut w).unwrap_err());

    // Degradation is a build-time policy now (ManagerConfig::builder()'s
    // degraded_verdicts): stand up the same drill with the policy ON.
    let mut w = world_with(
        b"drill partition",
        11,
        RetryPolicy::new(2, 1, 4).with_seed(11),
        CircuitBreaker::new(2, 3600),
        |b| b.degraded(true, 900),
    );
    attest(&mut w).unwrap();
    w.plan.partition(&["vm"], &["ias:443"]);
    let _ = attest(&mut w); // trip the breaker...
    let _ = attest(&mut w); // ...two failed operations open it
    let verdict = attest(&mut w).unwrap();
    let audited = w
        .testbed
        .vm
        .events()
        .iter()
        .filter(|e| e.kind == "DegradedVerdict")
        .count();
    println!("  policy ON: cached {verdict:?} accepted; {audited} DegradedVerdict audit event(s)");
    println!("  enrollment stays closed: {}", enroll(&mut w).unwrap_err());

    // ---- 3: link cut mid-provisioning ----------------------------------
    println!("== drill 3: connection cut after 900 bytes, mid-provisioning ==");
    let mut w = world(
        b"drill drop",
        23,
        RetryPolicy::new(1, 0, 0),
        CircuitBreaker::new(32, 600),
    );
    attest(&mut w).unwrap();
    w.plan.drop_after_bytes("agent:host-0", 900);
    match enroll(&mut w) {
        Err(CoreError::ProvisioningRolledBack(detail)) => {
            println!("  rolled back: {detail}");
        }
        other => println!("  unexpected: {other:?}"),
    }
    let crl = w.testbed.vm.current_crl(3600);
    println!(
        "  pending enrollments: {}; committed: {}; CRL entries: {}; enclave provisioned: {}",
        w.testbed.vm.pending_enrollments().count(),
        w.testbed.vm.enrollments().count(),
        crl.len(),
        w.agent.state.guards.read()["vnf-drill"]
            .status()
            .unwrap()
            .provisioned,
    );

    // ---- 4: revocation notices queue and drain -------------------------
    println!("== drill 4: revocation notice to an isolated host ==");
    let mut w = world(
        b"drill revoke",
        31,
        RetryPolicy::new(2, 1, 4).with_seed(31),
        CircuitBreaker::new(8, 600),
    );
    attest(&mut w).unwrap();
    let cert = enroll(&mut w).unwrap();
    let serial = cert.serial();
    let now = w.testbed.clock.now();
    w.testbed
        .vm
        .revoke_credential(serial, vnfguard::pki::crl::RevocationReason::KeyCompromise)
        .unwrap();
    let tag = w.testbed.vm.hmac_tag(&revocation_message("host-0", serial));
    w.plan.isolate("agent:host-0");
    let mut notifier = RevocationNotifier::new(&w.testbed.network);
    let sent = notifier.notify("host-0", serial, tag, now);
    println!(
        "  host isolated: delivered={sent}, queued={}",
        notifier.pending().len()
    );
    w.plan.heal("agent:host-0");
    let drained = notifier.drain(now);
    println!(
        "  host healed: drained={drained}, agent evicted serial {serial}: {}",
        w.agent.state.revoked_serials.read().contains(&serial)
    );
    let forged = notifier.notify("host-0", 999, [0xAA; 32], now);
    println!(
        "  forged tag for serial 999: delivered={forged}, agent accepted it: {}",
        w.agent.state.revoked_serials.read().contains(&999)
    );

    println!("\nEvery failure mode was injected, survived or failed closed, and audited.");
}
