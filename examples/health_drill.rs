//! Health-plane drill: watch the SLO burn-rate alert fire, follow its
//! trace exemplar into the collector, read the fleet cockpit through a
//! standby partition, and watch the alert resolve.
//!
//! ```text
//! cargo run --example health_drill
//! ```
//!
//! The timeline rides the simulated clock, so every run produces the
//! same alert trajectory:
//!
//! 1. healthy traced enrollments establish the baseline;
//! 2. the IAS link is severed — every enrollment fails at attestation
//!    and is charged as a bad availability event with its trace id;
//! 3. the `enrollment-availability` alert walks pending → firing once
//!    both burn windows breach, carrying the bad traces as exemplars;
//! 4. the exemplar resolves to a full span tree via `/vm/traces/{id}`;
//! 5. the fleet cockpit stays readable while a standby is partitioned
//!    (the node is marked stale, the scrape never wedges);
//! 6. the link heals, the windows age clear, and the alert resolves.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use vnfguard::core::deployment::{Testbed, TestbedBuilder};
use vnfguard::core::fleet::serve_fleet_api;
use vnfguard::core::remote::{
    remote_attest_host, remote_enroll_vnf_traced, serve_ias, serve_vm_api, HostAgent,
    HostAgentState, RemoteIas,
};
use vnfguard::core::resilience::{CircuitBreaker, RetryPolicy};
use vnfguard::core::CoreError;
use vnfguard::ias::{AttestationService, QuoteVerifier};
use vnfguard::net::server::HttpClient;
use vnfguard::net::{FaultPlan, Request};
use vnfguard::telemetry::{AlertState, Telemetry};
use vnfguard::vnf::VnfGuard;

struct World {
    testbed: Testbed,
    agent: HostAgent,
    remote_ias: RemoteIas,
    telemetry: Telemetry,
    plan: FaultPlan,
    next_vnf: u64,
    _ias_handle: vnfguard::net::ServerHandle,
    _api_handle: vnfguard::net::ServerHandle,
}

fn world() -> World {
    let telemetry = Telemetry::new();
    let plan = FaultPlan::seeded(0xd01);
    let mut testbed = TestbedBuilder::new(b"health drill")
        .telemetry(telemetry.clone())
        .tracing(1.0)
        .health()
        .durable()
        .replicas(1)
        .faults(plan.clone())
        .build();
    let ias = std::mem::replace(&mut testbed.ias, AttestationService::new(b"placeholder"));
    let report_key = ias.report_signing_key();
    let (_ias_handle, _shared) = serve_ias(&testbed.network, "ias:443", ias).unwrap();
    let mut remote_ias = RemoteIas::new(&testbed.network, "ias:443", report_key)
        .with_telemetry(&telemetry)
        .with_resilience(
            testbed.clock.clone(),
            RetryPolicy::new(2, 1, 4),
            CircuitBreaker::new(3, 60),
        );
    let host = testbed.hosts.remove(0);
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(HashMap::new()),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(testbed.vm.share_hmac_key()),
    });
    let agent = HostAgent::serve(&testbed.network, state).unwrap();
    remote_attest_host(&testbed.vm, &mut remote_ias, &testbed.network, "host-0").unwrap();
    let api_ias: Arc<Mutex<dyn QuoteVerifier + Send>> =
        Arc::new(Mutex::new(AttestationService::new(b"placeholder")));
    let _api_handle = serve_vm_api(
        &testbed.network,
        "vm:8443",
        testbed.vm_service(),
        api_ias,
        "controller",
    )
    .unwrap();
    World {
        testbed,
        agent,
        remote_ias,
        telemetry,
        plan,
        next_vnf: 0,
        _ias_handle,
        _api_handle,
    }
}

/// One operator-rooted traced enrollment of a fresh VNF name.
fn enroll(world: &mut World) -> Result<(), CoreError> {
    world.next_vnf += 1;
    let name = format!("vnf-{}", world.next_vnf);
    let guard = VnfGuard::load(
        &world.agent.state.platform,
        &world.testbed.network,
        &world.testbed.enclave_author,
        &name,
        1,
    )
    .unwrap();
    world.testbed.vm.trust_enclave(guard.mrenclave(), &name);
    world
        .agent
        .state
        .guards
        .write()
        .insert(name.clone(), Arc::new(guard));
    let host_id = world.agent.state.host_id.clone();
    let now = world.testbed.clock.now();
    let (ctx, _span) = world.telemetry.trace_root("operator", "enrollment", now);
    remote_enroll_vnf_traced(
        &world.testbed.vm,
        &mut world.remote_ias,
        &world.testbed.network,
        &host_id,
        &name,
        "controller",
        Some(&ctx),
    )
    .map(|_| ())
}

fn main() {
    let mut world = world();
    let health = world.testbed.vm.health().expect("health attached").clone();
    let clock = world.testbed.clock.clone();
    let slo = "enrollment-availability";

    println!("== baseline: healthy traced enrollments ==");
    for _ in 0..10 {
        clock.advance(2);
        enroll(&mut world).expect("healthy enrollment");
    }
    let baseline = health.alert(slo, clock.now()).unwrap();
    println!(
        "  {} after 10 good enrollments: {} (fast burn {:.2}, slow burn {:.2})",
        slo,
        baseline.state.as_str(),
        baseline.fast_burn,
        baseline.slow_burn
    );

    println!("\n== incident: severing the IAS link ==");
    let stall_start = clock.now();
    world.plan.isolate("ias:443");
    let mut firing = None;
    let mut last_state = AlertState::Ok;
    while firing.is_none() {
        clock.advance(5);
        let _ = enroll(&mut world);
        let alert = health.alert(slo, clock.now()).unwrap();
        if alert.state != last_state {
            println!(
                "  t+{:>4}s  {} -> {} (fast burn {:.1}x, slow burn {:.1}x)",
                clock.now() - stall_start,
                last_state.as_str(),
                alert.state.as_str(),
                alert.fast_burn,
                alert.slow_burn
            );
            last_state = alert.state;
        }
        if alert.state == AlertState::Firing {
            firing = Some(alert);
        }
    }
    let firing = firing.unwrap();

    println!("\n== exemplar: from the firing alert into the trace collector ==");
    let trace_id = *firing
        .exemplar_trace_ids
        .first()
        .expect("firing alert carries exemplars");
    let mut vm_client = HttpClient::new(world.testbed.network.connect("vm:8443").unwrap());
    let tree = vm_client
        .request(&Request::get(&format!("/vm/traces/{trace_id:032x}")))
        .unwrap()
        .parse_json()
        .unwrap();
    println!(
        "  GET /vm/traces/{trace_id:032x} -> {} spans of the failed enrollment",
        tree.get("span_count")
            .and_then(vnfguard::encoding::Json::as_i64)
            .unwrap_or(0)
    );

    println!("\n== cockpit: fleet status while a standby is partitioned ==");
    let (monitor, _standby_handles) = world
        .testbed
        .fleet_monitor("operator", "vm:8443")
        .unwrap();
    let _fleet = serve_fleet_api(
        &world.testbed.network,
        "fleet:9443",
        Arc::new(Mutex::new(monitor)),
    )
    .unwrap();
    let mut fleet_client = HttpClient::new(world.testbed.network.connect("fleet:9443").unwrap());
    // One healthy scrape first, so the standby has data to go stale.
    fleet_client
        .request(&Request::get("/fleet/status"))
        .unwrap();
    world.plan.isolate("health-vm-standby-0:7600");
    clock.advance(5);
    let cockpit = fleet_client
        .request(&Request::get("/fleet/status?format=ascii"))
        .unwrap();
    println!("{}", String::from_utf8(cockpit.body).unwrap());
    world.plan.heal("health-vm-standby-0:7600");

    println!("== recovery: healing the IAS link ==");
    world.plan.heal("ias:443");
    loop {
        clock.advance(10);
        let _ = enroll(&mut world);
        let alert = health.alert(slo, clock.now()).unwrap();
        if alert.state != last_state {
            println!(
                "  t+{:>4}s  {} -> {} (resolved_at {:?})",
                clock.now() - stall_start,
                last_state.as_str(),
                alert.state.as_str(),
                alert.resolved_at
            );
            last_state = alert.state;
        }
        if alert.state == AlertState::Ok {
            break;
        }
    }
    println!("\nhealth drill complete: fired, exemplified, survived a partition, resolved.");
}
